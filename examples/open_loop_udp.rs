//! Open-loop load over the real-socket fabric: a paced sender + receiver
//! thread pair (the paper's §4.2 client) against the soft switch.
//!
//! ```text
//! cargo run --release --example open_loop_udp [rate_rps] [duration_ms]
//! ```

use std::time::Duration;

use netclone::core::NetCloneConfig;
use netclone::net::{OpenLoopClient, OpenLoopSpec, Testbed, WorkExecutor};
use netclone::proto::{Ipv4, RpcOp};

fn main() -> std::io::Result<()> {
    let mut args = std::env::args().skip(1);
    let rate: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5_000.0);
    let dur_ms: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(500);

    let tb = Testbed::spawn(NetCloneConfig::default(), 4, 2, WorkExecutor::Synthetic)?;
    let handle = tb.switch_handle();
    let client = OpenLoopClient::bind(0, tb.switch_addr())?;
    handle
        .register_client(0, Ipv4::client(0), client.addr()?)
        .map_err(std::io::Error::other)?;

    println!("open loop: {rate} rps for {dur_ms} ms against 4 servers (Echo 50us)\n");
    let report = client.run(OpenLoopSpec {
        rate_rps: rate,
        duration: Duration::from_millis(dur_ms),
        op: RpcOp::Echo { class_ns: 50_000 },
        drain: Duration::from_millis(200),
        request_timeout: Duration::from_millis(150),
        num_groups: handle.num_groups(),
        num_filter_tables: 2,
        seed: 1,
    })?;

    let lat = &report.latencies;
    println!(
        "sent {}  completed {} ({:.1}%)  redundant {}  lost {}  clone-wins {} ({:.1}%)",
        report.sent,
        report.completed,
        report.completion_rate() * 100.0,
        report.redundant,
        report.lost,
        report.clone_wins,
        report.clone_win_ratio() * 100.0
    );
    println!(
        "latency: p50 {:.0} us   p99 {:.0} us   max {:.0} us",
        lat.quantile(0.50) as f64 / 1e3,
        lat.quantile(0.99) as f64 / 1e3,
        lat.max() as f64 / 1e3
    );
    let c = handle.counters();
    println!(
        "switch: cloned {:.0}% of {} requests, filtered {} slower responses",
        c.clone_rate() * 100.0,
        c.requests,
        c.responses_filtered
    );
    tb.shutdown();
    Ok(())
}
