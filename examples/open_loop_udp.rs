//! Open-loop load over the real-socket fabric: sharded worker threads
//! (the paper's §4.2 client) against the soft switch, with batched UDP
//! I/O — doubles as a manual smoke test for the sharded frontend.
//!
//! ```text
//! cargo run --release --example open_loop_udp [rate_rps] [duration_ms] [workers]
//! ```

use std::time::Duration;

use netclone::core::NetCloneConfig;
use netclone::net::{path_counters, OpenLoopSpec, Testbed, WorkExecutor};
use netclone::proto::RpcOp;

fn main() -> std::io::Result<()> {
    let mut args = std::env::args().skip(1);
    let rate: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5_000.0);
    let dur_ms: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(500);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    let mut tb = Testbed::spawn(NetCloneConfig::default(), 4, 2, WorkExecutor::Synthetic)?;
    let handle = tb.switch_handle();
    let client = tb.open_loop_client(workers)?;

    println!(
        "open loop: {rate} rps across {workers} workers for {dur_ms} ms \
         against 4 servers (Echo 50us)\n"
    );
    let before = path_counters();
    let report = client.run(OpenLoopSpec {
        rate_rps: rate,
        duration: Duration::from_millis(dur_ms),
        op: RpcOp::Echo { class_ns: 50_000 },
        drain: Duration::from_millis(200),
        request_timeout: Duration::from_millis(150),
        num_groups: handle.num_groups(),
        num_filter_tables: 2,
        seed: 1,
        workers,
        retry: None,
        faults: None,
        crash_worker: None,
    })?;
    let after = path_counters();

    let lat = &report.latencies;
    println!(
        "sent {}  completed {} ({:.1}%)  redundant {}  lost {}  clone-wins {} ({:.1}%)",
        report.sent,
        report.completed,
        report.completion_rate() * 100.0,
        report.redundant,
        report.lost,
        report.clone_wins,
        report.clone_win_ratio() * 100.0
    );
    println!(
        "latency: p50 {:.0} us   p99 {:.0} us   max {:.0} us",
        lat.quantile(0.50) as f64 / 1e3,
        lat.quantile(0.99) as f64 / 1e3,
        lat.max() as f64 / 1e3
    );
    println!("\nper-worker breakdown:");
    for w in &report.per_worker {
        println!(
            "  cid {:>3}: sent {:>6}  completed {:>6}  lost {:>4}  \
             clone-wins {:>5}  p99 {:.0} us",
            w.cid,
            w.stats.generated,
            w.stats.completed,
            w.stats.lost,
            w.stats.clone_wins,
            w.latencies.quantile(0.99) as f64 / 1e3
        );
    }
    let c = handle.counters();
    println!(
        "\nswitch: cloned {:.0}% of {} requests, filtered {} slower responses",
        c.clone_rate() * 100.0,
        c.requests,
        c.responses_filtered
    );
    println!(
        "hot path: {} buffer-growth allocs, {} timeout syscalls during the run",
        after.buffer_grow_allocs - before.buffer_grow_allocs,
        after.timeout_syscalls - before.timeout_syscalls
    );
    tb.shutdown();
    Ok(())
}
