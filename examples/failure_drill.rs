//! A miniature Figure 16 plus the §3.6 server-failure procedure, rendered
//! as an ASCII timeline.
//!
//! The switch is stopped at 5 s and reactivated at 7 s; forwarding resumes
//! once the pipeline is back (~10 s) with all soft state cleared — and
//! nothing breaks, because NetClone keeps only soft state in the ASIC.
//! Separately, a server is killed mid-run and the control plane removes it
//! from the group/address tables.
//!
//! ```text
//! cargo run --release --example failure_drill
//! ```

use netclone::cluster::experiments::{fig16, Scale};
use netclone::cluster::harness::RunCtx;
use netclone::cluster::scenario::ServerFailurePlan;
use netclone::cluster::{Scenario, Scheme, Sim};
use netclone::workloads::exp25;

fn main() {
    println!("== Switch failure (Fig. 16, compressed timeline) ==\n");
    let f = fig16::run(&RunCtx::new(Scale::Standard));
    let peak = f
        .timeline
        .iter()
        .map(|&(_, m)| m)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    for &(t, mrps) in f.timeline.iter() {
        let bars = ((mrps / peak) * 50.0).round() as usize;
        let marker = if t >= f.fail_at_s && t < f.up_at_s {
            "x"
        } else {
            " "
        };
        println!("{t:>5.1}s |{}{marker}", "#".repeat(bars));
    }
    println!(
        "\nstop @ {:.0}s, reactivate @ {:.0}s, forwarding back @ ~{:.0}s — full recovery, soft state only.\n",
        f.fail_at_s, f.reactivate_at_s, f.up_at_s
    );

    println!("== Server failure (§3.6) ==\n");
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 0.0);
    s.offered_rps = s.capacity_rps() * 0.4;
    s.warmup_ns = 10_000_000;
    s.measure_ns = 120_000_000;
    s.server_failure = Some(ServerFailurePlan {
        sid: 3,
        fail_at_ns: 40_000_000,
        removed_at_ns: 60_000_000, // 20 ms detection delay
    });
    let r = Sim::run(s);
    println!(
        "server 3 died at 40ms, removed from switch tables at 60ms:\n\
         completed {} requests at p99 {:.0} us; {} packets were lost to the dead server\n\
         (the control plane rebuilt the group table over the 5 survivors).",
        r.completed,
        r.p99_us(),
        r.generated - r.completed,
    );
}
