//! A miniature Figure 11: the Redis-style workload (1M objects, Zipf-0.99,
//! 99%-GET / 1%-SCAN) under Baseline, C-Clone, and NetClone.
//!
//! SCANs read 100 objects and take milliseconds; the tail is dominated by
//! GETs stuck behind them. Cloning to a tracked-idle replica sidesteps the
//! blockage — the paper reports up to 22.6× lower p99 at low load.
//!
//! ```text
//! cargo run --release --example kv_cluster
//! ```

use netclone::cluster::{Scenario, Scheme, Sim, Workload};

fn main() {
    println!("Redis model: 6 servers x 8 threads, 99%-GET/1%-SCAN, Zipf-0.99, 1M objects\n");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10}",
        "scheme", "load", "MRPS", "p99 (us)", "mean (us)"
    );
    for load_pct in [20, 60] {
        let mut baseline_p99 = 0.0;
        for scheme in [Scheme::Baseline, Scheme::CClone, Scheme::NETCLONE] {
            let mut s = Scenario::kv_default(scheme, Workload::redis(0.99), 0.0);
            s.offered_rps = s.capacity_rps() * load_pct as f64 / 100.0;
            let r = Sim::run(s);
            if scheme == Scheme::Baseline {
                baseline_p99 = r.p99_us();
            }
            println!(
                "{:<10} {:>7}% {:>10.3} {:>10.1} {:>10.1}",
                r.scheme,
                load_pct,
                r.achieved_mrps(),
                r.p99_us(),
                r.mean_us()
            );
            if scheme == Scheme::NETCLONE {
                println!(
                    "           -> NetClone improves baseline p99 by {:.1}x at {}% load\n",
                    baseline_p99 / r.p99_us(),
                    load_pct
                );
            }
        }
    }
}
