//! A miniature Figure 10: NetClone with and without the RackSched
//! integration (§3.7) on a *heterogeneous* rack — three servers with 15
//! worker threads, three with 8.
//!
//! The JSQ fallback steers non-cloned requests away from the weaker
//! servers, so the combination beats both plain NetClone and the baseline
//! under imbalance.
//!
//! ```text
//! cargo run --release --example racksched_synergy
//! ```

use netclone::cluster::{Scenario, Scheme, ServerSpec, Sim};
use netclone::workloads::exp25;

fn main() {
    let hetero: Vec<ServerSpec> = (0..6)
        .map(|i| ServerSpec {
            workers: if i < 3 { 15 } else { 8 },
        })
        .collect();
    println!("Heterogeneous rack: 3 servers x 15 threads + 3 servers x 8 threads, Exp(25)\n");
    println!(
        "{:<22} {:>10} {:>10} {:>12}",
        "scheme", "MRPS", "p99 (us)", "JSQ steers"
    );
    for scheme in [Scheme::Baseline, Scheme::NETCLONE, Scheme::NETCLONE_RS] {
        let mut s = Scenario::synthetic_default(scheme, exp25(), 0.0);
        s.servers = hetero.clone();
        s.offered_rps = s.capacity_rps() * 0.7;
        let r = Sim::run(s);
        println!(
            "{:<22} {:>10.2} {:>10.1} {:>12}",
            r.scheme,
            r.achieved_mrps(),
            r.p99_us(),
            r.switch.jsq_fallbacks
        );
    }
    println!("\nRackSched's shortest-queue fallback absorbs the imbalance the random\ngroup choice would otherwise dump on the 8-thread servers.");
}
