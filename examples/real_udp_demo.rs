//! The real-socket runtime on loopback: a userspace soft switch running
//! the genuine NetClone data plane, four threaded servers, one client.
//!
//! Watch the switch clone closed-loop requests (queues are always empty)
//! and filter every slower response before it reaches the client.
//!
//! ```text
//! cargo run --release --example real_udp_demo
//! ```

use std::time::Duration;

use netclone::core::NetCloneConfig;
use netclone::net::{Testbed, WorkExecutor};
use netclone::proto::{KvKey, RpcOp};

fn main() -> std::io::Result<()> {
    let mut tb = Testbed::spawn(
        NetCloneConfig::default(),
        4,
        2,
        WorkExecutor::kv(10_000, 64),
    )?;
    let mut client = tb.client(1)?;
    println!(
        "soft switch on {}, 4 servers, KV store with 10k objects\n",
        tb.switch_addr()
    );

    let mut from_clone = 0;
    let calls = 200;
    for i in 0..calls {
        let reply = client
            .call(
                RpcOp::Get {
                    key: KvKey::from_index(i % 10_000),
                },
                Duration::from_secs(1),
            )
            .expect("call");
        if reply.from_clone {
            from_clone += 1;
        }
        if i < 5 {
            println!(
                "GET #{i}: server {} answered in {:>7.1?} (winner was the {})",
                reply.sid,
                reply.latency,
                if reply.from_clone {
                    "clone"
                } else {
                    "original"
                }
            );
        }
    }
    std::thread::sleep(Duration::from_millis(50));
    client.drain_late_responses();

    let c = tb.switch_handle().counters();
    let lat = client.latencies();
    println!(
        "\n{calls} calls: p50 {:.0} us, p99 {:.0} us",
        lat.quantile(0.5) as f64 / 1e3,
        lat.quantile(0.99) as f64 / 1e3
    );
    println!(
        "switch: {} requests, {} cloned ({:.0}%), {} slower responses filtered",
        c.requests,
        c.cloned,
        c.clone_rate() * 100.0,
        c.responses_filtered
    );
    println!(
        "client: {} redundant responses seen (filtering works), {} answers won by the clone",
        client.redundant(),
        from_clone
    );
    tb.shutdown();
    Ok(())
}
