//! A miniature Figure 7(a): p99 latency vs throughput for Baseline,
//! C-Clone, and NetClone under Exp(25), rendered as an ASCII chart.
//!
//! ```text
//! cargo run --release --example synthetic_sweep
//! ```

use netclone::cluster::sweep::{capacity_fractions, sweep};
use netclone::cluster::{Scenario, Scheme};
use netclone::stats::AsciiChart;
use netclone::workloads::exp25;

fn main() {
    let mut template = Scenario::synthetic_default(Scheme::Baseline, exp25(), 0.0);
    template.warmup_ns = 10_000_000;
    template.measure_ns = 60_000_000;
    let rates = capacity_fractions(&template, 0.1, 0.95, 7);

    let mut chart = AsciiChart::new(72, 18).log_y();
    println!("Exp(25), 6 workers — p99 latency (us, log) vs achieved throughput (MRPS)\n");
    for (scheme, marker) in [
        (Scheme::Baseline, 'b'),
        (Scheme::CClone, 'c'),
        (Scheme::NETCLONE, 'N'),
    ] {
        let mut t = template.clone();
        t.scheme = scheme;
        let points = sweep(&t, &rates);
        println!(
            "{:<10} {}",
            scheme.label(),
            points
                .iter()
                .map(|p| format!("({:.2} MRPS, {:.0}us)", p.achieved_mrps, p.p99_us))
                .collect::<Vec<_>>()
                .join(" ")
        );
        chart = chart.series(
            scheme.label(),
            marker,
            points.iter().map(|p| (p.achieved_mrps, p.p99_us)),
        );
    }
    println!("\n{}", chart.render());
    println!("Note C-Clone's curve ending early (static cloning halves capacity, paper §2.2).");
}
