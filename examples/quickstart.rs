//! Quickstart: the paper's headline claim in thirty lines.
//!
//! Builds the default testbed (2 clients, 6 × 15-thread workers,
//! Exp(25 μs) RPCs with ×15 jitter at p = 0.01), runs Baseline and
//! NetClone at 40 % load, and prints the tail-latency win.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use netclone::cluster::{Scenario, Scheme, Sim};
use netclone::workloads::exp25;

fn main() {
    let mut results = Vec::new();
    for scheme in [Scheme::Baseline, Scheme::NETCLONE] {
        let mut s = Scenario::synthetic_default(scheme, exp25(), 0.0);
        s.offered_rps = s.capacity_rps() * 0.4;
        let r = Sim::run(s);
        let (p50, p99, p999) = r.percentiles_us();
        println!(
            "{:<10}  throughput {:.2} MRPS   p50 {:>6.1} us   p99 {:>7.1} us   p99.9 {:>7.1} us",
            r.scheme,
            r.achieved_mrps(),
            p50,
            p99,
            p999
        );
        if scheme == Scheme::NETCLONE {
            println!(
                "{:<10}  cloned {:.0}% of requests; switch filtered {} slower responses; \
                 servers dropped {} stale clones",
                "",
                r.switch.clone_rate() * 100.0,
                r.switch.responses_filtered,
                r.server_clone_drops
            );
        }
        results.push((r.scheme, r.p99_us()));
    }
    let (base, nc) = (results[0].1, results[1].1);
    println!(
        "\nNetClone cuts p99 tail latency by {:.2}x at 40% load (same goodput).",
        base / nc
    );
}
