//! Failure-handling integration tests (§3.6): server death + control-plane
//! removal, switch power cycles, and packet loss.

use netclone::cluster::scenario::ServerFailurePlan;
use netclone::cluster::{Scenario, Scheme, Sim, SwitchFailurePlan};
use netclone::workloads::exp25;

#[test]
fn server_failure_degrades_then_recovers() {
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 0.0);
    s.offered_rps = s.capacity_rps() * 0.3;
    s.warmup_ns = 5_000_000;
    s.measure_ns = 80_000_000;
    s.server_failure = Some(ServerFailurePlan {
        sid: 2,
        fail_at_ns: 20_000_000,
        removed_at_ns: 30_000_000,
    });
    let r = Sim::run(s);
    // Requests routed to the dead server during the 10 ms detection window
    // are lost; everything after removal completes.
    assert!(r.completed > 0);
    let lost = r.generated - r.completed;
    assert!(lost > 0, "some in-flight requests must die with the server");
    assert!(
        (lost as f64) < r.generated as f64 * 0.15,
        "losses must be bounded by the detection window: {lost}/{}",
        r.generated
    );
    // The dead server served nothing after its removal.
    assert_eq!(r.per_server_served.len(), 6);
}

#[test]
fn netclone_masks_some_failures_through_cloning() {
    // With cloning, a request whose original went to the dying server can
    // still complete via its clone. Compare losses against the baseline in
    // the identical failure scenario: NetClone should lose no more, and
    // generally fewer.
    let mut base_lost = 0;
    let mut nc_lost = 0;
    for (scheme, lost) in [
        (Scheme::Baseline, &mut base_lost),
        (Scheme::NETCLONE, &mut nc_lost),
    ] {
        let mut s = Scenario::synthetic_default(scheme, exp25(), 0.0);
        s.offered_rps = s.capacity_rps() * 0.25;
        s.warmup_ns = 5_000_000;
        s.measure_ns = 60_000_000;
        s.server_failure = Some(ServerFailurePlan {
            sid: 0,
            fail_at_ns: 20_000_000,
            removed_at_ns: 40_000_000,
        });
        let r = Sim::run(s);
        *lost = r.generated - r.completed;
    }
    assert!(
        nc_lost < base_lost,
        "cloning should mask some failure-window losses: NetClone {nc_lost} vs Baseline {base_lost}"
    );
}

#[test]
fn switch_power_cycle_loses_only_soft_state() {
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 0.0);
    s.offered_rps = s.capacity_rps() * 0.3;
    s.warmup_ns = 0;
    s.measure_ns = 100_000_000;
    s.timeseries_bucket_ns = 10_000_000;
    s.switch_failure = Some(SwitchFailurePlan {
        fail_at_ns: 30_000_000,
        reactivate_at_ns: 40_000_000,
        bringup_ns: 10_000_000,
    });
    let r = Sim::run(s);
    let rates = r.throughput_series.rates_per_sec();
    // Hole during [30ms, 50ms): bucket 3 keeps only in-flight stragglers,
    // bucket 4 is empty.
    assert!(rates[1] > 0.0, "healthy before the failure");
    assert!(
        rates[3] < rates[1] * 0.2,
        "only stragglers complete after the stop"
    );
    assert_eq!(rates[4], 0.0, "nothing completes while the switch is down");
    // Recovery buckets [60ms, 100ms) — excluding the post-run drain
    // buckets at the tail of the series.
    let recovered = rates[6..10].iter().sum::<f64>() / 4.0;
    assert!(
        recovered > rates[1] * 0.8,
        "throughput must fully recover after bring-up: {recovered} vs {}",
        rates[1]
    );
    assert!(r.packets_lost > 0, "in-flight packets die with the switch");
}

#[test]
fn random_packet_loss_does_not_wedge_anything() {
    // §3.6 "Dropped messages": response loss must not permanently occupy
    // filter slots (overwrites reclaim them), and the run must stay
    // healthy.
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 0.0);
    s.offered_rps = s.capacity_rps() * 0.3;
    s.warmup_ns = 5_000_000;
    s.measure_ns = 60_000_000;
    s.loss = 0.01; // 1% per link traversal — brutal for a data center
    let r = Sim::run(s);
    assert!(r.packets_lost > 0);
    let completion_rate = r.completed as f64 / r.generated as f64;
    assert!(
        completion_rate > 0.90,
        "most requests complete despite loss (cloning helps): {completion_rate}"
    );
    // Filter slots were reclaimed by overwrites rather than wedging.
    assert!(r.switch.responses_filtered > 0);
}

#[test]
fn cloning_masks_request_loss_better_than_baseline() {
    let mut rates = Vec::new();
    for scheme in [Scheme::Baseline, Scheme::NETCLONE] {
        let mut s = Scenario::synthetic_default(scheme, exp25(), 0.0);
        s.offered_rps = s.capacity_rps() * 0.2;
        s.warmup_ns = 5_000_000;
        s.measure_ns = 60_000_000;
        s.loss = 0.02;
        let r = Sim::run(s);
        rates.push(r.completed as f64 / r.generated as f64);
    }
    assert!(
        rates[1] > rates[0],
        "two copies in flight must survive loss more often: baseline {:.3} vs netclone {:.3}",
        rates[0],
        rates[1]
    );
}
