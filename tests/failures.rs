//! Failure-handling integration tests (§3.6): server death + control-plane
//! removal, switch power cycles, and packet loss.

use netclone::cluster::scenario::ServerFailurePlan;
use netclone::cluster::{DrainPlan, Scenario, Scheme, Sim, SlowdownPlan, SwitchFailurePlan};
use netclone::workloads::exp25;
use netclone_cluster::Topology;

#[test]
fn server_failure_degrades_then_recovers() {
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 0.0);
    s.offered_rps = s.capacity_rps() * 0.3;
    s.warmup_ns = 5_000_000;
    s.measure_ns = 80_000_000;
    s.server_failure = Some(ServerFailurePlan {
        sid: 2,
        fail_at_ns: 20_000_000,
        removed_at_ns: 30_000_000,
    });
    let r = Sim::run(s);
    // Requests routed to the dead server during the 10 ms detection window
    // are lost; everything after removal completes.
    assert!(r.completed > 0);
    let lost = r.generated - r.completed;
    assert!(lost > 0, "some in-flight requests must die with the server");
    assert!(
        (lost as f64) < r.generated as f64 * 0.15,
        "losses must be bounded by the detection window: {lost}/{}",
        r.generated
    );
    // The dead server served nothing after its removal.
    assert_eq!(r.per_server_served.len(), 6);
}

#[test]
fn netclone_masks_some_failures_through_cloning() {
    // With cloning, a request whose original went to the dying server can
    // still complete via its clone. Compare losses against the baseline in
    // the identical failure scenario: NetClone should lose no more, and
    // generally fewer.
    let mut base_lost = 0;
    let mut nc_lost = 0;
    for (scheme, lost) in [
        (Scheme::Baseline, &mut base_lost),
        (Scheme::NETCLONE, &mut nc_lost),
    ] {
        let mut s = Scenario::synthetic_default(scheme, exp25(), 0.0);
        s.offered_rps = s.capacity_rps() * 0.25;
        s.warmup_ns = 5_000_000;
        s.measure_ns = 60_000_000;
        s.server_failure = Some(ServerFailurePlan {
            sid: 0,
            fail_at_ns: 20_000_000,
            removed_at_ns: 40_000_000,
        });
        let r = Sim::run(s);
        *lost = r.generated - r.completed;
    }
    assert!(
        nc_lost < base_lost,
        "cloning should mask some failure-window losses: NetClone {nc_lost} vs Baseline {base_lost}"
    );
}

#[test]
fn switch_power_cycle_loses_only_soft_state() {
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 0.0);
    s.offered_rps = s.capacity_rps() * 0.3;
    s.warmup_ns = 0;
    s.measure_ns = 100_000_000;
    s.timeseries_bucket_ns = 10_000_000;
    s.switch_failure = Some(SwitchFailurePlan {
        fail_at_ns: 30_000_000,
        reactivate_at_ns: 40_000_000,
        bringup_ns: 10_000_000,
    });
    let r = Sim::run(s);
    let rates = r.throughput_series.rates_per_sec();
    // Hole during [30ms, 50ms): bucket 3 keeps only in-flight stragglers,
    // bucket 4 is empty.
    assert!(rates[1] > 0.0, "healthy before the failure");
    assert!(
        rates[3] < rates[1] * 0.2,
        "only stragglers complete after the stop"
    );
    assert_eq!(rates[4], 0.0, "nothing completes while the switch is down");
    // Recovery buckets [60ms, 100ms) — excluding the post-run drain
    // buckets at the tail of the series.
    let recovered = rates[6..10].iter().sum::<f64>() / 4.0;
    assert!(
        recovered > rates[1] * 0.8,
        "throughput must fully recover after bring-up: {recovered} vs {}",
        rates[1]
    );
    assert!(r.packets_lost > 0, "in-flight packets die with the switch");
}

#[test]
fn random_packet_loss_does_not_wedge_anything() {
    // §3.6 "Dropped messages": response loss must not permanently occupy
    // filter slots (overwrites reclaim them), and the run must stay
    // healthy.
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 0.0);
    s.offered_rps = s.capacity_rps() * 0.3;
    s.warmup_ns = 5_000_000;
    s.measure_ns = 60_000_000;
    s.loss = 0.01; // 1% per link traversal — brutal for a data center
    let r = Sim::run(s);
    assert!(r.packets_lost > 0);
    let completion_rate = r.completed as f64 / r.generated as f64;
    assert!(
        completion_rate > 0.90,
        "most requests complete despite loss (cloning helps): {completion_rate}"
    );
    // Filter slots were reclaimed by overwrites rather than wedging.
    assert!(r.switch.responses_filtered > 0);
}

#[test]
fn cloning_masks_request_loss_better_than_baseline() {
    let mut rates = Vec::new();
    for scheme in [Scheme::Baseline, Scheme::NETCLONE] {
        let mut s = Scenario::synthetic_default(scheme, exp25(), 0.0);
        s.offered_rps = s.capacity_rps() * 0.2;
        s.warmup_ns = 5_000_000;
        s.measure_ns = 60_000_000;
        s.loss = 0.02;
        let r = Sim::run(s);
        rates.push(r.completed as f64 / r.generated as f64);
    }
    assert!(
        rates[1] > rates[0],
        "two copies in flight must survive loss more often: baseline {:.3} vs netclone {:.3}",
        rates[0],
        rates[1]
    );
}

/// A 4-rack scenario under simultaneous adversity: a spine power cycle
/// AND a leaf drain, over lossy links. Used by the composition and
/// sharding tests below.
fn compound_failure_scenario() -> Scenario {
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 0.0);
    s.topology = Topology::uniform(4);
    s.offered_rps = s.capacity_rps() * 0.3;
    s.warmup_ns = 5_000_000;
    s.measure_ns = 60_000_000;
    s.switch_failure = Some(SwitchFailurePlan {
        fail_at_ns: 20_000_000,
        reactivate_at_ns: 25_000_000,
        bringup_ns: 5_000_000,
    });
    s.degradation.drain = Some(DrainPlan {
        rack: 3,
        drain_at_ns: 40_000_000,
        restore_at_ns: 50_000_000,
    });
    s
}

#[test]
fn switch_failure_and_drain_are_sharding_invariant() {
    // Fail-stop switch events broadcast to every shard; drain events prime
    // on the drained rack's owner alone. Either way, shards=1 and shards=4
    // must execute the identical event sequence, byte for byte.
    let serial = format!("{:?}", Sim::run_with_shards(compound_failure_scenario(), 1));
    let sharded = format!("{:?}", Sim::run_with_shards(compound_failure_scenario(), 4));
    assert_eq!(serial, sharded);
}

#[test]
fn drained_leaf_recovers_after_restore() {
    let mut s = compound_failure_scenario();
    s.switch_failure = None; // isolate the drain
    let r = Sim::run(s);
    assert!(r.completed > 0);
    assert!(
        r.packets_lost > 0,
        "traffic through the drained leaf must be dropped"
    );
    // The drained rack holds server 3 only; it serves before and after the
    // window, so it still completes a healthy share of requests.
    assert_eq!(r.per_server_served.len(), 6);
    assert!(
        r.per_server_served[3] > 0,
        "the drained rack's server must serve again after restore"
    );
}

#[test]
fn lossy_links_compose_with_failures() {
    // §3.6 composition: random loss + spine power cycle + leaf drain in one
    // run. Nothing wedges, and the run still completes most requests.
    let mut s = compound_failure_scenario();
    s.loss = 0.005;
    let r = Sim::run(s);
    assert!(r.packets_lost > 0);
    let completion_rate = r.completed as f64 / r.generated as f64;
    assert!(
        completion_rate > 0.5,
        "compound adversity must not collapse the run: {completion_rate}"
    );
}

#[test]
fn slowdown_is_gray_not_fail_stop() {
    // A slowed server keeps answering (no losses beyond zero), unlike the
    // fail-stop plan above — the two injections are distinct mechanisms.
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 0.0);
    s.offered_rps = s.capacity_rps() * 0.3;
    s.warmup_ns = 5_000_000;
    s.measure_ns = 60_000_000;
    s.degradation.slowdown = Some(SlowdownPlan {
        sid: 0,
        start_ns: 20_000_000,
        end_ns: 40_000_000,
        factor: 4.0,
    });
    let slow = Sim::run(s.clone());
    s.degradation.slowdown = None;
    let healthy = Sim::run(s);
    // Gray failure loses nothing: the only incompletes are the same
    // end-of-run stragglers a healthy open-loop run leaves in flight
    // (plus the queue the slow server is still draining).
    assert_eq!(slow.packets_lost, 0, "the server is slow, not dead");
    let slow_strays = slow.generated - slow.completed;
    let healthy_strays = healthy.generated - healthy.completed;
    assert!(
        slow_strays < healthy_strays + 200,
        "slowdown must not lose requests: {slow_strays} vs healthy {healthy_strays}"
    );
    assert!(
        slow.p99_us() > healthy.p99_us(),
        "the slowdown must show up in the tail: {} vs {}",
        slow.p99_us(),
        healthy.p99_us()
    );
}
