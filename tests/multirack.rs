//! §3.7 "Multi-rack deployment": NetClone logic only at the *client-side*
//! ToR, gated by the SWITCH_ID field, with plain L3 everywhere else.
//!
//! The behaviour tests drive the builder-constructed fabric
//! ([`build_fabric`] from a [`Topology`]); one parity test keeps the
//! original hand-wired three-switch harness and asserts the builder
//! produces the *identical* per-switch [`SwitchCounters`] for the same
//! packet trace.

use netclone::asic::{DataPlane, Emission};
use netclone::cluster::{build_fabric, Fabric, Hop, Scenario, Scheme, Topology};
use netclone::core::{NetCloneConfig, NetCloneSwitch, SwitchCounters, SwitchEngine};
use netclone::policies::PlainL3Switch;
use netclone::proto::{CloneStatus, Ipv4, NetCloneHdr, PacketMeta, ServerState};
use netclone::workloads::exp25;

const UPLINK: u16 = 50;
const CLIENT_PORT: u16 = 100;

/// Two racks: the client alone in rack 0, all servers in rack 1.
fn two_rack_scenario(n_servers: usize) -> Scenario {
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1e5);
    s.servers.truncate(n_servers);
    s.n_clients = 1;
    s.topology = Topology::uniform(2)
        .with_server_racks(vec![1; n_servers])
        .with_client_racks(vec![0]);
    s
}

/// Walks one packet through the fabric from `entry` until every copy
/// reaches a host port; returns the final `(switch, emission)` pairs.
/// Panics after 16 switch traversals — a forwarding loop.
fn drive(
    fabric: &mut Fabric,
    entry: usize,
    pkt: PacketMeta,
    ingress: u16,
) -> Vec<(usize, Emission)> {
    let mut delivered = Vec::new();
    let mut work = vec![(entry, pkt, ingress)];
    let mut hops = 0;
    while let Some((sw, pkt, ingress)) = work.pop() {
        hops += 1;
        assert!(hops <= 16, "forwarding loop");
        for e in fabric.engines[sw].process_collected(pkt, ingress, 0) {
            match fabric.hop(sw, e.port) {
                Hop::Switch(next) => work.push((next, e.pkt, 0)),
                Hop::Local(_) => delivered.push((sw, e)),
            }
        }
    }
    delivered
}

/// Drives one client request into its ToR; returns the server deliveries.
fn client_to_servers(fabric: &mut Fabric, pkt: PacketMeta) -> Vec<(usize, Emission)> {
    let entry = fabric.client_leaf(0);
    drive(fabric, entry, pkt, CLIENT_PORT)
}

/// Drives one response from server `sid` back toward the client.
fn server_to_client(fabric: &mut Fabric, pkt: PacketMeta, sid: u16) -> Vec<(usize, Emission)> {
    let entry = fabric.server_leaf(sid as usize);
    drive(fabric, entry, pkt, 10 + sid)
}

#[test]
fn only_the_client_tor_applies_netclone_logic() {
    let mut fabric = build_fabric(&two_rack_scenario(4));
    let req = PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 1), 84);
    let delivered = client_to_servers(&mut fabric, req);

    // Cloned at the client ToR: two copies reach two different servers,
    // both in rack 1.
    assert_eq!(delivered.len(), 2);
    assert_ne!(delivered[0].1.port, delivered[1].1.port);
    for (sw, _) in &delivered {
        assert_eq!(*sw, 1, "servers hang off rack 1's leaf");
    }
    let req_id = delivered[0].1.pkt.nc.req_id;
    assert_ne!(req_id, 0);
    assert_eq!(
        delivered[1].1.pkt.nc.req_id, req_id,
        "one ID for both copies"
    );
    // Stamped by ToR 1 (rack 0's switch_id); the server ToR must not have
    // re-processed them.
    for (_, d) in &delivered {
        assert_eq!(d.pkt.nc.switch_id, 1);
    }
    assert_eq!(
        fabric.engines[1].counters().requests,
        0,
        "gate must bypass NetClone"
    );
    assert_eq!(fabric.engines[1].counters().routed_plain, 2);
    assert_eq!(fabric.engines[0].counters().cloned, 1);
    // The spine forwarded both copies as plain traffic.
    let spine = fabric.spine().expect("two racks have a spine");
    assert_eq!(fabric.engines[spine].counters().routed_plain, 2);
}

#[test]
fn responses_are_filtered_at_the_client_tor_only() {
    let mut fabric = build_fabric(&two_rack_scenario(4));
    let req = PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(3, 1, 0, 2), 84);
    let delivered = client_to_servers(&mut fabric, req);
    assert_eq!(delivered.len(), 2);

    // Both servers respond (idle, echoing the stamped switch_id).
    let mut to_client = Vec::new();
    for (_, d) in &delivered {
        let sid = d.port - 10;
        let nc = NetCloneHdr::response_to(&d.pkt.nc, sid, ServerState(0));
        let resp = PacketMeta::netclone_response(Ipv4::server(sid), Ipv4::client(0), nc, 84);
        to_client.extend(server_to_client(&mut fabric, resp, sid));
    }
    assert_eq!(
        to_client.len(),
        1,
        "exactly one response survives the filter"
    );
    assert_eq!(to_client[0].0, 0, "delivered at the client's own ToR");
    assert_eq!(to_client[0].1.port, CLIENT_PORT);
    assert_eq!(fabric.engines[0].counters().responses_filtered, 1);
    assert_eq!(
        fabric.engines[1].counters().responses,
        0,
        "server ToR only routes"
    );
}

#[test]
fn busy_remote_servers_suppress_cloning_across_racks() {
    let mut fabric = build_fabric(&two_rack_scenario(2));
    // Prime the client ToR with a busy report from server 1.
    let req = PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 3), 84);
    let delivered = client_to_servers(&mut fabric, req);
    let sid = delivered[0].1.port - 10;
    let nc = NetCloneHdr::response_to(&delivered[0].1.pkt.nc, 1, ServerState(5));
    let resp = PacketMeta::netclone_response(Ipv4::server(1), Ipv4::client(0), nc, 84);
    server_to_client(&mut fabric, resp, sid);

    let req = PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 4), 84);
    let delivered = client_to_servers(&mut fabric, req);
    assert_eq!(
        delivered.len(),
        1,
        "tracked-busy remote server must block cloning"
    );
    assert_eq!(delivered[0].1.pkt.nc.clo, CloneStatus::NotCloned);
}

// ---------------------------------------------------------------------
// Parity: the original hand-wired harness vs the topology builder.
// ---------------------------------------------------------------------

/// The original hand-wired two-tier harness this test suite used before
/// the `Topology` builder existed — kept as the parity reference.
struct TwoTier {
    client_tor: NetCloneSwitch,
    agg: PlainL3Switch,
    server_tor: NetCloneSwitch,
}

impl TwoTier {
    fn new(n_servers: u16) -> Self {
        // Client ToR (switch_id 1): clients attach here; all servers are
        // reachable via the uplink, so AddrT maps every SID to the uplink
        // port.
        let c_cfg = NetCloneConfig {
            switch_id: 1,
            ..NetCloneConfig::default()
        };
        let mut client_tor = NetCloneSwitch::new(c_cfg);
        for sid in 0..n_servers {
            client_tor
                .add_server(sid, Ipv4::server(sid), UPLINK)
                .unwrap();
        }
        client_tor.add_client(Ipv4::client(0), CLIENT_PORT).unwrap();

        // Aggregation: plain L3 both ways (port 1 → client ToR, 2 → server
        // ToR).
        let mut agg = PlainL3Switch::new(netclone::asic::AsicSpec::tofino());
        for sid in 0..n_servers {
            agg.add_route(Ipv4::server(sid), 2);
        }
        agg.add_route(Ipv4::client(0), 1);

        // Server ToR (switch_id 2): servers attach here; the gate must
        // bounce foreign-stamped packets to plain routing.
        let s_cfg = NetCloneConfig {
            switch_id: 2,
            ..NetCloneConfig::default()
        };
        let mut server_tor = NetCloneSwitch::new(s_cfg);
        for sid in 0..n_servers {
            server_tor.add_route(Ipv4::server(sid), 10 + sid).unwrap();
        }
        server_tor.add_route(Ipv4::client(0), UPLINK).unwrap();

        TwoTier {
            client_tor,
            agg,
            server_tor,
        }
    }

    /// Drives one packet from the client all the way to server ports.
    fn client_to_servers(&mut self, pkt: PacketMeta) -> Vec<Emission> {
        let mut out = Vec::new();
        for e1 in self.client_tor.process_collected(pkt, CLIENT_PORT, 0) {
            for e2 in self.agg.process_collected(e1.pkt, 1, 0) {
                assert_eq!(e2.port, 2, "agg must push toward the server rack");
                out.extend(self.server_tor.process_collected(e2.pkt, UPLINK, 0));
            }
        }
        out
    }

    /// Drives one response from a server back to the client port.
    fn server_to_client(&mut self, pkt: PacketMeta, sid: u16) {
        for e1 in self.server_tor.process_collected(pkt, 10 + sid, 0) {
            assert_eq!(e1.port, UPLINK);
            for e2 in self.agg.process_collected(e1.pkt, 2, 0) {
                assert_eq!(e2.port, 1);
                self.client_tor.process_collected(e2.pkt, UPLINK, 0);
            }
        }
    }
}

/// The same deterministic trace through both harnesses must leave every
/// switch with byte-identical counters: client ToR ↔ leaf 0, server ToR ↔
/// leaf 1, aggregation ↔ spine.
#[test]
fn hand_wired_two_tier_matches_the_builder_fabric() {
    const N_SERVERS: u16 = 4;
    let mut hand = TwoTier::new(N_SERVERS);
    let mut fabric = build_fabric(&two_rack_scenario(N_SERVERS as usize));

    // A trace exercising cloning, busy suppression, uncloneable marks,
    // and response filtering. Each step: one request, then a response
    // from every server copy that received it.
    for i in 0u32..12 {
        let grp = (i as u16) % fabric.engines[0].num_groups();
        let idx = (i % 2) as u8;
        let mut hdr = NetCloneHdr::request(grp, idx, 0, i);
        if i == 5 {
            // A write: the client marks it non-cloneable (§5.5).
            hdr.state = ServerState(1);
        }
        let req = PacketMeta::netclone_request(Ipv4::client(0), hdr, 84);
        let reply_state = ServerState(if i % 3 == 2 { 2 } else { 0 });

        let hand_delivered = hand.client_to_servers(req);
        let fab_delivered = client_to_servers(&mut fabric, req);
        assert_eq!(hand_delivered.len(), fab_delivered.len(), "step {i}");

        for d in &hand_delivered {
            let sid = d.port - 10;
            let nc = NetCloneHdr::response_to(&d.pkt.nc, sid, reply_state);
            let resp = PacketMeta::netclone_response(Ipv4::server(sid), Ipv4::client(0), nc, 84);
            hand.server_to_client(resp, sid);
        }
        for (_, d) in &fab_delivered {
            let sid = d.port - 10;
            let nc = NetCloneHdr::response_to(&d.pkt.nc, sid, reply_state);
            let resp = PacketMeta::netclone_response(Ipv4::server(sid), Ipv4::client(0), nc, 84);
            server_to_client(&mut fabric, resp, sid);
        }
    }

    let spine = fabric.spine().expect("two racks have a spine");
    let hand_counters: [SwitchCounters; 3] = [
        *hand.client_tor.counters(),
        *hand.server_tor.counters(),
        SwitchEngine::counters(&hand.agg),
    ];
    let fab_counters: [SwitchCounters; 3] = [
        fabric.engines[0].counters(),
        fabric.engines[1].counters(),
        fabric.engines[spine].counters(),
    ];
    assert_eq!(hand_counters, fab_counters);
    // The trace actually exercised the interesting paths.
    assert!(hand_counters[0].cloned > 0);
    assert!(hand_counters[0].responses_filtered > 0);
    assert!(hand_counters[0].clone_skipped_busy > 0);
    assert_eq!(hand_counters[0].clone_skipped_uncloneable, 1);
    assert!(hand.client_tor.state_tables_consistent());
}
