//! §3.7 "Multi-rack deployment": two NetClone ToR switches joined by a
//! plain aggregation switch. Only the *client-side* ToR may apply NetClone
//! logic; the SWITCH_ID field gates everything else. This test wires the
//! three data planes together by hand and pushes packets through the full
//! path.

use netclone::asic::{DataPlane, Emission};
use netclone::core::{NetCloneConfig, NetCloneSwitch};
use netclone::policies::PlainL3Switch;
use netclone::proto::{CloneStatus, Ipv4, NetCloneHdr, PacketMeta, ServerState};

const UPLINK: u16 = 50;
const CLIENT_PORT: u16 = 100;

struct TwoTier {
    client_tor: NetCloneSwitch,
    agg: PlainL3Switch,
    server_tor: NetCloneSwitch,
}

impl TwoTier {
    fn new(n_servers: u16) -> Self {
        // Client ToR (switch_id 1): clients attach here; all servers are
        // reachable via the uplink, so AddrT maps every SID to the uplink
        // port.
        let c_cfg = NetCloneConfig {
            switch_id: 1,
            ..NetCloneConfig::default()
        };
        let mut client_tor = NetCloneSwitch::new(c_cfg);
        for sid in 0..n_servers {
            client_tor
                .add_server(sid, Ipv4::server(sid), UPLINK)
                .unwrap();
        }
        client_tor.add_client(Ipv4::client(0), CLIENT_PORT).unwrap();

        // Aggregation: plain L3 both ways (port 1 → client ToR, 2 → server
        // ToR).
        let mut agg = PlainL3Switch::new(netclone::asic::AsicSpec::tofino());
        for sid in 0..n_servers {
            agg.add_route(Ipv4::server(sid), 2);
        }
        agg.add_route(Ipv4::client(0), 1);

        // Server ToR (switch_id 2): servers attach here; the gate must
        // bounce foreign-stamped packets to plain routing.
        let s_cfg = NetCloneConfig {
            switch_id: 2,
            ..NetCloneConfig::default()
        };
        let mut server_tor = NetCloneSwitch::new(s_cfg);
        for sid in 0..n_servers {
            server_tor.add_route(Ipv4::server(sid), 10 + sid).unwrap();
        }
        server_tor.add_route(Ipv4::client(0), UPLINK).unwrap();

        TwoTier {
            client_tor,
            agg,
            server_tor,
        }
    }

    /// Drives one packet from the client all the way to server ports.
    fn client_to_servers(&mut self, pkt: PacketMeta) -> Vec<Emission> {
        let mut out = Vec::new();
        for e1 in self.client_tor.process(pkt, CLIENT_PORT, 0) {
            for e2 in self.agg.process(e1.pkt, 1, 0) {
                assert_eq!(e2.port, 2, "agg must push toward the server rack");
                out.extend(self.server_tor.process(e2.pkt, UPLINK, 0));
            }
        }
        out
    }

    /// Drives one response from a server back to the client port.
    fn server_to_client(&mut self, pkt: PacketMeta, sid: u16) -> Vec<Emission> {
        let mut out = Vec::new();
        for e1 in self.server_tor.process(pkt, 10 + sid, 0) {
            assert_eq!(e1.port, UPLINK);
            for e2 in self.agg.process(e1.pkt, 2, 0) {
                assert_eq!(e2.port, 1);
                out.extend(self.client_tor.process(e2.pkt, UPLINK, 0));
            }
        }
        out
    }
}

#[test]
fn only_the_client_tor_applies_netclone_logic() {
    let mut net = TwoTier::new(4);
    let req = PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 1), 84);
    let delivered = net.client_to_servers(req);

    // Cloned at the client ToR: two copies reach two different servers.
    assert_eq!(delivered.len(), 2);
    assert_ne!(delivered[0].port, delivered[1].port);
    let req_id = delivered[0].pkt.nc.req_id;
    assert_ne!(req_id, 0);
    assert_eq!(delivered[1].pkt.nc.req_id, req_id, "one ID for both copies");
    // Stamped by ToR 1; the server ToR must not have re-processed them.
    for d in &delivered {
        assert_eq!(d.pkt.nc.switch_id, 1);
    }
    assert_eq!(
        net.server_tor.counters().requests,
        0,
        "gate must bypass NetClone"
    );
    assert_eq!(net.server_tor.counters().routed_plain, 2);
    assert_eq!(net.client_tor.counters().cloned, 1);
}

#[test]
fn responses_are_filtered_at_the_client_tor_only() {
    let mut net = TwoTier::new(4);
    let req = PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(3, 1, 0, 2), 84);
    let delivered = net.client_to_servers(req);
    assert_eq!(delivered.len(), 2);

    // Both servers respond (idle, echoing the stamped switch_id).
    let mut to_client = Vec::new();
    for d in &delivered {
        let sid = d.port - 10;
        let nc = NetCloneHdr::response_to(&d.pkt.nc, sid, ServerState(0));
        let resp = PacketMeta::netclone_response(Ipv4::server(sid), Ipv4::client(0), nc, 84);
        to_client.extend(net.server_to_client(resp, sid));
    }
    assert_eq!(
        to_client.len(),
        1,
        "exactly one response survives the filter"
    );
    assert_eq!(to_client[0].port, CLIENT_PORT);
    assert_eq!(net.client_tor.counters().responses_filtered, 1);
    assert_eq!(
        net.server_tor.counters().responses,
        0,
        "server ToR only routes"
    );
    // And the client ToR learned the states from both responses.
    assert!(net.client_tor.state_tables_consistent());
}

#[test]
fn busy_remote_servers_suppress_cloning_across_racks() {
    let mut net = TwoTier::new(2);
    // Prime the client ToR with a busy report from server 1.
    let req = PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 3), 84);
    let delivered = net.client_to_servers(req);
    let sid = delivered[0].port - 10;
    let nc = NetCloneHdr::response_to(&delivered[0].pkt.nc, 1, ServerState(5));
    let resp = PacketMeta::netclone_response(Ipv4::server(1), Ipv4::client(0), nc, 84);
    net.server_to_client(resp, sid);

    let req = PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 4), 84);
    let delivered = net.client_to_servers(req);
    assert_eq!(
        delivered.len(),
        1,
        "tracked-busy remote server must block cloning"
    );
    assert_eq!(delivered[0].pkt.nc.clo, CloneStatus::NotCloned);
}
