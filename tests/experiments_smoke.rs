//! Smoke runs of the experiment harness itself: every figure/table driver
//! executes at `Scale::Smoke` and produces sane, renderable output.

use netclone::cluster::experiments::{ablations, fig13, fig16, resources, table1, Scale};
use netclone::cluster::harness::RunCtx;

fn smoke() -> RunCtx {
    RunCtx::new(Scale::Smoke)
}

#[test]
fn table1_and_resources_render() {
    let t1 = table1::report().to_markdown();
    assert!(t1.contains("NetClone") && t1.contains("Cloning point"));
    let res = resources::report().to_markdown();
    assert!(res.contains("18.04%") && res.contains("stages"));
}

#[test]
fn fig13_smoke_has_declining_empty_queue_signal() {
    let f = fig13::run(&smoke());
    assert!(f.empty_queue.len() >= 3);
    let first = f.empty_queue.first().unwrap().1;
    let last = f.empty_queue.last().unwrap().1;
    assert!(
        first > last,
        "empty-queue fraction must decline with load: {first} -> {last}"
    );
    assert!(f.baseline_p99_us.count() >= 3);
    assert!(f.netclone_p99_us.mean() > 0.0);
    assert!(
        f.netclone_p99_us.mean() < f.baseline_p99_us.mean() * 1.5,
        "NetClone should be competitive at 90% load"
    );
    let rendered = f.into_report().to_markdown();
    assert!(rendered.contains("empty"));
}

#[test]
fn fig16_smoke_timeline_has_the_failure_hole() {
    let f = fig16::run(&smoke());
    assert!(f.mean_mrps_between(1.0, 4.5) > 0.3);
    assert!(f.mean_mrps_between(6.0, 9.0) < 0.05);
    assert!(f.mean_mrps_between(12.0, 24.0) > 0.3);
    assert!(f.into_report().to_markdown().contains("fig16"));
}

#[test]
fn filter_table_ablation_shows_collision_relief() {
    let a = ablations::filter_tables(&smoke());
    assert_eq!(a.rows.len(), 3);
    // More tables → no more leaked redundancy than fewer tables.
    let leak1 = a.rows[0].1;
    let leak4 = a.rows[2].1;
    assert!(
        leak4 <= leak1 + 0.5,
        "more filter tables must not leak more: 1 table {leak1}, 4 tables {leak4}"
    );
}

#[test]
fn group_ordering_ablation_shows_the_skew() {
    let g = ablations::group_ordering(&smoke());
    assert!(
        g.unordered_imbalance > g.ordered_imbalance * 1.15,
        "naive C(n,2) groups must skew load: ordered {:.2} vs unordered {:.2}",
        g.ordered_imbalance,
        g.unordered_imbalance
    );
}
