//! The parallel `Runner` must be invisible in the results: running an
//! experiment on one thread or on many must produce byte-identical
//! `Report` artifacts (every `Sim::run` owns its seeded RNG, and the
//! harness reassembles cells in submission order).

use netclone::cluster::experiments::Scale;
use netclone::cluster::harness::{find, RunCtx};

fn reports_match(id: &str) {
    let exp = find(id).expect("registry id");
    let serial = exp.run(&RunCtx::new(Scale::Smoke));
    let parallel = exp.run(&RunCtx::new(Scale::Smoke).with_jobs(8));
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "{id}: parallel JSON diverged from serial"
    );
    assert_eq!(
        serial.to_csv(),
        parallel.to_csv(),
        "{id}: parallel CSV diverged from serial"
    );
    assert_eq!(serial.to_markdown(), parallel.to_markdown());
}

#[test]
fn fig15_parallel_equals_serial() {
    // A sweep figure: 3 schemes × smoke sweep points through run_sweeps.
    reports_match("fig15");
}

#[test]
fn fig13_parallel_equals_serial() {
    // A two-section report with repeat cells (distinct seeds) via ctx.map.
    reports_match("fig13");
}

#[test]
fn ablations_parallel_equals_serial() {
    // Three independent sub-studies, including the custom-group scenario.
    reports_match("ablations");
}
