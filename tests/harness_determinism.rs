//! The parallel `Runner` must be invisible in the results: running an
//! experiment on one thread or on many must produce byte-identical
//! `Report` artifacts (every `Sim::run` owns its seeded RNG, and the
//! harness reassembles cells in submission order).

use netclone::cluster::experiments::Scale;
use netclone::cluster::harness::{find, RunCtx};
use netclone::cluster::{Scenario, Scheme, Sim, Topology};
use netclone::core::SwitchCounters;
use netclone::workloads::exp25;

fn reports_match(id: &str) {
    let exp = find(id).expect("registry id");
    let serial = exp.run(&RunCtx::new(Scale::Smoke));
    let parallel = exp.run(&RunCtx::new(Scale::Smoke).with_jobs(8));
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "{id}: parallel JSON diverged from serial"
    );
    assert_eq!(
        serial.to_csv(),
        parallel.to_csv(),
        "{id}: parallel CSV diverged from serial"
    );
    assert_eq!(serial.to_markdown(), parallel.to_markdown());
}

#[test]
fn fig15_parallel_equals_serial() {
    // A sweep figure: 3 schemes × smoke sweep points through run_sweeps.
    reports_match("fig15");
}

#[test]
fn fig13_parallel_equals_serial() {
    // A two-section report with repeat cells (distinct seeds) via ctx.map.
    reports_match("fig13");
}

#[test]
fn ablations_parallel_equals_serial() {
    // Three independent sub-studies, including the custom-group scenario.
    reports_match("ablations");
}

#[test]
fn multirack_parallel_equals_serial() {
    // Multi-rack cells run per-switch engine fabrics; the fan-out must
    // stay invisible exactly like the single-rack experiments.
    reports_match("multirack");
}

/// `Topology::single_rack()` (the default) must reproduce the
/// pre-topology simulator bit for bit. These numbers were captured from
/// the seed-state single-switch event loop before the fabric refactor;
/// any drift here means the single-rack fast path changed behaviour.
#[test]
fn single_rack_topology_reproduces_seed_state_run() {
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 0.0);
    s.warmup_ns = 4_000_000;
    s.measure_ns = 20_000_000;
    s.offered_rps = s.capacity_rps() * 0.6;
    s.seed = 7;
    assert_eq!(s.topology, Topology::single_rack());

    let r = Sim::run(s);
    assert_eq!(r.generated, 37568);
    assert_eq!(r.completed, 37568);
    assert_eq!(r.client_redundant, 0);
    assert_eq!(r.client_clone_wins, 8761);
    assert_eq!(
        r.switch,
        SwitchCounters {
            requests: 37570,
            cloned: 23744,
            clone_skipped_busy: 13826,
            clone_skipped_uncloneable: 0,
            clone_forced_multipacket: 0,
            recirculated: 23744,
            responses: 55690,
            responses_filtered: 18072,
            filter_overwrites: 797,
            routed_plain: 0,
            dropped_unroutable: 0,
            jsq_fallbacks: 0,
        }
    );
    assert_eq!(
        r.per_switch,
        vec![r.switch],
        "one switch, equal to the merge"
    );
    assert_eq!(r.server_clone_drops, 5712);
    assert_eq!(r.server_idle_reports, 42664);
    assert_eq!(r.server_responses, 55689);
    assert_eq!(r.packets_lost, 0);
    assert_eq!(
        r.per_server_served,
        vec![9369, 9159, 9450, 9189, 9238, 9284]
    );
    assert_eq!(r.latency.p50_p99_p999(), (23039, 124927, 638975));
}
