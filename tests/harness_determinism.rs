//! The parallel `Runner` must be invisible in the results: running an
//! experiment on one thread or on many must produce byte-identical
//! `Report` artifacts (every `Sim::run` owns its seeded RNG, and the
//! harness reassembles cells in submission order).

use netclone::cluster::experiments::Scale;
use netclone::cluster::harness::{find, RunCtx};
use netclone::cluster::{Scenario, Scheme, Sim, SwitchFailurePlan, Topology};
use netclone::core::SwitchCounters;
use netclone::workloads::exp25;

fn reports_match(id: &str) {
    let exp = find(id).expect("registry id");
    let serial = exp.run(&RunCtx::new(Scale::Smoke));
    let parallel = exp.run(&RunCtx::new(Scale::Smoke).with_jobs(8));
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "{id}: parallel JSON diverged from serial"
    );
    assert_eq!(
        serial.to_csv(),
        parallel.to_csv(),
        "{id}: parallel CSV diverged from serial"
    );
    assert_eq!(serial.to_markdown(), parallel.to_markdown());
}

#[test]
fn fig15_parallel_equals_serial() {
    // A sweep figure: 3 schemes × smoke sweep points through run_sweeps.
    reports_match("fig15");
}

#[test]
fn fig13_parallel_equals_serial() {
    // A two-section report with repeat cells (distinct seeds) via ctx.map.
    reports_match("fig13");
}

#[test]
fn ablations_parallel_equals_serial() {
    // Three independent sub-studies, including the custom-group scenario.
    reports_match("ablations");
}

#[test]
fn multirack_parallel_equals_serial() {
    // Multi-rack cells run per-switch engine fabrics; the fan-out must
    // stay invisible exactly like the single-rack experiments.
    reports_match("multirack");
}

/// `Topology::single_rack()` (the default) must reproduce the
/// pre-topology simulator bit for bit. These numbers were captured from
/// the seed-state single-switch event loop before the fabric refactor;
/// any drift here means the single-rack fast path changed behaviour.
#[test]
fn single_rack_topology_reproduces_seed_state_run() {
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 0.0);
    s.warmup_ns = 4_000_000;
    s.measure_ns = 20_000_000;
    s.offered_rps = s.capacity_rps() * 0.6;
    s.seed = 7;
    assert_eq!(s.topology, Topology::single_rack());

    let r = Sim::run(s);
    assert_eq!(r.generated, 37568);
    assert_eq!(r.completed, 37568);
    assert_eq!(r.client_redundant, 0);
    assert_eq!(r.client_clone_wins, 8761);
    assert_eq!(
        r.switch,
        SwitchCounters {
            requests: 37570,
            cloned: 23744,
            clone_skipped_busy: 13826,
            clone_skipped_uncloneable: 0,
            clone_forced_multipacket: 0,
            recirculated: 23744,
            responses: 55690,
            responses_filtered: 18072,
            filter_overwrites: 797,
            routed_plain: 0,
            dropped_unroutable: 0,
            jsq_fallbacks: 0,
        }
    );
    assert_eq!(
        r.per_switch,
        vec![r.switch],
        "one switch, equal to the merge"
    );
    assert_eq!(r.server_clone_drops, 5712);
    assert_eq!(r.server_idle_reports, 42664);
    assert_eq!(r.server_responses, 55689);
    assert_eq!(r.packets_lost, 0);
    assert_eq!(
        r.per_server_served,
        vec![9369, 9159, 9450, 9189, 9238, 9284]
    );
    assert_eq!(r.latency.p50_p99_p999(), (23039, 124927, 638975));
}

/// A 4-rack seed-7 scenario for the sharding cases: enough clients that
/// every rack generates traffic and the spine carries real load.
fn four_rack_scenario() -> Scenario {
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 0.0);
    s.warmup_ns = 2_000_000;
    s.measure_ns = 10_000_000;
    s.n_clients = 4;
    s.offered_rps = s.capacity_rps() * 0.6;
    s.seed = 7;
    s.topology = Topology::uniform(4);
    s
}

/// Every field of a [`netclone::cluster::RunResult`], byte for byte —
/// the histogram, the per-switch counter vector, the throughput series,
/// the event count, everything `Debug` reaches.
fn result_bytes(r: &netclone::cluster::RunResult) -> String {
    format!("{r:?}")
}

/// The tentpole guarantee: sharding is an execution strategy, not a
/// model change. For any shard count the merged `RunResult` — including
/// `per_switch` counters and the total event count — must be
/// byte-identical to the serial run.
#[test]
fn sharded_run_equals_serial_byte_for_byte() {
    let serial = result_bytes(&Sim::run(four_rack_scenario()));
    for shards in [2, 3, 4, 16] {
        let sharded = result_bytes(&Sim::run_with_shards(four_rack_scenario(), shards));
        assert_eq!(serial, sharded, "shards={shards} diverged from serial");
    }
}

/// Sharding must also be invisible under failure injections: the
/// fabric-wide control events (switch failure, reactivation, server
/// removal) are broadcast to every shard under one shared key.
#[test]
fn sharded_run_equals_serial_under_failures() {
    let mut s = four_rack_scenario();
    s.switch_failure = Some(SwitchFailurePlan {
        fail_at_ns: 4_000_000,
        reactivate_at_ns: 5_000_000,
        bringup_ns: 1_000_000,
    });
    s.server_failure = Some(netclone::cluster::scenario::ServerFailurePlan {
        sid: 1,
        fail_at_ns: 3_000_000,
        removed_at_ns: 3_500_000,
    });
    let serial = result_bytes(&Sim::run(s.clone()));
    let sharded = result_bytes(&Sim::run_with_shards(s, 4));
    assert_eq!(serial, sharded);
}

/// The coordinator scheme concentrates all control traffic on rack 0's
/// shard while the clients answer from every other shard — the most
/// cross-shard-chatty scheme in the registry.
#[test]
fn sharded_run_equals_serial_with_coordinator() {
    let mut s = four_rack_scenario();
    s.scheme = Scheme::Laedge;
    let serial = result_bytes(&Sim::run(s.clone()));
    let sharded = result_bytes(&Sim::run_with_shards(s, 4));
    assert_eq!(serial, sharded);
}

/// Experiment-level parallelism (`--jobs`) and run-level sharding
/// (`--shards`) compose: a report produced with both turned up is
/// byte-identical to the serial-serial one.
#[test]
fn multirack_report_with_jobs_and_shards_equals_serial() {
    let exp = find("multirack").expect("registry id");
    let serial = exp.run(&RunCtx::new(Scale::Smoke));
    let both = exp.run(&RunCtx::new(Scale::Smoke).with_jobs(8).with_shards(0));
    assert_eq!(
        serial.to_json(),
        both.to_json(),
        "jobs×shards diverged from serial"
    );
}
