//! Cross-crate smoke tests: every scheme runs end-to-end in the simulated
//! testbed and satisfies conservation invariants.

use netclone::cluster::{Scenario, Scheme, Sim};
use netclone::workloads::exp25;

fn smoke(scheme: Scheme) -> netclone::cluster::RunResult {
    let mut s = Scenario::synthetic_default(scheme, exp25(), 0.0);
    s.warmup_ns = 5_000_000;
    s.measure_ns = 25_000_000;
    s.offered_rps = s.capacity_rps() * 0.45;
    Sim::run(s)
}

#[test]
fn every_scheme_completes_requests() {
    for scheme in [
        Scheme::Baseline,
        Scheme::CClone,
        Scheme::Laedge,
        Scheme::NETCLONE,
        Scheme::NETCLONE_RS,
        Scheme::NETCLONE_NOFILTER,
        Scheme::RackSchedOnly,
    ] {
        let r = smoke(scheme);
        assert!(
            r.completed > 1_000,
            "{}: only {} completions",
            scheme.label(),
            r.completed
        );
        assert!(
            r.latency.count() >= r.completed,
            "{}: histogram lost samples",
            scheme.label()
        );
        // No scheme invents requests.
        assert!(
            r.completed <= r.generated + 1_000,
            "{}: more completions than generations",
            scheme.label()
        );
        let (p50, p99, p999) = r.percentiles_us();
        // Network floor ≈ 7 μs + median service; NetClone's min-of-two
        // pulls the service median to ≈ 12.5 μs.
        assert!(
            p50 >= 15.0,
            "{}: p50 {} below service floor",
            scheme.label(),
            p50
        );
        assert!(
            p50 <= p99 && p99 <= p999,
            "{}: percentile order",
            scheme.label()
        );
    }
}

#[test]
fn netclone_conservation_invariants() {
    let r = smoke(Scheme::NETCLONE);
    // Every fresh request is cloned or not; the counters must partition.
    assert_eq!(
        r.switch.requests,
        r.switch.cloned + r.switch.clone_skipped_busy + r.switch.clone_skipped_uncloneable,
        "clone decision counters must partition requests"
    );
    // Each clone recirculates exactly once.
    assert_eq!(r.switch.cloned, r.switch.recirculated);
    // Filtered responses never exceed cloned requests.
    assert!(r.switch.responses_filtered <= r.switch.cloned);
    // With filtering on, clients see (almost) no redundancy — collisions
    // can leak a handful when two live requests share (IDX, slot).
    assert!(
        r.client_redundant <= r.completed / 200,
        "redundancy leak: {} of {}",
        r.client_redundant,
        r.completed
    );
    // Responses at the switch = server responses that reached it.
    assert!(r.switch.responses <= r.server_responses + 1_000);
}

#[test]
fn racksched_only_never_clones() {
    let r = smoke(Scheme::RackSchedOnly);
    assert_eq!(r.switch.cloned, 0);
    assert_eq!(r.switch.responses_filtered, 0);
    assert_eq!(r.client_redundant, 0);
}

#[test]
fn cclone_doubles_offered_packets() {
    let r = smoke(Scheme::CClone);
    // The client sends two copies of everything; servers serve ~2× the
    // completions (minus drain edges).
    assert!(
        r.server_responses as f64 > r.completed as f64 * 1.8,
        "C-Clone must double server work: {} responses vs {} completions",
        r.server_responses,
        r.completed
    );
    assert!(r.client_redundant as f64 > r.completed as f64 * 0.8);
}

#[test]
fn kv_workload_runs_all_schemes() {
    use netclone::cluster::Workload;
    for scheme in [Scheme::Baseline, Scheme::NETCLONE] {
        let mut s = Scenario::kv_default(scheme, Workload::redis(0.99), 0.0);
        s.warmup_ns = 5_000_000;
        s.measure_ns = 40_000_000;
        s.offered_rps = s.capacity_rps() * 0.4;
        let r = Sim::run(s);
        assert!(r.completed > 500, "{}: {}", scheme.label(), r.completed);
        // SCANs are ~2 ms: the p99.9 must reflect them.
        assert!(r.latency.quantile(0.999) > 1_000_000, "{}", scheme.label());
    }
}
