//! The chaos suite as a test asset: seed-pinned state per fault kind,
//! shard-count byte-equality for every chaos scenario, conservation
//! under recovery, and the headline policy ordering under a rolling
//! drain with retries.
//!
//! The pins freeze the *exact* simulator state (request counts, retry
//! counters, tail percentiles) of one representative cell per chaos
//! kind. Any change to RNG draw order, control-event priming, the retry
//! path, or the service pipeline shows up here first — by design. If a
//! change is intentional, re-record the constants and say so in the
//! commit.

use netclone::cluster::experiments::chaos;
use netclone::cluster::experiments::Scale;
use netclone::cluster::{RunCtx, Scenario, Scheme, Sim};

/// One representative cell: the kind's smoke-scale scenario at half its
/// own capacity, under the given scheme.
fn cell(kind: &str, scheme: Scheme) -> Scenario {
    let ctx = RunCtx::new(Scale::Smoke);
    let mut s = chaos::scenario(kind, scheme, &ctx);
    s.offered_rps = s.capacity_rps() * 0.5;
    s
}

/// Expected NetClone state of one kind at seed 42, half capacity, smoke
/// scale — recorded from the run that introduced the suite.
struct Pin {
    kind: &'static str,
    generated: u64,
    completed: u64,
    retried: u64,
    retry_wins: u64,
    lost: u64,
    budget_exhausted: u64,
    p50: f64,
    p99: f64,
    p999: f64,
}

/// Note the retry-storm row: its measured-window `retried` is zero
/// because the deliberately tiny budget (64/client) is spent during
/// warm-up — every expiry inside the window is an eviction, which is
/// exactly the `budget_exhausted` path the kind exists to pin.
const PINS: [Pin; 4] = [
    Pin {
        kind: "rolling-drain",
        generated: 31_587,
        completed: 31_597,
        retried: 1_163,
        retry_wins: 1_005,
        lost: 0,
        budget_exhausted: 0,
        p50: 25.087,
        p99: 1_490.943,
        p999: 3_506.175,
    },
    Pin {
        kind: "correlated-gray",
        generated: 31_587,
        completed: 30_408,
        retried: 8_411,
        retry_wins: 6_807,
        lost: 0,
        budget_exhausted: 0,
        p50: 43.007,
        p99: 4_521.983,
        p999: 5_636.095,
    },
    Pin {
        kind: "linkflap",
        generated: 31_587,
        completed: 31_418,
        retried: 1_310,
        retry_wins: 1_158,
        lost: 0,
        budget_exhausted: 0,
        p50: 26.623,
        p99: 1_507.327,
        p999: 3_473.407,
    },
    Pin {
        kind: "retry-storm",
        generated: 31_587,
        completed: 29_886,
        retried: 0,
        retry_wins: 0,
        lost: 1_729,
        budget_exhausted: 1_729,
        p50: 20.479,
        p99: 105.471,
        p999: 303.103,
    },
];

#[test]
fn chaos_cells_reproduce_the_pinned_seed_state() {
    for p in PINS {
        let kind = p.kind;
        let r = Sim::run(cell(kind, Scheme::NETCLONE));
        let (r50, r99, r999) = r.percentiles_us();
        assert_eq!(r.generated, p.generated, "{kind}: generated drifted");
        assert_eq!(r.completed, p.completed, "{kind}: completed drifted");
        assert_eq!(r.client_retried, p.retried, "{kind}: retried drifted");
        assert_eq!(
            r.client_retry_wins, p.retry_wins,
            "{kind}: retry wins drifted"
        );
        assert_eq!(r.client_lost, p.lost, "{kind}: lost drifted");
        assert_eq!(
            r.client_budget_exhausted, p.budget_exhausted,
            "{kind}: budget evictions drifted"
        );
        assert_eq!(
            (r50, r99, r999),
            (p.p50, p.p99, p.p999),
            "{kind}: tail drifted"
        );
        // Recovery never leaks or double-counts a request.
        assert_eq!(
            r.lifetime.generated,
            r.lifetime.completed + r.lifetime.lost + r.client_outstanding,
            "{kind}: conservation violated"
        );
    }
}

#[test]
fn every_chaos_scenario_is_sharding_invariant() {
    // The acceptance bar of the suite: for each chaos kind — fault
    // timelines priming on owner shards, reboots broadcast to every
    // shard, retry ticks per client — shards=1 and shards=4 yield
    // byte-identical results.
    for kind in chaos::KINDS {
        let serial = format!(
            "{:?}",
            Sim::run_with_shards(cell(kind, Scheme::NETCLONE), 1)
        );
        let sharded = format!(
            "{:?}",
            Sim::run_with_shards(cell(kind, Scheme::NETCLONE), 4)
        );
        assert_eq!(serial, sharded, "{kind}: shards=1 vs shards=4 diverged");
    }
}

#[test]
fn netclone_beats_plain_duplication_under_rolling_drain_with_retries() {
    // The shootout's headline at the cell level: while a maintenance
    // wave rolls through two racks, the idle-gated clone plus a retry
    // re-roll routes around the holes; C-Clone's unconditional
    // duplication doubles the load on the surviving racks and its
    // retries double it again. Measured at the sweep's peak fraction
    // (0.7), where the asymmetry bites hardest.
    let at_peak = |scheme| {
        let mut s = cell("rolling-drain", scheme);
        s.offered_rps = s.capacity_rps() * 0.7;
        Sim::run(s)
    };
    let nc = at_peak(Scheme::NETCLONE);
    let dup = at_peak(Scheme::CClone);
    assert!(
        nc.p99_us() < dup.p99_us(),
        "rolling-drain p99: NetClone {} >= C-Clone {}",
        nc.p99_us(),
        dup.p99_us()
    );
}

#[test]
fn faults_actually_hurt_and_recovery_actually_recovers() {
    // Guard against the timeline silently becoming a no-op: each fault
    // kind must be measurably worse at the tail than its healthy twin,
    // and the retry path must win back real completions.
    for kind in ["rolling-drain", "correlated-gray", "linkflap"] {
        let healthy = {
            let mut s = cell(kind, Scheme::NETCLONE);
            s.faults = Default::default();
            Sim::run(s)
        };
        let faulted = Sim::run(cell(kind, Scheme::NETCLONE));
        assert!(
            faulted.p99_us() > healthy.p99_us() * 2.0,
            "{kind} too mild: {} vs healthy {}",
            faulted.p99_us(),
            healthy.p99_us()
        );
        assert!(
            faulted.client_retry_wins > 0,
            "{kind}: retries never won a completion"
        );
    }
}
