//! Cross-frontend equivalence: the DES simulator and the UDP soft switch
//! must execute the *identical* switch program.
//!
//! Both frontends hold a `Box<dyn SwitchEngine>` built by the same
//! factory (`netclone_cluster::build_engine`), so this test drives one
//! short deterministic packet trace through
//!
//! 1. the engine directly (exactly how the DES event loop calls it), and
//! 2. a second engine from the same factory running behind
//!    [`SoftSwitch`](netclone::net::SoftSwitch) over real UDP sockets,
//!
//! and asserts the two end with byte-identical [`SwitchCounters`] —
//! cloning decisions, busy/uncloneable skips, recirculations, and
//! redundant-response filtering all included.

use std::net::UdpSocket;
use std::time::{Duration, Instant};

use netclone::cluster::{build_engine, Scenario, Scheme};
use netclone::core::{SwitchCounters, SwitchEngine};
use netclone::hostcore::{ClientCore, ClientMode, ClientStats, ServerCore, ServerStats};
use netclone::net::{decode_packet, encode_packet, SoftSwitch};
use netclone::proto::{Ipv4, KvKey, NetCloneHdr, PacketMeta, RpcOp, ServerState};
use netclone::workloads::exp25;

const N_SERVERS: usize = 2;
const N_REQUESTS: u32 = 12;

/// The two-server, one-client scenario both frontends are programmed from.
fn scenario() -> Scenario {
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1e5);
    s.servers.truncate(N_SERVERS);
    s.n_clients = 1;
    s
}

/// The deterministic trace, encoded as per-request inputs.
struct TraceStep {
    /// Client-chosen group.
    grp: u16,
    /// Client-chosen filter-table index.
    idx: u8,
    /// Client marks the request non-cloneable (a write, §5.5).
    uncloneable: bool,
    /// Queue state each server piggybacks on its response.
    reply_state: ServerState,
}

fn trace(num_groups: u16) -> Vec<TraceStep> {
    (0..N_REQUESTS)
        .map(|i| TraceStep {
            grp: (i as u16) % num_groups,
            idx: (i % 2) as u8,
            uncloneable: i == 5,
            // Every third request reports a busy queue, making later
            // requests on that pair skip cloning until the state clears.
            reply_state: ServerState(if i % 3 == 2 { 2 } else { 0 }),
        })
        .collect()
}

fn request_meta(step: &TraceStep, seq: u32) -> PacketMeta {
    let mut nc = NetCloneHdr::request(step.grp, step.idx, 0, seq);
    if step.uncloneable {
        nc.state = ServerState(1);
    }
    PacketMeta::netclone_request(Ipv4::client(0), nc, 84)
}

/// Runs the trace straight through the engine, the way the DES event loop
/// does. Returns the final counters plus, per request, the server ports
/// that received an emission (the expected fan-out for the UDP run).
fn run_direct(
    engine: &mut dyn SwitchEngine,
    steps: &[TraceStep],
) -> (SwitchCounters, Vec<Vec<u16>>) {
    let mut fanouts = Vec::new();
    for (seq, step) in steps.iter().enumerate() {
        let emissions = engine.process_collected(request_meta(step, seq as u32), 100, 0);
        let mut ports: Vec<u16> = emissions.iter().map(|e| e.port).collect();
        ports.sort_unstable();
        // Mirror each delivery with a server response, in port order.
        for e in &emissions {
            assert!((10..12).contains(&e.port), "emission to a server port");
        }
        let mut sorted = emissions;
        sorted.sort_by_key(|e| e.port);
        for e in sorted {
            let sid = e.port - 10;
            let nc = NetCloneHdr::response_to(&e.pkt.nc, sid, step.reply_state);
            let resp = PacketMeta::netclone_response(Ipv4::server(sid), e.pkt.src_ip, nc, 84);
            engine.process_collected(resp, e.port, 0);
        }
        fanouts.push(ports);
    }
    (engine.counters(), fanouts)
}

fn recv_with_deadline(sock: &UdpSocket, buf: &mut [u8]) -> Option<usize> {
    sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    sock.recv(buf).ok()
}

#[test]
fn soft_switch_and_des_engine_run_the_same_program() {
    let scenario = scenario();

    // Frontend 1: the engine as the DES simulator drives it.
    let mut direct = build_engine(&scenario);
    let steps = trace(direct.num_groups());
    let (direct_counters, fanouts) = run_direct(direct.as_mut(), &steps);

    // Sanity: the trace must actually exercise the interesting paths,
    // otherwise equality would be vacuous.
    assert!(direct_counters.cloned > 0, "trace exercises cloning");
    assert!(
        direct_counters.responses_filtered > 0,
        "trace exercises redundant-response filtering"
    );
    assert!(
        direct_counters.clone_skipped_busy > 0,
        "trace exercises busy-skip"
    );
    assert_eq!(direct_counters.clone_skipped_uncloneable, 1);

    // Frontend 2: an identically-programmed engine behind the UDP soft
    // switch. The scenario builder registered ports 10+sid / 100+cid;
    // map them to real sockets.
    let switch = SoftSwitch::spawn_engine(build_engine(&scenario)).expect("spawn soft switch");
    let handle = switch.handle();
    let client = UdpSocket::bind("127.0.0.1:0").expect("client socket");
    let servers: Vec<UdpSocket> = (0..N_SERVERS)
        .map(|_| UdpSocket::bind("127.0.0.1:0").expect("server socket"))
        .collect();
    handle
        .map_port(100, client.local_addr().unwrap())
        .expect("map client port");
    for (sid, sock) in servers.iter().enumerate() {
        handle
            .map_port(10 + sid as u16, sock.local_addr().unwrap())
            .expect("map server port");
    }

    let op = RpcOp::Echo { class_ns: 25_000 };
    let mut buf = vec![0u8; 65_536];
    for (seq, step) in steps.iter().enumerate() {
        let datagram = encode_packet(&request_meta(step, seq as u32), &op, &[]);
        client
            .send_to(&datagram, handle.addr())
            .expect("send request");

        // Receive on exactly the server ports the direct run predicts,
        // then respond in the same (sorted) port order.
        for &port in &fanouts[seq] {
            let sock = &servers[(port - 10) as usize];
            let len = recv_with_deadline(sock, &mut buf)
                .unwrap_or_else(|| panic!("request {seq}: no delivery on port {port}"));
            let (meta, op_rx, _value) =
                decode_packet(bytes_of(&buf[..len])).expect("decode request");
            assert_eq!(op_rx, op);
            let sid = port - 10;
            let nc = NetCloneHdr::response_to(&meta.nc, sid, step.reply_state);
            let resp = PacketMeta::netclone_response(Ipv4::server(sid), meta.src_ip, nc, 84);
            sock.send_to(&encode_packet(&resp, &op, &[]), handle.addr())
                .expect("send response");
        }

        // Serialise the trace: wait until the switch has processed every
        // response of this step before issuing the next request.
        let expected_responses = direct_partial_responses(&fanouts, seq);
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.counters().responses < expected_responses {
            assert!(
                Instant::now() < deadline,
                "request {seq}: switch never saw its responses"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    let udp_counters = handle.counters();
    assert_eq!(
        udp_counters, direct_counters,
        "soft switch and DES engine diverged on an identical trace"
    );
    // The headline numbers of the paper's data plane, spelled out:
    assert_eq!(udp_counters.clone_rate(), direct_counters.clone_rate());
    assert_eq!(udp_counters.filter_rate(), direct_counters.filter_rate());
    switch.shutdown();
}

/// Responses the switch must have processed once step `upto` completed.
fn direct_partial_responses(fanouts: &[Vec<u16>], upto: usize) -> u64 {
    fanouts[..=upto].iter().map(|f| f.len() as u64).sum()
}

fn bytes_of(b: &[u8]) -> bytes::Bytes {
    bytes::Bytes::copy_from_slice(b)
}

/// Host-level equivalence: both frontends are thin drivers over the same
/// sans-io protocol cores (`ClientCore`/`ServerCore`), so driving the
/// *same* cores through the DES-style inline path and through real UDP
/// sockets must yield identical host counters — sent, completed,
/// redundant, clone-win, lost on the client; served/responses/idle on the
/// servers. Filtering is disabled so redundant responses actually reach
/// the client and its dedup path is exercised, not just the switch's.
#[test]
fn host_cores_agree_across_frontends() {
    const N_HOST_REQUESTS: usize = 24;

    let mut scenario = scenario();
    scenario.scheme = Scheme::NetClone {
        racksched: false,
        filtering: false,
    };

    /// The op sequence: mostly cloneable echoes, every fifth a write
    /// (uncloneable, §5.5) so the no-clone path is exercised too.
    fn op_for(i: usize) -> RpcOp {
        if i % 5 == 3 {
            RpcOp::Put {
                key: KvKey::from_index(i as u64),
                value_len: 16,
            }
        } else {
            RpcOp::Echo { class_ns: 25_000 }
        }
    }

    fn fresh_hosts(num_groups: u16) -> (ClientCore, Vec<ServerCore>) {
        let client = ClientCore::new(
            0,
            ClientMode::NetClone {
                num_groups,
                num_filter_tables: 2,
            },
            424242,
        );
        let servers = (0..N_SERVERS as u16).map(ServerCore::new).collect();
        (client, servers)
    }

    // ---- Frontend 1: DES-style, cores fed inline from the engine. ----
    let mut engine = build_engine(&scenario);
    let (mut client, mut servers) = fresh_hosts(engine.num_groups());
    // Per step: the server ports that received a delivery, and how many
    // responses the switch forwarded back to the client — the UDP run's
    // receive schedule.
    let mut fanouts: Vec<Vec<u16>> = Vec::new();
    let mut client_rx: Vec<usize> = Vec::new();
    for i in 0..N_HOST_REQUESTS {
        let now = (i as u64 + 1) * 100_000;
        client.generate(op_for(i), now);
        let meta = client.poll().expect("one packet per request");
        assert!(client.poll().is_none());
        let mut emissions = engine.process_collected(meta, 100, now);
        emissions.sort_by_key(|e| e.port);
        let ports: Vec<u16> = emissions.iter().map(|e| e.port).collect();
        let mut to_client = 0;
        for e in emissions {
            let sid = e.port - 10;
            // The harness serialises requests, so every queue is empty:
            // clones are always admitted.
            let core = &mut servers[sid as usize];
            assert_eq!(
                core.admit(e.pkt.nc.clo, 0),
                netclone::hostcore::AdmitDecision::Admit
            );
            let resp_hdr = core.response(&e.pkt.nc, 0);
            let resp = PacketMeta::netclone_response(Ipv4::server(sid), e.pkt.src_ip, resp_hdr, 84);
            for out in engine.process_collected(resp, e.port, now) {
                assert_eq!(out.port, 100, "responses go back to the client");
                client.on_packet(&out.pkt.nc, now + 50_000);
                to_client += 1;
            }
        }
        fanouts.push(ports);
        client_rx.push(to_client);
    }
    let direct_client: ClientStats = client.stats();
    let direct_servers: Vec<ServerStats> = servers.iter().map(|s| s.stats()).collect();

    // The trace must exercise the interesting host paths, otherwise the
    // parity assertions below would be vacuous.
    assert_eq!(direct_client.generated, N_HOST_REQUESTS as u64);
    assert_eq!(direct_client.completed, N_HOST_REQUESTS as u64);
    assert_eq!(direct_client.lost, 0);
    assert!(
        direct_client.redundant > 0,
        "unfiltered clones must reach the client's dedup path"
    );
    assert!(
        direct_client.clone_wins > 0,
        "some requests must be won by the clone copy"
    );

    // ---- Frontend 2: the same cores behind real UDP sockets. ----
    let switch = SoftSwitch::spawn_engine(build_engine(&scenario)).expect("spawn soft switch");
    let handle = switch.handle();
    let (mut client, mut servers) = fresh_hosts(handle.num_groups());
    let client_sock = UdpSocket::bind("127.0.0.1:0").expect("client socket");
    let server_socks: Vec<UdpSocket> = (0..N_SERVERS)
        .map(|_| UdpSocket::bind("127.0.0.1:0").expect("server socket"))
        .collect();
    handle
        .map_port(100, client_sock.local_addr().unwrap())
        .expect("map client port");
    for (sid, sock) in server_socks.iter().enumerate() {
        handle
            .map_port(10 + sid as u16, sock.local_addr().unwrap())
            .expect("map server port");
    }

    let mut buf = vec![0u8; 65_536];
    for i in 0..N_HOST_REQUESTS {
        let now = (i as u64 + 1) * 100_000;
        let op = op_for(i);
        client.generate(op, now);
        let meta = client.poll().expect("one packet per request");
        client_sock
            .send_to(&encode_packet(&meta, &op, &[]), handle.addr())
            .expect("send request");

        // Serve on exactly the ports the direct run predicts, responding
        // in the same (sorted) port order so the switch sees the same
        // response sequence.
        for &port in &fanouts[i] {
            let sock = &server_socks[(port - 10) as usize];
            let len = recv_with_deadline(sock, &mut buf)
                .unwrap_or_else(|| panic!("request {i}: no delivery on port {port}"));
            let (req, op_rx, _value) = decode_packet(bytes_of(&buf[..len])).expect("decode");
            assert_eq!(op_rx, op);
            let sid = port - 10;
            let core = &mut servers[sid as usize];
            assert_eq!(
                core.admit(req.nc.clo, 0),
                netclone::hostcore::AdmitDecision::Admit
            );
            let resp_hdr = core.response(&req.nc, 0);
            let resp = PacketMeta::netclone_response(Ipv4::server(sid), req.src_ip, resp_hdr, 84);
            sock.send_to(&encode_packet(&resp, &op, &[]), handle.addr())
                .expect("send response");
        }

        // Drain the responses the direct run says the switch forwards.
        for _ in 0..client_rx[i] {
            let len = recv_with_deadline(&client_sock, &mut buf)
                .unwrap_or_else(|| panic!("request {i}: missing response at the client"));
            let (resp, _op, _value) = decode_packet(bytes_of(&buf[..len])).expect("decode");
            client.on_packet(&resp.nc, now + 50_000);
        }
    }

    assert_eq!(
        client.stats(),
        direct_client,
        "client cores diverged between the DES and UDP frontends"
    );
    let udp_servers: Vec<ServerStats> = servers.iter().map(|s| s.stats()).collect();
    assert_eq!(
        udp_servers, direct_servers,
        "server cores diverged between the DES and UDP frontends"
    );
    switch.shutdown();
}

/// The hot-key service model ([`HotKeyCost`]) classifies a request by its
/// key's popularity rank, so parity across frontends hinges on the wire
/// codec preserving everything `class_ns` reads: the op kind, the key
/// index, and the scan count. Drive the same hot/cold op mix through the
/// inline engine and over real UDP, classify each delivery at the server,
/// and require the identical hit/miss cost sequence.
#[test]
fn hot_key_costs_agree_across_frontends() {
    use netclone::kvstore::HotKeyCost;

    const N_OPS: usize = 24;
    let hk = HotKeyCost::redis_with_backing_store(100);
    // Hits, misses, a SCAN that stays resident, one that overruns the hot
    // set, and a write — every classification branch.
    let op_for = |i: usize| -> RpcOp {
        match i % 6 {
            0 => RpcOp::Scan {
                key: KvKey::from_index((i as u64 * 7) % 120),
                count: 50,
            },
            3 => RpcOp::Put {
                key: KvKey::from_index((i as u64 * 37) % 200),
                value_len: 16,
            },
            _ => RpcOp::Get {
                key: KvKey::from_index((i as u64 * 37) % 200),
            },
        }
    };

    let scenario = scenario();

    // Frontend 1: inline engine; ops reach the "server" unencoded.
    let mut engine = build_engine(&scenario);
    let mut direct_classes: Vec<(u16, u64)> = Vec::new();
    let mut fanouts: Vec<Vec<u16>> = Vec::new();
    for i in 0..N_OPS {
        let op = op_for(i);
        let mut meta = PacketMeta::netclone_request(
            Ipv4::client(0),
            NetCloneHdr::request((i as u16) % engine.num_groups(), (i % 2) as u8, 0, i as u32),
            84,
        );
        if !op.is_cloneable() {
            meta.nc.state = ServerState(1);
        }
        let mut emissions = engine.process_collected(meta, 100, 0);
        emissions.sort_by_key(|e| e.port);
        fanouts.push(emissions.iter().map(|e| e.port).collect());
        for e in emissions {
            let sid = e.port - 10;
            direct_classes.push((e.port, hk.class_ns(&op)));
            let nc = NetCloneHdr::response_to(&e.pkt.nc, sid, ServerState(0));
            let resp = PacketMeta::netclone_response(Ipv4::server(sid), e.pkt.src_ip, nc, 84);
            engine.process_collected(resp, e.port, 0);
        }
    }
    let hit = hk.hit.class_ns(&RpcOp::Get {
        key: KvKey::from_index(0),
    });
    let miss = hk.miss.class_ns(&RpcOp::Get {
        key: KvKey::from_index(150),
    });
    assert!(hit < miss);
    assert!(
        direct_classes.iter().any(|&(_, c)| c == hit)
            && direct_classes.iter().any(|&(_, c)| c == miss),
        "the mix must exercise both the hit and the miss path"
    );

    // Frontend 2: the same trace over UDP; servers classify what the wire
    // actually delivered.
    let switch = SoftSwitch::spawn_engine(build_engine(&scenario)).expect("spawn soft switch");
    let handle = switch.handle();
    let client = UdpSocket::bind("127.0.0.1:0").expect("client socket");
    let servers: Vec<UdpSocket> = (0..N_SERVERS)
        .map(|_| UdpSocket::bind("127.0.0.1:0").expect("server socket"))
        .collect();
    handle
        .map_port(100, client.local_addr().unwrap())
        .expect("map client port");
    for (sid, sock) in servers.iter().enumerate() {
        handle
            .map_port(10 + sid as u16, sock.local_addr().unwrap())
            .expect("map server port");
    }

    let mut udp_classes: Vec<(u16, u64)> = Vec::new();
    let mut buf = vec![0u8; 65_536];
    let mut responses_seen = 0u64;
    for (i, fanout) in fanouts.iter().enumerate() {
        let op = op_for(i);
        let mut meta = PacketMeta::netclone_request(
            Ipv4::client(0),
            NetCloneHdr::request((i as u16) % handle.num_groups(), (i % 2) as u8, 0, i as u32),
            84,
        );
        if !op.is_cloneable() {
            meta.nc.state = ServerState(1);
        }
        client
            .send_to(&encode_packet(&meta, &op, &[]), handle.addr())
            .expect("send request");
        for &port in fanout {
            let sock = &servers[(port - 10) as usize];
            let len = recv_with_deadline(sock, &mut buf)
                .unwrap_or_else(|| panic!("request {i}: no delivery on port {port}"));
            let (req, op_rx, _value) = decode_packet(bytes_of(&buf[..len])).expect("decode");
            let sid = port - 10;
            udp_classes.push((port, hk.class_ns(&op_rx)));
            let nc = NetCloneHdr::response_to(&req.nc, sid, ServerState(0));
            let resp = PacketMeta::netclone_response(Ipv4::server(sid), req.src_ip, nc, 84);
            sock.send_to(&encode_packet(&resp, &op, &[]), handle.addr())
                .expect("send response");
            responses_seen += 1;
        }
        // Serialise: wait for this step's responses before the next send.
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.counters().responses < responses_seen {
            assert!(Instant::now() < deadline, "request {i}: responses lost");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    assert_eq!(
        udp_classes, direct_classes,
        "hot-key classification diverged between the inline and UDP frontends"
    );
    switch.shutdown();
}

/// The plain L3 fabric (Baseline/C-Clone schemes) must also behave
/// identically across frontends — it implements the same trait.
#[test]
fn plain_engine_is_equivalent_across_frontends() {
    let mut scenario = scenario();
    scenario.scheme = Scheme::Baseline;

    // Direct run: route one request to each server and one response back.
    let mut direct = build_engine(&scenario);
    for sid in 0..N_SERVERS as u16 {
        let mut req = PacketMeta::netclone_request(
            Ipv4::client(0),
            NetCloneHdr::request(0, 0, 0, sid as u32),
            84,
        );
        req.dst_ip = Ipv4::server(sid);
        let out = direct.process_collected(req, 100, 0);
        assert_eq!(out.len(), 1, "plain switch forwards without cloning");
        let resp = PacketMeta::netclone_response(
            Ipv4::server(sid),
            Ipv4::client(0),
            NetCloneHdr::response_to(&req.nc, sid, ServerState(0)),
            84,
        );
        direct.process_collected(resp, 10 + sid, 0);
    }
    let direct_counters = direct.counters();
    assert_eq!(direct_counters.routed_plain, 2 * N_SERVERS as u64);
    assert_eq!(direct_counters.cloned, 0);

    // Same trace through the soft switch.
    let switch = SoftSwitch::spawn_engine(build_engine(&scenario)).expect("spawn soft switch");
    let handle = switch.handle();
    let client = UdpSocket::bind("127.0.0.1:0").unwrap();
    let servers: Vec<UdpSocket> = (0..N_SERVERS)
        .map(|_| UdpSocket::bind("127.0.0.1:0").unwrap())
        .collect();
    handle
        .map_port(100, client.local_addr().unwrap())
        .expect("map client port");
    for (sid, sock) in servers.iter().enumerate() {
        handle
            .map_port(10 + sid as u16, sock.local_addr().unwrap())
            .expect("map server port");
    }

    let op = RpcOp::Echo { class_ns: 25_000 };
    let mut buf = vec![0u8; 65_536];
    for sid in 0..N_SERVERS as u16 {
        let mut req = PacketMeta::netclone_request(
            Ipv4::client(0),
            NetCloneHdr::request(0, 0, 0, sid as u32),
            84,
        );
        req.dst_ip = Ipv4::server(sid);
        client
            .send_to(&encode_packet(&req, &op, &[]), handle.addr())
            .unwrap();
        let len = recv_with_deadline(&servers[sid as usize], &mut buf)
            .expect("plain switch must deliver to the addressed server");
        let (meta, _op, _v) = decode_packet(bytes_of(&buf[..len])).unwrap();
        let resp = PacketMeta::netclone_response(
            Ipv4::server(sid),
            meta.src_ip,
            NetCloneHdr::response_to(&meta.nc, sid, ServerState(0)),
            84,
        );
        servers[sid as usize]
            .send_to(&encode_packet(&resp, &op, &[]), handle.addr())
            .unwrap();
        recv_with_deadline(&client, &mut buf).expect("response reaches the client");
    }

    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.counters() != direct_counters && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(handle.counters(), direct_counters);
    switch.shutdown();
}

/// The sharded open-loop frontend preserves host-core parity at any
/// worker count: every generated request resolves exactly once
/// (`sent == completed + lost`), the merged report equals the sum of its
/// per-worker breakdown, and server-side accounting stays consistent
/// with what the clients observed — the same invariants the single-core
/// frontends uphold, now across disjoint cid/seq partitions.
#[test]
fn sharded_open_loop_preserves_host_accounting() {
    use netclone::core::NetCloneConfig;
    use netclone::net::{OpenLoopSpec, Testbed, WorkExecutor};

    for workers in [1usize, 4] {
        let mut tb = Testbed::spawn(
            NetCloneConfig::default(),
            2,
            workers,
            WorkExecutor::Synthetic,
        )
        .expect("testbed");
        let handle = tb.switch_handle();
        let client = tb.open_loop_client(workers).expect("open-loop client");
        let report = client
            .run(OpenLoopSpec {
                rate_rps: 2_000.0,
                duration: Duration::from_millis(300),
                op: RpcOp::Echo { class_ns: 25_000 },
                drain: Duration::from_millis(150),
                request_timeout: Duration::from_millis(100),
                num_groups: handle.num_groups(),
                num_filter_tables: 2,
                seed: 17,
                workers,
                retry: None,
                faults: None,
                crash_worker: None,
            })
            .expect("open-loop run");

        // Client-side conservation, merged and per worker.
        assert!(report.completed > 0, "workers={workers}: no traffic moved");
        assert_eq!(
            report.sent,
            report.completed + report.lost,
            "workers={workers}: every request resolves exactly once"
        );
        assert_eq!(report.redundant, 0, "workers={workers}: filtering held");
        assert_eq!(report.per_worker.len(), workers);
        let mut merged = ClientStats::default();
        let mut samples = 0u64;
        for (w, wr) in report.per_worker.iter().enumerate() {
            assert_eq!(wr.cid, w as u16, "cids are a contiguous partition");
            assert_eq!(
                wr.stats.generated,
                wr.stats.completed + wr.stats.lost,
                "workers={workers}: worker {w} conserves its own partition"
            );
            merged.merge(&wr.stats);
            samples += wr.latencies.count();
        }
        assert_eq!(merged.generated, report.sent);
        assert_eq!(merged.completed, report.completed);
        assert_eq!(merged.redundant, report.redundant);
        assert_eq!(merged.clone_wins, report.clone_wins);
        assert_eq!(merged.lost, report.lost);
        assert_eq!(samples, report.latencies.count());
        assert_eq!(report.latencies.count(), report.completed);

        // Server-side parity: every response was served exactly once per
        // core, and the fleet served at least every client completion
        // (clone copies can be served and then lose the race).
        let mut served_total = 0u64;
        for s in tb.servers() {
            let st = s.stats();
            assert_eq!(st.served, st.responses, "served and responses agree");
            served_total += st.served;
            // Merged handle stats equal the per-worker core sum.
            let mut per_core = ServerStats::default();
            for w in s.worker_stats() {
                per_core.merge(&w);
            }
            assert_eq!(per_core, st);
        }
        assert!(
            served_total >= report.completed,
            "workers={workers}: servers served {} but clients completed {}",
            served_total,
            report.completed
        );
        tb.shutdown();
    }
}
