//! The adversarial suite as a test asset: seed-pinned shootout state,
//! shard-count byte-equality for every adversarial scenario, and the
//! headline policy ordering under mid-run degradation.
//!
//! The pins freeze the *exact* simulator state (request counts, clone
//! wins, tail percentiles) of one representative cell per adversarial
//! kind. Any change to RNG draw order, event ordering, or the service
//! pipeline shows up here first — by design. If a change is intentional,
//! re-record the constants and say so in the commit.

use netclone::cluster::experiments::adversarial;
use netclone::cluster::experiments::Scale;
use netclone::cluster::{RunCtx, Scenario, Scheme, Sim};

/// One representative cell: the kind's smoke-scale scenario at half its
/// own capacity, under the given scheme.
fn cell(kind: &str, scheme: Scheme) -> Scenario {
    let ctx = RunCtx::new(Scale::Smoke);
    let mut s = adversarial::scenario(kind, scheme, &ctx);
    s.offered_rps = s.capacity_rps() * 0.5;
    s
}

/// Expected NetClone state of one kind at seed 42, half capacity, smoke
/// scale — recorded from the run that introduced the suite.
struct Pin {
    kind: &'static str,
    generated: u64,
    completed: u64,
    clone_wins: u64,
    packets_lost: u64,
    p50: f64,
    p99: f64,
    p999: f64,
}

const PINS: [Pin; 5] = [
    Pin {
        kind: "bimodal",
        generated: 16_501,
        completed: 16_487,
        clone_wins: 5_195,
        packets_lost: 0,
        p50: 23.039,
        p99: 450.559,
        p999: 1_114.111,
    },
    Pin {
        kind: "heavytail",
        generated: 42_991,
        completed: 42_988,
        clone_wins: 12_505,
        packets_lost: 0,
        p50: 13.951,
        p99: 155.647,
        p999: 917.503,
    },
    Pin {
        kind: "zipf-hotkey",
        generated: 1_563,
        completed: 1_564,
        clone_wins: 634,
        packets_lost: 0,
        p50: 73.727,
        p99: 1_245.183,
        p999: 3_670.015,
    },
    Pin {
        kind: "slowdown",
        generated: 31_587,
        completed: 31_350,
        clone_wins: 7_954,
        packets_lost: 0,
        p50: 23.295,
        p99: 5_046.271,
        p999: 5_308.415,
    },
    Pin {
        kind: "drain",
        generated: 31_587,
        completed: 30_884,
        clone_wins: 10_077,
        packets_lost: 4_939,
        p50: 24.063,
        p99: 120.831,
        p999: 573.439,
    },
];

#[test]
fn adversarial_cells_reproduce_the_pinned_seed_state() {
    for p in PINS {
        let kind = p.kind;
        let r = Sim::run(cell(kind, Scheme::NETCLONE));
        let (r50, r99, r999) = r.percentiles_us();
        assert_eq!(r.generated, p.generated, "{kind}: generated drifted");
        assert_eq!(r.completed, p.completed, "{kind}: completed drifted");
        assert_eq!(
            r.client_clone_wins, p.clone_wins,
            "{kind}: clone wins drifted"
        );
        assert_eq!(r.packets_lost, p.packets_lost, "{kind}: losses drifted");
        assert_eq!(
            (r50, r99, r999),
            (p.p50, p.p99, p.p999),
            "{kind}: tail drifted"
        );
    }
}

#[test]
fn every_adversarial_scenario_is_sharding_invariant() {
    // The acceptance bar of the suite: for each adversarial kind —
    // including the degradation injections, which prime on one owner
    // shard — shards=1 and shards=4 yield byte-identical results.
    for kind in adversarial::KINDS {
        let serial = format!(
            "{:?}",
            Sim::run_with_shards(cell(kind, Scheme::NETCLONE), 1)
        );
        let sharded = format!(
            "{:?}",
            Sim::run_with_shards(cell(kind, Scheme::NETCLONE), 4)
        );
        assert_eq!(serial, sharded, "{kind}: shards=1 vs shards=4 diverged");
    }
}

#[test]
fn netclone_beats_plain_duplication_under_slowdown() {
    // The shootout's headline at the cell level: when one server turns
    // gray mid-run, the idle-gated clone beats duplicating everything —
    // C-Clone's doubled load saturates the remaining healthy capacity.
    // Measured at the sweep's peak fraction (0.7), where the asymmetry
    // bites: C-Clone's effective load is 1.4× capacity.
    let at_peak = |scheme| {
        let mut s = cell("slowdown", scheme);
        s.offered_rps = s.capacity_rps() * 0.7;
        Sim::run(s)
    };
    let nc = at_peak(Scheme::NETCLONE);
    let dup = at_peak(Scheme::CClone);
    assert!(
        nc.p99_us() < dup.p99_us(),
        "slowdown p99: NetClone {} >= C-Clone {}",
        nc.p99_us(),
        dup.p99_us()
    );
}

#[test]
fn degradation_actually_degrades() {
    // Guard against the injections silently becoming no-ops: each
    // degraded kind must be measurably worse than its healthy twin.
    let healthy = {
        let mut s = cell("slowdown", Scheme::NETCLONE);
        s.degradation.slowdown = None;
        Sim::run(s)
    };
    let slow = Sim::run(cell("slowdown", Scheme::NETCLONE));
    assert!(
        slow.p99_us() > healthy.p99_us() * 2.0,
        "slowdown too mild: {} vs healthy {}",
        slow.p99_us(),
        healthy.p99_us()
    );

    let undrained = {
        let mut s = cell("drain", Scheme::NETCLONE);
        s.degradation.drain = None;
        Sim::run(s)
    };
    let drained = Sim::run(cell("drain", Scheme::NETCLONE));
    assert_eq!(undrained.packets_lost, 0);
    assert!(drained.packets_lost > 0, "the drain dropped nothing");
    assert!(drained.completed < undrained.completed);
}
