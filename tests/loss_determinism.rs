//! RNG-stream pinning for the packet-loss path.
//!
//! `Sim` only materialises a loss model when `scenario.loss > 0.0`; the
//! zero-loss fast path must not draw from (or even construct) the loss
//! stream. These pins guarantee the optimisation cannot silently shift
//! any seeded stream:
//!
//! * the zero-loss pin lives in `tests/harness_determinism.rs`
//!   (`single_rack_topology_reproduces_seed_state_run`) — if skipping the
//!   loss RNG perturbed the other streams, that test would fail;
//! * the lossy pin below was captured *before* the zero-loss fast path
//!   existed, so the `loss > 0` stream provably draws at the exact same
//!   points as the original always-constructed implementation.

use netclone::cluster::{Scenario, Scheme, Sim};
use netclone::workloads::exp25;

fn lossy_scenario() -> Scenario {
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 0.0);
    s.warmup_ns = 4_000_000;
    s.measure_ns = 20_000_000;
    s.offered_rps = s.capacity_rps() * 0.6;
    s.seed = 7;
    s.loss = 0.01;
    s
}

#[test]
fn lossy_run_reproduces_pinned_loss_stream() {
    let r = Sim::run(lossy_scenario());
    assert_eq!(r.packets_lost, 2269, "loss stream shifted");
    assert_eq!(r.generated, 37568);
    assert_eq!(r.completed, 36503);
    assert_eq!(r.client_clone_wins, 9019);
    assert_eq!(r.latency.p50_p99_p999(), (22783, 123903, 573439));
}

/// Lossy runs shard too: each rack draws from its own seeded loss
/// stream *in its own event order*, so the draw sequence is a per-rack
/// property no shard count can perturb. Seed-7, 1% loss, 4 racks.
#[test]
fn lossy_sharded_run_equals_serial() {
    let mut s = lossy_scenario();
    s.n_clients = 4;
    s.offered_rps = s.capacity_rps() * 0.6;
    s.topology = netclone::cluster::Topology::uniform(4);
    let serial = Sim::run(s.clone());
    let sharded = Sim::run_with_shards(s, 4);
    assert_eq!(
        format!("{serial:?}"),
        format!("{sharded:?}"),
        "lossy sharded run diverged from serial"
    );
    assert!(serial.packets_lost > 0, "the loss path was not exercised");
}

#[test]
fn zero_loss_runs_are_reproducible() {
    let mut s = lossy_scenario();
    s.loss = 0.0;
    let a = Sim::run(s.clone());
    let b = Sim::run(s);
    assert_eq!(a.generated, b.generated);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.packets_lost, 0);
    assert_eq!(a.latency.p50_p99_p999(), b.latency.p50_p99_p999());
}
