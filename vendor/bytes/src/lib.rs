//! Minimal offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable, advanceable view over shared bytes;
//! [`BytesMut`] is a growable buffer. The [`Buf`]/[`BufMut`] traits carry
//! the big-endian accessors the wire codecs use. No `split_to`/`split_off`
//! — the workspace doesn't use them.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Read-side byte cursor operations.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes. Panics if fewer remain.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Copies `dst.len()` bytes out, advancing. Panics if fewer remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write-side buffer operations.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A cheaply cloneable, advanceable view over immutable shared bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer holding a copy of `data` (the stand-in copies; upstream
    /// borrows `'static` data zero-copy).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// A buffer holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// A sub-view of this buffer (relative to the current view).
    ///
    /// Panics if the range exceeds the view, like upstream.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.end - self.start;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice {lo}..{hi} out of bounds of {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", &self[..])
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.end - self.start
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end of Bytes");
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of slice");
        *self = &self[n..];
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    v: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            v: Vec::with_capacity(cap),
        }
    }

    /// Reserves space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.v.reserve(additional);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.v)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.v
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.v
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:?})", &self[..])
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.v.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_views() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_u64(0x0809_0A0B_0C0D_0E0F);
        b.put_slice(b"xy");
        assert_eq!(b.len(), 17);
        let mut bytes = b.freeze();
        let snapshot = bytes.clone();
        assert_eq!(bytes.get_u8(), 1);
        assert_eq!(bytes.get_u16(), 0x0203);
        assert_eq!(bytes.get_u32(), 0x0405_0607);
        assert_eq!(bytes.get_u64(), 0x0809_0A0B_0C0D_0E0F);
        let mut tail = [0u8; 2];
        bytes.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert!(bytes.is_empty());
        assert_eq!(snapshot.len(), 17, "clones are independent cursors");
    }

    #[test]
    fn mutable_indexing() {
        let mut b = BytesMut::new();
        b.put_slice(&[9, 9, 9]);
        b[0] = 1;
        assert_eq!(&b[..], &[1, 9, 9]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn over_advance_panics() {
        let mut b = Bytes::copy_from_slice(&[1, 2]);
        b.advance(3);
    }
}
#[cfg(test)]
mod slice_tests {
    use super::*;

    #[test]
    fn slice_is_a_bounded_view() {
        let b = Bytes::copy_from_slice(b"abcdef");
        assert_eq!(&b.slice(..3)[..], b"abc");
        assert_eq!(&b.slice(2..5)[..], b"cde");
        assert_eq!(&b.slice(..)[..], b"abcdef");
        let mut s = b.slice(1..4);
        assert_eq!(s.get_u8(), b'b');
        assert_eq!(s.remaining(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_slice_panics() {
        Bytes::copy_from_slice(b"ab").slice(..3);
    }
}
