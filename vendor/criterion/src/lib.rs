//! Minimal offline stand-in for `criterion`.
//!
//! Runs each benchmark for a short calibrated burst and prints the median
//! ns/iteration. No statistical analysis, HTML reports, or CLI filtering —
//! just enough to keep `cargo bench` builds working and give a usable
//! perf baseline offline.

use std::time::{Duration, Instant};

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Closes the group (upstream flushes reports here; a no-op for the
    /// stand-in, kept so call sites compile unchanged).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    // Calibrate the iteration count so each sample takes ~20 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed > Duration::from_millis(20) || iters >= 1 << 30 {
            break;
        }
        iters *= 8;
    }
    // Take 5 samples and report the median.
    let mut per_iter: Vec<f64> = (0..5)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    println!("{name:<40} {:>12.1} ns/iter (x{iters})", per_iter[2]);
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        g.finish();
        assert!(ran);
    }
}
