//! Minimal offline stand-in for `crossbeam`: an unbounded MPMC channel
//! with cloneable senders *and* receivers, `len`/`is_empty` observation
//! from either end, and disconnect semantics (receive fails once every
//! sender is dropped and the queue is drained; send fails once every
//! receiver is dropped).

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is drained
    /// and all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// The channel is drained and all senders are gone.
        Disconnected,
    }

    /// The sending half.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(msg));
            }
            self.inner.lock().push_back(msg);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Queued-message count.
        pub fn len(&self) -> usize {
            self.inner.lock().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().is_empty()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake all blocked receivers so they observe
                // the disconnect.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.lock();
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues a message if one is ready.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.lock();
            match q.pop_front() {
                Some(msg) => Ok(msg),
                None if self.inner.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Queued-message count (the soft server uses this as the FCFS
        /// queue length piggybacked on responses).
        pub fn len(&self) -> usize {
            self.inner.lock().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().is_empty()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn fifo_and_len() {
        let (tx, rx) = unbounded();
        assert!(tx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn dropping_all_senders_disconnects() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(7).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7), "queued messages drain first");
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42).unwrap();
        assert_eq!(t.join().unwrap(), Ok(42));
    }

    #[test]
    fn workers_share_one_receiver() {
        let (tx, rx) = unbounded();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = 0;
                while rx.recv().is_ok() {
                    got += 1;
                }
                got
            }));
        }
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100, "every message consumed exactly once");
    }
}
