//! Minimal offline stand-in for `proptest`.
//!
//! Implements the surface this workspace's property tests use — the
//! [`proptest!`], [`prop_compose!`], [`prop_oneof!`] and `prop_assert*!`
//! macros, [`Strategy`] with `prop_map`/`boxed`, [`any`], [`Just`],
//! range/tuple strategies, and [`collection::vec`] — as a plain
//! deterministic case generator.
//!
//! Differences from upstream worth knowing when a test fails:
//! * **no shrinking** — a failing case panics with the generated values
//!   still bound, so run the test under a debugger or add context to the
//!   assertion message;
//! * determinism comes from hashing the test's `module_path!::name`, so
//!   every run (and every machine) replays the same cases;
//! * `prop_assert*!` are plain `assert*!` — they panic instead of
//!   recording a failure for the shrinker.

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for a test, seeded from its fully qualified name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..span` (`span > 0`).
    pub fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test configuration (case count only).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps un-tuned suites fast while
        // still exploring the space. Tests that need more set it.
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. The stand-in generates; it never shrinks.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`] arms of
    /// different concrete types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<V>(std::rc::Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(std::rc::Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Uniform choice between boxed alternatives ([`prop_oneof!`]).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Builds a union over the given (non-empty) alternatives.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// A strategy from a generation closure (used by [`prop_compose!`]).
pub struct FnStrategy<F>(F);

impl<V, F: Fn(&mut TestRng) -> V> Strategy for FnStrategy<F> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Wraps a closure as a [`Strategy`].
pub fn strategy_fn<V, F: Fn(&mut TestRng) -> V>(f: F) -> FnStrategy<F> {
    FnStrategy(f)
}

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values across a wide dynamic range (not raw bit patterns:
        // NaN/inf would violate most numeric properties by construction).
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.below(61) as i32 - 30;
        mantissa * 2f64.powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// The [`any`] strategy for `T`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);
impl_strategy_tuple!(A, B, C, D, E, F, G);
impl_strategy_tuple!(A, B, C, D, E, F, G, H);
impl_strategy_tuple!(A, B, C, D, E, F, G, H, I);
impl_strategy_tuple!(A, B, C, D, E, F, G, H, I, J);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// An (inclusive-exclusive or inclusive) element-count range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Generates `Vec`s whose length is drawn from the size range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies, mirroring `proptest::option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// Generates `Option`s of the inner strategy's values.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// A strategy for `Option<T>` that is `Some` half the time (the
    /// upstream default probability).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(2) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Defines property tests: each `fn` body runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal: expands the test functions inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Defines a named composite strategy function.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$attr:meta])* $vis:vis fn $name:ident($($arg:tt)*)
        ($($pat:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$attr])* $vis fn $name($($arg)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::strategy_fn(move |__rng: &mut $crate::TestRng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                $body
            })
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Rejects the current case when the assumption fails (expands to a
/// `continue` of the enclosing case loop, so it must appear at the top
/// level of the test body — which is how the workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a condition inside a property test (no shrinking: panics).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (no shrinking: panics).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (no shrinking: panics).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 0u32..10, b in any::<bool>()) -> (u32, bool) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u8..7, y in 10u64..=12) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((10..=12).contains(&y));
        }

        #[test]
        fn composed_and_mapped_strategies_work(
            (a, b) in arb_pair(),
            v in collection::vec(any::<u8>(), 0..5),
            s in prop_oneof![Just(1u8), (2u8..4).prop_map(|x| x)],
        ) {
            prop_assert!(a < 10);
            let _ = b;
            prop_assert!(v.len() < 5);
            prop_assert!((1..4).contains(&s));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(
            TestRng::from_name("y").next_u64(),
            TestRng::from_name("x").next_u64()
        );
    }
}
