//! Minimal offline stand-in for the `rand` crate (0.9 API surface).
//!
//! Provides exactly what this workspace uses: the [`Rng`] extension trait
//! (`random`, `random_range`, `random_bool`), [`SeedableRng::seed_from_u64`],
//! and a deterministic [`rngs::StdRng`] built on xoshiro256** seeded via
//! SplitMix64. Statistical quality is more than adequate for simulation
//! and property tests; streams differ from upstream `rand`.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an RNG (the stand-in's
/// equivalent of `StandardUniform: Distribution<T>`).
pub trait SampleStandard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl SampleStandard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics if the range is empty, matching upstream behaviour.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `0..span` without modulo bias (Lemire's
/// multiply-shift; the truncation bias over a u128 product is < 2^-64).
#[inline]
fn mult_shift(bits: u64, span: u64) -> u64 {
    ((bits as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(mult_shift(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(mult_shift(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of `T`.
    fn random<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (stretched internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used to stretch seeds into full generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256**.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_is_unit_interval_and_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.random_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v: u8 = rng.random_range(3..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn random_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }
}
