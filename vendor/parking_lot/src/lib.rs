//! Minimal offline stand-in for `parking_lot`: non-poisoning `Mutex` and
//! `RwLock` wrappers over `std::sync`. A panicked holder's poison is
//! swallowed (`into_inner`), matching parking_lot's no-poisoning model.

/// Guard types re-used from `std`.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// See [`MutexGuard`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// See [`MutexGuard`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(5));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock still usable after poisoning");
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }
}
