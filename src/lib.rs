//! # NetClone — a Rust reproduction of in-network request cloning
//!
//! This workspace reproduces **"NetClone: Fast, Scalable, and Dynamic
//! Request Cloning for Microsecond-Scale RPCs"** (Gyuyeong Kim, ACM
//! SIGCOMM 2023): a Tofino-resident data plane that clones an RPC request
//! to a *pair* of tracked-idle servers and drops the slower of the two
//! responses with an in-switch fingerprint filter, cutting tail latency
//! without the throughput collapse of client-side cloning or the CPU
//! bottleneck of a coordinator.
//!
//! The crate is a facade: it re-exports every subsystem so downstream
//! users depend on one name.
//!
//! ## One switch program, many frontends
//!
//! Every switch program implements [`core::SwitchEngine`]
//! (`netclone_core::engine`): the packet path from
//! [`asic::DataPlane`] plus the control plane (registration, failure
//! handling, group management, counters). Both frontends — the
//! discrete-event testbed ([`cluster::Sim`]) and the real-socket soft
//! switch ([`net::SoftSwitch`]) — hold a `Box<dyn SwitchEngine>` built by
//! [`cluster::build_engine`], so they execute the *identical* program
//! (asserted by `tests/equivalence.rs`):
//!
//! ```
//! use netclone::cluster::{build_engine, Scenario, Scheme};
//! use netclone::core::SwitchEngine;
//! use netclone::proto::{Ipv4, NetCloneHdr, PacketMeta};
//! use netclone::workloads::exp25;
//!
//! let scenario = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1e5);
//! let mut engine = build_engine(&scenario); // Box<dyn SwitchEngine>, fully programmed
//! let req = PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 0), 84);
//! let out = engine.process_collected(req, 100, 0);
//! assert_eq!(out.len(), 2, "both candidates idle: the request was cloned");
//! assert_eq!(engine.counters().cloned, 1);
//! ```
//!
//! ## Quick start (simulated rack)
//!
//! ```
//! use netclone::cluster::{Scenario, Scheme, Sim};
//! use netclone::workloads::exp25;
//!
//! // The paper's testbed: 2 clients, 6 workers, Exp(25 us) service.
//! let mut scenario = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 0.0);
//! scenario.offered_rps = scenario.capacity_rps() * 0.4;
//! scenario.warmup_ns = 2_000_000;
//! scenario.measure_ns = 10_000_000;
//! let result = Sim::run(scenario);
//! assert!(result.completed > 0);
//! assert!(result.switch.clone_rate() > 0.5); // mid load: cloning is common
//! ```
//!
//! ## Quick start (real sockets)
//!
//! ```no_run
//! use netclone::net::{Testbed, WorkExecutor};
//! use netclone::core::NetCloneConfig;
//! use netclone::proto::RpcOp;
//! use std::time::Duration;
//!
//! let mut tb = Testbed::spawn(NetCloneConfig::default(), 4, 2, WorkExecutor::Synthetic)?;
//! let mut client = tb.client(7)?;
//! let reply = client.call(RpcOp::Echo { class_ns: 100_000 }, Duration::from_secs(1)).unwrap();
//! println!("answered by server {} in {:?}", reply.sid, reply.latency);
//! # Ok::<(), std::io::Error>(())
//! ```

/// The PISA switch ASIC model (§2.3's constraints, §4.1's resources).
pub use netclone_asic as asic;
/// The simulated testbed and every figure/table of the evaluation (§5).
pub use netclone_cluster as cluster;
/// ★ The NetClone data plane: Algorithm 1 + §3.7 extensions.
pub use netclone_core as core;
/// Deterministic discrete-event kernel.
pub use netclone_des as des;
/// Sans-io host protocol cores shared by the DES and UDP frontends.
pub use netclone_hostcore as hostcore;
/// Client/server host models (§4.2).
pub use netclone_hosts as hosts;
/// The KV store and Redis/Memcached cost models (§5.5).
pub use netclone_kvstore as kvstore;
/// Congestion-aware link model: bandwidth, bounded queues, tail-drop/ECN.
pub use netclone_linksim as linksim;
/// The real-socket UDP runtime (soft switch + threaded hosts).
pub use netclone_net as net;
/// Compared schemes: Baseline/C-Clone fabric, LÆDGE, RackSched.
pub use netclone_policies as policies;
/// Packet formats and the wire codec (paper Fig. 3).
pub use netclone_proto as proto;
/// Histograms, summaries, tables, charts.
pub use netclone_stats as stats;
/// Service-time distributions, arrivals, Zipf, op mixes (§5.1.2).
pub use netclone_workloads as workloads;
