//! `repro` — regenerate any table or figure of the paper's evaluation.
//!
//! ```text
//! repro [--scale smoke|standard|full] [--jobs N] [--shards N|auto]
//!       [--fattree-k K] [--oversub R] [--format md|csv|json] [--out DIR] [ids…]
//! repro --list
//! ```
//!
//! A thin, data-driven frontend over
//! [`netclone_cluster::harness::registry`]: every experiment id comes
//! from the registry (no per-id dispatch here), runs on a `--jobs`-wide
//! deterministic worker pool, and renders through the unified `Report`
//! artifact — the chosen format is printed to stdout and written under
//! `--out` (default `results/`).
//!
//! `--jobs` and `--shards` compose: `--jobs` fans independent simulation
//! cells across threads, `--shards` parallelises the event loop *inside*
//! each multi-rack cell (`auto` = one shard per rack; default 1 =
//! serial). Both are bit-identical to serial execution, so any
//! combination regenerates the same artifacts.

use std::path::PathBuf;
use std::process::ExitCode;

use netclone::cluster::experiments::Scale;
use netclone::cluster::harness::{default_jobs, find, registry, suggest, RunCtx};
use netclone::stats::Report;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Markdown,
    Csv,
    Json,
}

fn usage() {
    println!(
        "usage: repro [--scale smoke|standard|full] [--jobs N] [--shards N|auto] [--fattree-k K] [--oversub R] [--format md|csv|json] [--out DIR] [ids…]"
    );
    println!("       repro --list   (show every experiment id with topology, tags, title)");
    println!("With no ids, runs every experiment in the registry.");
    println!("--jobs N       experiment-level parallelism: run N simulation cells at once");
    println!("--shards N     run-level parallelism: split each multi-rack event loop into");
    println!("               N per-rack shards ('auto' = one per rack; default 1 = serial).");
    println!("               Results are bit-identical for any --jobs/--shards combination.");
    println!("--fattree-k K  override the fat-tree radix for topology experiments");
    println!("               (even, >= 4; default picked by --scale: 4/6/16)");
    println!("--oversub R    pin fat-tree sweeps to a single oversubscription ratio R");
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut scale = match Scale::try_from_env() {
        Ok(s) => s,
        Err(e) => return fail(&format!("NETCLONE_BENCH_SCALE: {e}")),
    };
    let mut out = PathBuf::from("results");
    let mut jobs = default_jobs();
    let mut shards = 1usize;
    let mut fattree_k: Option<usize> = None;
    let mut oversub: Option<f64> = None;
    let mut format = Format::Markdown;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--list" => {
                for e in registry() {
                    println!(
                        "{:<10} {:<12} [{}]  {}",
                        e.id(),
                        e.topology(),
                        e.tags().join(", "),
                        e.title()
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--scale" => {
                scale = match args.next() {
                    Some(v) => match v.parse() {
                        Ok(s) => s,
                        Err(e) => return fail(&format!("--scale: {e}")),
                    },
                    None => return fail("--scale needs a value (smoke|standard|full)"),
                };
            }
            "--jobs" => {
                jobs = match args.next().map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) if n >= 1 => n,
                    _ => return fail("--jobs needs a positive integer"),
                };
            }
            "--shards" => {
                shards = match args.next().as_deref() {
                    Some("auto") => 0,
                    Some(v) => match v.parse::<usize>() {
                        Ok(n) if n >= 1 => n,
                        _ => return fail("--shards needs a positive integer or 'auto'"),
                    },
                    None => return fail("--shards needs a value (N or 'auto')"),
                };
            }
            "--fattree-k" => {
                fattree_k = match args.next().map(|v| v.parse::<usize>()) {
                    Some(Ok(k)) if k >= 4 && k % 2 == 0 => Some(k),
                    _ => return fail("--fattree-k needs an even integer >= 4"),
                };
            }
            "--oversub" => {
                oversub = match args.next().map(|v| v.parse::<f64>()) {
                    Some(Ok(r)) if r >= 1.0 => Some(r),
                    _ => return fail("--oversub needs a ratio >= 1.0"),
                };
            }
            "--format" => {
                format = match args.next().as_deref() {
                    Some("md") => Format::Markdown,
                    Some("csv") => Format::Csv,
                    Some("json") => Format::Json,
                    other => {
                        return fail(&format!("unknown format {other:?} (md|csv|json)"));
                    }
                };
            }
            "--out" => {
                out = match args.next() {
                    Some(dir) => PathBuf::from(dir),
                    None => return fail("--out needs a directory"),
                };
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                return fail(&format!("unknown flag {flag:?}; try --help"));
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        ids = registry().iter().map(|e| e.id().to_string()).collect();
    }

    // Resolve every id up front so a typo fails before hours of sweeps.
    let mut experiments = Vec::new();
    for id in &ids {
        match find(id) {
            Some(e) => experiments.push(e),
            None => {
                let near = suggest(id);
                let hint = if near.is_empty() {
                    "try --list".to_string()
                } else {
                    format!("did you mean {}?", near.join(" or "))
                };
                return fail(&format!("unknown experiment id {id:?}; {hint}"));
            }
        }
    }

    if let Err(e) = std::fs::create_dir_all(&out) {
        return fail(&format!("cannot create {}: {e}", out.display()));
    }
    let mut ctx = RunCtx::new(scale)
        .with_jobs(jobs)
        .with_shards(shards)
        .with_progress(|msg| eprint!("\r   {msg} "));
    if let Some(k) = fattree_k {
        ctx = ctx.with_fattree_k(k);
    }
    if let Some(r) = oversub {
        ctx = ctx.with_oversub(r);
    }
    for exp in experiments {
        let t0 = std::time::Instant::now();
        eprintln!(
            "== running {} at {scale:?} scale on {jobs} thread(s)…",
            exp.id()
        );
        let report = exp.run(&ctx);
        eprintln!();
        if let Err(e) = emit(&report, format, &out) {
            return fail(&format!("cannot write results for {}: {e}", report.id));
        }
        eprintln!(
            "== {} done in {:.1}s",
            report.id,
            t0.elapsed().as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}

/// Prints the report in the chosen format and writes the matching
/// artifact file(s) under `out` — the single emit path for every id.
fn emit(report: &Report, format: Format, out: &std::path::Path) -> std::io::Result<()> {
    match format {
        Format::Markdown => {
            println!("{}", report.to_markdown());
            report.write_markdown(out)?;
            report.write_csv(out)
        }
        Format::Csv => {
            for (stem, csv) in report.to_csv() {
                println!("{stem}.csv:\n{csv}");
            }
            report.write_csv(out)
        }
        Format::Json => {
            println!("{}", report.to_json());
            report.write_json(out)
        }
    }
}
