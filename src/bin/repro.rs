//! `repro` — regenerate any table or figure of the paper's evaluation.
//!
//! ```text
//! repro [--scale smoke|standard|full] [--out DIR] [ids…]
//! repro --list
//! ```
//!
//! With no ids, runs everything. Results print as markdown and are written
//! as CSV under `--out` (default `results/`).

use std::path::PathBuf;

use netclone_cluster::experiments::{
    ablations, fig07, fig08, fig09, fig10, fig11, fig12, fig13, fig14, fig15, fig16, resources,
    table1, Scale,
};

const ALL: &[&str] = &[
    "tab01",
    "tab-res",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "ablations",
];

fn main() {
    let mut scale = Scale::from_env();
    let mut out = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--list" => {
                for id in ALL {
                    println!("{id}");
                }
                return;
            }
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("smoke") => Scale::Smoke,
                    Some("standard") => Scale::Standard,
                    Some("full") => Scale::Full,
                    other => {
                        eprintln!("unknown scale {other:?} (smoke|standard|full)");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!("usage: repro [--scale smoke|standard|full] [--out DIR] [ids…]");
                println!("ids: {}", ALL.join(" "));
                return;
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        ids = ALL.iter().map(|s| s.to_string()).collect();
    }
    std::fs::create_dir_all(&out).expect("create results dir");

    for id in &ids {
        let t0 = std::time::Instant::now();
        eprintln!("== running {id} at {scale:?} scale…");
        match id.as_str() {
            "tab01" => {
                println!("{}", table1::render());
                table1::to_table()
                    .write_csv(out.join("tab01.csv"))
                    .expect("write");
            }
            "tab-res" => {
                println!("{}", resources::render());
                resources::to_table()
                    .write_csv(out.join("tab_resources.csv"))
                    .expect("write");
            }
            "fig07" => emit(fig07::run(scale), &out),
            "fig08" => emit(fig08::run(scale), &out),
            "fig09" => emit(fig09::run(scale), &out),
            "fig10" => emit(fig10::run(scale), &out),
            "fig11" => emit(fig11::run(scale), &out),
            "fig12" => emit(fig12::run(scale), &out),
            "fig13" => {
                let f = fig13::run(scale);
                println!("{}", f.render());
                f.write_csv(&out).expect("write");
            }
            "fig14" => emit(fig14::run(scale), &out),
            "fig15" => emit(fig15::run(scale), &out),
            "fig16" => {
                let f = fig16::run(scale);
                println!("{}", f.render());
                f.write_csv(&out).expect("write");
            }
            "ablations" => {
                println!("{}", ablations::render(scale));
                ablations::filter_tables(scale)
                    .to_table()
                    .write_csv(out.join("ablation_filter_tables.csv"))
                    .expect("write");
                ablations::group_ordering(scale)
                    .to_table()
                    .write_csv(out.join("ablation_group_ordering.csv"))
                    .expect("write");
            }
            other => {
                eprintln!("unknown experiment id {other:?}; try --list");
                std::process::exit(2);
            }
        }
        eprintln!("== {id} done in {:.1}s", t0.elapsed().as_secs_f64());
    }
}

fn emit(fig: netclone_cluster::experiments::panel::Figure, out: &std::path::Path) {
    println!("{}", fig.render());
    fig.write_csv(out).expect("write csv");
}
