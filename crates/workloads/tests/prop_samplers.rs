//! Property tests for the samplers: determinism under a fixed seed, range
//! safety, and basic statistical sanity under arbitrary parameters.

use netclone_workloads::{
    sample_exp, Jitter, KvMix, PoissonArrivals, ServiceShape, SyntheticWorkload, ZipfSampler,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same seed → same stream, for every sampler.
    #[test]
    fn samplers_are_deterministic(seed in any::<u64>(), mean in 1u64..1_000_000) {
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert_eq!(
                sample_exp(&mut a, mean as f64),
                sample_exp(&mut b, mean as f64)
            );
        }
    }

    /// Zipf samples always fall inside the population.
    #[test]
    fn zipf_in_range(n in 1usize..5_000, theta in 0.0f64..1.5, seed in any::<u64>()) {
        let z = ZipfSampler::new(n, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..256 {
            prop_assert!((z.sample(&mut rng) as usize) < n);
        }
    }

    /// Jitter either leaves the value alone or multiplies by the factor.
    #[test]
    fn jitter_output_is_binary(p in 0.0f64..1.0, v in 1u64..1_000_000, seed in any::<u64>()) {
        let j = Jitter { p, factor: 15 };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let out = j.apply(&mut rng, v);
            prop_assert!(out == v || out == v * 15, "unexpected jitter output {out}");
        }
    }

    /// Arrival gaps are positive and roughly match the configured rate.
    #[test]
    fn arrival_gaps_positive(rate in 1_000.0f64..10_000_000.0, seed in any::<u64>()) {
        let p = PoissonArrivals::new(rate);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..128 {
            prop_assert!(p.next_gap_ns(&mut rng) >= 1);
        }
    }

    /// Service shapes produce finite values with plausible magnitude.
    #[test]
    fn shapes_scale_with_class(class in 1_000u64..10_000_000, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for shape in [ServiceShape::Deterministic, ServiceShape::Exponential, ServiceShape::Gamma4] {
            let mut total = 0u64;
            let n = 64;
            for _ in 0..n {
                total += shape.sample(&mut rng, class);
            }
            let mean = total as f64 / n as f64;
            // Loose: within 8x either way even for heavy-tailed draws.
            prop_assert!(mean < class as f64 * 8.0, "{shape:?} mean {mean}");
            prop_assert!(mean > class as f64 / 8.0, "{shape:?} mean {mean}");
        }
    }

    /// Bimodal classes only ever return the two configured values.
    #[test]
    fn bimodal_classes_are_closed(p_heavy in 0.0f64..1.0, seed in any::<u64>()) {
        let wl = SyntheticWorkload::Bimodal {
            p_heavy,
            light_ns: 25_000,
            heavy_ns: 250_000,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..128 {
            let c = wl.sample_class(&mut rng);
            prop_assert!(c == 25_000 || c == 250_000);
        }
    }

    /// Read mixes never emit writes.
    #[test]
    fn read_mix_never_writes(get_frac in 0.0f64..1.0, seed in any::<u64>()) {
        let mix = KvMix::read_mix(get_frac, 100, ZipfSampler::new(100, 0.99));
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..128 {
            let op = mix.sample(&mut rng);
            prop_assert!(op.is_cloneable(), "read mix produced a write: {op:?}");
        }
    }
}
