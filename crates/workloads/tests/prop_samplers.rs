//! Property tests for the samplers: determinism under a fixed seed, range
//! safety, and basic statistical sanity under arbitrary parameters.

use netclone_proto::RpcOp;
use netclone_workloads::{
    bounded_pareto_mean, sample_exp, Jitter, KvMix, PoissonArrivals, ServiceShape,
    SyntheticWorkload, ZipfSampler,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same seed → same stream, for every sampler.
    #[test]
    fn samplers_are_deterministic(seed in any::<u64>(), mean in 1u64..1_000_000) {
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert_eq!(
                sample_exp(&mut a, mean as f64),
                sample_exp(&mut b, mean as f64)
            );
        }
    }

    /// Zipf samples always fall inside the population.
    #[test]
    fn zipf_in_range(n in 1usize..5_000, theta in 0.0f64..1.5, seed in any::<u64>()) {
        let z = ZipfSampler::new(n, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..256 {
            prop_assert!((z.sample(&mut rng) as usize) < n);
        }
    }

    /// Jitter either leaves the value alone or multiplies by the factor.
    #[test]
    fn jitter_output_is_binary(p in 0.0f64..1.0, v in 1u64..1_000_000, seed in any::<u64>()) {
        let j = Jitter { p, factor: 15 };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let out = j.apply(&mut rng, v);
            prop_assert!(out == v || out == v * 15, "unexpected jitter output {out}");
        }
    }

    /// Arrival gaps are positive and roughly match the configured rate.
    #[test]
    fn arrival_gaps_positive(rate in 1_000.0f64..10_000_000.0, seed in any::<u64>()) {
        let p = PoissonArrivals::new(rate);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..128 {
            prop_assert!(p.next_gap_ns(&mut rng) >= 1);
        }
    }

    /// Service shapes produce finite values with plausible magnitude.
    #[test]
    fn shapes_scale_with_class(class in 1_000u64..10_000_000, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for shape in [ServiceShape::Deterministic, ServiceShape::Exponential, ServiceShape::Gamma4] {
            let mut total = 0u64;
            let n = 64;
            for _ in 0..n {
                total += shape.sample(&mut rng, class);
            }
            let mean = total as f64 / n as f64;
            // Loose: within 8x either way even for heavy-tailed draws.
            prop_assert!(mean < class as f64 * 8.0, "{shape:?} mean {mean}");
            prop_assert!(mean > class as f64 / 8.0, "{shape:?} mean {mean}");
        }
    }

    /// Bimodal classes only ever return the two configured values.
    #[test]
    fn bimodal_classes_are_closed(p_heavy in 0.0f64..1.0, seed in any::<u64>()) {
        let wl = SyntheticWorkload::Bimodal {
            p_heavy,
            light_ns: 25_000,
            heavy_ns: 250_000,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..128 {
            let c = wl.sample_class(&mut rng);
            prop_assert!(c == 25_000 || c == 250_000);
        }
    }

    /// Read mixes never emit writes.
    #[test]
    fn read_mix_never_writes(get_frac in 0.0f64..1.0, seed in any::<u64>()) {
        let mix = KvMix::read_mix(get_frac, 100, ZipfSampler::new(100, 0.99));
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..128 {
            let op = mix.sample(&mut rng);
            prop_assert!(op.is_cloneable(), "read mix produced a write: {op:?}");
        }
    }

    /// Zipf popularity is monotone in rank: the low-rank half of the
    /// population draws at least as much mass as the high-rank half, and
    /// rank 0 is (weakly) the single most popular key. Keys are numbered
    /// in popularity order, so this is the property the hot-key cost
    /// model ([`netclone_kvstore`]) leans on.
    #[test]
    fn zipf_frequency_is_monotone_in_rank(
        n in 4usize..2_000,
        theta in 0.4f64..1.3,
        seed in any::<u64>(),
    ) {
        let z = ZipfSampler::new(n, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        let draws = 4_096;
        let mut counts = vec![0u64; n];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let half = n / 2;
        let low: u64 = counts[..half].iter().sum();
        let high: u64 = counts[half..half * 2].iter().sum();
        prop_assert!(
            low >= high,
            "low ranks [0,{half}) drew {low} < high ranks {high} (n={n}, theta={theta})"
        );
        let max = counts.iter().copied().max().unwrap();
        prop_assert!(
            counts[0] * 2 >= max,
            "rank 0 ({}) far from the mode ({max})",
            counts[0]
        );
    }

    /// The GET/SCAN split of a read mix conserves the configured ratio.
    #[test]
    fn read_mix_conserves_get_fraction(get_frac in 0.05f64..0.95, seed in any::<u64>()) {
        let mix = KvMix::read_mix(get_frac, 100, ZipfSampler::new(1_000, 0.99));
        let mut rng = StdRng::seed_from_u64(seed);
        let draws = 8_192u64;
        let mut gets = 0u64;
        for _ in 0..draws {
            match mix.sample(&mut rng) {
                RpcOp::Get { .. } => gets += 1,
                RpcOp::Scan { .. } => {}
                other => prop_assert!(false, "read mix emitted {other:?}"),
            }
        }
        let observed = gets as f64 / draws as f64;
        // 8192 draws: a 6-sigma band is ~0.033 at p=0.5.
        prop_assert!(
            (observed - get_frac).abs() < 0.05,
            "GET fraction {observed:.3} vs configured {get_frac:.3}"
        );
    }

    /// Bimodal class draws match the configured mixture weight.
    #[test]
    fn bimodal_mixture_weight_holds(p_heavy in 0.05f64..0.95, seed in any::<u64>()) {
        let wl = SyntheticWorkload::Bimodal {
            p_heavy,
            light_ns: 25_000,
            heavy_ns: 250_000,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let draws = 8_192u64;
        let heavy = (0..draws)
            .filter(|_| wl.sample_class(&mut rng) == 250_000)
            .count() as f64;
        let observed = heavy / draws as f64;
        prop_assert!(
            (observed - p_heavy).abs() < 0.05,
            "heavy fraction {observed:.3} vs configured {p_heavy:.3}"
        );
    }

    /// Heavy-tail class draws stay inside the configured bounds and their
    /// sample mean converges on the analytic truncated-Pareto mean.
    #[test]
    fn heavy_tail_draws_match_analytic_mean(
        alpha in 0.8f64..2.5,
        seed in any::<u64>(),
    ) {
        let (min_ns, max_ns) = (5_000u64, 2_500_000u64);
        let wl = SyntheticWorkload::HeavyTail { alpha, min_ns, max_ns };
        let mut rng = StdRng::seed_from_u64(seed);
        let draws = 16_384;
        let mut total = 0u64;
        for _ in 0..draws {
            let c = wl.sample_class(&mut rng);
            prop_assert!((min_ns..=max_ns).contains(&c), "draw {c} out of bounds");
            total += c;
        }
        let sample_mean = total as f64 / draws as f64;
        let analytic = bounded_pareto_mean(alpha, min_ns, max_ns);
        prop_assert_eq!(wl.mean_class_ns(), analytic);
        // The truncated tail keeps the variance finite, but alpha near
        // 0.8 still needs a generous band.
        prop_assert!(
            (sample_mean - analytic).abs() < analytic * 0.35,
            "sample mean {sample_mean:.0} vs analytic {analytic:.0} (alpha={alpha})"
        );
    }
}
