//! Service-time distributions.
//!
//! The split of responsibilities mirrors how variability arises in a real
//! cluster (and in the paper's model):
//!
//! * the *class* of a request (simple vs. complex RPC) is a property of the
//!   request, drawn once at the client — both the original and the clone of
//!   a request share it;
//! * the *execution time* around that class is a property of the server
//!   visit (cache state, interference, scheduling) — drawn independently at
//!   each server, which is precisely why cloning masks it.

use rand::Rng;

/// Draws from an exponential distribution with the given mean, via inverse
/// CDF. Returns whole nanoseconds.
pub fn sample_exp<R: Rng + ?Sized>(rng: &mut R, mean_ns: f64) -> u64 {
    // u ∈ (0, 1]: guard against ln(0).
    let u: f64 = 1.0 - rng.random::<f64>();
    let x = -mean_ns * u.ln();
    x.max(0.0).round() as u64
}

/// Draws from a Gamma(k=4, θ=mean/4) distribution (sum of four
/// exponentials): same mean, CV² = 0.25. Used for the KV service model,
/// where per-op times are much less dispersed than a full exponential.
pub fn sample_gamma4<R: Rng + ?Sized>(rng: &mut R, mean_ns: f64) -> u64 {
    let quarter = mean_ns / 4.0;
    (0..4).map(|_| sample_exp(rng, quarter)).sum()
}

/// Draws from a bounded Pareto distribution on `[min_ns, max_ns]` with
/// tail index `alpha`, via inverse CDF. One uniform draw per sample.
///
/// The bounded form keeps the mean finite even for `alpha <= 1` and caps
/// the worst-case service time (an unbounded Pareto would occasionally
/// draw a request longer than the whole measurement window, which
/// measures the window edge rather than the policy).
pub fn sample_bounded_pareto<R: Rng + ?Sized>(
    rng: &mut R,
    alpha: f64,
    min_ns: u64,
    max_ns: u64,
) -> u64 {
    debug_assert!(alpha > 0.0 && min_ns > 0 && min_ns <= max_ns);
    let l = min_ns as f64;
    let h = max_ns as f64;
    // u ∈ [0, 1); F⁻¹(u) = L · (1 − u·(1 − (L/H)^α))^(−1/α), which maps
    // u = 0 → L and u → 1 → H.
    let u: f64 = rng.random::<f64>();
    let ratio = (l / h).powf(alpha);
    let x = l * (1.0 - u * (1.0 - ratio)).powf(-1.0 / alpha);
    (x.round() as u64).clamp(min_ns, max_ns)
}

/// Analytic mean of the bounded Pareto on `[min_ns, max_ns]` with tail
/// index `alpha` (finite for every `alpha > 0` thanks to the bound).
pub fn bounded_pareto_mean(alpha: f64, min_ns: u64, max_ns: u64) -> f64 {
    let l = min_ns as f64;
    let h = max_ns as f64;
    if (alpha - 1.0).abs() < 1e-9 {
        // α = 1 limit: E[X] = ln(H/L) / (1/L − 1/H).
        return (h / l).ln() / (1.0 / l - 1.0 / h);
    }
    let la = l.powf(alpha);
    let norm = 1.0 - (l / h).powf(alpha);
    la / norm * alpha / (alpha - 1.0) * (l.powf(1.0 - alpha) - h.powf(1.0 - alpha))
}

/// How a server turns a request's intrinsic class into an execution time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServiceShape {
    /// Execution time is exactly the class (useful in deterministic tests).
    Deterministic,
    /// Exponential with mean = class (the paper's synthetic workloads).
    Exponential,
    /// Gamma(4) with mean = class (the KV workloads: moderate dispersion).
    Gamma4,
}

impl ServiceShape {
    /// Samples an execution time for a request of the given class.
    pub fn sample<R: Rng + ?Sized>(self, rng: &mut R, class_ns: u64) -> u64 {
        match self {
            ServiceShape::Deterministic => class_ns,
            ServiceShape::Exponential => sample_exp(rng, class_ns as f64),
            ServiceShape::Gamma4 => sample_gamma4(rng, class_ns as f64),
        }
    }
}

/// The synthetic workload families of §5.1.2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SyntheticWorkload {
    /// Every request belongs to one class of the given mean (e.g.
    /// `Exp(25)`: class 25 μs, execution exponential around it).
    Exp {
        /// Mean service time in nanoseconds.
        mean_ns: u64,
    },
    /// Two classes: `heavy_ns` with probability `p_heavy`, else `light_ns`
    /// (e.g. `Bimodal(90%-25, 10%-250)`).
    Bimodal {
        /// Probability of the heavy class.
        p_heavy: f64,
        /// Light class mean, ns.
        light_ns: u64,
        /// Heavy class mean, ns.
        heavy_ns: u64,
    },
    /// A continuum of classes: each request's class is a bounded-Pareto
    /// draw on `[min_ns, max_ns]` with tail index `alpha` — the
    /// adversarial heavy-tail shape (most requests near `min_ns`, a
    /// power-law tail of monsters up to `max_ns`).
    HeavyTail {
        /// Tail index; smaller = heavier tail (1.1–1.5 is typical).
        alpha: f64,
        /// Smallest class, ns.
        min_ns: u64,
        /// Largest class, ns (bounds the tail so the mean stays finite).
        max_ns: u64,
    },
}

impl SyntheticWorkload {
    /// Draws the intrinsic class of one request.
    pub fn sample_class<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            SyntheticWorkload::Exp { mean_ns } => mean_ns,
            SyntheticWorkload::Bimodal {
                p_heavy,
                light_ns,
                heavy_ns,
            } => {
                if rng.random::<f64>() < p_heavy {
                    heavy_ns
                } else {
                    light_ns
                }
            }
            SyntheticWorkload::HeavyTail {
                alpha,
                min_ns,
                max_ns,
            } => sample_bounded_pareto(rng, alpha, min_ns, max_ns),
        }
    }

    /// Mean class value (for utilisation/offered-load calculations).
    pub fn mean_class_ns(&self) -> f64 {
        match *self {
            SyntheticWorkload::Exp { mean_ns } => mean_ns as f64,
            SyntheticWorkload::Bimodal {
                p_heavy,
                light_ns,
                heavy_ns,
            } => p_heavy * heavy_ns as f64 + (1.0 - p_heavy) * light_ns as f64,
            SyntheticWorkload::HeavyTail {
                alpha,
                min_ns,
                max_ns,
            } => bounded_pareto_mean(alpha, min_ns, max_ns),
        }
    }

    /// Short label used in experiment output (e.g. `Exp(25)`).
    pub fn label(&self) -> String {
        match *self {
            SyntheticWorkload::Exp { mean_ns } => format!("Exp({})", mean_ns / 1_000),
            SyntheticWorkload::Bimodal {
                p_heavy,
                light_ns,
                heavy_ns,
            } => format!(
                "Bimodal({}%-{},{}%-{})",
                ((1.0 - p_heavy) * 100.0).round() as u32,
                light_ns / 1_000,
                (p_heavy * 100.0).round() as u32,
                heavy_ns / 1_000
            ),
            SyntheticWorkload::HeavyTail {
                alpha,
                min_ns,
                max_ns,
            } => format!(
                "HeavyTail({alpha:.1},{}-{})",
                min_ns / 1_000,
                max_ns / 1_000
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_mean_converges() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mean = 25_000.0;
        let sum: u64 = (0..n).map(|_| sample_exp(&mut rng, mean)).sum();
        let got = sum as f64 / n as f64;
        assert!(
            (got - mean).abs() / mean < 0.02,
            "exp mean off: got {got}, want {mean}"
        );
    }

    #[test]
    fn gamma4_mean_and_dispersion() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000usize;
        let mean = 50_000.0;
        let xs: Vec<u64> = (0..n).map(|_| sample_gamma4(&mut rng, mean)).collect();
        let got_mean = xs.iter().sum::<u64>() as f64 / n as f64;
        assert!((got_mean - mean).abs() / mean < 0.02);
        let var = xs
            .iter()
            .map(|&x| (x as f64 - got_mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64;
        let cv2 = var / (got_mean * got_mean);
        assert!(
            (cv2 - 0.25).abs() < 0.02,
            "gamma4 CV² should be 0.25, got {cv2}"
        );
    }

    #[test]
    fn deterministic_shape_is_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(ServiceShape::Deterministic.sample(&mut rng, 777), 777);
    }

    #[test]
    fn bimodal_class_fractions() {
        let wl = SyntheticWorkload::Bimodal {
            p_heavy: 0.1,
            light_ns: 25_000,
            heavy_ns: 250_000,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let heavy = (0..n)
            .filter(|_| wl.sample_class(&mut rng) == 250_000)
            .count();
        let frac = heavy as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "heavy fraction {frac}");
    }

    #[test]
    fn mean_class_is_weighted() {
        let wl = SyntheticWorkload::Bimodal {
            p_heavy: 0.1,
            light_ns: 25_000,
            heavy_ns: 250_000,
        };
        assert!((wl.mean_class_ns() - 47_500.0).abs() < 1e-9);
        assert_eq!(
            SyntheticWorkload::Exp { mean_ns: 25_000 }.mean_class_ns(),
            25_000.0
        );
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(
            SyntheticWorkload::Exp { mean_ns: 25_000 }.label(),
            "Exp(25)"
        );
        assert_eq!(
            SyntheticWorkload::Bimodal {
                p_heavy: 0.1,
                light_ns: 25_000,
                heavy_ns: 250_000
            }
            .label(),
            "Bimodal(90%-25,10%-250)"
        );
    }

    #[test]
    fn bounded_pareto_stays_in_bounds_and_converges_to_its_mean() {
        let (alpha, lo, hi) = (1.3, 5_000, 2_500_000);
        let mut rng = StdRng::seed_from_u64(6);
        let n = 400_000usize;
        let mut sum = 0u64;
        for _ in 0..n {
            let x = sample_bounded_pareto(&mut rng, alpha, lo, hi);
            assert!((lo..=hi).contains(&x), "draw {x} escaped [{lo}, {hi}]");
            sum += x;
        }
        let got = sum as f64 / n as f64;
        let want = bounded_pareto_mean(alpha, lo, hi);
        assert!(
            (got - want).abs() / want < 0.05,
            "pareto mean off: got {got}, want {want}"
        );
    }

    #[test]
    fn bounded_pareto_mean_alpha_one_limit_is_continuous() {
        let at_one = bounded_pareto_mean(1.0, 10_000, 1_000_000);
        let near_one = bounded_pareto_mean(1.0 + 1e-7, 10_000, 1_000_000);
        assert!((at_one - near_one).abs() / at_one < 1e-3);
    }

    #[test]
    fn heavy_tail_label_and_mean() {
        let wl = SyntheticWorkload::HeavyTail {
            alpha: 1.3,
            min_ns: 5_000,
            max_ns: 2_500_000,
        };
        assert_eq!(wl.label(), "HeavyTail(1.3,5-2500)");
        assert!((wl.mean_class_ns() - bounded_pareto_mean(1.3, 5_000, 2_500_000)).abs() < 1e-9);
    }

    #[test]
    fn exp_never_returns_absurd_values_for_zero_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(sample_exp(&mut rng, 0.0), 0);
        }
    }
}
