//! Open-loop Poisson arrival process.
//!
//! §4.2: "The client measures the throughput and latency by generating
//! requests at a given target sending rate … The inter-arrival time between
//! two consecutive requests is exponentially distributed."

use rand::Rng;

use crate::dist::sample_exp;

/// Generates exponential inter-arrival gaps for a target request rate.
#[derive(Clone, Copy, Debug)]
pub struct PoissonArrivals {
    mean_gap_ns: f64,
}

impl PoissonArrivals {
    /// Creates a process with the given rate in requests/second.
    ///
    /// Panics on a non-positive rate: an open-loop generator with no rate
    /// is a configuration bug.
    pub fn new(rate_rps: f64) -> Self {
        assert!(rate_rps > 0.0, "arrival rate must be positive");
        PoissonArrivals {
            mean_gap_ns: 1e9 / rate_rps,
        }
    }

    /// Draws the gap to the next arrival, in nanoseconds (minimum 1 ns so
    /// the event loop always advances).
    pub fn next_gap_ns<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        sample_exp(rng, self.mean_gap_ns).max(1)
    }

    /// The configured rate, requests/second.
    pub fn rate_rps(&self) -> f64 {
        1e9 / self.mean_gap_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_gap_matches_rate() {
        let p = PoissonArrivals::new(1_000_000.0); // 1 MRPS → 1000 ns gaps
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let total: u64 = (0..n).map(|_| p.next_gap_ns(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1_000.0).abs() / 1_000.0 < 0.02, "mean gap {mean}");
    }

    #[test]
    fn gaps_are_never_zero() {
        let p = PoissonArrivals::new(1e9); // pathologically fast
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(p.next_gap_ns(&mut rng) >= 1);
        }
    }

    #[test]
    fn rate_round_trips() {
        let p = PoissonArrivals::new(123_456.0);
        assert!((p.rate_rps() - 123_456.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = PoissonArrivals::new(0.0);
    }
}
