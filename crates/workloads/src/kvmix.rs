//! GET/SCAN/PUT operation mixes for the Redis/Memcached experiments.
//!
//! §5.5: "We vary the portion of GET and SCAN requests to 99%-GET,1%-SCAN
//! and 90%-GET,10%-SCAN where GET reads a single object and SCAN reads 100
//! objects."

use netclone_proto::{KvKey, RpcOp};
use rand::Rng;

use crate::zipf::ZipfSampler;

/// A KV operation mix over a Zipf-distributed key population.
#[derive(Clone, Debug)]
pub struct KvMix {
    /// Fraction of GET requests (e.g. 0.99).
    pub get_frac: f64,
    /// Fraction of SCAN requests (e.g. 0.01). GET + SCAN + PUT must be 1.
    pub scan_frac: f64,
    /// Objects read by one SCAN (the paper uses 100).
    pub scan_count: u16,
    /// Value length for PUTs (the paper's objects are 64 B).
    pub put_value_len: u16,
    keys: ZipfSampler,
}

impl KvMix {
    /// Builds a GET/SCAN mix with no writes (the paper's read experiments).
    pub fn read_mix(get_frac: f64, scan_count: u16, keys: ZipfSampler) -> Self {
        assert!((0.0..=1.0).contains(&get_frac), "get_frac out of range");
        KvMix {
            get_frac,
            scan_frac: 1.0 - get_frac,
            scan_count,
            put_value_len: 64,
            keys,
        }
    }

    /// Builds a mix with writes; fractions must sum to 1.
    pub fn with_puts(
        get_frac: f64,
        scan_frac: f64,
        scan_count: u16,
        put_value_len: u16,
        keys: ZipfSampler,
    ) -> Self {
        let put = 1.0 - get_frac - scan_frac;
        assert!(
            put >= -1e-9,
            "fractions exceed 1: get={get_frac} scan={scan_frac}"
        );
        KvMix {
            get_frac,
            scan_frac,
            scan_count,
            put_value_len,
            keys,
        }
    }

    /// Draws one operation.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> RpcOp {
        let u: f64 = rng.random();
        let key = KvKey::from_index(self.keys.sample(rng));
        if u < self.get_frac {
            RpcOp::Get { key }
        } else if u < self.get_frac + self.scan_frac {
            RpcOp::Scan {
                key,
                count: self.scan_count,
            }
        } else {
            RpcOp::Put {
                key,
                value_len: self.put_value_len,
            }
        }
    }

    /// Number of objects in the key population.
    pub fn population(&self) -> usize {
        self.keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_keys() -> ZipfSampler {
        ZipfSampler::new(1_000, 0.99)
    }

    #[test]
    fn read_mix_fractions_converge() {
        let mix = KvMix::read_mix(0.9, 100, small_keys());
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut scans = 0;
        for _ in 0..n {
            match mix.sample(&mut rng) {
                RpcOp::Scan { count, .. } => {
                    assert_eq!(count, 100);
                    scans += 1;
                }
                RpcOp::Get { .. } => {}
                other => panic!("unexpected op {other:?} in read mix"),
            }
        }
        let frac = scans as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "scan fraction {frac}");
    }

    #[test]
    fn put_mix_emits_writes() {
        let mix = KvMix::with_puts(0.5, 0.25, 10, 64, small_keys());
        let mut rng = StdRng::seed_from_u64(2);
        let n = 40_000;
        let puts = (0..n)
            .filter(|_| matches!(mix.sample(&mut rng), RpcOp::Put { .. }))
            .count();
        let frac = puts as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "put fraction {frac}");
    }

    #[test]
    fn keys_come_from_population() {
        let mix = KvMix::read_mix(1.0, 100, small_keys());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            match mix.sample(&mut rng) {
                RpcOp::Get { key } => assert!(key.index() < 1_000),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn overfull_fractions_panic() {
        let _ = KvMix::with_puts(0.9, 0.2, 10, 64, small_keys());
    }
}
