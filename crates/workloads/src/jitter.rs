//! The LÆDGE-style service-time jitter model (§5.1.2).
//!
//! "We consider p = 0.01 and p = 0.001 to represent a high variability and
//! a low variability, where p denotes the jitter probability to experience
//! excessive long latency … the runtime of an RPC experiencing the
//! unexpected jitter can take 15 times more than the normal case."

use rand::Rng;

/// Multiplies a drawn service time by `factor` with probability `p`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Jitter {
    /// Probability that a request hits the slow path.
    pub p: f64,
    /// Slow-path multiplier (the paper uses 15).
    pub factor: u32,
}

impl Jitter {
    /// No jitter at all (deterministic tests).
    pub const NONE: Jitter = Jitter { p: 0.0, factor: 1 };

    /// High variability: p = 0.01, ×15 (the paper's default).
    pub const HIGH: Jitter = Jitter {
        p: 0.01,
        factor: 15,
    };

    /// Low variability: p = 0.001, ×15 (Fig. 14).
    pub const LOW: Jitter = Jitter {
        p: 0.001,
        factor: 15,
    };

    /// Applies the jitter to a drawn service time.
    pub fn apply<R: Rng + ?Sized>(&self, rng: &mut R, service_ns: u64) -> u64 {
        if self.p > 0.0 && rng.random::<f64>() < self.p {
            service_ns.saturating_mul(self.factor as u64)
        } else {
            service_ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        for v in [0u64, 1, 25_000, u64::MAX] {
            assert_eq!(Jitter::NONE.apply(&mut rng, v), v);
        }
    }

    #[test]
    fn jitter_frequency_matches_p() {
        let mut rng = StdRng::seed_from_u64(2);
        let j = Jitter::HIGH;
        let n = 200_000;
        let hits = (0..n)
            .filter(|_| j.apply(&mut rng, 1_000) == 15_000)
            .count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.01).abs() < 0.002, "hit fraction {frac}");
    }

    #[test]
    fn jittered_value_is_scaled_by_factor() {
        let mut rng = StdRng::seed_from_u64(3);
        let j = Jitter { p: 1.0, factor: 15 };
        assert_eq!(j.apply(&mut rng, 25_000), 375_000);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut rng = StdRng::seed_from_u64(4);
        let j = Jitter { p: 1.0, factor: 15 };
        assert_eq!(j.apply(&mut rng, u64::MAX / 2), u64::MAX);
    }

    #[test]
    fn presets_match_paper() {
        assert_eq!(Jitter::HIGH.p, 0.01);
        assert_eq!(Jitter::LOW.p, 0.001);
        assert_eq!(Jitter::HIGH.factor, 15);
        assert_eq!(Jitter::LOW.factor, 15);
    }
}
