//! The exact workload configurations used in the paper's evaluation,
//! as named constructors so every experiment and test refers to one
//! definition.

use crate::dist::SyntheticWorkload;

/// `Exp(25)` — the default workload: common short-lasting RPCs (§5.1.2).
pub fn exp25() -> SyntheticWorkload {
    SyntheticWorkload::Exp { mean_ns: 25_000 }
}

/// `Exp(50)` — longer RPCs, Fig. 7(c).
pub fn exp50() -> SyntheticWorkload {
    SyntheticWorkload::Exp { mean_ns: 50_000 }
}

/// `Bimodal(90%-25, 10%-250)` — a mix of simple and complex RPCs,
/// Fig. 7(b).
pub fn bimodal_25_250() -> SyntheticWorkload {
    SyntheticWorkload::Bimodal {
        p_heavy: 0.10,
        light_ns: 25_000,
        heavy_ns: 250_000,
    }
}

/// `Bimodal(90%-50, 10%-500)` — the longer bimodal mix, Fig. 7(d).
pub fn bimodal_50_500() -> SyntheticWorkload {
    SyntheticWorkload::Bimodal {
        p_heavy: 0.10,
        light_ns: 50_000,
        heavy_ns: 500_000,
    }
}

/// `HeavyTail(1.3, 5-2500)` — the adversarial power-law mix: bounded
/// Pareto classes on 5 μs–2.5 ms with tail index 1.3 (mean ≈ 21 μs, so
/// it is load-comparable with `Exp(25)` while the p999 class is two
/// orders of magnitude past the median).
pub fn heavy_tail_25() -> SyntheticWorkload {
    SyntheticWorkload::HeavyTail {
        alpha: 1.3,
        min_ns: 5_000,
        max_ns: 2_500_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_labels() {
        assert_eq!(exp25().label(), "Exp(25)");
        assert_eq!(exp50().label(), "Exp(50)");
        assert_eq!(bimodal_25_250().label(), "Bimodal(90%-25,10%-250)");
        assert_eq!(bimodal_50_500().label(), "Bimodal(90%-50,10%-500)");
        assert_eq!(heavy_tail_25().label(), "HeavyTail(1.3,5-2500)");
    }

    #[test]
    fn preset_means() {
        assert_eq!(exp25().mean_class_ns(), 25_000.0);
        assert_eq!(bimodal_25_250().mean_class_ns(), 47_500.0);
        assert_eq!(bimodal_50_500().mean_class_ns(), 95_000.0);
        let ht = heavy_tail_25().mean_class_ns();
        assert!((15_000.0..30_000.0).contains(&ht), "heavy-tail mean {ht}");
    }
}
