//! # netclone-workloads
//!
//! Workload generation for the NetClone reproduction, mirroring §5.1.2 of
//! the paper:
//!
//! * **Synthetic RPCs** — a request carries an intrinsic *class* (e.g. the
//!   25 μs mode of `Exp(25)`, or 25/250 μs drawn 90/10 for the bimodal
//!   mix); the server then draws its actual execution time around that
//!   class ([`ServiceShape`]) and applies the LÆDGE-style jitter model
//!   ([`Jitter`]: ×15 with probability `p` ∈ {0.01, 0.001}).
//! * **Open-loop arrivals** — exponential inter-arrival gaps at a target
//!   rate ([`PoissonArrivals`]), exactly like the paper's client.
//! * **KV workloads** — Zipf-0.99 key popularity over 1 M objects and
//!   GET/SCAN mixes (99/1 and 90/10) for the Redis/Memcached experiments
//!   ([`ZipfSampler`], [`KvMix`]).
//!
//! All samplers are implemented here (inverse-CDF exponential, sum-of-four
//! exponentials Gamma, table-based Zipf) because `rand_distr` is not in the
//! approved offline dependency set; the unit tests validate their moments.

pub mod arrivals;
pub mod dist;
pub mod jitter;
pub mod kvmix;
pub mod presets;
pub mod zipf;

pub use arrivals::PoissonArrivals;
pub use dist::{
    bounded_pareto_mean, sample_bounded_pareto, sample_exp, sample_gamma4, ServiceShape,
    SyntheticWorkload,
};
pub use jitter::Jitter;
pub use kvmix::KvMix;
pub use presets::*;
pub use zipf::ZipfSampler;
