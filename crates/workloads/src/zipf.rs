//! Zipfian key-popularity sampler.
//!
//! §5.5: "clients generate read requests … with a skewed key access pattern
//! with Zipf-0.99" over 1 million objects — the standard YCSB-style skew.
//!
//! Implementation: precomputed cumulative weights + binary search. Building
//! the table is O(n) once; sampling is O(log n) with no rejection loop, and
//! the table can be shared across clients.

use rand::Rng;
use std::sync::Arc;

/// Samples object indices `0..n` with probability ∝ 1/(rank+1)^θ.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Arc<[f64]>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` objects with skew `theta` (0 = uniform,
    /// 0.99 = the paper's setting).
    ///
    /// Panics if `n == 0` or `theta` is negative/not finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one object");
        assert!(theta.is_finite() && theta >= 0.0, "invalid Zipf theta");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        // Guard against floating-point drift on the last entry.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cdf: cdf.into() }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false: the constructor rejects empty populations.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one object index in `0..len()` (0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        // partition_point returns the first index whose cdf >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut counts = [0u32; 10];
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "uniform fraction {frac}");
        }
    }

    #[test]
    fn skew_prefers_low_ranks() {
        let z = ZipfSampler::new(1_000, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mut rank0 = 0u32;
        let mut tail = 0u32;
        for _ in 0..n {
            let k = z.sample(&mut rng);
            if k == 0 {
                rank0 += 1;
            }
            if k >= 500 {
                tail += 1;
            }
        }
        // For Zipf-0.99 over 1000 items, rank 0 carries ≈ 13 % of mass,
        // and the upper half well under 20 %.
        let f0 = rank0 as f64 / n as f64;
        let ft = tail as f64 / n as f64;
        assert!(f0 > 0.10, "rank-0 mass {f0}");
        assert!(ft < 0.20, "tail mass {ft}");
    }

    #[test]
    fn theoretical_rank0_mass_matches() {
        let n = 100usize;
        let theta = 0.99f64;
        let z = ZipfSampler::new(n, theta);
        let h: f64 = (1..=n).map(|r| 1.0 / (r as f64).powf(theta)).sum();
        let expect = 1.0 / h;
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 200_000;
        let hits = (0..trials).filter(|_| z.sample(&mut rng) == 0).count();
        let got = hits as f64 / trials as f64;
        assert!((got - expect).abs() < 0.01, "got {got}, expect {expect}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(7, 0.99);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn million_object_table_builds_quickly() {
        // The paper's population: 1M objects. Construction must be cheap
        // enough for test suites.
        let z = ZipfSampler::new(1_000_000, 0.99);
        assert_eq!(z.len(), 1_000_000);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            assert!(z.sample(&mut rng) < 1_000_000);
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_population_panics() {
        let _ = ZipfSampler::new(0, 0.99);
    }
}
