//! Regenerates Figure 12: the Memcached GET/SCAN workload.
//! Run: `cargo bench -p netclone-bench --bench fig12_memcached`

use netclone_cluster::experiments::{fig12, Scale};

fn main() {
    let fig = fig12::run(Scale::from_env());
    println!("{}", fig.render());
    fig.write_csv("results").expect("write csv");
}
