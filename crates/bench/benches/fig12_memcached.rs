//! Regenerates Figure 12: the Memcached cost model (GET/SCAN mixes).
//! Run: `cargo bench -p netclone-bench --bench fig12_memcached`
//! Scale via NETCLONE_BENCH_SCALE=smoke|standard|full.

fn main() {
    netclone_bench::run_and_emit("fig12");
}
