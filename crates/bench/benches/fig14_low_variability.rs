//! Regenerates Figure 14: the low-variability (p = 0.001) synthetic runs.
//! Run: `cargo bench -p netclone-bench --bench fig14_low_variability`

use netclone_cluster::experiments::{fig14, Scale};

fn main() {
    let fig = fig14::run(Scale::from_env());
    println!("{}", fig.render());
    fig.write_csv("results").expect("write csv");
}
