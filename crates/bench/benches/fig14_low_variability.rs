//! Regenerates Figure 14: low service-time variability (p = 0.001).
//! Run: `cargo bench -p netclone-bench --bench fig14_low_variability`
//! Scale via NETCLONE_BENCH_SCALE=smoke|standard|full.

fn main() {
    netclone_bench::run_and_emit("fig14");
}
