//! Regenerates Figure 15: the impact of redundant-response filtering.
//! Run: `cargo bench -p netclone-bench --bench fig15_filtering`

use netclone_cluster::experiments::{fig15, Scale};

fn main() {
    let fig = fig15::run(Scale::from_env());
    println!("{}", fig.render());
    fig.write_csv("results").expect("write csv");
}
