//! Regenerates Figure 15: impact of redundant response filtering.
//! Run: `cargo bench -p netclone-bench --bench fig15_filtering`
//! Scale via NETCLONE_BENCH_SCALE=smoke|standard|full.

fn main() {
    netclone_bench::run_and_emit("fig15");
}
