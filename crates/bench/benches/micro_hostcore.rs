//! Criterion micro-benchmarks of the sans-io host-core hot path: the
//! per-request cost of `ClientCore::generate` + `poll` and the
//! per-response cost of `ClientCore::on_packet`, plus the server core's
//! admission + response construction.
//!
//! Every frontend — the DES event loop and the real-socket clients — pays
//! these costs once per packet, so regressions here slow both worlds.
//! Run: `cargo bench -p netclone-bench --bench micro_hostcore`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use netclone_hostcore::{ClientCore, ClientMode, ServerCore};
use netclone_proto::{CloneStatus, NetCloneHdr, RpcOp, ServerState};

fn nc_client(seed: u64) -> ClientCore {
    ClientCore::new(
        0,
        ClientMode::NetClone {
            num_groups: 30,
            num_filter_tables: 2,
        },
        seed,
    )
}

fn bench_client_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("client_core");
    let op = RpcOp::Echo { class_ns: 25_000 };

    g.bench_function("generate_poll", |b| {
        let mut core = nc_client(1);
        let mut now = 0u64;
        b.iter(|| {
            now += 1_000;
            let seq = core.generate(black_box(op), now);
            let meta = core.poll().expect("one packet");
            // Complete it immediately so `outstanding` stays O(1).
            let resp = NetCloneHdr::response_to(&meta.nc, 1, ServerState::IDLE);
            core.on_packet(&resp, now + 10);
            black_box(seq)
        });
    });

    g.bench_function("on_packet_completed", |b| {
        // Pre-generate a window of outstanding requests and answer them
        // round-robin: every on_packet takes the completion path.
        let mut core = nc_client(2);
        let mut resps = Vec::new();
        for i in 0..1024u64 {
            core.generate(op, i);
            let meta = core.poll().unwrap();
            resps.push(NetCloneHdr::response_to(&meta.nc, 1, ServerState::IDLE));
        }
        let mut i = 0usize;
        let mut now = 1_000_000u64;
        b.iter(|| {
            now += 100;
            let ev = core.on_packet(black_box(&resps[i]), now);
            i += 1;
            if i == resps.len() {
                // Regenerate the window once it drains.
                i = 0;
                for k in 0..resps.len() as u64 {
                    core.generate(op, now + k);
                    let meta = core.poll().unwrap();
                    resps[k as usize] = NetCloneHdr::response_to(&meta.nc, 1, ServerState::IDLE);
                }
            }
            black_box(ev)
        });
    });

    g.bench_function("on_packet_redundant", |b| {
        let mut core = nc_client(3);
        core.generate(op, 0);
        let meta = core.poll().unwrap();
        let resp = NetCloneHdr::response_to(&meta.nc, 1, ServerState::IDLE);
        core.on_packet(&resp, 10); // complete it: every later copy is redundant
        b.iter(|| black_box(core.on_packet(black_box(&resp), 1_000)));
    });

    g.finish();
}

fn bench_server_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("server_core");
    let req = NetCloneHdr::request(3, 1, 0, 42);

    g.bench_function("admit_respond", |b| {
        let core = ServerCore::new(0);
        b.iter(|| {
            let d = core.admit(black_box(CloneStatus::ClonedOriginal), 1);
            let resp = core.response(black_box(&req), 1);
            black_box((d, resp))
        });
    });

    g.bench_function("admit_drop_clone", |b| {
        let core = ServerCore::new(0);
        b.iter(|| black_box(core.admit(black_box(CloneStatus::Clone), 3)));
    });

    g.finish();
}

criterion_group!(benches, bench_client_core, bench_server_core);
criterion_main!(benches);
