//! Regenerates Figure 13: (a) empty-queue fraction vs load; (b) repeated p99 at 90 % load, mean ± σ.
//! Run: `cargo bench -p netclone-bench --bench fig13_state_signals`
//! Scale via NETCLONE_BENCH_SCALE=smoke|standard|full.

fn main() {
    netclone_bench::run_and_emit("fig13");
}
