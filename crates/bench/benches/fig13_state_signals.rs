//! Regenerates Figure 13: (a) empty-queue fraction vs load; (b) repeated
//! p99 at 90 % load, mean ± σ.
//! Run: `cargo bench -p netclone-bench --bench fig13_state_signals`

use netclone_cluster::experiments::{fig13, Scale};

fn main() {
    let f = fig13::run(Scale::from_env());
    println!("{}", f.render());
    f.write_csv("results").expect("write csv");
}
