//! Regenerates Table 1: the qualitative comparison of cloning systems.
//! Run: `cargo bench -p netclone-bench --bench tab01_comparison`

use netclone_cluster::experiments::table1;

fn main() {
    println!("{}", table1::render());
    table1::to_table()
        .write_csv("results/tab01.csv")
        .expect("write csv");
}
