//! Regenerates Table 1: the qualitative comparison of cloning systems.
//! Run: `cargo bench -p netclone-bench --bench tab01_comparison`
//! Scale via NETCLONE_BENCH_SCALE=smoke|standard|full.

fn main() {
    netclone_bench::run_and_emit("tab01");
}
