//! Criterion macro-benchmark of real-socket throughput: one short
//! open-loop run (sharded client → soft switch → sharded UDP servers on
//! loopback) per iteration. Complements the tracked `net_throughput`
//! *binary* (which emits `BENCH_net.json` with achieved rps for CI
//! gating) with an interactive view of the same loopback path.
//!
//! Run: `cargo bench -p netclone-bench --bench net_throughput`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use netclone_core::NetCloneConfig;
use netclone_net::{OpenLoopSpec, Testbed, WorkExecutor};
use netclone_proto::RpcOp;

/// One short run (~1.5k requests offered); returns completions.
fn run_once(workers: usize) -> u64 {
    let mut tb = Testbed::spawn(
        NetCloneConfig::default(),
        2,
        workers,
        WorkExecutor::Synthetic,
    )
    .expect("testbed");
    let handle = tb.switch_handle();
    let client = tb.open_loop_client(workers).expect("open-loop client");
    let report = client
        .run(OpenLoopSpec {
            rate_rps: 10_000.0,
            duration: Duration::from_millis(150),
            op: RpcOp::Echo { class_ns: 25_000 },
            drain: Duration::from_millis(100),
            request_timeout: Duration::from_millis(50),
            num_groups: handle.num_groups(),
            num_filter_tables: 2,
            seed: 7,
            workers,
            retry: None,
            faults: None,
            crash_worker: None,
        })
        .expect("open-loop run");
    tb.shutdown();
    report.completed
}

fn bench_net(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_throughput");
    g.bench_function("workers_1", |b| b.iter(|| black_box(run_once(1))));
    g.bench_function("workers_2", |b| b.iter(|| black_box(run_once(2))));
    g.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
