//! Regenerates the design-choice ablations (DESIGN.md): filter-table
//! count and group-table ordering.
//! Run: `cargo bench -p netclone-bench --bench ablations`

use netclone_cluster::experiments::{ablations, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("{}", ablations::render(scale));
    ablations::filter_tables(scale)
        .to_table()
        .write_csv("results/ablation_filter_tables.csv")
        .expect("write csv");
    ablations::group_ordering(scale)
        .to_table()
        .write_csv("results/ablation_group_ordering.csv")
        .expect("write csv");
}
