//! Regenerates the design-choice ablations (DESIGN.md): filter-table count, group ordering, clone threshold.
//! Run: `cargo bench -p netclone-bench --bench ablations`
//! Scale via NETCLONE_BENCH_SCALE=smoke|standard|full.

fn main() {
    netclone_bench::run_and_emit("ablations");
}
