//! Regenerates Figure 7: synthetic workloads (Exp(25), Bimodal(25/250), Exp(50), Bimodal(50/500)); Baseline vs C-Clone vs NetClone.
//! Run: `cargo bench -p netclone-bench --bench fig07_synthetic`
//! Scale via NETCLONE_BENCH_SCALE=smoke|standard|full.

fn main() {
    netclone_bench::run_and_emit("fig07");
}
