//! Regenerates Figure 7: synthetic workloads (Exp(25), Bimodal(25/250),
//! Exp(50), Bimodal(50/500)); Baseline vs C-Clone vs NetClone.
//! Run: `cargo bench -p netclone-bench --bench fig07_synthetic`
//! Scale via NETCLONE_BENCH_SCALE=smoke|standard|full.

use netclone_cluster::experiments::{fig07, Scale};

fn main() {
    let fig = fig07::run(Scale::from_env());
    println!("{}", fig.render());
    fig.write_csv("results").expect("write csv");
}
