//! Regenerates the multi-rack scale-out sweep: racks × scheme × load on
//! the two-tier leaf/spine fabric (§3.7).
//! Run: `cargo bench -p netclone-bench --bench multirack_scale`
//! Scale via NETCLONE_BENCH_SCALE=smoke|standard|full.

fn main() {
    netclone_bench::run_and_emit("multirack");
}
