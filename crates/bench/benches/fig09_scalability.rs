//! Regenerates Figure 9: Baseline vs NetClone at 2/4/6 worker servers.
//! Run: `cargo bench -p netclone-bench --bench fig09_scalability`
//! Scale via NETCLONE_BENCH_SCALE=smoke|standard|full.

fn main() {
    netclone_bench::run_and_emit("fig09");
}
