//! Regenerates Figure 9: Baseline vs NetClone at 2/4/6 worker servers.
//! Run: `cargo bench -p netclone-bench --bench fig09_scalability`

use netclone_cluster::experiments::{fig09, Scale};

fn main() {
    let fig = fig09::run(Scale::from_env());
    println!("{}", fig.render());
    fig.write_csv("results").expect("write csv");
}
