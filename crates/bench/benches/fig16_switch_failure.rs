//! Regenerates Figure 16: throughput timeline across a switch failure.
//! Run: `cargo bench -p netclone-bench --bench fig16_switch_failure`
//! Scale via NETCLONE_BENCH_SCALE=smoke|standard|full.

fn main() {
    netclone_bench::run_and_emit("fig16");
}
