//! Regenerates Figure 16: throughput timeline across a switch failure.
//! Run: `cargo bench -p netclone-bench --bench fig16_switch_failure`

use netclone_cluster::experiments::{fig16, Scale};

fn main() {
    let f = fig16::run(Scale::from_env());
    println!("{}", f.render());
    f.write_csv("results").expect("write csv");
}
