//! Criterion micro-benchmarks of the data-plane primitives: per-packet
//! processing cost of the NetClone program (request, clone, response,
//! filtered response), the CRC hash, and the wire codec.
//!
//! These measure the *model's* software cost, not ASIC latency — but they
//! bound the simulator's event cost and catch regressions in the hot path.
//! Run: `cargo bench -p netclone-bench --bench micro_dataplane`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use netclone_asic::{crc32, DataPlane, EmissionSink};
use netclone_core::{NetCloneConfig, NetCloneSwitch};
use netclone_proto::{wire, Ipv4, NetCloneHdr, PacketMeta, RpcOp, ServerState};

fn build_switch(busy: bool) -> NetCloneSwitch {
    let mut sw = NetCloneSwitch::new(NetCloneConfig::default());
    for sid in 0..6u16 {
        sw.add_server(sid, Ipv4::server(sid), 10 + sid).unwrap();
    }
    sw.add_client(Ipv4::client(0), 100).unwrap();
    if busy {
        // Mark everything busy so requests take the non-cloning path.
        let probe = sw.process_collected(
            PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 0), 84),
            100,
            0,
        );
        for sid in 0..6u16 {
            let nc = NetCloneHdr::response_to(&probe[0].pkt.nc, sid, ServerState(5));
            let resp = PacketMeta::netclone_response(Ipv4::server(sid), Ipv4::client(0), nc, 84);
            sw.process_collected(resp, 10, 0);
        }
    }
    sw
}

fn bench_program(c: &mut Criterion) {
    let mut g = c.benchmark_group("netclone_program");
    // Like the simulator's hot loop: one reusable sink, zero allocation
    // per packet.
    let mut sink = EmissionSink::new();

    let mut sw = build_switch(true);
    let req = PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 0), 84);
    g.bench_function("request_no_clone", |b| {
        b.iter(|| {
            sink.clear();
            sw.process(black_box(req), 100, 0, &mut sink);
            black_box(sink.len())
        })
    });

    let mut sw = build_switch(false);
    g.bench_function("request_with_clone", |b| {
        b.iter(|| {
            sink.clear();
            sw.process(black_box(req), 100, 0, &mut sink);
            black_box(sink.len())
        })
    });

    let mut sw = build_switch(false);
    let out = sw.process_collected(req, 100, 0);
    let nc = NetCloneHdr::response_to(&out[0].pkt.nc, 0, ServerState(0));
    let resp = PacketMeta::netclone_response(Ipv4::server(0), Ipv4::client(0), nc, 84);
    g.bench_function("response_with_filter", |b| {
        b.iter(|| {
            sink.clear();
            sw.process(black_box(resp), 10, 0, &mut sink);
            black_box(sink.len())
        })
    });
    g.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives");
    g.bench_function("crc32_req_id", |b| {
        let mut id = 0u32;
        b.iter(|| {
            id = id.wrapping_add(1);
            black_box(crc32(&id.to_be_bytes()))
        })
    });
    let hdr = NetCloneHdr::request(17, 1, 3, 12345);
    g.bench_function("wire_encode_header", |b| {
        b.iter(|| {
            let mut buf = bytes::BytesMut::with_capacity(wire::HEADER_LEN);
            wire::encode_header(black_box(&hdr), &mut buf);
            black_box(buf)
        })
    });
    let frame = wire::encode_frame(&hdr, &RpcOp::Echo { class_ns: 25_000 });
    g.bench_function("wire_decode_frame", |b| {
        b.iter(|| {
            let mut bytes = frame.clone();
            black_box(wire::decode_frame(&mut bytes).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_program, bench_primitives);
criterion_main!(benches);
