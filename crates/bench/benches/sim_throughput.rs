//! Criterion macro-benchmark of whole-simulation throughput: one
//! `Sim::run` per iteration on short fixed-seed scenarios, single-rack
//! and 4-rack. Complements the tracked `sim_throughput` *binary* (which
//! emits `BENCH_sim.json` with events/sec for CI gating) with an
//! interactive ns/iteration view of the same hot path.
//!
//! Run: `cargo bench -p netclone-bench --bench sim_throughput`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use netclone_cluster::{Scenario, Scheme, Sim, Topology};
use netclone_workloads::exp25;

/// A short run (~10k requests) so criterion gets several samples.
fn scenario(racks: usize) -> Scenario {
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 0.0);
    s.warmup_ns = 1_000_000;
    s.measure_ns = 5_000_000;
    s.offered_rps = s.capacity_rps() * 0.6;
    s.seed = 7;
    if racks > 1 {
        s.topology = Topology::uniform(racks);
    }
    s
}

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.bench_function("single_rack", |b| {
        b.iter(|| black_box(Sim::run(black_box(scenario(1)))).completed)
    });
    g.bench_function("four_rack", |b| {
        b.iter(|| black_box(Sim::run(black_box(scenario(4)))).completed)
    });
    g.bench_function("four_rack_s4", |b| {
        b.iter(|| black_box(Sim::run_with_shards(black_box(scenario(4)), 4)).completed)
    });
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
