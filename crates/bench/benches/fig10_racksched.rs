//! Regenerates Figure 10: NetClone ± RackSched under homogeneous and
//! heterogeneous workers.
//! Run: `cargo bench -p netclone-bench --bench fig10_racksched`

use netclone_cluster::experiments::{fig10, Scale};

fn main() {
    let fig = fig10::run(Scale::from_env());
    println!("{}", fig.render());
    fig.write_csv("results").expect("write csv");
}
