//! Regenerates Figure 10: NetClone with RackSched under homogeneous/heterogeneous workers.
//! Run: `cargo bench -p netclone-bench --bench fig10_racksched`
//! Scale via NETCLONE_BENCH_SCALE=smoke|standard|full.

fn main() {
    netclone_bench::run_and_emit("fig10");
}
