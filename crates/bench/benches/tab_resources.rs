//! Regenerates the §4.1 resource-usage report.
//! Run: `cargo bench -p netclone-bench --bench tab_resources`
//! Scale via NETCLONE_BENCH_SCALE=smoke|standard|full.

fn main() {
    netclone_bench::run_and_emit("tab-res");
}
