//! Regenerates the §4.1 resource-usage report (stages, SRAM, crossbar,
//! hash, ALUs, filter memory, supported throughput).
//! Run: `cargo bench -p netclone-bench --bench tab_resources`

use netclone_cluster::experiments::resources;

fn main() {
    println!("{}", resources::render());
    resources::to_table()
        .write_csv("results/tab_resources.csv")
        .expect("write csv");
}
