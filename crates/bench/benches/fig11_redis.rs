//! Regenerates Figure 11: the Redis-style KV workload (GET/SCAN mixes).
//! Run: `cargo bench -p netclone-bench --bench fig11_redis`
//! Scale via NETCLONE_BENCH_SCALE=smoke|standard|full.

fn main() {
    netclone_bench::run_and_emit("fig11");
}
