//! Regenerates Figure 11: the Redis GET/SCAN workload.
//! Run: `cargo bench -p netclone-bench --bench fig11_redis`

use netclone_cluster::experiments::{fig11, Scale};

fn main() {
    let fig = fig11::run(Scale::from_env());
    println!("{}", fig.render());
    fig.write_csv("results").expect("write csv");
}
