//! Regenerates Figure 8: C-Clone vs LÆDGE vs NetClone on 5 workers.
//! Run: `cargo bench -p netclone-bench --bench fig08_comparison`

use netclone_cluster::experiments::{fig08, Scale};

fn main() {
    let fig = fig08::run(Scale::from_env());
    println!("{}", fig.render());
    fig.write_csv("results").expect("write csv");
}
