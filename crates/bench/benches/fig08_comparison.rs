//! Regenerates Figure 8: C-Clone vs LAEDGE vs NetClone on five workers plus a coordinator host.
//! Run: `cargo bench -p netclone-bench --bench fig08_comparison`
//! Scale via NETCLONE_BENCH_SCALE=smoke|standard|full.

fn main() {
    netclone_bench::run_and_emit("fig08");
}
