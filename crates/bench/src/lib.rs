//! placeholder
