//! Shared driver for the per-figure bench binaries: resolve one
//! experiment from the [`harness registry`](netclone_cluster::harness),
//! run it at the env-selected scale on all cores, and emit markdown to
//! stdout plus CSV under `results/` — the benches carry no per-figure
//! plumbing of their own.

use netclone_cluster::experiments::Scale;
use netclone_cluster::harness::{default_jobs, find, RunCtx};

/// Runs the registry experiment `id` at `NETCLONE_BENCH_SCALE` and
/// emits markdown + `results/` CSVs. Panics on an unknown id — the
/// bench names are fixed at compile time.
pub fn run_and_emit(id: &str) {
    let exp = find(id).unwrap_or_else(|| panic!("unknown experiment id {id:?}"));
    let ctx = RunCtx::new(Scale::from_env()).with_jobs(default_jobs());
    let report = exp.run(&ctx);
    println!("{}", report.to_markdown());
    report.write_csv("results").expect("write csv");
}
