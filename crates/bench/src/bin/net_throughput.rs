//! Real-socket throughput tracker: offered vs achieved request rate for
//! the sharded open-loop client driving the soft switch and sharded UDP
//! servers on loopback, emitted as machine-readable JSON so CI can keep
//! a perf trajectory for the network frontend next to the simulator's.
//!
//! ```text
//! net_throughput [--scale smoke|full] [--reps N] [--format json|md]
//!                [--out FILE] [--baseline FILE] [--max-regress FRAC]
//! ```
//!
//! Scenarios: one row per worker count (1, 2, 4), each a fresh testbed —
//! soft switch + 4 servers with as many server workers as client workers
//! — driven at a fixed offered rate for the scale's window. Each row runs
//! `--reps` times (default 3) and reports the run with the **best**
//! achieved rate, the standard trick to suppress scheduler noise on
//! shared runners. Achieved rate is completions over the generation
//! window; unlike the simulator's event counts it is wall-clock truth,
//! so nothing here is digest-pinned.
//!
//! With `--baseline`, compares achieved rps against the checked-in
//! baseline (itself a `net_throughput` JSON report) and exits non-zero if
//! the **serial** (`workers: 1`) row regresses by more than
//! `--max-regress` (default 0.20). Multi-worker rows are recorded but not
//! gated: their scaling depends on the runner's core count, which shared
//! CI cannot pin (this matters: a 1-core runner interleaves all worker,
//! switch, and server threads, so workers=4 can legitimately score below
//! workers=1 there). The methodology notes live in `docs/EXPERIMENTS.md`.

use std::time::{Duration, Instant};

use netclone_core::NetCloneConfig;
use netclone_net::{path_counters, OpenLoopSpec, Testbed, WorkExecutor};
use netclone_proto::RpcOp;

/// One measured row.
struct Measurement {
    id: String,
    workers: usize,
    offered_rps: f64,
    achieved_rps: f64,
    sent: u64,
    completed: u64,
    completion_rate: f64,
    p50_us: f64,
    p99_us: f64,
    wall_s: f64,
}

fn measure(workers: usize, offered_rps: f64, window: Duration, reps: usize) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..reps {
        let mut tb = Testbed::spawn(
            NetCloneConfig::default(),
            4,
            workers,
            WorkExecutor::Synthetic,
        )
        .expect("testbed");
        let handle = tb.switch_handle();
        let client = tb.open_loop_client(workers).expect("open-loop client");
        let start = Instant::now();
        let report = client
            .run(OpenLoopSpec {
                rate_rps: offered_rps,
                duration: window,
                op: RpcOp::Echo { class_ns: 25_000 },
                drain: Duration::from_millis(150),
                request_timeout: Duration::from_millis(100),
                num_groups: handle.num_groups(),
                num_filter_tables: 2,
                seed: 7,
                workers,
                retry: None,
                faults: None,
                crash_worker: None,
            })
            .expect("open-loop run");
        let wall_s = start.elapsed().as_secs_f64();
        tb.shutdown();
        let m = Measurement {
            id: format!("workers_{workers}"),
            workers,
            offered_rps,
            achieved_rps: report.completed as f64 / window.as_secs_f64(),
            sent: report.sent,
            completed: report.completed,
            completion_rate: report.completion_rate(),
            p50_us: report.latencies.quantile(0.50) as f64 / 1e3,
            p99_us: report.latencies.quantile(0.99) as f64 / 1e3,
            wall_s,
        };
        if best
            .as_ref()
            .map_or(true, |b| m.achieved_rps > b.achieved_rps)
        {
            best = Some(m);
        }
    }
    best.expect("at least one rep")
}

fn to_json(ms: &[Measurement]) -> String {
    let mut out = String::from("{\n  \"bench\": \"net_throughput\",\n  \"scenarios\": [\n");
    for (i, m) in ms.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"workers\": {}, \"offered_rps\": {:.0}, \
             \"achieved_rps\": {:.0}, \"sent\": {}, \"completed\": {}, \
             \"completion_rate\": {:.4}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"wall_s\": {:.4}}}{}\n",
            m.id,
            m.workers,
            m.offered_rps,
            m.achieved_rps,
            m.sent,
            m.completed,
            m.completion_rate,
            m.p50_us,
            m.p99_us,
            m.wall_s,
            if i + 1 < ms.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn to_markdown(ms: &[Measurement]) -> String {
    let mut out = String::from(
        "| scenario | workers | offered rps | achieved rps | completion | p50 (us) | p99 (us) |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for m in ms {
        out.push_str(&format!(
            "| {} | {} | {:.0} | {:.0} | {:.1}% | {:.1} | {:.1} |\n",
            m.id,
            m.workers,
            m.offered_rps,
            m.achieved_rps,
            m.completion_rate * 100.0,
            m.p50_us,
            m.p99_us
        ));
    }
    out
}

/// Pulls numeric field `field` of scenario `id` out of a `net_throughput`
/// JSON report (dependency-free field scan).
fn baseline_field(json: &str, id: &str, field: &str) -> Option<f64> {
    let obj = json
        .split('{')
        .find(|frag| frag.contains(&format!("\"id\": \"{id}\"")))?;
    let tail = obj.split(&format!("\"{field}\":")).nth(1)?;
    tail.trim_start()
        .split(|c: char| !c.is_ascii_digit() && c != '.')
        .next()?
        .parse()
        .ok()
}

fn main() {
    let mut scale = "smoke".to_string();
    let mut format = "md".to_string();
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut max_regress = 0.20f64;
    let mut reps = 3usize;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--scale" => scale = val("--scale"),
            "--format" => format = val("--format"),
            "--out" => out_path = Some(val("--out")),
            "--baseline" => baseline_path = Some(val("--baseline")),
            "--max-regress" => {
                max_regress = val("--max-regress").parse().expect("fraction");
            }
            "--reps" => reps = val("--reps").parse().expect("rep count"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: net_throughput [--scale smoke|full] [--reps N] \
                     [--format json|md] [--out FILE] [--baseline FILE] \
                     [--max-regress FRAC]"
                );
                return;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    // The offered rate deliberately exceeds what a small runner can carry
    // so the achieved rate measures capacity, not pacing.
    let (window, offered_rps) = match scale.as_str() {
        "smoke" => (Duration::from_millis(300), 30_000.0),
        "full" => (Duration::from_secs(1), 100_000.0),
        other => panic!("unknown scale {other:?} (smoke|full)"),
    };

    eprintln!("== net_throughput at {scale} scale, best of {reps}…");
    let before = path_counters();
    let measurements: Vec<Measurement> = [1usize, 2, 4]
        .iter()
        .map(|&w| measure(w, offered_rps, window, reps))
        .collect();
    let after = path_counters();
    eprintln!(
        "== hot path over all runs: {} buffer-growth allocs, {} timeout syscalls",
        after.buffer_grow_allocs - before.buffer_grow_allocs,
        after.timeout_syscalls - before.timeout_syscalls
    );

    let rendered = match format.as_str() {
        "json" => to_json(&measurements),
        "md" => to_markdown(&measurements),
        other => panic!("unknown format {other:?} (json|md)"),
    };
    print!("{rendered}");
    if let Some(path) = out_path {
        // The artifact is always the JSON report, whatever stdout shows.
        std::fs::write(&path, to_json(&measurements)).expect("write report");
        eprintln!("== wrote {path}");
    }

    if let Some(path) = baseline_path {
        let json = std::fs::read_to_string(&path).expect("read baseline");
        let mut failed = false;
        for m in &measurements {
            let Some(base) = baseline_field(&json, &m.id, "achieved_rps") else {
                eprintln!("== {}: no baseline entry in {path}, skipping", m.id);
                continue;
            };
            let ratio = m.achieved_rps / base;
            let gated = m.workers == 1;
            eprintln!(
                "== {}: {:.0} rps vs baseline {:.0} ({:+.1}%){}",
                m.id,
                m.achieved_rps,
                base,
                (ratio - 1.0) * 100.0,
                if gated { "" } else { " [recorded, not gated]" }
            );
            // Multi-worker scaling depends on the runner's core count —
            // record the trajectory, gate only the serial row.
            if gated && ratio < 1.0 - max_regress {
                eprintln!(
                    "== REGRESSION: {} is {:.1}% below baseline (limit {:.0}%)",
                    m.id,
                    (1.0 - ratio) * 100.0,
                    max_regress * 100.0
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
