//! Simulator throughput tracker: wall time and events/sec for fixed
//! end-to-end scenarios, emitted as machine-readable JSON so CI can keep
//! a perf trajectory and gate regressions.
//!
//! ```text
//! sim_throughput [--scale smoke|full] [--reps N] [--shards N]
//!                [--format json|md] [--out FILE] [--baseline FILE]
//!                [--max-regress FRAC]
//! ```
//!
//! Scenarios: the seed-pinned single-rack testbed plus the same fleet
//! spread over 4- and 8-rack leaf/spine fabrics (§3.7), each multi-rack
//! shape measured both serially (`shards: 1`) and sharded one-per-rack —
//! one NetClone run each, fixed seed, so the event count *and* the full
//! `RunResult` digest are deterministic and only the wall time varies.
//! Each scenario runs `--reps` times (default 3) and reports the
//! **best** run, the standard trick to suppress scheduler noise on
//! shared CI runners. The binary cross-checks that every scenario
//! sharing a fabric shape produced the same result digest, so a sharded
//! entry that diverged from serial fails before any number is reported.
//!
//! `--shards N` overrides every scenario's shard count (clamped to its
//! rack count); CI uses it to run the matrix at `--shards 1` and
//! `--shards 4` and diff the deterministic fields of the two reports.
//!
//! With `--baseline`, compares each scenario's events/sec against the
//! checked-in baseline (itself a `sim_throughput` JSON report) and exits
//! non-zero if any **serial** (`shards: 1`) scenario regresses by more
//! than `--max-regress` (default 0.20). Sharded entries are recorded and
//! event-count-checked but not yet perf-gated: their wall time depends
//! on the runner's core count, which shared CI cannot pin. The
//! methodology notes live in `docs/EXPERIMENTS.md`.

use std::time::Instant;

use netclone_cluster::experiments::{adversarial, fattree, Scale};
use netclone_cluster::harness::RunCtx;
use netclone_cluster::{RunResult, Scenario, Scheme, Sim, Topology};
use netclone_workloads::exp25;

/// One measured scenario.
struct Measurement {
    id: &'static str,
    shape: &'static str,
    racks: usize,
    shards: usize,
    events: u64,
    completed: u64,
    digest: String,
    wall_s: f64,
    events_per_sec: f64,
}

/// The benched scenario: the pinned-seed testbed shape at 60% of
/// capacity, spread over `racks` racks.
fn scenario(racks: usize, measure_ns: u64) -> Scenario {
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 0.0);
    s.warmup_ns = 10_000_000;
    s.measure_ns = measure_ns;
    s.offered_rps = s.capacity_rps() * 0.6;
    s.seed = 7;
    if racks > 1 {
        s.topology = Topology::uniform(racks);
    }
    s
}

/// The congested fat-tree scenario: the `fattree` experiment's 3:1 cell
/// (k = 4, 8 racks, background incast, bounded queues) on the bench's
/// windows — the per-packet link path plus ECMP routing under load.
fn fattree_scenario(measure_ns: u64) -> Scenario {
    let ctx = RunCtx::new(Scale::Smoke);
    let mut s = fattree::scenario(4, 3.0, Scheme::NETCLONE, &ctx);
    s.warmup_ns = 10_000_000;
    s.measure_ns = measure_ns;
    s
}

/// The degraded scenarios from the adversarial suite on the bench's
/// windows: the single-rack gray-failure slowdown, and the 4-rack leaf
/// drain — the control-event edges and the drop gate on the hot path.
/// The degradation window is re-anchored to the middle half of the
/// bench's own measurement window.
fn adversarial_scenario(racks: usize, measure_ns: u64) -> Scenario {
    let ctx = RunCtx::new(Scale::Smoke);
    let kind = if racks > 1 { "drain" } else { "slowdown" };
    let mut s = adversarial::scenario(kind, Scheme::NETCLONE, &ctx);
    s.warmup_ns = 10_000_000;
    s.measure_ns = measure_ns;
    s.offered_rps = s.capacity_rps() * 0.6;
    s.seed = 7;
    let (start, end) = (
        s.warmup_ns + measure_ns / 4,
        s.warmup_ns + 3 * measure_ns / 4,
    );
    if let Some(sl) = &mut s.degradation.slowdown {
        sl.start_ns = start;
        sl.end_ns = end;
    }
    if let Some(d) = &mut s.degradation.drain {
        d.drain_at_ns = start;
        d.restore_at_ns = end;
    }
    s
}

/// FNV-1a over the `Debug` rendering of the full result — every field
/// the simulator produces (histogram, per-switch counters, timeseries,
/// event count), none of which depends on wall time. Two scenarios that
/// simulate the same model must digest identically whatever the shard
/// count; see `tests/harness_determinism.rs` for the byte-level proof.
fn digest(r: &RunResult) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{r:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

fn measure(
    id: &'static str,
    shape: &'static str,
    racks: usize,
    shards: usize,
    measure_ns: u64,
    reps: usize,
) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..reps {
        let s = match shape {
            "fattree" => fattree_scenario(measure_ns),
            "adversarial" => adversarial_scenario(racks, measure_ns),
            _ => scenario(racks, measure_ns),
        };
        let start = Instant::now();
        let r = Sim::run_with_shards(s, shards);
        let wall_s = start.elapsed().as_secs_f64();
        let m = Measurement {
            id,
            shape,
            racks,
            shards,
            events: r.events,
            completed: r.completed,
            digest: digest(&r),
            wall_s,
            events_per_sec: r.events as f64 / wall_s,
        };
        if best.as_ref().map_or(true, |b| m.wall_s < b.wall_s) {
            best = Some(m);
        }
    }
    best.expect("at least one rep")
}

fn to_json(ms: &[Measurement]) -> String {
    let mut out = String::from("{\n  \"bench\": \"sim_throughput\",\n  \"scenarios\": [\n");
    for (i, m) in ms.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"shape\": \"{}\", \"racks\": {}, \"shards\": {}, \"events\": {}, \
             \"completed\": {}, \"digest\": \"{}\", \
             \"wall_s\": {:.4}, \"events_per_sec\": {:.0}}}{}\n",
            m.id,
            m.shape,
            m.racks,
            m.shards,
            m.events,
            m.completed,
            m.digest,
            m.wall_s,
            m.events_per_sec,
            if i + 1 < ms.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn to_markdown(ms: &[Measurement]) -> String {
    let mut out = String::from(
        "| scenario | shape | racks | shards | events | wall (s) | events/sec |\n|---|---|---|---|---|---|---|\n",
    );
    for m in ms {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {:.3} | {:.0} |\n",
            m.id, m.shape, m.racks, m.shards, m.events, m.wall_s, m.events_per_sec
        ));
    }
    out
}

/// Pulls numeric field `field` of scenario `id` out of a
/// `sim_throughput` JSON report (dependency-free field scan).
fn baseline_field(json: &str, id: &str, field: &str) -> Option<f64> {
    let obj = json
        .split('{')
        .find(|frag| frag.contains(&format!("\"id\": \"{id}\"")))?;
    let tail = obj.split(&format!("\"{field}\":")).nth(1)?;
    tail.trim_start()
        .split(|c: char| !c.is_ascii_digit() && c != '.')
        .next()?
        .parse()
        .ok()
}

fn main() {
    let mut scale = "smoke".to_string();
    let mut format = "md".to_string();
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut max_regress = 0.20f64;
    let mut reps = 3usize;
    let mut shards_override: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--scale" => scale = val("--scale"),
            "--format" => format = val("--format"),
            "--out" => out_path = Some(val("--out")),
            "--baseline" => baseline_path = Some(val("--baseline")),
            "--max-regress" => {
                max_regress = val("--max-regress").parse().expect("fraction");
            }
            "--reps" => reps = val("--reps").parse().expect("rep count"),
            "--shards" => {
                let n: usize = val("--shards").parse().expect("shard count");
                assert!(n >= 1, "--shards needs a positive integer");
                shards_override = Some(n);
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: sim_throughput [--scale smoke|full] [--reps N] \
                     [--shards N] [--format json|md] [--out FILE] \
                     [--baseline FILE] [--max-regress FRAC]"
                );
                return;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let measure_ns: u64 = match scale.as_str() {
        "smoke" => 25_000_000,
        "full" => 100_000_000,
        other => panic!("unknown scale {other:?} (smoke|full)"),
    };

    eprintln!("== sim_throughput at {scale} scale, best of {reps}…");
    // (id, shape, racks, shards). `--shards` replaces the matrix's shard
    // counts wholesale (each run still clamps to its rack count), turning
    // the matrix into a uniform determinism probe for CI to diff. The
    // fat-tree rows exercise the congested-link path, the adversarial
    // rows the degradation control events and the leaf drop gate (both
    // events-pinned and digest-recorded, not perf-gated; see the
    // baseline gate below).
    let matrix: &[(&'static str, &'static str, usize, usize)] = &[
        ("single_rack", "leaf_spine", 1, 1),
        ("four_rack", "leaf_spine", 4, 1),
        ("four_rack_s4", "leaf_spine", 4, 4),
        ("eight_rack", "leaf_spine", 8, 1),
        ("eight_rack_s8", "leaf_spine", 8, 8),
        ("fattree_k4", "fattree", 8, 1),
        ("fattree_k4_s4", "fattree", 8, 4),
        ("adv_slowdown", "adversarial", 1, 1),
        ("adv_drain", "adversarial", 4, 1),
        ("adv_drain_s4", "adversarial", 4, 4),
    ];
    let measurements: Vec<Measurement> = matrix
        .iter()
        .map(|&(id, shape, racks, shards)| {
            measure(
                id,
                shape,
                racks,
                shards_override.unwrap_or(shards),
                measure_ns,
                reps,
            )
        })
        .collect();

    // In-binary determinism cross-check: scenarios over the same fabric
    // shape simulate the same model, so their result digests must match
    // whatever shard count executed them. This catches a sharding
    // divergence on the bench's own (longer-than-test) runs for free.
    for m in &measurements {
        let serial = measurements
            .iter()
            .find(|b| b.shape == m.shape && b.racks == m.racks)
            .expect("matrix lists the serial entry first per shape");
        assert_eq!(
            (m.events, m.completed, &m.digest),
            (serial.events, serial.completed, &serial.digest),
            "{} (shards={}) diverged from {} (shards={})",
            m.id,
            m.shards,
            serial.id,
            serial.shards,
        );
    }

    let rendered = match format.as_str() {
        "json" => to_json(&measurements),
        "md" => to_markdown(&measurements),
        other => panic!("unknown format {other:?} (json|md)"),
    };
    print!("{rendered}");
    if let Some(path) = out_path {
        // The artifact is always the JSON report, whatever stdout shows.
        std::fs::write(&path, to_json(&measurements)).expect("write report");
        eprintln!("== wrote {path}");
    }

    if let Some(path) = baseline_path {
        let json = std::fs::read_to_string(&path).expect("read baseline");
        let mut failed = false;
        for m in &measurements {
            let Some(base) = baseline_field(&json, m.id, "events_per_sec") else {
                eprintln!("== {}: no baseline entry in {path}, skipping", m.id);
                continue;
            };
            // The event count is seed-deterministic and machine-independent:
            // a mismatch means the hot path's event structure drifted (or
            // the scenario changed without refreshing the baseline) —
            // always a hard failure, and never a flaky one.
            if let Some(base_events) = baseline_field(&json, m.id, "events") {
                if base_events as u64 != m.events {
                    eprintln!(
                        "== MISMATCH: {} processed {} events, baseline pinned {} \
                         (event structure drifted, or refresh {path} per docs/EXPERIMENTS.md)",
                        m.id, m.events, base_events as u64
                    );
                    failed = true;
                }
            }
            let ratio = m.events_per_sec / base;
            // Fat-tree entries are events-pinned and digest-recorded
            // only: the congested-link path is new and its perf
            // trajectory is still being collected.
            let gated = m.shards == 1 && m.shape == "leaf_spine";
            eprintln!(
                "== {}: {:.0} ev/s vs baseline {:.0} ({:+.1}%){}",
                m.id,
                m.events_per_sec,
                base,
                (ratio - 1.0) * 100.0,
                if gated { "" } else { " [recorded, not gated]" }
            );
            // Sharded wall time scales with the runner's core count,
            // which shared CI cannot pin — record the trajectory, gate
            // only the serial path.
            if gated && ratio < 1.0 - max_regress {
                eprintln!(
                    "== REGRESSION: {} is {:.1}% below baseline (limit {:.0}%)",
                    m.id,
                    (1.0 - ratio) * 100.0,
                    max_regress * 100.0
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
