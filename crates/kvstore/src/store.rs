//! The object store: a flat, index-addressable map mirroring the paper's
//! "1 million objects with 16-byte keys and 64-byte values" (§5.5).
//!
//! Objects are addressed by [`KvKey`]s derived from dense indices
//! ([`KvKey::from_index`]), which makes SCAN-by-range well defined: a SCAN
//! starting at key *k* reads the `count` objects with consecutive indices,
//! wrapping at the population size — the natural analogue of scanning a
//! sorted keyspace.

use netclone_proto::{KvKey, RpcOp};

/// Result of executing one operation against the store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecResult {
    /// GET hit: the value bytes.
    Value(Vec<u8>),
    /// GET miss (key outside the population).
    Miss,
    /// SCAN result: concatenated values and the number of objects read.
    Range {
        /// Concatenated value bytes.
        bytes: Vec<u8>,
        /// Objects actually read.
        objects: u32,
    },
    /// PUT acknowledgement.
    Stored,
    /// Echo requests carry no store work.
    NoStoreWork,
}

impl ExecResult {
    /// Payload size of the response this result produces, in bytes.
    pub fn response_bytes(&self) -> usize {
        match self {
            ExecResult::Value(v) => v.len(),
            ExecResult::Range { bytes, .. } => bytes.len(),
            ExecResult::Miss | ExecResult::Stored | ExecResult::NoStoreWork => 0,
        }
    }
}

/// A dense, index-backed object store.
pub struct KvStore {
    values: Vec<Box<[u8]>>,
}

impl KvStore {
    /// Builds a store with `n` objects whose values are `value_len` bytes,
    /// deterministically filled (object i's value starts with its index).
    pub fn populate(n: usize, value_len: usize) -> Self {
        let mut values = Vec::with_capacity(n);
        for i in 0..n {
            let mut v = vec![0u8; value_len];
            let tag = (i as u64).to_be_bytes();
            let take = tag.len().min(value_len);
            v[..take].copy_from_slice(&tag[..take]);
            values.push(v.into_boxed_slice());
        }
        KvStore { values }
    }

    /// Builds the paper's population: 1 M objects × 64 B values.
    pub fn paper_population() -> Self {
        Self::populate(1_000_000, 64)
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn slot(&self, key: &KvKey) -> Option<usize> {
        let idx = key.index() as usize;
        (idx < self.values.len()).then_some(idx)
    }

    /// Reads one object.
    pub fn get(&self, key: &KvKey) -> Option<&[u8]> {
        self.slot(key).map(|i| &*self.values[i])
    }

    /// Writes one object; returns false for keys outside the population
    /// (the store is fixed-size, like the experiments').
    pub fn put(&mut self, key: &KvKey, value: &[u8]) -> bool {
        match self.slot(key) {
            Some(i) => {
                self.values[i] = value.to_vec().into_boxed_slice();
                true
            }
            None => false,
        }
    }

    /// Reads `count` consecutive objects starting at `key`, wrapping at the
    /// population boundary. Returns the concatenated bytes and the number
    /// of objects read (0 if the start key is out of range).
    pub fn scan(&self, key: &KvKey, count: u16) -> (Vec<u8>, u32) {
        let Some(start) = self.slot(key) else {
            return (Vec::new(), 0);
        };
        let n = self.values.len();
        let count = count as usize;
        let mut out = Vec::with_capacity(count * self.values[start].len());
        for off in 0..count {
            out.extend_from_slice(&self.values[(start + off) % n]);
        }
        (out, count as u32)
    }

    /// Executes one RPC operation.
    pub fn execute(&mut self, op: &RpcOp) -> ExecResult {
        match op {
            RpcOp::Echo { .. } => ExecResult::NoStoreWork,
            RpcOp::Get { key } => match self.get(key) {
                Some(v) => ExecResult::Value(v.to_vec()),
                None => ExecResult::Miss,
            },
            RpcOp::Scan { key, count } => {
                let (bytes, objects) = self.scan(key, *count);
                ExecResult::Range { bytes, objects }
            }
            RpcOp::Put { key, value_len } => {
                let value = vec![0xAB; *value_len as usize];
                if self.put(key, &value) {
                    ExecResult::Stored
                } else {
                    ExecResult::Miss
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populate_and_get() {
        let s = KvStore::populate(100, 64);
        assert_eq!(s.len(), 100);
        let v = s.get(&KvKey::from_index(42)).unwrap();
        assert_eq!(v.len(), 64);
        assert_eq!(&v[..8], &42u64.to_be_bytes());
    }

    #[test]
    fn get_out_of_population_misses() {
        let s = KvStore::populate(10, 64);
        assert!(s.get(&KvKey::from_index(10)).is_none());
    }

    #[test]
    fn put_overwrites() {
        let mut s = KvStore::populate(10, 64);
        let key = KvKey::from_index(3);
        assert!(s.put(&key, b"hello"));
        assert_eq!(s.get(&key).unwrap(), b"hello");
        assert!(!s.put(&KvKey::from_index(99), b"nope"));
    }

    #[test]
    fn scan_reads_count_objects_and_wraps() {
        let s = KvStore::populate(10, 4);
        let (bytes, objects) = s.scan(&KvKey::from_index(8), 5);
        assert_eq!(objects, 5);
        assert_eq!(bytes.len(), 20);
        // Objects 8, 9, 0, 1, 2 — check the wrap at object 0.
        assert_eq!(&bytes[8..12], &[0, 0, 0, 0]);
    }

    #[test]
    fn scan_from_invalid_start_is_empty() {
        let s = KvStore::populate(10, 4);
        let (bytes, objects) = s.scan(&KvKey::from_index(11), 5);
        assert!(bytes.is_empty());
        assert_eq!(objects, 0);
    }

    #[test]
    fn execute_covers_all_ops() {
        let mut s = KvStore::populate(10, 8);
        assert_eq!(
            s.execute(&RpcOp::Echo { class_ns: 1 }),
            ExecResult::NoStoreWork
        );
        assert!(matches!(
            s.execute(&RpcOp::Get {
                key: KvKey::from_index(1)
            }),
            ExecResult::Value(_)
        ));
        assert_eq!(
            s.execute(&RpcOp::Get {
                key: KvKey::from_index(999)
            }),
            ExecResult::Miss
        );
        match s.execute(&RpcOp::Scan {
            key: KvKey::from_index(0),
            count: 3,
        }) {
            ExecResult::Range { objects, bytes } => {
                assert_eq!(objects, 3);
                assert_eq!(bytes.len(), 24);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            s.execute(&RpcOp::Put {
                key: KvKey::from_index(2),
                value_len: 16
            }),
            ExecResult::Stored
        );
    }

    #[test]
    fn response_bytes_reflect_payload() {
        assert_eq!(ExecResult::Value(vec![0; 64]).response_bytes(), 64);
        assert_eq!(
            ExecResult::Range {
                bytes: vec![0; 640],
                objects: 10
            }
            .response_bytes(),
            640
        );
        assert_eq!(ExecResult::Stored.response_bytes(), 0);
    }
}
