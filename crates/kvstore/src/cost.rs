//! Service-cost models for the KV experiments.
//!
//! The simulator needs the *time* a worker thread holds a request, end to
//! end inside the server (packet handling + store work + reply build). We
//! model it as `base + objects × per_object`, calibrated against the
//! throughput the paper observed on its testbed (Fig. 11/12 saturate near
//! 0.6 MRPS for 99 %-GET and ~0.15 MRPS for 90 %-GET with 6 servers × 8
//! worker threads), not against Redis microbenchmarks — the paper's server
//! app mediates every request, so its per-op cost dominates.
//!
//! EXPERIMENTS.md documents this calibration next to the measured results.

use netclone_proto::RpcOp;

/// Affine per-operation service-cost model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceCostModel {
    /// Fixed per-request cost (parse, dispatch, reply), ns.
    pub base_ns: u64,
    /// Additional cost per object touched, ns.
    pub per_object_ns: u64,
}

impl ServiceCostModel {
    /// Redis-like costs: GET ≈ 65 μs, SCAN(100) ≈ 2.04 ms.
    ///
    /// With 6 workers × 8 threads this yields ≈ 0.64 MRPS at 99 %-GET and
    /// ≈ 0.19 MRPS at 90 %-GET — the same saturation region as Fig. 11.
    pub fn redis() -> Self {
        ServiceCostModel {
            base_ns: 45_000,
            per_object_ns: 20_000,
        }
    }

    /// Memcached-like costs: slightly cheaper ops than Redis (multi-threaded
    /// store, simpler protocol): GET ≈ 55 μs, SCAN(100) ≈ 1.84 ms, matching
    /// the Fig. 12 saturation region.
    pub fn memcached() -> Self {
        ServiceCostModel {
            base_ns: 37_000,
            per_object_ns: 18_000,
        }
    }

    /// Mean service time of one operation under this model, ns. For
    /// [`RpcOp::Echo`] the intrinsic class is the cost.
    pub fn class_ns(&self, op: &RpcOp) -> u64 {
        match op {
            RpcOp::Echo { class_ns } => *class_ns,
            _ => self.base_ns + self.per_object_ns * op.objects_touched() as u64,
        }
    }

    /// Mean service time of a GET.
    pub fn get_ns(&self) -> u64 {
        self.base_ns + self.per_object_ns
    }

    /// Mean service time of a SCAN over `count` objects.
    pub fn scan_ns(&self, count: u16) -> u64 {
        self.base_ns + self.per_object_ns * count as u64
    }

    /// Mean service time of a mix with the given GET fraction (the rest
    /// SCANs of `scan_count`), ns — used to size load sweeps.
    pub fn mix_mean_ns(&self, get_frac: f64, scan_count: u16) -> f64 {
        get_frac * self.get_ns() as f64 + (1.0 - get_frac) * self.scan_ns(scan_count) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclone_proto::KvKey;

    #[test]
    fn redis_costs_match_calibration() {
        let m = ServiceCostModel::redis();
        assert_eq!(m.get_ns(), 65_000);
        assert_eq!(m.scan_ns(100), 2_045_000);
    }

    #[test]
    fn memcached_is_cheaper_than_redis() {
        let r = ServiceCostModel::redis();
        let m = ServiceCostModel::memcached();
        assert!(m.get_ns() < r.get_ns());
        assert!(m.scan_ns(100) < r.scan_ns(100));
    }

    #[test]
    fn class_ns_dispatches_on_op() {
        let m = ServiceCostModel::redis();
        let get = RpcOp::Get {
            key: KvKey::from_index(0),
        };
        let scan = RpcOp::Scan {
            key: KvKey::from_index(0),
            count: 100,
        };
        let echo = RpcOp::Echo { class_ns: 25_000 };
        assert_eq!(m.class_ns(&get), m.get_ns());
        assert_eq!(m.class_ns(&scan), m.scan_ns(100));
        assert_eq!(m.class_ns(&echo), 25_000);
    }

    #[test]
    fn mix_mean_interpolates() {
        let m = ServiceCostModel::redis();
        let pure_get = m.mix_mean_ns(1.0, 100);
        let pure_scan = m.mix_mean_ns(0.0, 100);
        assert_eq!(pure_get, m.get_ns() as f64);
        assert_eq!(pure_scan, m.scan_ns(100) as f64);
        let mixed = m.mix_mean_ns(0.9, 100);
        assert!(pure_get < mixed && mixed < pure_scan);
    }

    #[test]
    fn saturation_throughput_is_in_paper_region() {
        // 6 servers × 8 worker threads for the Redis 99/1 mix should cap
        // in the 0.5–0.8 MRPS region like Fig. 11(a).
        let m = ServiceCostModel::redis();
        let threads = 6.0 * 8.0;
        let cap_rps = threads / (m.mix_mean_ns(0.99, 100) / 1e9);
        assert!(
            (500_000.0..800_000.0).contains(&cap_rps),
            "cap {cap_rps} outside the Fig. 11(a) region"
        );
    }
}
