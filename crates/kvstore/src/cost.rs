//! Service-cost models for the KV experiments.
//!
//! The simulator needs the *time* a worker thread holds a request, end to
//! end inside the server (packet handling + store work + reply build). We
//! model it as `base + objects × per_object`, calibrated against the
//! throughput the paper observed on its testbed (Fig. 11/12 saturate near
//! 0.6 MRPS for 99 %-GET and ~0.15 MRPS for 90 %-GET with 6 servers × 8
//! worker threads), not against Redis microbenchmarks — the paper's server
//! app mediates every request, so its per-op cost dominates.
//!
//! EXPERIMENTS.md documents this calibration next to the measured results.

use netclone_proto::RpcOp;

/// Affine per-operation service-cost model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceCostModel {
    /// Fixed per-request cost (parse, dispatch, reply), ns.
    pub base_ns: u64,
    /// Additional cost per object touched, ns.
    pub per_object_ns: u64,
}

impl ServiceCostModel {
    /// Redis-like costs: GET ≈ 65 μs, SCAN(100) ≈ 2.04 ms.
    ///
    /// With 6 workers × 8 threads this yields ≈ 0.64 MRPS at 99 %-GET and
    /// ≈ 0.19 MRPS at 90 %-GET — the same saturation region as Fig. 11.
    pub fn redis() -> Self {
        ServiceCostModel {
            base_ns: 45_000,
            per_object_ns: 20_000,
        }
    }

    /// Memcached-like costs: slightly cheaper ops than Redis (multi-threaded
    /// store, simpler protocol): GET ≈ 55 μs, SCAN(100) ≈ 1.84 ms, matching
    /// the Fig. 12 saturation region.
    pub fn memcached() -> Self {
        ServiceCostModel {
            base_ns: 37_000,
            per_object_ns: 18_000,
        }
    }

    /// Mean service time of one operation under this model, ns. For
    /// [`RpcOp::Echo`] the intrinsic class is the cost.
    pub fn class_ns(&self, op: &RpcOp) -> u64 {
        match op {
            RpcOp::Echo { class_ns } => *class_ns,
            _ => self.base_ns + self.per_object_ns * op.objects_touched() as u64,
        }
    }

    /// Mean service time of a GET.
    pub fn get_ns(&self) -> u64 {
        self.base_ns + self.per_object_ns
    }

    /// Mean service time of a SCAN over `count` objects.
    pub fn scan_ns(&self, count: u16) -> u64 {
        self.base_ns + self.per_object_ns * count as u64
    }

    /// Mean service time of a mix with the given GET fraction (the rest
    /// SCANs of `scan_count`), ns — used to size load sweeps.
    pub fn mix_mean_ns(&self, get_frac: f64, scan_count: u16) -> f64 {
        get_frac * self.get_ns() as f64 + (1.0 - get_frac) * self.scan_ns(scan_count) as f64
    }
}

/// Cache-aware service cost: keys below `hot_ranks` are served from the
/// hot set at `hit` cost, everything else pays the `miss` cost.
///
/// This is the adversarial hot-key seam: with a Zipf-skewed key stream
/// most requests hit the cheap hot set while the Zipf tail pays the
/// expensive miss path — a bimodal *service* distribution whose mix is
/// controlled by the *key* distribution, not by an independent coin.
/// Ranks work because [`netclone_proto::KvKey::from_index`] keys are
/// generated in popularity-rank order by the Zipf sampler (rank 0 is
/// the most popular key).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HotKeyCost {
    /// Number of leading key ranks resident in the hot set.
    pub hot_ranks: u64,
    /// Cost model for hot-set hits (cheap).
    pub hit: ServiceCostModel,
    /// Cost model for misses (expensive: backing-store path).
    pub miss: ServiceCostModel,
}

impl HotKeyCost {
    /// A Redis-flavoured hit/miss split: hits at the calibrated Redis
    /// cost, misses an order of magnitude slower (backing-store fetch),
    /// with the top `hot_ranks` keys resident.
    pub fn redis_with_backing_store(hot_ranks: u64) -> Self {
        let hit = ServiceCostModel::redis();
        HotKeyCost {
            hot_ranks,
            hit,
            miss: ServiceCostModel {
                base_ns: hit.base_ns * 10,
                per_object_ns: hit.per_object_ns * 10,
            },
        }
    }

    /// True if `op` is served entirely from the hot set. `Echo` carries
    /// no key and counts as a hit (its class is explicit anyway); a
    /// `Scan` misses if any object in its range is outside the hot set.
    pub fn is_hit(&self, op: &RpcOp) -> bool {
        match op {
            RpcOp::Echo { .. } => true,
            RpcOp::Get { key } | RpcOp::Put { key, .. } => key.index() < self.hot_ranks,
            RpcOp::Scan { key, count } => {
                key.index().saturating_add(*count as u64) <= self.hot_ranks
            }
        }
    }

    /// Service class of one operation under the hit/miss split, ns.
    pub fn class_ns(&self, op: &RpcOp) -> u64 {
        if self.is_hit(op) {
            self.hit.class_ns(op)
        } else {
            self.miss.class_ns(op)
        }
    }

    /// Fraction of probability mass a Zipf(`theta`) popularity law over
    /// `population` keys puts on the hot set — the expected hit rate of
    /// single-key ops. Computed from the generalized harmonic sums
    /// H(hot, θ) / H(population, θ).
    pub fn zipf_hit_rate(&self, population: u64, theta: f64) -> f64 {
        let hot = self.hot_ranks.min(population);
        let harmonic = |n: u64| -> f64 { (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).sum() };
        if population == 0 {
            return 0.0;
        }
        harmonic(hot) / harmonic(population)
    }

    /// Mean service time of a GET/SCAN mix under Zipf(`theta`) keys, ns —
    /// used to size load sweeps exactly like
    /// [`ServiceCostModel::mix_mean_ns`]. Approximates the scan hit rate
    /// by the single-key rate (scans start at a Zipf-drawn rank).
    pub fn zipf_mix_mean_ns(
        &self,
        get_frac: f64,
        scan_count: u16,
        population: u64,
        theta: f64,
    ) -> f64 {
        let hit_rate = self.zipf_hit_rate(population, theta);
        let blended = |hit: u64, miss: u64| hit_rate * hit as f64 + (1.0 - hit_rate) * miss as f64;
        get_frac * blended(self.hit.get_ns(), self.miss.get_ns())
            + (1.0 - get_frac)
                * blended(self.hit.scan_ns(scan_count), self.miss.scan_ns(scan_count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclone_proto::KvKey;

    #[test]
    fn redis_costs_match_calibration() {
        let m = ServiceCostModel::redis();
        assert_eq!(m.get_ns(), 65_000);
        assert_eq!(m.scan_ns(100), 2_045_000);
    }

    #[test]
    fn memcached_is_cheaper_than_redis() {
        let r = ServiceCostModel::redis();
        let m = ServiceCostModel::memcached();
        assert!(m.get_ns() < r.get_ns());
        assert!(m.scan_ns(100) < r.scan_ns(100));
    }

    #[test]
    fn class_ns_dispatches_on_op() {
        let m = ServiceCostModel::redis();
        let get = RpcOp::Get {
            key: KvKey::from_index(0),
        };
        let scan = RpcOp::Scan {
            key: KvKey::from_index(0),
            count: 100,
        };
        let echo = RpcOp::Echo { class_ns: 25_000 };
        assert_eq!(m.class_ns(&get), m.get_ns());
        assert_eq!(m.class_ns(&scan), m.scan_ns(100));
        assert_eq!(m.class_ns(&echo), 25_000);
    }

    #[test]
    fn mix_mean_interpolates() {
        let m = ServiceCostModel::redis();
        let pure_get = m.mix_mean_ns(1.0, 100);
        let pure_scan = m.mix_mean_ns(0.0, 100);
        assert_eq!(pure_get, m.get_ns() as f64);
        assert_eq!(pure_scan, m.scan_ns(100) as f64);
        let mixed = m.mix_mean_ns(0.9, 100);
        assert!(pure_get < mixed && mixed < pure_scan);
    }

    #[test]
    fn hot_key_hit_and_miss_classes() {
        let c = HotKeyCost::redis_with_backing_store(100);
        let hot = RpcOp::Get {
            key: KvKey::from_index(3),
        };
        let cold = RpcOp::Get {
            key: KvKey::from_index(100),
        };
        assert!(c.is_hit(&hot) && !c.is_hit(&cold));
        assert_eq!(c.class_ns(&hot), c.hit.get_ns());
        assert_eq!(c.class_ns(&cold), c.miss.get_ns());
        assert!(c.class_ns(&cold) > c.class_ns(&hot));
        // A scan that walks off the hot set pays the miss path.
        let edge_scan = RpcOp::Scan {
            key: KvKey::from_index(50),
            count: 100,
        };
        assert!(!c.is_hit(&edge_scan));
        // Echo carries its own class either way.
        assert_eq!(c.class_ns(&RpcOp::Echo { class_ns: 7 }), 7);
    }

    #[test]
    fn zipf_hit_rate_tracks_skew() {
        let c = HotKeyCost::redis_with_backing_store(100);
        // Heavier skew concentrates more mass on the hot ranks.
        let skewed = c.zipf_hit_rate(10_000, 0.99);
        let uniformish = c.zipf_hit_rate(10_000, 0.1);
        assert!(skewed > uniformish);
        assert!((0.0..=1.0).contains(&skewed));
        // Hot set covering the whole population hits everything.
        let all = HotKeyCost::redis_with_backing_store(10_000);
        assert!((all.zipf_hit_rate(10_000, 0.99) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_mix_mean_is_between_pure_hit_and_pure_miss() {
        let c = HotKeyCost::redis_with_backing_store(100);
        let mean = c.zipf_mix_mean_ns(0.99, 100, 10_000, 0.99);
        let pure_hit = c.hit.mix_mean_ns(0.99, 100);
        let pure_miss = c.miss.mix_mean_ns(0.99, 100);
        assert!(pure_hit < mean && mean < pure_miss, "mean {mean}");
    }

    #[test]
    fn saturation_throughput_is_in_paper_region() {
        // 6 servers × 8 worker threads for the Redis 99/1 mix should cap
        // in the 0.5–0.8 MRPS region like Fig. 11(a).
        let m = ServiceCostModel::redis();
        let threads = 6.0 * 8.0;
        let cap_rps = threads / (m.mix_mean_ns(0.99, 100) / 1e9);
        assert!(
            (500_000.0..800_000.0).contains(&cap_rps),
            "cap {cap_rps} outside the Fig. 11(a) region"
        );
    }
}
