//! # netclone-kvstore
//!
//! An in-memory key-value store standing in for the Redis and Memcached
//! backends of the paper's §5.5 experiments, plus the calibrated service-
//! cost models the simulator uses for those experiments.
//!
//! The store itself is real and is executed by the real-socket runtime
//! (`netclone-net`); the discrete-event simulator only needs the *cost* of
//! an operation, which [`ServiceCostModel`] provides. The paper's setup:
//! 1 million objects, 16-byte keys, 64-byte values, GET reads one object,
//! SCAN reads 100 consecutive objects.

pub mod cost;
pub mod store;

pub use cost::{HotKeyCost, ServiceCostModel};
pub use store::KvStore;
