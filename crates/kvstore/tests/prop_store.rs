//! Property tests for the KV store: scans always return the requested
//! number of objects for in-range starts, wrap correctly, and execute()
//! never panics for arbitrary operations.

use netclone_kvstore::KvStore;
use netclone_proto::{KvKey, RpcOp};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scan_reads_exactly_count(
        n in 1usize..200,
        start in 0u64..400,
        count in 0u16..300,
        value_len in 1usize..32,
    ) {
        let s = KvStore::populate(n, value_len);
        let (bytes, objects) = s.scan(&KvKey::from_index(start), count);
        if (start as usize) < n {
            prop_assert_eq!(objects, count as u32);
            prop_assert_eq!(bytes.len(), count as usize * value_len);
        } else {
            prop_assert_eq!(objects, 0);
            prop_assert!(bytes.is_empty());
        }
    }

    #[test]
    fn get_hits_iff_in_population(n in 1usize..200, idx in 0u64..400) {
        let s = KvStore::populate(n, 8);
        let hit = s.get(&KvKey::from_index(idx)).is_some();
        prop_assert_eq!(hit, (idx as usize) < n);
    }

    #[test]
    fn put_then_get_round_trips(n in 1usize..100, idx in 0u64..100, data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut s = KvStore::populate(n, 8);
        let key = KvKey::from_index(idx);
        let ok = s.put(&key, &data);
        if (idx as usize) < n {
            prop_assert!(ok);
            prop_assert_eq!(s.get(&key).unwrap(), &data[..]);
        } else {
            prop_assert!(!ok);
        }
    }

    #[test]
    fn execute_never_panics(
        n in 1usize..64,
        idx in 0u64..128,
        count in 0u16..200,
        value_len in 0u16..128,
    ) {
        let mut s = KvStore::populate(n, 8);
        let key = KvKey::from_index(idx);
        for op in [
            RpcOp::Echo { class_ns: 25_000 },
            RpcOp::Get { key },
            RpcOp::Scan { key, count },
            RpcOp::Put { key, value_len },
        ] {
            let _ = s.execute(&op);
        }
    }
}
