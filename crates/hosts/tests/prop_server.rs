//! Property tests for the server model: queue discipline, worker
//! accounting, and the §3.4 clone-drop rule under arbitrary arrival
//! scripts.

use netclone_hosts::{Admission, AppPacket, ServerConfig, ServerSim};
use netclone_kvstore::ServiceCostModel;
use netclone_proto::{CloneStatus, Ipv4, NetCloneHdr, PacketMeta, RpcOp};
use netclone_workloads::{Jitter, ServiceShape};
use proptest::prelude::*;

fn pkt(clo: CloneStatus) -> AppPacket {
    let mut meta =
        PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 0), 84);
    meta.nc.clo = clo;
    AppPacket {
        meta,
        op: RpcOp::Echo { class_ns: 10_000 },
        born_ns: 0,
    }
}

/// A request header completions are attributed to (identity is irrelevant
/// to the properties under test).
fn req_hdr() -> NetCloneHdr {
    NetCloneHdr::request(0, 0, 0, 0)
}

fn server(workers: usize, seed: u64) -> ServerSim {
    ServerSim::new(ServerConfig {
        sid: 0,
        workers,
        dispatch_ns: 100,
        clone_drop_ns: 50,
        shape: ServiceShape::Deterministic,
        jitter: Jitter::NONE,
        cost: ServiceCostModel::redis(),
        hot_key: None,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under any interleaving of arrivals and completions:
    /// * busy workers never exceed the worker count,
    /// * admitted = started + queued (clone drops excluded),
    /// * every admitted request eventually completes,
    /// * clones are dropped only when the queue was non-empty.
    #[test]
    fn server_accounting_is_conserved(
        workers in 1usize..8,
        script in proptest::collection::vec((any::<bool>(), 0u8..3), 1..120),
        seed in any::<u64>(),
    ) {
        let mut s = server(workers, seed);
        let mut now = 0u64;
        let mut in_service = std::collections::BinaryHeap::new(); // Reverse(done_at)
        let mut admitted = 0u64;
        let mut completed = 0u64;
        let mut dropped = 0u64;

        for (is_clone, completions_first) in script {
            // Optionally drain some completions before the next arrival.
            for _ in 0..completions_first {
                if let Some(std::cmp::Reverse(done_at)) = in_service.pop() {
                    now = now.max(done_at);
                    let c = s.on_service_done(&req_hdr(), now);
                    completed += 1;
                    if let Some((_pkt, next_done)) = c.next {
                        in_service.push(std::cmp::Reverse(next_done));
                    }
                }
            }
            now += 1_000;
            let clo = if is_clone { CloneStatus::Clone } else { CloneStatus::NotCloned };
            let queue_before = s.queue_len();
            match s.on_request(pkt(clo), now) {
                Admission::Start { done_at } => {
                    prop_assert!(done_at > now);
                    in_service.push(std::cmp::Reverse(done_at));
                    admitted += 1;
                }
                Admission::Queued => {
                    admitted += 1;
                }
                Admission::CloneDropped => {
                    prop_assert!(is_clone, "only clones may be dropped");
                    prop_assert!(queue_before > 0, "drops require a non-empty queue");
                    dropped += 1;
                }
            }
            prop_assert!(s.busy_workers() <= workers);
        }

        // Drain everything.
        while let Some(std::cmp::Reverse(done_at)) = in_service.pop() {
            now = now.max(done_at);
            let c = s.on_service_done(&req_hdr(), now);
            completed += 1;
            if let Some((_pkt, next_done)) = c.next {
                in_service.push(std::cmp::Reverse(next_done));
            }
        }
        prop_assert_eq!(s.queue_len(), 0, "drain must empty the queue");
        prop_assert_eq!(s.busy_workers(), 0);
        prop_assert_eq!(completed, admitted, "every admitted request completes");
        prop_assert_eq!(s.stats().clones_dropped, dropped);
        prop_assert_eq!(s.stats().served, completed);
    }

    /// Idle reports equal responses whose post-dequeue queue was empty.
    #[test]
    fn idle_reports_match_observed_states(
        arrivals in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut s = server(2, seed);
        let mut now = 0u64;
        let mut in_service = Vec::new();
        for _ in 0..arrivals {
            now += 500;
            if let Admission::Start { done_at } = s.on_request(pkt(CloneStatus::NotCloned), now) {
                in_service.push(done_at);
            }
        }
        let mut idle_seen = 0u64;
        let mut responses = 0u64;
        while let Some(done_at) = in_service.pop() {
            now = now.max(done_at);
            let c = s.on_service_done(&req_hdr(), now);
            responses += 1;
            if c.resp.state.is_idle() {
                idle_seen += 1;
            }
            if let Some((_p, d)) = c.next {
                in_service.push(d);
            }
        }
        prop_assert_eq!(s.stats().idle_reports, idle_seen);
        prop_assert_eq!(s.stats().responses, responses);
    }
}
