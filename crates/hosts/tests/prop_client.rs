//! Property tests for the client model: dedup, latency accounting, and
//! sender/receiver serialization under arbitrary traffic.

use netclone_hosts::{AppPacket, ClientMode, ClientSim};
use netclone_proto::{Ipv4, NetCloneHdr, PacketMeta, RpcOp, ServerState};
use proptest::prelude::*;

/// The response a server would send for `pkt`.
fn response_to(pkt: &AppPacket) -> AppPacket {
    let nc = NetCloneHdr::response_to(&pkt.meta.nc, 0, ServerState::IDLE);
    AppPacket {
        meta: PacketMeta::netclone_response(Ipv4::server(0), pkt.meta.src_ip, nc, 84),
        op: pkt.op,
        born_ns: pkt.born_ns,
    }
}

fn nc_client(seed: u64) -> ClientSim {
    ClientSim::new(
        0,
        ClientMode::NetClone {
            num_groups: 30,
            num_filter_tables: 2,
        },
        100,
        200,
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// For any set of generated requests and any response multiplicity /
    /// order, completed = distinct requests answered, redundant = extras,
    /// and each latency ≥ the RX cost.
    #[test]
    fn dedup_counts_are_exact(
        n in 1usize..40,
        extra_copies in proptest::collection::vec(0u8..3, 40),
        seed in any::<u64>(),
    ) {
        let mut c = nc_client(seed);
        let mut pkts = Vec::new();
        for i in 0..n {
            let out = c.generate(RpcOp::Echo { class_ns: 10_000 }, (i as u64) * 1_000);
            prop_assert_eq!(out.len(), 1);
            pkts.push(response_to(&out[0].0));
        }
        let mut now = 1_000_000u64;
        let mut expect_redundant = 0u64;
        for (i, pkt) in pkts.iter().enumerate() {
            let copies = 1 + extra_copies[i] as u64;
            for k in 0..copies {
                now += 500;
                let r = c.on_response(pkt, now);
                if k == 0 {
                    prop_assert!(r.latency_ns.is_some(), "first response completes");
                    prop_assert!(r.latency_ns.unwrap() >= 200, "latency includes RX cost");
                } else {
                    prop_assert!(r.latency_ns.is_none(), "extras are redundant");
                    expect_redundant += 1;
                }
            }
        }
        let st = c.stats();
        prop_assert_eq!(st.completed, n as u64);
        prop_assert_eq!(st.redundant, expect_redundant);
        prop_assert_eq!(c.latencies().count(), n as u64);
        prop_assert_eq!(c.outstanding(), 0);
    }

    /// The receiver thread is a serial resource: k simultaneous responses
    /// finish exactly k × rx_cost apart.
    #[test]
    fn receiver_serialises(k in 1usize..20, seed in any::<u64>()) {
        let mut c = nc_client(seed);
        let mut pkts = Vec::new();
        for _ in 0..k {
            pkts.push(response_to(&c.generate(RpcOp::Echo { class_ns: 1 }, 0)[0].0));
        }
        let arrive = 10_000u64;
        let mut last_done = 0;
        for (i, pkt) in pkts.iter().enumerate() {
            let r = c.on_response(pkt, arrive);
            prop_assert_eq!(r.done_at, arrive + 200 * (i as u64 + 1));
            prop_assert!(r.done_at > last_done);
            last_done = r.done_at;
        }
    }

    /// C-Clone duplicates always target two distinct servers and share a
    /// sequence number, for any fleet size ≥ 2.
    #[test]
    fn duplicates_are_distinct(n_servers in 2u16..32, n in 1usize..30, seed in any::<u64>()) {
        let servers: Vec<Ipv4> = (0..n_servers).map(Ipv4::server).collect();
        let mut c = ClientSim::new(0, ClientMode::DirectDuplicate { servers }, 0, 0, seed);
        for i in 0..n {
            let out = c.generate(RpcOp::Echo { class_ns: 1 }, i as u64);
            prop_assert_eq!(out.len(), 2);
            prop_assert_ne!(out[0].0.meta.dst_ip, out[1].0.meta.dst_ip);
            prop_assert_eq!(out[0].0.meta.nc.client_seq, out[1].0.meta.nc.client_seq);
        }
    }
}
