//! The open-loop client model: a thin DES frontend over the shared
//! [`ClientCore`] protocol state machine, adding only what the simulator
//! models that real hosts get for free from the OS — per-packet CPU costs
//! on the sender and receiver threads (§4.2's VMA path).
//!
//! All protocol logic — request addressing for every compared scheme,
//! response dedup, clone-win/redundant accounting, latency recording —
//! lives in [`netclone_hostcore::ClientCore`] and is shared verbatim with
//! the real-socket clients in `netclone-net`.

use netclone_hostcore::ClientCore;
use netclone_proto::{ClientId, Ipv4, RpcOp};
use netclone_stats::LatencyHistogram;

pub use netclone_hostcore::{ClientMode, ClientStats, LifetimeCounters, RetryPolicy};

use crate::packet::AppPacket;

/// The packets one [`ClientSim::generate`] call emits, each stamped with
/// its TX-completion time.
///
/// A fixed-size burst — no addressing scheme emits more than two packets
/// per request (C-Clone duplicates) — so the per-request path allocates
/// nothing. Index it or iterate it by value.
#[derive(Clone, Copy, Debug)]
pub struct TxBurst {
    buf: [Option<(AppPacket, u64)>; 2],
    len: usize,
}

impl TxBurst {
    fn new() -> Self {
        TxBurst {
            buf: [None, None],
            len: 0,
        }
    }

    fn push(&mut self, item: (AppPacket, u64)) {
        assert!(
            self.len < 2,
            "a client emits at most two packets per request"
        );
        self.buf[self.len] = Some(item);
        self.len += 1;
    }

    /// Number of packets in the burst.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the burst holds no packets.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Index<usize> for TxBurst {
    type Output = (AppPacket, u64);
    fn index(&self, i: usize) -> &Self::Output {
        self.buf[i].as_ref().expect("index past burst length")
    }
}

impl IntoIterator for TxBurst {
    type Item = (AppPacket, u64);
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<(AppPacket, u64)>, 2>>;
    fn into_iter(self) -> Self::IntoIter {
        self.buf.into_iter().flatten()
    }
}

/// Outcome of the receiver thread processing one response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RxOutcome {
    /// When the receiver thread finished with the packet (≥ arrival; the
    /// receiver is a serial resource).
    pub done_at: u64,
    /// The end-to-end latency recorded, if this was the *first* response
    /// for its request. `None` for redundant/unknown responses.
    pub latency_ns: Option<u64>,
}

/// One simulated client host: the shared protocol core plus the two
/// serial thread resources (sender, receiver) the paper's client runs on.
pub struct ClientSim {
    core: ClientCore,
    tx_cost_ns: u64,
    rx_cost_ns: u64,
    tx_free_at: u64,
    rx_free_at: u64,
}

impl ClientSim {
    /// Builds a client.
    ///
    /// `tx_cost_ns`/`rx_cost_ns` are the per-packet CPU costs of the sender
    /// and receiver threads (§4.2's VMA path; see the cluster's calibration
    /// module for the values used in experiments).
    pub fn new(
        cid: ClientId,
        mode: ClientMode,
        tx_cost_ns: u64,
        rx_cost_ns: u64,
        seed: u64,
    ) -> Self {
        ClientSim {
            core: ClientCore::new(cid, mode, seed),
            tx_cost_ns,
            rx_cost_ns,
            tx_free_at: 0,
            rx_free_at: 0,
        }
    }

    /// Arms the retry-on-timeout recovery path (see [`RetryPolicy`]):
    /// [`Self::tick`] then retransmits expired requests instead of just
    /// evicting them.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.core = self.core.with_retry(policy);
        self
    }

    /// The client's address.
    pub fn ip(&self) -> Ipv4 {
        self.core.ip()
    }

    /// The client's identity.
    pub fn cid(&self) -> ClientId {
        self.core.cid()
    }

    /// Mutable access to the addressing mode — the §3.6 failure path
    /// updates "the number of groups on the client side" (and direct modes
    /// drop dead servers) through this.
    pub fn mode_mut(&mut self) -> &mut ClientMode {
        self.core.mode_mut()
    }

    /// Latency histogram of completed requests.
    pub fn latencies(&self) -> &LatencyHistogram {
        self.core.latencies()
    }

    /// Statistics so far.
    pub fn stats(&self) -> ClientStats {
        self.core.stats()
    }

    /// Requests still awaiting their first response.
    pub fn outstanding(&self) -> usize {
        self.core.outstanding()
    }

    /// Discards warm-up measurements (keeps outstanding bookkeeping).
    pub fn reset_measurements(&mut self) {
        self.core.reset_measurements();
    }

    /// Generates one request at time `now` and returns the packet(s) the
    /// sender thread emits, each stamped with its TX-completion time.
    ///
    /// The open-loop generator never blocks: packets queue behind the
    /// sender thread's per-packet cost (`tx_free_at`), exactly like an
    /// application handing buffers to a userspace NIC queue.
    pub fn generate(&mut self, op: RpcOp, now: u64) -> TxBurst {
        self.core.generate(op, now);
        let mut out = TxBurst::new();
        while let Some(meta) = self.core.poll() {
            let tx_done = now.max(self.tx_free_at) + self.tx_cost_ns;
            self.tx_free_at = tx_done;
            out.push((
                AppPacket {
                    meta,
                    op,
                    born_ns: now,
                },
                tx_done,
            ));
        }
        out
    }

    /// Drives the core's timeout wheel at `now`.
    ///
    /// With a [`RetryPolicy`] armed, expired requests are retransmitted
    /// and returned as packets stamped with TX-completion times (they
    /// queue behind the sender thread like any generated packet); without
    /// one, expired requests are evicted as lost and the result is empty.
    pub fn tick(&mut self, now: u64) -> Vec<(AppPacket, u64)> {
        self.core.on_tick(now);
        let mut out = Vec::new();
        while let Some(meta) = self.core.poll() {
            let op = self
                .core
                .pending_op(meta.nc.client_seq)
                .expect("a retransmitted request is still outstanding");
            let tx_done = now.max(self.tx_free_at) + self.tx_cost_ns;
            self.tx_free_at = tx_done;
            out.push((
                AppPacket {
                    meta,
                    op,
                    born_ns: now,
                },
                tx_done,
            ));
        }
        out
    }

    /// Whole-run conservation counters (see
    /// [`netclone_hostcore::client::LifetimeCounters`]).
    pub fn lifetime(&self) -> LifetimeCounters {
        self.core.lifetime()
    }

    /// Receiver thread handles one response arriving at `now`.
    ///
    /// Every response — wanted or redundant — occupies the receiver for
    /// `rx_cost_ns` (this is the client-side redundancy overhead of §2.2
    /// and the mechanism behind Fig. 15). Latency is recorded at receiver
    /// completion for the first response of each request.
    pub fn on_response(&mut self, pkt: &AppPacket, now: u64) -> RxOutcome {
        let done_at = now.max(self.rx_free_at) + self.rx_cost_ns;
        self.rx_free_at = done_at;
        RxOutcome {
            done_at,
            latency_ns: self.core.on_packet(&pkt.meta.nc, done_at).latency_ns(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclone_proto::{NetCloneHdr, ServerState};

    fn echo() -> RpcOp {
        RpcOp::Echo { class_ns: 25_000 }
    }

    /// The response a server would send for `pkt` (echoing its identity).
    fn response_to(pkt: &AppPacket) -> AppPacket {
        let nc = NetCloneHdr::response_to(&pkt.meta.nc, 0, ServerState::IDLE);
        AppPacket {
            meta: netclone_proto::PacketMeta::netclone_response(
                Ipv4::server(0),
                pkt.meta.src_ip,
                nc,
                84,
            ),
            op: pkt.op,
            born_ns: pkt.born_ns,
        }
    }

    #[test]
    fn netclone_mode_leaves_destination_to_the_switch() {
        let mut c = ClientSim::new(
            0,
            ClientMode::NetClone {
                num_groups: 30,
                num_filter_tables: 2,
            },
            350,
            500,
            1,
        );
        let out = c.generate(echo(), 1_000);
        assert_eq!(out.len(), 1);
        let (pkt, tx_done) = out[0];
        assert!(pkt.meta.dst_ip.is_unspecified());
        assert!(pkt.meta.nc.grp < 30);
        assert!(pkt.meta.nc.idx < 2);
        assert_eq!(tx_done, 1_350);
        assert_eq!(pkt.born_ns, 1_000);
    }

    #[test]
    fn cclone_mode_duplicates_to_distinct_servers() {
        let servers: Vec<Ipv4> = (0..6).map(Ipv4::server).collect();
        let mut c = ClientSim::new(0, ClientMode::DirectDuplicate { servers }, 350, 500, 2);
        for _ in 0..100 {
            let out = c.generate(echo(), 0);
            assert_eq!(out.len(), 2);
            assert_ne!(out[0].0.meta.dst_ip, out[1].0.meta.dst_ip);
            assert_eq!(out[0].0.meta.nc.client_seq, out[1].0.meta.nc.client_seq);
        }
        assert_eq!(c.stats().packets_sent, 200);
    }

    #[test]
    fn sender_thread_serialises_packets() {
        let servers: Vec<Ipv4> = (0..4).map(Ipv4::server).collect();
        let mut c = ClientSim::new(0, ClientMode::DirectDuplicate { servers }, 350, 500, 3);
        let out = c.generate(echo(), 0);
        assert_eq!(out[0].1, 350);
        assert_eq!(out[1].1, 700, "second copy queues behind the first");
    }

    #[test]
    fn first_response_records_latency_second_is_redundant() {
        let mut c = ClientSim::new(
            0,
            ClientMode::NetClone {
                num_groups: 30,
                num_filter_tables: 2,
            },
            0,
            500,
            4,
        );
        let out = c.generate(echo(), 0);
        let resp = response_to(&out[0].0);
        let r1 = c.on_response(&resp, 40_000);
        assert_eq!(r1.latency_ns, Some(40_500));
        let r2 = c.on_response(&resp, 41_000);
        assert_eq!(r2.latency_ns, None);
        let st = c.stats();
        assert_eq!(st.completed, 1);
        assert_eq!(st.redundant, 1);
        assert_eq!(c.latencies().count(), 1);
    }

    #[test]
    fn receiver_thread_backpressure_inflates_latency() {
        let mut c = ClientSim::new(
            0,
            ClientMode::NetClone {
                num_groups: 30,
                num_filter_tables: 2,
            },
            0,
            1_000,
            5,
        );
        let a = response_to(&c.generate(echo(), 0)[0].0);
        let b = response_to(&c.generate(echo(), 0)[0].0);
        // Both responses arrive at t=10_000; the second waits for the
        // receiver.
        let r1 = c.on_response(&a, 10_000);
        let r2 = c.on_response(&b, 10_000);
        assert_eq!(r1.done_at, 11_000);
        assert_eq!(r2.done_at, 12_000);
        assert_eq!(r2.latency_ns, Some(12_000));
    }

    #[test]
    fn writes_are_marked_uncloneable() {
        let mut c = ClientSim::new(
            0,
            ClientMode::NetClone {
                num_groups: 30,
                num_filter_tables: 2,
            },
            0,
            0,
            6,
        );
        let put = RpcOp::Put {
            key: netclone_proto::KvKey::from_index(1),
            value_len: 64,
        };
        let out = c.generate(put, 0);
        assert_eq!(out[0].0.meta.nc.state, ServerState(1));
        let get = c.generate(echo(), 0);
        assert_eq!(get[0].0.meta.nc.state, ServerState(0));
    }

    #[test]
    fn coordinator_mode_targets_the_coordinator() {
        let coord = Ipv4::new(10, 0, 3, 1);
        let mut c = ClientSim::new(0, ClientMode::Coordinator { ip: coord }, 0, 0, 7);
        let out = c.generate(echo(), 0);
        assert_eq!(out[0].0.meta.dst_ip, coord);
    }

    #[test]
    fn reset_measurements_keeps_outstanding() {
        let mut c = ClientSim::new(
            0,
            ClientMode::NetClone {
                num_groups: 30,
                num_filter_tables: 2,
            },
            0,
            0,
            8,
        );
        let pkt = c.generate(echo(), 0)[0].0;
        c.reset_measurements();
        assert_eq!(c.stats().generated, 0);
        // The in-flight request still completes after the reset.
        let r = c.on_response(&response_to(&pkt), 50_000);
        assert!(r.latency_ns.is_some());
    }

    #[test]
    fn tick_retransmits_under_the_retry_policy() {
        let mut c = ClientSim::new(
            0,
            ClientMode::NetClone {
                num_groups: 30,
                num_filter_tables: 2,
            },
            350,
            0,
            10,
        )
        .with_retry(RetryPolicy::new(10_000));
        let pkt = c.generate(echo(), 0)[0].0;
        assert!(c.tick(9_999).is_empty());
        let rt = c.tick(10_000);
        assert_eq!(rt.len(), 1);
        assert_eq!(rt[0].0.meta.nc.client_seq, pkt.meta.nc.client_seq);
        assert_eq!(rt[0].1, 10_350, "retransmit pays the sender-thread cost");
        assert_eq!(c.stats().retried, 1);
        // The retransmission's response completes the original request.
        let r = c.on_response(&response_to(&rt[0].0), 15_000);
        assert!(r.latency_ns.is_some());
        assert_eq!(c.stats().retry_wins, 1);
        let lt = c.lifetime();
        assert_eq!(
            lt.generated,
            lt.completed + lt.lost + c.outstanding() as u64
        );
    }

    #[test]
    fn clone_wins_surface_through_the_sim() {
        let mut c = ClientSim::new(
            0,
            ClientMode::NetClone {
                num_groups: 30,
                num_filter_tables: 2,
            },
            0,
            0,
            9,
        );
        let pkt = c.generate(echo(), 0)[0].0;
        let mut resp = response_to(&pkt);
        resp.meta.nc.clo = netclone_proto::CloneStatus::Clone;
        c.on_response(&resp, 1_000);
        assert_eq!(c.stats().clone_wins, 1);
    }
}
