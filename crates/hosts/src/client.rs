//! The open-loop client model: sender + receiver threads with per-packet
//! CPU costs, request addressing for every compared scheme, response
//! dedup, and latency recording.

use std::collections::HashMap;

use netclone_proto::{ClientId, Ipv4, NetCloneHdr, PacketMeta, RpcOp, ServerState};
use netclone_stats::LatencyHistogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::packet::AppPacket;

/// How the client addresses its requests — one variant per compared scheme
/// (paper §5.1.3).
#[derive(Clone, Debug)]
pub enum ClientMode {
    /// NetClone: pick a random group ID and filter-table index; let the
    /// switch choose the destination (§3.3).
    NetClone {
        /// Number of installed groups (n·(n−1)).
        num_groups: u16,
        /// Number of filter tables (for the random `IDX`).
        num_filter_tables: u8,
    },
    /// Baseline: send to one uniformly random worker server, no cloning.
    DirectRandom {
        /// The worker servers' addresses.
        servers: Vec<Ipv4>,
    },
    /// C-Clone: send duplicates to two distinct random servers; the client
    /// processes both responses itself (§2.2).
    DirectDuplicate {
        /// The worker servers' addresses.
        servers: Vec<Ipv4>,
    },
    /// LÆDGE: send everything to the coordinator host.
    Coordinator {
        /// The coordinator's address.
        ip: Ipv4,
    },
}

/// Outcome of the receiver thread processing one response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RxOutcome {
    /// When the receiver thread finished with the packet (≥ arrival; the
    /// receiver is a serial resource).
    pub done_at: u64,
    /// The end-to-end latency recorded, if this was the *first* response
    /// for its request. `None` for redundant/unknown responses.
    pub latency_ns: Option<u64>,
}

/// Aggregate client statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    /// Requests generated.
    pub generated: u64,
    /// Packets sent (2× generated for C-Clone).
    pub packets_sent: u64,
    /// Completed requests (first responses).
    pub completed: u64,
    /// Redundant responses processed and discarded by the client.
    pub redundant: u64,
}

/// One simulated client host.
pub struct ClientSim {
    cid: ClientId,
    ip: Ipv4,
    mode: ClientMode,
    tx_cost_ns: u64,
    rx_cost_ns: u64,
    rng: StdRng,
    tx_free_at: u64,
    rx_free_at: u64,
    next_seq: u32,
    outstanding: HashMap<u32, u64>, // client_seq → born_ns
    latencies: LatencyHistogram,
    stats: ClientStats,
}

impl ClientSim {
    /// Builds a client.
    ///
    /// `tx_cost_ns`/`rx_cost_ns` are the per-packet CPU costs of the sender
    /// and receiver threads (§4.2's VMA path; see the cluster's calibration
    /// module for the values used in experiments).
    pub fn new(
        cid: ClientId,
        mode: ClientMode,
        tx_cost_ns: u64,
        rx_cost_ns: u64,
        seed: u64,
    ) -> Self {
        ClientSim {
            cid,
            ip: Ipv4::client(cid),
            mode,
            tx_cost_ns,
            rx_cost_ns,
            rng: StdRng::seed_from_u64(seed),
            tx_free_at: 0,
            rx_free_at: 0,
            next_seq: 0,
            outstanding: HashMap::new(),
            latencies: LatencyHistogram::new(),
            stats: ClientStats::default(),
        }
    }

    /// The client's address.
    pub fn ip(&self) -> Ipv4 {
        self.ip
    }

    /// The client's identity.
    pub fn cid(&self) -> ClientId {
        self.cid
    }

    /// Mutable access to the addressing mode — the §3.6 failure path
    /// updates "the number of groups on the client side" (and direct modes
    /// drop dead servers) through this.
    pub fn mode_mut(&mut self) -> &mut ClientMode {
        &mut self.mode
    }

    /// Latency histogram of completed requests.
    pub fn latencies(&self) -> &LatencyHistogram {
        &self.latencies
    }

    /// Statistics so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Requests still awaiting their first response.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Discards warm-up measurements (keeps outstanding bookkeeping).
    pub fn reset_measurements(&mut self) {
        self.latencies.clear();
        self.stats = ClientStats::default();
    }

    /// Generates one request at time `now` and returns the packet(s) the
    /// sender thread emits, each stamped with its TX-completion time.
    ///
    /// The open-loop generator never blocks: packets queue behind the
    /// sender thread's per-packet cost (`tx_free_at`), exactly like an
    /// application handing buffers to a userspace NIC queue.
    pub fn generate(&mut self, op: RpcOp, now: u64) -> Vec<(AppPacket, u64)> {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.outstanding.insert(seq, now);
        self.stats.generated += 1;

        // Writes must not be cloned (§5.5): mark them for the switch.
        let uncloneable = !op.is_cloneable();
        let mk_hdr = |grp: u16, idx: u8, me: &mut Self| {
            let mut nc = NetCloneHdr::request(grp, idx, me.cid, seq);
            if uncloneable {
                nc.state = ServerState(1);
            }
            nc
        };

        let mut out = Vec::with_capacity(2);
        let mut push = |me: &mut Self, mut meta: PacketMeta| {
            let tx_done = now.max(me.tx_free_at) + me.tx_cost_ns;
            me.tx_free_at = tx_done;
            meta.src_ip = me.ip;
            me.stats.packets_sent += 1;
            out.push((
                AppPacket {
                    meta,
                    op,
                    born_ns: now,
                },
                tx_done,
            ));
        };

        match self.mode.clone() {
            ClientMode::NetClone {
                num_groups,
                num_filter_tables,
            } => {
                let grp = self.rng.random_range(0..num_groups.max(1));
                let idx = self.rng.random_range(0..num_filter_tables.max(1));
                let nc = mk_hdr(grp, idx, self);
                push(self, PacketMeta::netclone_request(self.ip, nc, 84));
            }
            ClientMode::DirectRandom { servers } => {
                let dst = servers[self.rng.random_range(0..servers.len())];
                let nc = mk_hdr(0, 0, self);
                let mut meta = PacketMeta::netclone_request(self.ip, nc, 84);
                meta.dst_ip = dst;
                push(self, meta);
            }
            ClientMode::DirectDuplicate { servers } => {
                // Two distinct random servers (§2.2: "typically sends two
                // duplicate requests").
                let a = self.rng.random_range(0..servers.len());
                let b = if servers.len() > 1 {
                    let mut b = self.rng.random_range(0..servers.len() - 1);
                    if b >= a {
                        b += 1;
                    }
                    b
                } else {
                    a
                };
                for dst in [servers[a], servers[b]] {
                    let nc = mk_hdr(0, 0, self);
                    let mut meta = PacketMeta::netclone_request(self.ip, nc, 84);
                    meta.dst_ip = dst;
                    push(self, meta);
                }
            }
            ClientMode::Coordinator { ip } => {
                let nc = mk_hdr(0, 0, self);
                let mut meta = PacketMeta::netclone_request(self.ip, nc, 84);
                meta.dst_ip = ip;
                push(self, meta);
            }
        }
        out
    }

    /// Receiver thread handles one response arriving at `now`.
    ///
    /// Every response — wanted or redundant — occupies the receiver for
    /// `rx_cost_ns` (this is the client-side redundancy overhead of §2.2
    /// and the mechanism behind Fig. 15). Latency is recorded at receiver
    /// completion for the first response of each request.
    pub fn on_response(&mut self, pkt: &AppPacket, now: u64) -> RxOutcome {
        let done_at = now.max(self.rx_free_at) + self.rx_cost_ns;
        self.rx_free_at = done_at;
        match self.outstanding.remove(&pkt.meta.nc.client_seq) {
            Some(born) => {
                let latency = done_at.saturating_sub(born);
                self.latencies.record(latency);
                self.stats.completed += 1;
                RxOutcome {
                    done_at,
                    latency_ns: Some(latency),
                }
            }
            None => {
                self.stats.redundant += 1;
                RxOutcome {
                    done_at,
                    latency_ns: None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo() -> RpcOp {
        RpcOp::Echo { class_ns: 25_000 }
    }

    #[test]
    fn netclone_mode_leaves_destination_to_the_switch() {
        let mut c = ClientSim::new(
            0,
            ClientMode::NetClone {
                num_groups: 30,
                num_filter_tables: 2,
            },
            350,
            500,
            1,
        );
        let out = c.generate(echo(), 1_000);
        assert_eq!(out.len(), 1);
        let (pkt, tx_done) = out[0];
        assert!(pkt.meta.dst_ip.is_unspecified());
        assert!(pkt.meta.nc.grp < 30);
        assert!(pkt.meta.nc.idx < 2);
        assert_eq!(tx_done, 1_350);
        assert_eq!(pkt.born_ns, 1_000);
    }

    #[test]
    fn cclone_mode_duplicates_to_distinct_servers() {
        let servers: Vec<Ipv4> = (0..6).map(Ipv4::server).collect();
        let mut c = ClientSim::new(0, ClientMode::DirectDuplicate { servers }, 350, 500, 2);
        for _ in 0..100 {
            let out = c.generate(echo(), 0);
            assert_eq!(out.len(), 2);
            assert_ne!(out[0].0.meta.dst_ip, out[1].0.meta.dst_ip);
            assert_eq!(out[0].0.meta.nc.client_seq, out[1].0.meta.nc.client_seq);
        }
        assert_eq!(c.stats().packets_sent, 200);
    }

    #[test]
    fn sender_thread_serialises_packets() {
        let servers: Vec<Ipv4> = (0..4).map(Ipv4::server).collect();
        let mut c = ClientSim::new(0, ClientMode::DirectDuplicate { servers }, 350, 500, 3);
        let out = c.generate(echo(), 0);
        assert_eq!(out[0].1, 350);
        assert_eq!(out[1].1, 700, "second copy queues behind the first");
    }

    #[test]
    fn first_response_records_latency_second_is_redundant() {
        let mut c = ClientSim::new(
            0,
            ClientMode::NetClone {
                num_groups: 30,
                num_filter_tables: 2,
            },
            0,
            500,
            4,
        );
        let out = c.generate(echo(), 0);
        let pkt = out[0].0;
        let r1 = c.on_response(&pkt, 40_000);
        assert_eq!(r1.latency_ns, Some(40_500));
        let r2 = c.on_response(&pkt, 41_000);
        assert_eq!(r2.latency_ns, None);
        let st = c.stats();
        assert_eq!(st.completed, 1);
        assert_eq!(st.redundant, 1);
        assert_eq!(c.latencies().count(), 1);
    }

    #[test]
    fn receiver_thread_backpressure_inflates_latency() {
        let mut c = ClientSim::new(
            0,
            ClientMode::NetClone {
                num_groups: 30,
                num_filter_tables: 2,
            },
            0,
            1_000,
            5,
        );
        let a = c.generate(echo(), 0)[0].0;
        let b = c.generate(echo(), 0)[0].0;
        // Both responses arrive at t=10_000; the second waits for the
        // receiver.
        let r1 = c.on_response(&a, 10_000);
        let r2 = c.on_response(&b, 10_000);
        assert_eq!(r1.done_at, 11_000);
        assert_eq!(r2.done_at, 12_000);
        assert_eq!(r2.latency_ns, Some(12_000));
    }

    #[test]
    fn writes_are_marked_uncloneable() {
        let mut c = ClientSim::new(
            0,
            ClientMode::NetClone {
                num_groups: 30,
                num_filter_tables: 2,
            },
            0,
            0,
            6,
        );
        let put = RpcOp::Put {
            key: netclone_proto::KvKey::from_index(1),
            value_len: 64,
        };
        let out = c.generate(put, 0);
        assert_eq!(out[0].0.meta.nc.state, ServerState(1));
        let get = c.generate(echo(), 0);
        assert_eq!(get[0].0.meta.nc.state, ServerState(0));
    }

    #[test]
    fn coordinator_mode_targets_the_coordinator() {
        let coord = Ipv4::new(10, 0, 3, 1);
        let mut c = ClientSim::new(0, ClientMode::Coordinator { ip: coord }, 0, 0, 7);
        let out = c.generate(echo(), 0);
        assert_eq!(out[0].0.meta.dst_ip, coord);
    }

    #[test]
    fn reset_measurements_keeps_outstanding() {
        let mut c = ClientSim::new(
            0,
            ClientMode::NetClone {
                num_groups: 30,
                num_filter_tables: 2,
            },
            0,
            0,
            8,
        );
        let pkt = c.generate(echo(), 0)[0].0;
        c.reset_measurements();
        assert_eq!(c.stats().generated, 0);
        // The in-flight request still completes after the reset.
        let r = c.on_response(&pkt, 50_000);
        assert!(r.latency_ns.is_some());
    }
}
