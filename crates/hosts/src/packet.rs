//! [`AppPacket`] — a packet as hosts see it: switch-visible metadata plus
//! the application payload and the client-side birth timestamp used for
//! end-to-end latency measurement.

use netclone_proto::{PacketMeta, RpcOp};

/// One in-flight packet at the application layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AppPacket {
    /// The switch-visible slice (addresses + NetClone header).
    pub meta: PacketMeta,
    /// The RPC operation (payload).
    pub op: RpcOp,
    /// When the request was *generated* at the client, ns. Carried through
    /// the response so latency is measured generation → receiver-thread
    /// completion, exactly like the paper's client.
    pub born_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclone_proto::{Ipv4, NetCloneHdr};

    #[test]
    fn app_packet_is_copy_cheap() {
        let p = AppPacket {
            meta: PacketMeta::netclone_request(
                Ipv4::client(0),
                NetCloneHdr::request(0, 0, 0, 0),
                84,
            ),
            op: RpcOp::Echo { class_ns: 25_000 },
            born_ns: 123,
        };
        let q = p; // Copy
        assert_eq!(p, q);
        assert!(
            std::mem::size_of::<AppPacket>() <= 96,
            "keep the hot type small"
        );
    }
}
