//! # netclone-hosts
//!
//! Host-side models for the evaluation testbed (paper §4.2):
//!
//! * [`ServerSim`] — "The server consists of a single dispatcher thread and
//!   multiple worker threads. The dispatcher enqueues received requests
//!   into a global request queue with FCFS policy. Worker threads dequeue
//!   requests and process them in parallel." Plus the NetClone server-side
//!   rule from §3.4: a cloned request (`CLO=2`) is **dropped** if the queue
//!   is non-empty on arrival, and every response piggybacks the current
//!   queue state.
//! * [`ClientSim`] — "an open-loop multi-threaded application … one sender
//!   thread and one receiver thread", with per-packet CPU costs on both
//!   (the VMA kernel-bypass path still costs hundreds of ns per packet);
//!   the receiver cost is what makes unfiltered redundant responses harmful
//!   at load (Fig. 15) and halves C-Clone's effective capacity (§2.2).
//!
//! Both models are thin DES frontends over the shared sans-io protocol
//! cores in [`netclone-hostcore`]: the cores own addressing, duplicate
//! filtering, the §3.4 clone-drop rule, piggyback construction, and all
//! accounting; this crate adds only the *timing* the simulator models
//! (serial sender/receiver threads, dispatcher + FCFS queue + workers).
//! The request-addressing modes of the evaluation — NetClone (group ID,
//! unspecified destination), Baseline (random server), C-Clone (duplicate
//! to two random servers), and coordinator-directed (LÆDGE) — come from
//! [`netclone_hostcore::ClientMode`], re-exported here.
//!
//! [`netclone-hostcore`]: ../netclone_hostcore/index.html

pub mod client;
pub mod packet;
pub mod server;

pub use client::{ClientMode, ClientSim, ClientStats, LifetimeCounters, RetryPolicy, RxOutcome};
pub use packet::AppPacket;
pub use server::{Admission, Completion, ServerConfig, ServerSim, ServerStats};
