//! The worker-server model: a DES frontend over the shared [`ServerCore`]
//! protocol state machine, adding the dispatcher + FCFS queue + worker
//! thread *timing* the simulator models. The §3.4 clone-drop rule,
//! response construction with state piggybacking, and all accounting live
//! in [`netclone_hostcore::ServerCore`], shared verbatim with the
//! real-socket server in `netclone-net`.

use std::collections::VecDeque;

use netclone_hostcore::{AdmitDecision, ServerCore};
use netclone_kvstore::{HotKeyCost, ServiceCostModel};
use netclone_proto::{NetCloneHdr, RpcOp, ServerId};
use netclone_workloads::{Jitter, ServiceShape};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub use netclone_hostcore::ServerStats;

use crate::packet::AppPacket;

/// Static configuration of one worker server.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Server identity (the `SID` field of its responses).
    pub sid: ServerId,
    /// Worker threads processing requests in parallel (paper: 15 for
    /// synthetic workloads + 1 dispatcher on a 16-thread CPU; 8 for KV).
    pub workers: usize,
    /// Dispatcher cost to receive + enqueue one request, ns.
    pub dispatch_ns: u64,
    /// Dispatcher cost to receive + drop a cloned request, ns (the §5.3.2
    /// "processing cost \[that\] can be harmful … at very high loads").
    pub clone_drop_ns: u64,
    /// Distribution of execution time around a request's class.
    pub shape: ServiceShape,
    /// The §5.1.2 jitter model (×15 with probability p).
    pub jitter: Jitter,
    /// Cost model for KV operations (Echo requests carry their own class).
    pub cost: ServiceCostModel,
    /// Optional cache-aware hit/miss split over `cost`: when set, the
    /// request's class comes from the hot-key model instead of `cost`
    /// (the adversarial Zipf hot-key scenarios).
    pub hot_key: Option<HotKeyCost>,
    /// RNG seed (derive via `SeedFactory`).
    pub seed: u64,
}

impl ServerConfig {
    /// The paper's synthetic-workload server: 15 workers, exponential
    /// service shape, high-variability jitter.
    pub fn synthetic(sid: ServerId, seed: u64) -> Self {
        ServerConfig {
            sid,
            workers: 15,
            dispatch_ns: 300,
            clone_drop_ns: 200,
            shape: ServiceShape::Exponential,
            jitter: Jitter::HIGH,
            cost: ServiceCostModel::redis(), // unused by Echo classes
            hot_key: None,
            seed,
        }
    }

    /// The paper's KV server: 8 worker threads (§5.5), Gamma(4) service
    /// dispersion over the store's cost model.
    pub fn kv(sid: ServerId, cost: ServiceCostModel, seed: u64) -> Self {
        ServerConfig {
            sid,
            workers: 8,
            dispatch_ns: 300,
            clone_drop_ns: 200,
            shape: ServiceShape::Gamma4,
            jitter: Jitter::HIGH,
            cost,
            hot_key: None,
            seed,
        }
    }
}

/// What happened to an arriving request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Admission {
    /// A worker picked it up immediately; service completes at `done_at`.
    Start {
        /// Absolute completion time, ns.
        done_at: u64,
    },
    /// Enqueued behind other requests (FCFS).
    Queued,
    /// A `CLO=2` clone arriving at a non-empty queue: dropped (§3.4).
    CloneDropped,
}

/// What a completed service hands back.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Completion {
    /// The response header to send, piggybacking the queue length at send
    /// time (§3.4/§5.6.1), built by the shared [`ServerCore`].
    pub resp: NetCloneHdr,
    /// The next queued request this worker immediately starts, with its
    /// completion time.
    pub next: Option<(AppPacket, u64)>,
}

/// One simulated worker server.
pub struct ServerSim {
    cfg: ServerConfig,
    core: ServerCore,
    rng: StdRng,
    queue: VecDeque<AppPacket>,
    busy_workers: usize,
    dispatcher_free_at: u64,
    alive: bool,
    /// Multiplicative service-time degradation (1.0 = healthy). Unlike
    /// `kill()` (fail-stop, §3.6) the server keeps answering — just
    /// slower — which is exactly the gray failure cloning should mask.
    slow_factor: f64,
}

impl ServerSim {
    /// Builds a server from its configuration.
    pub fn new(cfg: ServerConfig) -> Self {
        ServerSim {
            core: ServerCore::new(cfg.sid),
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            queue: VecDeque::new(),
            busy_workers: 0,
            dispatcher_free_at: 0,
            alive: true,
            slow_factor: 1.0,
        }
    }

    /// The server's identity.
    pub fn sid(&self) -> ServerId {
        self.core.sid()
    }

    /// Current queue length (excludes in-service requests — this is the
    /// quantity the paper's servers report and check).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Workers currently serving requests.
    pub fn busy_workers(&self) -> usize {
        self.busy_workers
    }

    /// Statistics so far.
    pub fn stats(&self) -> ServerStats {
        self.core.stats()
    }

    /// Marks the server failed: it silently drops everything (§3.6).
    pub fn kill(&mut self) {
        self.alive = false;
        self.queue.clear();
        self.busy_workers = 0;
    }

    /// Brings a failed server back, empty.
    pub fn revive(&mut self) {
        self.alive = true;
    }

    /// True when the server is up.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Sets the multiplicative service-time degradation (1.0 = healthy).
    /// Affects only services *drawn* from now on — in-flight requests
    /// keep their completion times, like a real frequency drop.
    pub fn set_slow_factor(&mut self, factor: f64) {
        debug_assert!(factor > 0.0, "slow factor must be positive");
        self.slow_factor = factor;
    }

    /// Current degradation factor.
    pub fn slow_factor(&self) -> f64 {
        self.slow_factor
    }

    /// Draws the execution time for one request (class → shape → jitter →
    /// degradation). The slowdown multiplies *after* the stochastic
    /// stages, so the RNG draw sequence is identical whether or not a
    /// degradation plan is active — healthy runs stay seed-pinned.
    fn draw_service_ns(&mut self, op: &RpcOp) -> u64 {
        let class = match &self.cfg.hot_key {
            Some(hk) => hk.class_ns(op),
            None => self.cfg.cost.class_ns(op),
        };
        let base = self.cfg.shape.sample(&mut self.rng, class);
        let jittered = self.cfg.jitter.apply(&mut self.rng, base);
        if self.slow_factor != 1.0 {
            (jittered as f64 * self.slow_factor).round() as u64
        } else {
            jittered
        }
    }

    /// Handles one arriving request packet at time `now`.
    pub fn on_request(&mut self, pkt: AppPacket, now: u64) -> Admission {
        if !self.alive {
            return Admission::CloneDropped; // silently lost; caller ignores
        }
        // The single dispatcher thread serialises receive+enqueue work.
        let t0 = now.max(self.dispatcher_free_at);
        // §3.4: cloned requests (CLO=2) are dropped on a non-empty queue;
        // the shared core applies the rule and keeps the counter.
        if self.core.admit(pkt.meta.nc.clo, self.queue.len()) == AdmitDecision::DropClone {
            self.dispatcher_free_at = t0 + self.cfg.clone_drop_ns;
            return Admission::CloneDropped;
        }
        let ready = t0 + self.cfg.dispatch_ns;
        self.dispatcher_free_at = ready;
        if self.busy_workers < self.cfg.workers && self.queue.is_empty() {
            self.busy_workers += 1;
            let service = self.draw_service_ns(&pkt.op);
            Admission::Start {
                done_at: ready + service,
            }
        } else {
            self.queue.push_back(pkt);
            self.core.note_queue_depth(self.queue.len());
            Admission::Queued
        }
    }

    /// Completes one service of `req` at time `now`: pulls the next queued
    /// request (if any) onto the freed worker, then builds the response.
    ///
    /// The worker loop is *dequeue next, then send the response* — so the
    /// "current queue length when sending a response" (§5.6.1) is the
    /// post-dequeue length. This makes the idle signal optimistic about
    /// imminent drain, which is what lets cloning persist into high loads
    /// (§5.6.1: "queues do not always build up even under very high
    /// loads") and produces the §5.3.2 herding effects the paper observes.
    pub fn on_service_done(&mut self, req: &NetCloneHdr, now: u64) -> Completion {
        debug_assert!(self.busy_workers > 0, "completion without a busy worker");
        self.busy_workers = self.busy_workers.saturating_sub(1);
        let next = self.queue.pop_front().map(|pkt| {
            self.busy_workers += 1;
            let service = self.draw_service_ns(&pkt.op);
            (pkt, now + service)
        });
        let resp = self.core.response(req, self.queue.len());
        Completion { resp, next }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclone_proto::{CloneStatus, Ipv4, PacketMeta};

    fn pkt(clo: CloneStatus) -> AppPacket {
        let mut meta =
            PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 0), 84);
        meta.nc.clo = clo;
        AppPacket {
            meta,
            op: RpcOp::Echo { class_ns: 25_000 },
            born_ns: 0,
        }
    }

    fn det_server(workers: usize) -> ServerSim {
        let mut cfg = ServerConfig::synthetic(0, 1);
        cfg.workers = workers;
        cfg.shape = ServiceShape::Deterministic;
        cfg.jitter = Jitter::NONE;
        cfg.dispatch_ns = 100;
        ServerSim::new(cfg)
    }

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = det_server(2);
        match s.on_request(pkt(CloneStatus::NotCloned), 1_000) {
            Admission::Start { done_at } => assert_eq!(done_at, 1_000 + 100 + 25_000),
            other => panic!("expected Start, got {other:?}"),
        }
        assert_eq!(s.busy_workers(), 1);
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn requests_queue_when_workers_are_busy() {
        let mut s = det_server(1);
        assert!(matches!(
            s.on_request(pkt(CloneStatus::NotCloned), 0),
            Admission::Start { .. }
        ));
        assert_eq!(
            s.on_request(pkt(CloneStatus::NotCloned), 10),
            Admission::Queued
        );
        assert_eq!(s.queue_len(), 1);
        assert_eq!(s.stats().peak_queue, 1);
    }

    #[test]
    fn clone_dropped_iff_queue_nonempty() {
        let mut s = det_server(1);
        // Queue empty, worker free: the clone is served.
        assert!(matches!(
            s.on_request(pkt(CloneStatus::Clone), 0),
            Admission::Start { .. }
        ));
        // Queue empty, worker busy: the clone queues (only *non-empty
        // queues* drop clones, §3.4).
        assert_eq!(s.on_request(pkt(CloneStatus::Clone), 10), Admission::Queued);
        // Queue non-empty: the clone is dropped.
        assert_eq!(
            s.on_request(pkt(CloneStatus::Clone), 20),
            Admission::CloneDropped
        );
        assert_eq!(s.stats().clones_dropped, 1);
        // …while an original (CLO=1) is processed normally.
        assert_eq!(
            s.on_request(pkt(CloneStatus::ClonedOriginal), 30),
            Admission::Queued
        );
    }

    #[test]
    fn completion_reports_queue_state_and_chains_next() {
        let mut s = det_server(1);
        let first = pkt(CloneStatus::NotCloned);
        let done_at = match s.on_request(first, 0) {
            Admission::Start { done_at } => done_at,
            other => panic!("{other:?}"),
        };
        s.on_request(pkt(CloneStatus::NotCloned), 10);
        s.on_request(pkt(CloneStatus::NotCloned), 20);
        assert_eq!(s.queue_len(), 2);
        let c = s.on_service_done(&first.meta.nc, done_at);
        // State sampled after the worker dequeues its next request:
        // 2 were queued, 1 remains.
        assert_eq!(c.resp.state.queue_len(), 1);
        assert!(c.resp.is_response());
        assert_eq!(c.resp.sid, 0);
        let (next_pkt, next_done) = c.next.expect("worker must chain");
        assert_eq!(next_pkt.meta.nc.clo, CloneStatus::NotCloned);
        assert_eq!(next_done, done_at + 25_000);
        assert_eq!(s.queue_len(), 1);
        assert_eq!(s.busy_workers(), 1);
    }

    #[test]
    fn idle_reports_track_empty_queue_fraction() {
        let mut s = det_server(2);
        let first = pkt(CloneStatus::NotCloned);
        let d1 = match s.on_request(first, 0) {
            Admission::Start { done_at } => done_at,
            _ => unreachable!(),
        };
        let c = s.on_service_done(&first.meta.nc, d1);
        assert!(c.resp.state.is_idle());
        let st = s.stats();
        assert_eq!(st.idle_reports, 1);
        assert_eq!(st.responses, 1);
        assert_eq!(st.served, 1);
    }

    #[test]
    fn dispatcher_serialises_arrivals() {
        let mut s = det_server(4);
        // Two arrivals at the same instant: the second starts 100 ns later
        // (dispatcher cost), so completions differ.
        let a = match s.on_request(pkt(CloneStatus::NotCloned), 0) {
            Admission::Start { done_at } => done_at,
            _ => unreachable!(),
        };
        let b = match s.on_request(pkt(CloneStatus::NotCloned), 0) {
            Admission::Start { done_at } => done_at,
            _ => unreachable!(),
        };
        assert_eq!(b, a + 100);
    }

    #[test]
    fn killed_server_swallows_requests() {
        let mut s = det_server(1);
        s.kill();
        assert!(!s.is_alive());
        assert_eq!(
            s.on_request(pkt(CloneStatus::NotCloned), 0),
            Admission::CloneDropped
        );
        s.revive();
        assert!(matches!(
            s.on_request(pkt(CloneStatus::NotCloned), 0),
            Admission::Start { .. }
        ));
    }

    #[test]
    fn slow_factor_scales_new_services_only() {
        let mut s = det_server(2);
        match s.on_request(pkt(CloneStatus::NotCloned), 0) {
            Admission::Start { done_at } => assert_eq!(done_at, 100 + 25_000),
            other => panic!("{other:?}"),
        }
        s.set_slow_factor(4.0);
        // A new arrival pays 4× service; dispatcher cost is unaffected.
        match s.on_request(pkt(CloneStatus::NotCloned), 1_000_000) {
            Admission::Start { done_at } => assert_eq!(done_at, 1_000_000 + 100 + 100_000),
            other => panic!("{other:?}"),
        }
        s.set_slow_factor(1.0);
        assert_eq!(s.slow_factor(), 1.0);
    }

    #[test]
    fn hot_key_split_prices_hits_and_misses_differently() {
        use netclone_kvstore::HotKeyCost;
        use netclone_proto::KvKey;
        let mut cfg = ServerConfig::kv(0, ServiceCostModel::redis(), 1);
        cfg.shape = ServiceShape::Deterministic;
        cfg.jitter = Jitter::NONE;
        cfg.dispatch_ns = 0;
        cfg.hot_key = Some(HotKeyCost::redis_with_backing_store(100));
        let mut s = ServerSim::new(cfg);
        let hk = cfg.hot_key.unwrap();
        let mk = |idx: u64| {
            let meta =
                PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 0), 84);
            AppPacket {
                meta,
                op: RpcOp::Get {
                    key: KvKey::from_index(idx),
                },
                born_ns: 0,
            }
        };
        match s.on_request(mk(0), 0) {
            Admission::Start { done_at } => assert_eq!(done_at, hk.hit.get_ns()),
            other => panic!("{other:?}"),
        }
        match s.on_request(mk(5_000), 10_000_000) {
            Admission::Start { done_at } => {
                assert_eq!(done_at, 10_000_000 + hk.miss.get_ns());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn jitter_inflates_some_services() {
        let mut cfg = ServerConfig::synthetic(0, 7);
        cfg.workers = 1_000_000; // never queue
        cfg.shape = ServiceShape::Deterministic;
        cfg.jitter = Jitter { p: 0.5, factor: 15 };
        let mut s = ServerSim::new(cfg);
        let mut slow = 0;
        for i in 0..1_000 {
            match s.on_request(pkt(CloneStatus::NotCloned), i * 1_000_000) {
                Admission::Start { done_at } => {
                    let service = done_at - i * 1_000_000 - cfg.dispatch_ns;
                    if service == 375_000 {
                        slow += 1;
                    } else {
                        assert_eq!(service, 25_000);
                    }
                }
                other => panic!("{other:?}"),
            }
        }
        assert!((300..700).contains(&slow), "jitter hits {slow}/1000");
    }
}
