//! Property tests for the client protocol core: under *any* interleaving
//! of responses, duplicate deliveries, and timeout sweeps, the accounting
//! is conserved — every generated request ends up exactly once in
//! `completed` or `lost`, and redundant replies are never double-counted
//! as completions.

use netclone_hostcore::{ClientCore, ClientMode, RxEvent};
use netclone_proto::{CloneStatus, NetCloneHdr, PacketMeta, RpcOp, ServerState};
use proptest::prelude::*;

const TIMEOUT_NS: u64 = 50_000;

fn nc_core(seed: u64) -> ClientCore {
    ClientCore::new(
        0,
        ClientMode::NetClone {
            num_groups: 30,
            num_filter_tables: 2,
        },
        seed,
    )
    .with_timeout(TIMEOUT_NS)
}

fn response_to(meta: &PacketMeta, from_clone: bool) -> NetCloneHdr {
    let mut req = meta.nc;
    req.clo = if from_clone {
        CloneStatus::Clone
    } else {
        CloneStatus::ClonedOriginal
    };
    NetCloneHdr::response_to(&req, 1, ServerState::IDLE)
}

/// One scripted action against the core.
#[derive(Clone, Debug)]
enum Action {
    /// Generate a new request.
    Generate,
    /// Deliver a response for the request with this script index (modulo
    /// the number generated so far); `clone` selects the `CLO=2` copy.
    Deliver { target: usize, clone: bool },
    /// Advance time past the timeout horizon and sweep.
    TickFar,
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        Just(Action::Generate),
        (any::<usize>(), any::<bool>())
            .prop_map(|(target, clone)| Action::Deliver { target, clone }),
        (any::<usize>(), any::<bool>())
            .prop_map(|(target, clone)| Action::Deliver { target, clone }),
        Just(Action::TickFar),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// For any interleaving: `sent == completed + lost` once everything
    /// has been drained, each request completes at most once (extra
    /// deliveries are redundant), and clone wins never exceed completions.
    #[test]
    fn accounting_is_conserved_under_arbitrary_interleavings(
        script in proptest::collection::vec(arb_action(), 1..120),
        seed in any::<u64>(),
    ) {
        let mut c = nc_core(seed);
        let mut now = 0u64;
        let mut sent: Vec<PacketMeta> = Vec::new();
        let mut completions = std::collections::HashSet::new();
        let mut expect_redundant = 0u64;

        for action in script {
            now += 1_000;
            match action {
                Action::Generate => {
                    c.generate(RpcOp::Echo { class_ns: 10_000 }, now);
                    sent.push(c.poll().expect("NetClone mode emits one packet"));
                    prop_assert!(c.poll().is_none());
                }
                Action::Deliver { target, clone } => {
                    if sent.is_empty() {
                        continue;
                    }
                    let meta = &sent[target % sent.len()];
                    let resp = response_to(meta, clone);
                    match c.on_packet(&resp, now) {
                        RxEvent::Completed { from_clone, .. } => {
                            prop_assert!(
                                completions.insert(meta.nc.client_seq),
                                "request {} completed twice",
                                meta.nc.client_seq
                            );
                            prop_assert_eq!(from_clone, clone);
                        }
                        RxEvent::Redundant => {
                            expect_redundant += 1;
                        }
                        RxEvent::Ignored => {
                            prop_assert!(false, "own responses are never ignored");
                        }
                    }
                }
                Action::TickFar => {
                    now += TIMEOUT_NS;
                    c.on_tick(now);
                }
            }
        }

        // Outstanding requests will never be answered once the run ends.
        c.drain_outstanding();

        let st = c.stats();
        prop_assert_eq!(st.generated, sent.len() as u64);
        prop_assert_eq!(st.packets_sent, sent.len() as u64);
        prop_assert_eq!(st.completed, completions.len() as u64);
        prop_assert_eq!(
            st.completed + st.lost,
            st.generated,
            "every request resolves exactly once"
        );
        prop_assert_eq!(st.redundant, expect_redundant);
        prop_assert!(st.clone_wins <= st.completed);
        prop_assert_eq!(c.outstanding(), 0);
        prop_assert_eq!(c.latencies().count(), st.completed);
    }

    /// A request that timed out and is answered late is redundant — the
    /// late reply must not resurrect it as a completion.
    #[test]
    fn late_replies_to_evicted_requests_stay_redundant(
        n in 1usize..30,
        seed in any::<u64>(),
    ) {
        let mut c = nc_core(seed);
        let mut metas = Vec::new();
        for i in 0..n {
            c.generate(RpcOp::Echo { class_ns: 1 }, i as u64);
            metas.push(c.poll().unwrap());
        }
        let far = TIMEOUT_NS + n as u64 + 1;
        prop_assert_eq!(c.on_tick(far), n as u64);
        for meta in &metas {
            let resp = response_to(meta, false);
            prop_assert_eq!(c.on_packet(&resp, far + 1), RxEvent::Redundant);
        }
        let st = c.stats();
        prop_assert_eq!(st.completed, 0);
        prop_assert_eq!(st.lost, n as u64);
        prop_assert_eq!(st.redundant, n as u64);
    }
}

/// Scripted per-request fate for the sharding/merge property below.
#[derive(Clone, Copy, Debug)]
enum Fate {
    /// One response arrives (`clone` selects the CLO=2 copy).
    Complete { clone: bool },
    /// The response arrives twice — the second must count as redundant.
    Duplicate,
    /// No response ever arrives — the final drain reports it lost.
    Lose,
}

fn arb_fate() -> impl Strategy<Value = Fate> {
    prop_oneof![
        Just(Fate::Complete { clone: false }),
        Just(Fate::Complete { clone: true }),
        Just(Fate::Duplicate),
        Just(Fate::Lose),
    ]
}

/// Drives `cores[pick(i)]` through request `i`'s scripted fate and
/// returns the merged stats plus total completed-latency samples.
fn run_partitioned(
    fates: &[Fate],
    cores: &mut [ClientCore],
    pick: impl Fn(usize) -> usize,
) -> (netclone_hostcore::ClientStats, u64) {
    let mut now = 0u64;
    for (i, fate) in fates.iter().enumerate() {
        now += 1_000;
        let c = &mut cores[pick(i)];
        c.generate(RpcOp::Echo { class_ns: 10_000 }, now);
        let meta = c.poll().expect("NetClone mode emits one packet");
        match fate {
            Fate::Complete { clone } => {
                c.on_packet(&response_to(&meta, *clone), now + 500);
            }
            Fate::Duplicate => {
                c.on_packet(&response_to(&meta, false), now + 500);
                c.on_packet(&response_to(&meta, false), now + 600);
            }
            Fate::Lose => {}
        }
    }
    let mut merged = netclone_hostcore::ClientStats::default();
    let mut samples = 0u64;
    for c in cores.iter_mut() {
        c.drain_outstanding();
        merged.merge(&c.stats());
        samples += c.latencies().count();
    }
    (merged, samples)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The sharded open-loop frontend's merge contract: partitioning a
    /// request set across N worker cores (disjoint cids, any assignment)
    /// and summing per-worker stats yields exactly the stats of a single
    /// core running the same request set with the same per-request fates.
    #[test]
    fn merged_worker_stats_equal_a_single_core_run(
        fates in proptest::collection::vec(arb_fate(), 1..200),
        workers in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut single = [nc_core(seed)];
        let (single_stats, single_samples) = run_partitioned(&fates, &mut single, |_| 0);

        let mut cores: Vec<ClientCore> = (0..workers as u16)
            .map(|w| {
                ClientCore::new(
                    w,
                    ClientMode::NetClone { num_groups: 30, num_filter_tables: 2 },
                    seed ^ u64::from(w),
                )
                .with_timeout(TIMEOUT_NS)
            })
            .collect();
        let (merged, samples) = run_partitioned(&fates, &mut cores, |i| i % workers);

        prop_assert_eq!(merged, single_stats);
        prop_assert_eq!(samples, single_samples);
        prop_assert_eq!(merged.generated, fates.len() as u64);
        prop_assert_eq!(merged.completed + merged.lost, merged.generated);
    }
}
