//! # netclone-hostcore
//!
//! Transport-free (*sans-io*) state machines for the **host** half of the
//! NetClone protocol (paper §3.3–§3.5, §4.2) — the logic every frontend
//! needs but no frontend should own:
//!
//! * [`ClientCore`] — request generation and addressing for every compared
//!   scheme (NetClone random `GRP`+`IDX`, Baseline, C-Clone, LÆDGE),
//!   sequence/duplicate filtering of responses, clone-win and redundant
//!   accounting, per-request timeout/loss bookkeeping, and the latency
//!   histogram.
//! * [`ServerCore`] — the §3.4 clone-drop rule, response construction with
//!   the piggybacked queue state, and served/dropped/idle accounting.
//!
//! The cores never touch a socket, a thread, or a clock: time is an
//! explicit `u64` nanosecond argument, input is parsed packet metadata
//! ([`netclone_proto::PacketMeta`] / [`netclone_proto::NetCloneHdr`]), and
//! output is either returned packets ([`ClientCore::poll`]) or plain
//! verdicts the caller acts on. That is what lets the discrete-event
//! simulator (`netclone-hosts`, `netclone-cluster`) and the real-socket
//! runtime (`netclone-net`) share *one* implementation: the DES frontend
//! feeds simulated nanoseconds and event-queue deliveries, the UDP
//! frontend feeds wall-clock nanoseconds and datagrams, and the
//! cross-frontend test at the workspace root pins both to identical
//! host-level counters.
//!
//! Every new host behavior — addressing modes, retries, timeout handling —
//! lands here once and is instantly available in both worlds.

pub mod client;
pub mod server;

pub use client::{ClientCore, ClientMode, ClientStats, LifetimeCounters, RetryPolicy, RxEvent};
pub use server::{AdmitDecision, ServerCore, ServerStats};
