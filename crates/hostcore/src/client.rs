//! [`ClientCore`] — the transport-free client half of the NetClone
//! protocol: addressing, duplicate filtering, and accounting.
//!
//! The core is a plain state machine over explicit nanosecond timestamps:
//!
//! * [`ClientCore::generate`] assigns the next sequence number, applies the
//!   scheme's addressing ([`ClientMode`]), and queues the outgoing
//!   packet(s);
//! * [`ClientCore::poll`] drains the queued packets — the frontend decides
//!   when and how to transmit them (DES event, UDP datagram);
//! * [`ClientCore::on_packet`] classifies an incoming response (first
//!   response / redundant / not-for-us) and keeps the latency histogram;
//! * [`ClientCore::on_tick`] evicts requests that outlived the configured
//!   per-request timeout, so `outstanding` never grows without bound under
//!   response loss — or, with a [`RetryPolicy`], *retransmits* them under
//!   capped exponential backoff and a per-client retry budget, so degraded
//!   servers become a measurable recovery path instead of silent loss.

use std::collections::{HashMap, VecDeque};

use netclone_proto::{ClientId, CloneStatus, Ipv4, NetCloneHdr, PacketMeta, RpcOp, ServerState};
use netclone_stats::LatencyHistogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the client addresses its requests — one variant per compared scheme
/// (paper §5.1.3).
#[derive(Clone, Debug)]
pub enum ClientMode {
    /// NetClone: pick a random group ID and filter-table index; let the
    /// switch choose the destination (§3.3).
    NetClone {
        /// Number of installed groups (n·(n−1)).
        num_groups: u16,
        /// Number of filter tables (for the random `IDX`).
        num_filter_tables: u8,
    },
    /// Baseline: send to one uniformly random worker server, no cloning.
    DirectRandom {
        /// The worker servers' addresses.
        servers: Vec<Ipv4>,
    },
    /// C-Clone: send duplicates to two distinct random servers; the client
    /// processes both responses itself (§2.2).
    DirectDuplicate {
        /// The worker servers' addresses.
        servers: Vec<Ipv4>,
    },
    /// LÆDGE: send everything to the coordinator host.
    Coordinator {
        /// The coordinator's address.
        ip: Ipv4,
    },
}

/// Client-side recovery policy: retry-on-timeout with capped exponential
/// backoff and a per-client retry budget.
///
/// A request that misses its deadline is *retransmitted* (same sequence
/// number, fresh addressing draw) instead of evicted, doubling its timeout
/// up to `backoff_cap_ns` each attempt, until either `max_retries` extra
/// attempts or the client-wide `budget` is spent. Retries go through the
/// normal outbox, so retry storms load the fabric like real traffic —
/// they are modeled, not hidden.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Initial per-request timeout (first deadline = born + this).
    pub timeout_ns: u64,
    /// Ceiling for the doubled timeout (capped exponential backoff).
    pub backoff_cap_ns: u64,
    /// Extra transmission attempts allowed per request.
    pub max_retries: u32,
    /// Client-wide cap on total retransmissions; once spent, expired
    /// requests are evicted as `budget_exhausted` instead of retried.
    pub budget: u64,
}

impl RetryPolicy {
    /// A conventional policy: 3 retries, backoff capped at 8× the initial
    /// timeout, effectively unlimited budget.
    pub fn new(timeout_ns: u64) -> Self {
        RetryPolicy {
            timeout_ns,
            backoff_cap_ns: timeout_ns.saturating_mul(8),
            max_retries: 3,
            budget: u64::MAX,
        }
    }

    /// A reasonable cadence for calling [`ClientCore::on_tick`]: half the
    /// initial timeout, so a deadline is noticed at most half a timeout
    /// late.
    pub fn tick_ns(&self) -> u64 {
        (self.timeout_ns / 2).max(1_000)
    }
}

/// Aggregate client statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests generated.
    pub generated: u64,
    /// Packets sent (2× generated for C-Clone).
    pub packets_sent: u64,
    /// Completed requests (first responses).
    pub completed: u64,
    /// Redundant responses processed and discarded by the client.
    pub redundant: u64,
    /// Completed requests whose *winning* response came from the
    /// switch-generated clone (`CLO=2`) — the §5.3 "effectiveness of
    /// cloning" numerator.
    pub clone_wins: u64,
    /// Requests evicted after exceeding the per-request timeout (or
    /// explicitly abandoned) without ever completing.
    pub lost: u64,
    /// Retransmissions issued by the [`RetryPolicy`] recovery path.
    pub retried: u64,
    /// Completed requests that needed at least one retransmission —
    /// recoveries won by the retry path, disjoint from `clone_wins`'
    /// meaning (a retried request can still be clone-won; this counts the
    /// request once).
    pub retry_wins: u64,
    /// Requests evicted because the client-wide retry budget was spent
    /// while they still had attempts left.
    pub budget_exhausted: u64,
}

impl ClientStats {
    /// Fraction of completed requests won by the clone copy.
    pub fn clone_win_ratio(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.clone_wins as f64 / self.completed as f64
        }
    }

    /// Folds another client's counters into this one. Every field is a
    /// plain count over a disjoint request set (sharded frontends give
    /// each worker its own cid/seq partition), so merging is summation
    /// and the `sent == completed + lost` invariant is preserved.
    pub fn merge(&mut self, other: &ClientStats) {
        self.generated += other.generated;
        self.packets_sent += other.packets_sent;
        self.completed += other.completed;
        self.redundant += other.redundant;
        self.clone_wins += other.clone_wins;
        self.lost += other.lost;
        self.retried += other.retried;
        self.retry_wins += other.retry_wins;
        self.budget_exhausted += other.budget_exhausted;
    }
}

/// Whole-run conservation counters, never cleared by
/// [`ClientCore::reset_measurements`] (unlike the windowed
/// [`ClientStats`]).
///
/// The invariant `generated == completed + lost + outstanding()` holds at
/// every instant, retries included: a retransmission keeps its request
/// outstanding under the same sequence number, so recovery never double
/// counts and never leaks a request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LifetimeCounters {
    /// Requests ever generated.
    pub generated: u64,
    /// Requests ever completed.
    pub completed: u64,
    /// Requests ever lost (timeout/budget eviction, abandon, drain).
    pub lost: u64,
}

/// Verdict of [`ClientCore::on_packet`] on one incoming packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxEvent {
    /// First response for an outstanding request: it completed.
    Completed {
        /// End-to-end latency (receive time − generation time).
        latency_ns: u64,
        /// The winning response came from the clone (`CLO=2`).
        from_clone: bool,
    },
    /// A response for a request that already completed, timed out, or was
    /// never ours to begin with a matching client ID — counted and
    /// discarded (§3.7's client-side redundancy handling).
    Redundant,
    /// Not a response addressed to this client; ignored entirely.
    Ignored,
}

impl RxEvent {
    /// The recorded latency, if this packet completed a request.
    pub fn latency_ns(self) -> Option<u64> {
        match self {
            RxEvent::Completed { latency_ns, .. } => Some(latency_ns),
            _ => None,
        }
    }
}

/// The sans-io client protocol core.
///
/// Owns everything about *what* a NetClone client says and remembers;
/// owns nothing about *how* packets move or time passes.
pub struct ClientCore {
    cid: ClientId,
    ip: Ipv4,
    mode: ClientMode,
    rng: StdRng,
    next_seq: u32,
    outstanding: HashMap<u32, Pending>, // client_seq → request state
    outbox: VecDeque<PacketMeta>,
    timeout_ns: Option<u64>,
    retry: Option<RetryPolicy>,
    budget_left: u64,
    latencies: LatencyHistogram,
    stats: ClientStats,
    lifetime: LifetimeCounters,
}

/// Per-request bookkeeping for an outstanding (not yet answered) request.
struct Pending {
    born_ns: u64,
    /// Next timeout edge; `u64::MAX` when no timeout is configured.
    deadline_ns: u64,
    /// Current (possibly backed-off) timeout used to set the next deadline.
    timeout_ns: u64,
    /// Transmission attempts beyond the first.
    tries: u32,
    op: RpcOp,
}

impl ClientCore {
    /// Builds a core with no request timeout (requests stay outstanding
    /// until answered or [`Self::abandon`]ed).
    pub fn new(cid: ClientId, mode: ClientMode, seed: u64) -> Self {
        ClientCore {
            cid,
            ip: Ipv4::client(cid),
            mode,
            rng: StdRng::seed_from_u64(seed),
            next_seq: 0,
            outstanding: HashMap::new(),
            outbox: VecDeque::new(),
            timeout_ns: None,
            retry: None,
            budget_left: 0,
            latencies: LatencyHistogram::new(),
            stats: ClientStats::default(),
            lifetime: LifetimeCounters::default(),
        }
    }

    /// Sets the per-request timeout consulted by [`Self::on_tick`].
    pub fn with_timeout(mut self, timeout_ns: u64) -> Self {
        self.timeout_ns = Some(timeout_ns);
        self
    }

    /// Arms the retry-on-timeout recovery path: expired requests are
    /// retransmitted under `policy` instead of evicted. Implies the
    /// policy's initial timeout.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.timeout_ns = Some(policy.timeout_ns);
        self.budget_left = policy.budget;
        self.retry = Some(policy);
        self
    }

    /// Starts sequence numbers at `base` instead of 0 — restarted worker
    /// incarnations partition the sequence space so a resurrected worker
    /// can never complete (or double count) its predecessor's requests.
    pub fn with_seq_base(mut self, base: u32) -> Self {
        self.next_seq = base;
        self
    }

    /// The client's virtual address.
    pub fn ip(&self) -> Ipv4 {
        self.ip
    }

    /// The client's identity.
    pub fn cid(&self) -> ClientId {
        self.cid
    }

    /// Mutable access to the addressing mode — the §3.6 failure path
    /// updates "the number of groups on the client side" (and direct modes
    /// drop dead servers) through this.
    pub fn mode_mut(&mut self) -> &mut ClientMode {
        &mut self.mode
    }

    /// Latency histogram of completed requests.
    pub fn latencies(&self) -> &LatencyHistogram {
        &self.latencies
    }

    /// Statistics so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Requests still awaiting their first response.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Whole-run conservation counters (see [`LifetimeCounters`]).
    pub fn lifetime(&self) -> LifetimeCounters {
        self.lifetime
    }

    /// The RPC operation of an outstanding request — frontends rebuild the
    /// application payload of a retransmission from this.
    pub fn pending_op(&self, seq: u32) -> Option<RpcOp> {
        self.outstanding.get(&seq).map(|p| p.op)
    }

    /// Remaining client-wide retransmission budget (0 when no
    /// [`RetryPolicy`] is armed).
    pub fn retry_budget_left(&self) -> u64 {
        self.budget_left
    }

    /// Discards warm-up measurements (keeps outstanding bookkeeping).
    pub fn reset_measurements(&mut self) {
        self.latencies.clear();
        self.stats = ClientStats::default();
    }

    /// Generates one request at time `now`, queues the addressed packet(s)
    /// for [`Self::poll`], and returns the assigned sequence number.
    pub fn generate(&mut self, op: RpcOp, now: u64) -> u32 {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let timeout_ns = self.timeout_ns.unwrap_or(u64::MAX);
        self.outstanding.insert(
            seq,
            Pending {
                born_ns: now,
                deadline_ns: now.saturating_add(timeout_ns),
                timeout_ns,
                tries: 0,
                op,
            },
        );
        self.stats.generated += 1;
        self.lifetime.generated += 1;
        self.enqueue_addressed(seq, op);
        seq
    }

    /// Draws fresh addressing for `seq` and queues the packet(s) — the
    /// shared tail of first transmission and retransmission. A retry
    /// re-rolls the destination, so a retried request escapes a gray server
    /// instead of hammering it.
    fn enqueue_addressed(&mut self, seq: u32, op: RpcOp) {
        // Resolve the scheme's addressing first (mode and rng are disjoint
        // fields, so no clone of the server list is needed), then build
        // and queue the packet(s).
        enum Addressing {
            /// NetClone: destination left to the switch.
            Switch { grp: u16, idx: u8 },
            /// One addressed copy (Baseline / LÆDGE).
            One(Ipv4),
            /// Two addressed duplicates (C-Clone).
            Two(Ipv4, Ipv4),
        }
        let rng = &mut self.rng;
        let addressing = match &self.mode {
            ClientMode::NetClone {
                num_groups,
                num_filter_tables,
            } => Addressing::Switch {
                grp: rng.random_range(0..(*num_groups).max(1)),
                idx: rng.random_range(0..(*num_filter_tables).max(1)),
            },
            ClientMode::DirectRandom { servers } => {
                Addressing::One(servers[rng.random_range(0..servers.len())])
            }
            ClientMode::DirectDuplicate { servers } => {
                // Two distinct random servers (§2.2: "typically sends two
                // duplicate requests").
                let a = rng.random_range(0..servers.len());
                let b = if servers.len() > 1 {
                    let mut b = rng.random_range(0..servers.len() - 1);
                    if b >= a {
                        b += 1;
                    }
                    b
                } else {
                    a
                };
                Addressing::Two(servers[a], servers[b])
            }
            ClientMode::Coordinator { ip } => Addressing::One(*ip),
        };

        // Writes must not be cloned (§5.5): mark them for the switch.
        let uncloneable = !op.is_cloneable();
        let queue_to = |me: &mut Self, grp: u16, idx: u8, dst: Option<Ipv4>| {
            let mut nc = NetCloneHdr::request(grp, idx, me.cid, seq);
            if uncloneable {
                nc.state = ServerState(1);
            }
            let mut meta = PacketMeta::netclone_request(me.ip, nc, 84);
            if let Some(dst) = dst {
                meta.dst_ip = dst;
            }
            me.push(meta);
        };
        match addressing {
            Addressing::Switch { grp, idx } => queue_to(self, grp, idx, None),
            Addressing::One(dst) => queue_to(self, 0, 0, Some(dst)),
            Addressing::Two(a, b) => {
                queue_to(self, 0, 0, Some(a));
                queue_to(self, 0, 0, Some(b));
            }
        }
    }

    fn push(&mut self, meta: PacketMeta) {
        self.stats.packets_sent += 1;
        self.outbox.push_back(meta);
    }

    /// Takes the next queued outgoing packet, in generation order.
    pub fn poll(&mut self) -> Option<PacketMeta> {
        self.outbox.pop_front()
    }

    /// Classifies one incoming packet received at time `now`.
    ///
    /// The first response for an outstanding request completes it and
    /// records `now − born` in the latency histogram; any later copy — a
    /// duplicate that escaped the switch filter, a response to a timed-out
    /// request — is [`RxEvent::Redundant`]. Packets that are not responses
    /// addressed to this client are [`RxEvent::Ignored`].
    pub fn on_packet(&mut self, nc: &NetCloneHdr, now: u64) -> RxEvent {
        if !nc.is_response() || nc.client_id != self.cid {
            return RxEvent::Ignored;
        }
        match self.outstanding.remove(&nc.client_seq) {
            Some(p) => {
                let latency_ns = now.saturating_sub(p.born_ns);
                self.latencies.record(latency_ns);
                self.stats.completed += 1;
                self.lifetime.completed += 1;
                if p.tries > 0 {
                    self.stats.retry_wins += 1;
                }
                let from_clone = nc.clo == CloneStatus::Clone;
                if from_clone {
                    self.stats.clone_wins += 1;
                }
                RxEvent::Completed {
                    latency_ns,
                    from_clone,
                }
            }
            None => {
                self.stats.redundant += 1;
                RxEvent::Redundant
            }
        }
    }

    /// Processes timeout edges at `now`: with no [`RetryPolicy`], expired
    /// requests are evicted and counted as lost; with one, they are
    /// retransmitted (queued for [`Self::poll`]) under capped exponential
    /// backoff until attempts or the client-wide budget run out. Returns
    /// how many requests were *evicted* (retransmissions keep theirs
    /// outstanding). No-op (0) when no timeout was configured.
    pub fn on_tick(&mut self, now: u64) -> u64 {
        if self.timeout_ns.is_none() {
            return 0;
        }
        let mut expired: Vec<u32> = self
            .outstanding
            .iter()
            .filter(|(_, p)| p.deadline_ns <= now)
            .map(|(seq, _)| *seq)
            .collect();
        if expired.is_empty() {
            return 0;
        }
        // Retransmissions draw fresh addressing from the client RNG, so
        // the processing order must be a pure function of the state — a
        // HashMap's iteration order is not.
        expired.sort_unstable();
        let mut evicted = 0;
        for seq in expired {
            let p = self.outstanding.get_mut(&seq).expect("collected above");
            let tries_left = self.retry.is_some_and(|pol| p.tries < pol.max_retries);
            if tries_left && self.budget_left > 0 {
                let pol = self.retry.expect("tries_left implies a policy");
                p.tries += 1;
                p.timeout_ns = p.timeout_ns.saturating_mul(2).min(pol.backoff_cap_ns);
                p.deadline_ns = now.saturating_add(p.timeout_ns);
                let op = p.op;
                self.budget_left -= 1;
                self.stats.retried += 1;
                self.enqueue_addressed(seq, op);
            } else {
                if tries_left {
                    self.stats.budget_exhausted += 1;
                }
                self.outstanding.remove(&seq);
                self.stats.lost += 1;
                self.lifetime.lost += 1;
                evicted += 1;
            }
        }
        evicted
    }

    /// Gives up on one specific request (e.g. a blocking call that timed
    /// out), counting it as lost. Returns false if it was not outstanding.
    pub fn abandon(&mut self, seq: u32) -> bool {
        let removed = self.outstanding.remove(&seq).is_some();
        if removed {
            self.stats.lost += 1;
            self.lifetime.lost += 1;
        }
        removed
    }

    /// Ends the run: every still-outstanding request is counted as lost
    /// (nothing will ever answer it). Returns how many there were.
    pub fn drain_outstanding(&mut self) -> u64 {
        let n = self.outstanding.len() as u64;
        self.outstanding.clear();
        self.stats.lost += n;
        self.lifetime.lost += n;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclone_proto::MsgType;

    fn echo() -> RpcOp {
        RpcOp::Echo { class_ns: 25_000 }
    }

    fn nc_core(seed: u64) -> ClientCore {
        ClientCore::new(
            0,
            ClientMode::NetClone {
                num_groups: 30,
                num_filter_tables: 2,
            },
            seed,
        )
    }

    fn response_for(meta: &PacketMeta, clo: CloneStatus) -> NetCloneHdr {
        let mut req = meta.nc;
        req.clo = clo;
        NetCloneHdr::response_to(&req, 1, ServerState::IDLE)
    }

    #[test]
    fn generate_then_poll_yields_addressed_packets() {
        let mut c = nc_core(1);
        let seq = c.generate(echo(), 1_000);
        assert_eq!(seq, 0);
        let meta = c.poll().expect("one packet queued");
        assert!(c.poll().is_none());
        assert!(meta.dst_ip.is_unspecified());
        assert!(meta.nc.grp < 30);
        assert!(meta.nc.idx < 2);
        assert_eq!(meta.nc.client_seq, 0);
        assert_eq!(c.stats().packets_sent, 1);
    }

    #[test]
    fn first_response_completes_second_is_redundant() {
        let mut c = nc_core(2);
        c.generate(echo(), 0);
        let meta = c.poll().unwrap();
        let resp = response_for(&meta, CloneStatus::ClonedOriginal);
        assert_eq!(
            c.on_packet(&resp, 40_000),
            RxEvent::Completed {
                latency_ns: 40_000,
                from_clone: false
            }
        );
        assert_eq!(c.on_packet(&resp, 41_000), RxEvent::Redundant);
        let st = c.stats();
        assert_eq!(st.completed, 1);
        assert_eq!(st.redundant, 1);
        assert_eq!(st.clone_wins, 0);
        assert_eq!(c.latencies().count(), 1);
    }

    #[test]
    fn clone_win_is_counted_once_per_completion() {
        let mut c = nc_core(3);
        c.generate(echo(), 0);
        let meta = c.poll().unwrap();
        let win = response_for(&meta, CloneStatus::Clone);
        assert_eq!(
            c.on_packet(&win, 10_000),
            RxEvent::Completed {
                latency_ns: 10_000,
                from_clone: true
            }
        );
        // The slower original is redundant, not a second win.
        let lose = response_for(&meta, CloneStatus::ClonedOriginal);
        assert_eq!(c.on_packet(&lose, 12_000), RxEvent::Redundant);
        assert_eq!(c.stats().clone_wins, 1);
        assert!((c.stats().clone_win_ratio() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn foreign_and_request_packets_are_ignored() {
        let mut c = nc_core(4);
        c.generate(echo(), 0);
        let meta = c.poll().unwrap();
        // A request header is never counted.
        assert_eq!(c.on_packet(&meta.nc, 1_000), RxEvent::Ignored);
        // A response for some other client is not ours.
        let mut foreign = response_for(&meta, CloneStatus::NotCloned);
        foreign.client_id = 9;
        assert_eq!(c.on_packet(&foreign, 1_000), RxEvent::Ignored);
        assert_eq!(c.stats().redundant, 0);
        assert_eq!(c.outstanding(), 1);
        assert_eq!(foreign.msg_type, MsgType::Resp);
    }

    #[test]
    fn on_tick_evicts_only_timed_out_requests() {
        let mut c = nc_core(5).with_timeout(10_000);
        c.generate(echo(), 0);
        let old = c.poll().unwrap();
        c.generate(echo(), 8_000);
        let young = c.poll().unwrap();
        assert_eq!(c.on_tick(9_999), 0, "nothing has timed out yet");
        assert_eq!(c.on_tick(12_000), 1, "only the first request expired");
        assert_eq!(c.stats().lost, 1);
        assert_eq!(c.outstanding(), 1);
        // A late response to the evicted request is redundant, not a
        // completion — no double counting.
        let resp = response_for(&old, CloneStatus::NotCloned);
        assert_eq!(c.on_packet(&resp, 13_000), RxEvent::Redundant);
        assert_eq!(c.stats().completed, 0);
        // The surviving request still completes normally.
        let resp = response_for(&young, CloneStatus::NotCloned);
        assert!(c.on_packet(&resp, 13_000).latency_ns().is_some());
        assert_eq!(
            c.stats(),
            ClientStats {
                generated: 2,
                packets_sent: 2,
                completed: 1,
                redundant: 1,
                clone_wins: 0,
                lost: 1,
                retried: 0,
                retry_wins: 0,
                budget_exhausted: 0,
            }
        );
    }

    #[test]
    fn retry_retransmits_with_backoff_then_evicts() {
        let pol = RetryPolicy {
            timeout_ns: 10_000,
            backoff_cap_ns: 40_000,
            max_retries: 2,
            budget: u64::MAX,
        };
        let mut c = nc_core(10).with_retry(pol);
        let seq = c.generate(echo(), 0);
        let first = c.poll().unwrap();
        // First deadline: 10_000 → retransmit, timeout doubles to 20_000.
        assert_eq!(c.on_tick(10_000), 0, "retry, not eviction");
        let rt = c.poll().expect("retransmission queued");
        assert_eq!(rt.nc.client_seq, first.nc.client_seq);
        assert_eq!(c.stats().retried, 1);
        assert_eq!(c.outstanding(), 1, "retried request stays outstanding");
        // Second deadline: 10_000 + 20_000 = 30_000.
        assert_eq!(c.on_tick(29_999), 0);
        assert_eq!(c.on_tick(30_000), 0);
        assert_eq!(c.stats().retried, 2);
        assert!(c.poll().is_some());
        // Timeout doubled again but capped: 40_000 → third deadline
        // 70_000, and with max_retries=2 spent it evicts there.
        assert_eq!(c.on_tick(69_999), 0);
        assert_eq!(c.on_tick(70_000), 1, "attempts exhausted");
        let st = c.stats();
        assert_eq!((st.lost, st.budget_exhausted), (1, 0));
        assert_eq!(st.packets_sent, 3);
        assert!(!c.abandon(seq), "already evicted");
        let lt = c.lifetime();
        assert_eq!(
            lt.generated,
            lt.completed + lt.lost + c.outstanding() as u64
        );
    }

    #[test]
    fn completion_after_a_retry_is_a_retry_win() {
        let mut c = nc_core(11).with_retry(RetryPolicy::new(10_000));
        c.generate(echo(), 0);
        let _ = c.poll().unwrap();
        c.on_tick(10_000);
        let rt = c.poll().expect("retransmission");
        let resp = response_for(&rt, CloneStatus::NotCloned);
        assert!(c.on_packet(&resp, 15_000).latency_ns().is_some());
        let st = c.stats();
        assert_eq!((st.completed, st.retried, st.retry_wins), (1, 1, 1));
        // Latency is measured from the original birth, not the retry.
        assert_eq!(c.latencies().count(), 1);
    }

    #[test]
    fn retry_budget_exhaustion_evicts_and_is_counted() {
        let pol = RetryPolicy {
            timeout_ns: 10_000,
            backoff_cap_ns: 80_000,
            max_retries: 3,
            budget: 1,
        };
        let mut c = nc_core(12).with_retry(pol);
        c.generate(echo(), 0);
        c.generate(echo(), 0);
        while c.poll().is_some() {}
        // Both expire at 10_000; the budget covers exactly one retry.
        // Expiry processes in seq order, so seq 0 gets it and seq 1 is
        // evicted with attempts left.
        assert_eq!(c.on_tick(10_000), 1);
        let st = c.stats();
        assert_eq!((st.retried, st.lost, st.budget_exhausted), (1, 1, 1));
        assert_eq!(c.retry_budget_left(), 0);
        assert_eq!(c.outstanding(), 1);
        let lt = c.lifetime();
        assert_eq!(
            lt.generated,
            lt.completed + lt.lost + c.outstanding() as u64
        );
    }

    #[test]
    fn lifetime_counters_survive_reset_measurements() {
        let mut c = nc_core(13);
        c.generate(echo(), 0);
        let meta = c.poll().unwrap();
        let resp = response_for(&meta, CloneStatus::NotCloned);
        c.on_packet(&resp, 5_000);
        c.reset_measurements();
        assert_eq!(c.stats().completed, 0, "windowed stats reset");
        let lt = c.lifetime();
        assert_eq!((lt.generated, lt.completed, lt.lost), (1, 1, 0));
    }

    #[test]
    fn seq_base_partitions_the_sequence_space() {
        let mut c = nc_core(14).with_seq_base(1_000);
        assert_eq!(c.generate(echo(), 0), 1_000);
        assert_eq!(c.generate(echo(), 0), 1_001);
    }

    #[test]
    fn abandon_and_drain_count_lost() {
        let mut c = nc_core(6);
        let seq = c.generate(echo(), 0);
        c.poll();
        assert!(c.abandon(seq));
        assert!(!c.abandon(seq), "already abandoned");
        c.generate(echo(), 1);
        c.generate(echo(), 2);
        assert_eq!(c.drain_outstanding(), 2);
        assert_eq!(c.stats().lost, 3);
        assert_eq!(c.outstanding(), 0);
    }

    #[test]
    fn cclone_duplicates_share_a_seq_and_differ_in_destination() {
        let servers: Vec<Ipv4> = (0..6).map(Ipv4::server).collect();
        let mut c = ClientCore::new(0, ClientMode::DirectDuplicate { servers }, 7);
        for i in 0..100 {
            c.generate(echo(), i);
            let a = c.poll().unwrap();
            let b = c.poll().unwrap();
            assert_ne!(a.dst_ip, b.dst_ip);
            assert_eq!(a.nc.client_seq, b.nc.client_seq);
        }
        assert_eq!(c.stats().packets_sent, 200);
        assert_eq!(c.stats().generated, 100);
    }

    #[test]
    fn writes_are_marked_uncloneable() {
        let mut c = nc_core(8);
        c.generate(
            RpcOp::Put {
                key: netclone_proto::KvKey::from_index(1),
                value_len: 64,
            },
            0,
        );
        assert_eq!(c.poll().unwrap().nc.state, ServerState(1));
        c.generate(echo(), 0);
        assert_eq!(c.poll().unwrap().nc.state, ServerState(0));
    }

    #[test]
    fn reset_measurements_keeps_outstanding() {
        let mut c = nc_core(9);
        c.generate(echo(), 0);
        let meta = c.poll().unwrap();
        c.reset_measurements();
        assert_eq!(c.stats().generated, 0);
        let resp = response_for(&meta, CloneStatus::NotCloned);
        assert!(c.on_packet(&resp, 50_000).latency_ns().is_some());
    }
}
