//! [`ClientCore`] — the transport-free client half of the NetClone
//! protocol: addressing, duplicate filtering, and accounting.
//!
//! The core is a plain state machine over explicit nanosecond timestamps:
//!
//! * [`ClientCore::generate`] assigns the next sequence number, applies the
//!   scheme's addressing ([`ClientMode`]), and queues the outgoing
//!   packet(s);
//! * [`ClientCore::poll`] drains the queued packets — the frontend decides
//!   when and how to transmit them (DES event, UDP datagram);
//! * [`ClientCore::on_packet`] classifies an incoming response (first
//!   response / redundant / not-for-us) and keeps the latency histogram;
//! * [`ClientCore::on_tick`] evicts requests that outlived the configured
//!   per-request timeout, so `outstanding` never grows without bound under
//!   response loss.

use std::collections::{HashMap, VecDeque};

use netclone_proto::{ClientId, CloneStatus, Ipv4, NetCloneHdr, PacketMeta, RpcOp, ServerState};
use netclone_stats::LatencyHistogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the client addresses its requests — one variant per compared scheme
/// (paper §5.1.3).
#[derive(Clone, Debug)]
pub enum ClientMode {
    /// NetClone: pick a random group ID and filter-table index; let the
    /// switch choose the destination (§3.3).
    NetClone {
        /// Number of installed groups (n·(n−1)).
        num_groups: u16,
        /// Number of filter tables (for the random `IDX`).
        num_filter_tables: u8,
    },
    /// Baseline: send to one uniformly random worker server, no cloning.
    DirectRandom {
        /// The worker servers' addresses.
        servers: Vec<Ipv4>,
    },
    /// C-Clone: send duplicates to two distinct random servers; the client
    /// processes both responses itself (§2.2).
    DirectDuplicate {
        /// The worker servers' addresses.
        servers: Vec<Ipv4>,
    },
    /// LÆDGE: send everything to the coordinator host.
    Coordinator {
        /// The coordinator's address.
        ip: Ipv4,
    },
}

/// Aggregate client statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests generated.
    pub generated: u64,
    /// Packets sent (2× generated for C-Clone).
    pub packets_sent: u64,
    /// Completed requests (first responses).
    pub completed: u64,
    /// Redundant responses processed and discarded by the client.
    pub redundant: u64,
    /// Completed requests whose *winning* response came from the
    /// switch-generated clone (`CLO=2`) — the §5.3 "effectiveness of
    /// cloning" numerator.
    pub clone_wins: u64,
    /// Requests evicted after exceeding the per-request timeout (or
    /// explicitly abandoned) without ever completing.
    pub lost: u64,
}

impl ClientStats {
    /// Fraction of completed requests won by the clone copy.
    pub fn clone_win_ratio(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.clone_wins as f64 / self.completed as f64
        }
    }

    /// Folds another client's counters into this one. Every field is a
    /// plain count over a disjoint request set (sharded frontends give
    /// each worker its own cid/seq partition), so merging is summation
    /// and the `sent == completed + lost` invariant is preserved.
    pub fn merge(&mut self, other: &ClientStats) {
        self.generated += other.generated;
        self.packets_sent += other.packets_sent;
        self.completed += other.completed;
        self.redundant += other.redundant;
        self.clone_wins += other.clone_wins;
        self.lost += other.lost;
    }
}

/// Verdict of [`ClientCore::on_packet`] on one incoming packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxEvent {
    /// First response for an outstanding request: it completed.
    Completed {
        /// End-to-end latency (receive time − generation time).
        latency_ns: u64,
        /// The winning response came from the clone (`CLO=2`).
        from_clone: bool,
    },
    /// A response for a request that already completed, timed out, or was
    /// never ours to begin with a matching client ID — counted and
    /// discarded (§3.7's client-side redundancy handling).
    Redundant,
    /// Not a response addressed to this client; ignored entirely.
    Ignored,
}

impl RxEvent {
    /// The recorded latency, if this packet completed a request.
    pub fn latency_ns(self) -> Option<u64> {
        match self {
            RxEvent::Completed { latency_ns, .. } => Some(latency_ns),
            _ => None,
        }
    }
}

/// The sans-io client protocol core.
///
/// Owns everything about *what* a NetClone client says and remembers;
/// owns nothing about *how* packets move or time passes.
pub struct ClientCore {
    cid: ClientId,
    ip: Ipv4,
    mode: ClientMode,
    rng: StdRng,
    next_seq: u32,
    outstanding: HashMap<u32, u64>, // client_seq → born_ns
    outbox: VecDeque<PacketMeta>,
    timeout_ns: Option<u64>,
    latencies: LatencyHistogram,
    stats: ClientStats,
}

impl ClientCore {
    /// Builds a core with no request timeout (requests stay outstanding
    /// until answered or [`Self::abandon`]ed).
    pub fn new(cid: ClientId, mode: ClientMode, seed: u64) -> Self {
        ClientCore {
            cid,
            ip: Ipv4::client(cid),
            mode,
            rng: StdRng::seed_from_u64(seed),
            next_seq: 0,
            outstanding: HashMap::new(),
            outbox: VecDeque::new(),
            timeout_ns: None,
            latencies: LatencyHistogram::new(),
            stats: ClientStats::default(),
        }
    }

    /// Sets the per-request timeout consulted by [`Self::on_tick`].
    pub fn with_timeout(mut self, timeout_ns: u64) -> Self {
        self.timeout_ns = Some(timeout_ns);
        self
    }

    /// The client's virtual address.
    pub fn ip(&self) -> Ipv4 {
        self.ip
    }

    /// The client's identity.
    pub fn cid(&self) -> ClientId {
        self.cid
    }

    /// Mutable access to the addressing mode — the §3.6 failure path
    /// updates "the number of groups on the client side" (and direct modes
    /// drop dead servers) through this.
    pub fn mode_mut(&mut self) -> &mut ClientMode {
        &mut self.mode
    }

    /// Latency histogram of completed requests.
    pub fn latencies(&self) -> &LatencyHistogram {
        &self.latencies
    }

    /// Statistics so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Requests still awaiting their first response.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Discards warm-up measurements (keeps outstanding bookkeeping).
    pub fn reset_measurements(&mut self) {
        self.latencies.clear();
        self.stats = ClientStats::default();
    }

    /// Generates one request at time `now`, queues the addressed packet(s)
    /// for [`Self::poll`], and returns the assigned sequence number.
    pub fn generate(&mut self, op: RpcOp, now: u64) -> u32 {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.outstanding.insert(seq, now);
        self.stats.generated += 1;

        // Resolve the scheme's addressing first (mode and rng are disjoint
        // fields, so no clone of the server list is needed), then build
        // and queue the packet(s).
        enum Addressing {
            /// NetClone: destination left to the switch.
            Switch { grp: u16, idx: u8 },
            /// One addressed copy (Baseline / LÆDGE).
            One(Ipv4),
            /// Two addressed duplicates (C-Clone).
            Two(Ipv4, Ipv4),
        }
        let rng = &mut self.rng;
        let addressing = match &self.mode {
            ClientMode::NetClone {
                num_groups,
                num_filter_tables,
            } => Addressing::Switch {
                grp: rng.random_range(0..(*num_groups).max(1)),
                idx: rng.random_range(0..(*num_filter_tables).max(1)),
            },
            ClientMode::DirectRandom { servers } => {
                Addressing::One(servers[rng.random_range(0..servers.len())])
            }
            ClientMode::DirectDuplicate { servers } => {
                // Two distinct random servers (§2.2: "typically sends two
                // duplicate requests").
                let a = rng.random_range(0..servers.len());
                let b = if servers.len() > 1 {
                    let mut b = rng.random_range(0..servers.len() - 1);
                    if b >= a {
                        b += 1;
                    }
                    b
                } else {
                    a
                };
                Addressing::Two(servers[a], servers[b])
            }
            ClientMode::Coordinator { ip } => Addressing::One(*ip),
        };

        // Writes must not be cloned (§5.5): mark them for the switch.
        let uncloneable = !op.is_cloneable();
        let queue_to = |me: &mut Self, grp: u16, idx: u8, dst: Option<Ipv4>| {
            let mut nc = NetCloneHdr::request(grp, idx, me.cid, seq);
            if uncloneable {
                nc.state = ServerState(1);
            }
            let mut meta = PacketMeta::netclone_request(me.ip, nc, 84);
            if let Some(dst) = dst {
                meta.dst_ip = dst;
            }
            me.push(meta);
        };
        match addressing {
            Addressing::Switch { grp, idx } => queue_to(self, grp, idx, None),
            Addressing::One(dst) => queue_to(self, 0, 0, Some(dst)),
            Addressing::Two(a, b) => {
                queue_to(self, 0, 0, Some(a));
                queue_to(self, 0, 0, Some(b));
            }
        }
        seq
    }

    fn push(&mut self, meta: PacketMeta) {
        self.stats.packets_sent += 1;
        self.outbox.push_back(meta);
    }

    /// Takes the next queued outgoing packet, in generation order.
    pub fn poll(&mut self) -> Option<PacketMeta> {
        self.outbox.pop_front()
    }

    /// Classifies one incoming packet received at time `now`.
    ///
    /// The first response for an outstanding request completes it and
    /// records `now − born` in the latency histogram; any later copy — a
    /// duplicate that escaped the switch filter, a response to a timed-out
    /// request — is [`RxEvent::Redundant`]. Packets that are not responses
    /// addressed to this client are [`RxEvent::Ignored`].
    pub fn on_packet(&mut self, nc: &NetCloneHdr, now: u64) -> RxEvent {
        if !nc.is_response() || nc.client_id != self.cid {
            return RxEvent::Ignored;
        }
        match self.outstanding.remove(&nc.client_seq) {
            Some(born) => {
                let latency_ns = now.saturating_sub(born);
                self.latencies.record(latency_ns);
                self.stats.completed += 1;
                let from_clone = nc.clo == CloneStatus::Clone;
                if from_clone {
                    self.stats.clone_wins += 1;
                }
                RxEvent::Completed {
                    latency_ns,
                    from_clone,
                }
            }
            None => {
                self.stats.redundant += 1;
                RxEvent::Redundant
            }
        }
    }

    /// Evicts outstanding requests older than the configured timeout,
    /// counting them as lost. Returns how many were evicted. No-op (0)
    /// when no timeout was configured.
    pub fn on_tick(&mut self, now: u64) -> u64 {
        let Some(timeout) = self.timeout_ns else {
            return 0;
        };
        let before = self.outstanding.len();
        self.outstanding
            .retain(|_, born| now.saturating_sub(*born) < timeout);
        let evicted = (before - self.outstanding.len()) as u64;
        self.stats.lost += evicted;
        evicted
    }

    /// Gives up on one specific request (e.g. a blocking call that timed
    /// out), counting it as lost. Returns false if it was not outstanding.
    pub fn abandon(&mut self, seq: u32) -> bool {
        let removed = self.outstanding.remove(&seq).is_some();
        if removed {
            self.stats.lost += 1;
        }
        removed
    }

    /// Ends the run: every still-outstanding request is counted as lost
    /// (nothing will ever answer it). Returns how many there were.
    pub fn drain_outstanding(&mut self) -> u64 {
        let n = self.outstanding.len() as u64;
        self.outstanding.clear();
        self.stats.lost += n;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclone_proto::MsgType;

    fn echo() -> RpcOp {
        RpcOp::Echo { class_ns: 25_000 }
    }

    fn nc_core(seed: u64) -> ClientCore {
        ClientCore::new(
            0,
            ClientMode::NetClone {
                num_groups: 30,
                num_filter_tables: 2,
            },
            seed,
        )
    }

    fn response_for(meta: &PacketMeta, clo: CloneStatus) -> NetCloneHdr {
        let mut req = meta.nc;
        req.clo = clo;
        NetCloneHdr::response_to(&req, 1, ServerState::IDLE)
    }

    #[test]
    fn generate_then_poll_yields_addressed_packets() {
        let mut c = nc_core(1);
        let seq = c.generate(echo(), 1_000);
        assert_eq!(seq, 0);
        let meta = c.poll().expect("one packet queued");
        assert!(c.poll().is_none());
        assert!(meta.dst_ip.is_unspecified());
        assert!(meta.nc.grp < 30);
        assert!(meta.nc.idx < 2);
        assert_eq!(meta.nc.client_seq, 0);
        assert_eq!(c.stats().packets_sent, 1);
    }

    #[test]
    fn first_response_completes_second_is_redundant() {
        let mut c = nc_core(2);
        c.generate(echo(), 0);
        let meta = c.poll().unwrap();
        let resp = response_for(&meta, CloneStatus::ClonedOriginal);
        assert_eq!(
            c.on_packet(&resp, 40_000),
            RxEvent::Completed {
                latency_ns: 40_000,
                from_clone: false
            }
        );
        assert_eq!(c.on_packet(&resp, 41_000), RxEvent::Redundant);
        let st = c.stats();
        assert_eq!(st.completed, 1);
        assert_eq!(st.redundant, 1);
        assert_eq!(st.clone_wins, 0);
        assert_eq!(c.latencies().count(), 1);
    }

    #[test]
    fn clone_win_is_counted_once_per_completion() {
        let mut c = nc_core(3);
        c.generate(echo(), 0);
        let meta = c.poll().unwrap();
        let win = response_for(&meta, CloneStatus::Clone);
        assert_eq!(
            c.on_packet(&win, 10_000),
            RxEvent::Completed {
                latency_ns: 10_000,
                from_clone: true
            }
        );
        // The slower original is redundant, not a second win.
        let lose = response_for(&meta, CloneStatus::ClonedOriginal);
        assert_eq!(c.on_packet(&lose, 12_000), RxEvent::Redundant);
        assert_eq!(c.stats().clone_wins, 1);
        assert!((c.stats().clone_win_ratio() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn foreign_and_request_packets_are_ignored() {
        let mut c = nc_core(4);
        c.generate(echo(), 0);
        let meta = c.poll().unwrap();
        // A request header is never counted.
        assert_eq!(c.on_packet(&meta.nc, 1_000), RxEvent::Ignored);
        // A response for some other client is not ours.
        let mut foreign = response_for(&meta, CloneStatus::NotCloned);
        foreign.client_id = 9;
        assert_eq!(c.on_packet(&foreign, 1_000), RxEvent::Ignored);
        assert_eq!(c.stats().redundant, 0);
        assert_eq!(c.outstanding(), 1);
        assert_eq!(foreign.msg_type, MsgType::Resp);
    }

    #[test]
    fn on_tick_evicts_only_timed_out_requests() {
        let mut c = nc_core(5).with_timeout(10_000);
        c.generate(echo(), 0);
        let old = c.poll().unwrap();
        c.generate(echo(), 8_000);
        let young = c.poll().unwrap();
        assert_eq!(c.on_tick(9_999), 0, "nothing has timed out yet");
        assert_eq!(c.on_tick(12_000), 1, "only the first request expired");
        assert_eq!(c.stats().lost, 1);
        assert_eq!(c.outstanding(), 1);
        // A late response to the evicted request is redundant, not a
        // completion — no double counting.
        let resp = response_for(&old, CloneStatus::NotCloned);
        assert_eq!(c.on_packet(&resp, 13_000), RxEvent::Redundant);
        assert_eq!(c.stats().completed, 0);
        // The surviving request still completes normally.
        let resp = response_for(&young, CloneStatus::NotCloned);
        assert!(c.on_packet(&resp, 13_000).latency_ns().is_some());
        assert_eq!(
            c.stats(),
            ClientStats {
                generated: 2,
                packets_sent: 2,
                completed: 1,
                redundant: 1,
                clone_wins: 0,
                lost: 1,
            }
        );
    }

    #[test]
    fn abandon_and_drain_count_lost() {
        let mut c = nc_core(6);
        let seq = c.generate(echo(), 0);
        c.poll();
        assert!(c.abandon(seq));
        assert!(!c.abandon(seq), "already abandoned");
        c.generate(echo(), 1);
        c.generate(echo(), 2);
        assert_eq!(c.drain_outstanding(), 2);
        assert_eq!(c.stats().lost, 3);
        assert_eq!(c.outstanding(), 0);
    }

    #[test]
    fn cclone_duplicates_share_a_seq_and_differ_in_destination() {
        let servers: Vec<Ipv4> = (0..6).map(Ipv4::server).collect();
        let mut c = ClientCore::new(0, ClientMode::DirectDuplicate { servers }, 7);
        for i in 0..100 {
            c.generate(echo(), i);
            let a = c.poll().unwrap();
            let b = c.poll().unwrap();
            assert_ne!(a.dst_ip, b.dst_ip);
            assert_eq!(a.nc.client_seq, b.nc.client_seq);
        }
        assert_eq!(c.stats().packets_sent, 200);
        assert_eq!(c.stats().generated, 100);
    }

    #[test]
    fn writes_are_marked_uncloneable() {
        let mut c = nc_core(8);
        c.generate(
            RpcOp::Put {
                key: netclone_proto::KvKey::from_index(1),
                value_len: 64,
            },
            0,
        );
        assert_eq!(c.poll().unwrap().nc.state, ServerState(1));
        c.generate(echo(), 0);
        assert_eq!(c.poll().unwrap().nc.state, ServerState(0));
    }

    #[test]
    fn reset_measurements_keeps_outstanding() {
        let mut c = nc_core(9);
        c.generate(echo(), 0);
        let meta = c.poll().unwrap();
        c.reset_measurements();
        assert_eq!(c.stats().generated, 0);
        let resp = response_for(&meta, CloneStatus::NotCloned);
        assert!(c.on_packet(&resp, 50_000).latency_ns().is_some());
    }
}
