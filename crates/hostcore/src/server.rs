//! [`ServerCore`] — the transport-free server half of the NetClone
//! protocol: the §3.4 clone-drop rule, response construction with the
//! piggybacked queue state, and accounting.
//!
//! The core deliberately does **not** own the request queue: the DES
//! server models it as a `VecDeque` behind simulated worker threads, the
//! real-socket server *is* a crossbeam channel feeding OS threads. Both
//! report the observed queue length to the core, which applies the
//! protocol rules and keeps the counters the evaluation reads.
//!
//! Counters are relaxed atomics and every method takes `&self`, so the
//! real-socket frontend shares one core between its dispatcher and worker
//! threads without a lock on the per-packet path; the DES frontend simply
//! uses it single-threaded.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use netclone_proto::{CloneStatus, NetCloneHdr, ServerId, ServerState};

/// What the §3.4 admission rule says to do with an arriving request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitDecision {
    /// Process the request normally (enqueue / start service).
    Admit,
    /// A `CLO=2` clone arriving at a non-empty queue: drop it.
    DropClone,
}

/// A point-in-time snapshot of the server counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests fully served.
    pub served: u64,
    /// Cloned requests dropped at the dispatcher (§3.4).
    pub clones_dropped: u64,
    /// Responses that reported an empty queue (Fig. 13a numerator).
    pub idle_reports: u64,
    /// Total responses sent (Fig. 13a denominator).
    pub responses: u64,
    /// Peak queue length observed.
    pub peak_queue: usize,
}

impl ServerStats {
    /// Folds another core's counters into this one: counts sum, the peak
    /// queue takes the max. Used by sharded frontends where each receive
    /// thread owns its own [`ServerCore`] and stats are merged on read.
    pub fn merge(&mut self, other: &ServerStats) {
        self.served += other.served;
        self.clones_dropped += other.clones_dropped;
        self.idle_reports += other.idle_reports;
        self.responses += other.responses;
        self.peak_queue = self.peak_queue.max(other.peak_queue);
    }
}

#[derive(Debug, Default)]
struct Counters {
    served: AtomicU64,
    clones_dropped: AtomicU64,
    idle_reports: AtomicU64,
    responses: AtomicU64,
    peak_queue: AtomicUsize,
}

/// The sans-io server protocol core. Thread-safe by construction: all
/// methods take `&self` and counters are relaxed atomics.
#[derive(Debug)]
pub struct ServerCore {
    sid: ServerId,
    counters: Counters,
}

impl ServerCore {
    /// Builds a core for server `sid`.
    pub fn new(sid: ServerId) -> Self {
        ServerCore {
            sid,
            counters: Counters::default(),
        }
    }

    /// The server's identity (the `SID` of its responses).
    pub fn sid(&self) -> ServerId {
        self.sid
    }

    /// Statistics so far.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            served: self.counters.served.load(Ordering::Relaxed),
            clones_dropped: self.counters.clones_dropped.load(Ordering::Relaxed),
            idle_reports: self.counters.idle_reports.load(Ordering::Relaxed),
            responses: self.counters.responses.load(Ordering::Relaxed),
            peak_queue: self.counters.peak_queue.load(Ordering::Relaxed),
        }
    }

    /// Applies the §3.4 admission rule to a request with clone status
    /// `clo` arriving while the request queue holds `queue_len` entries:
    /// "the server drops the packet request if the queue is not empty when
    /// receiving a cloned request … only cloned requests (CLO=2) are
    /// dropped, while the original (CLO=1) is processed normally."
    pub fn admit(&self, clo: CloneStatus, queue_len: usize) -> AdmitDecision {
        if clo == CloneStatus::Clone && queue_len > 0 {
            self.counters.clones_dropped.fetch_add(1, Ordering::Relaxed);
            AdmitDecision::DropClone
        } else {
            AdmitDecision::Admit
        }
    }

    /// Records the queue depth after an admitted request was actually
    /// enqueued (requests started immediately never deepen the queue).
    pub fn note_queue_depth(&self, queue_len: usize) {
        self.counters
            .peak_queue
            .fetch_max(queue_len, Ordering::Relaxed);
    }

    /// Builds the response for `req`, piggybacking the queue length
    /// observed at send time (§3.4/§5.6.1), and accounts the completion.
    pub fn response(&self, req: &NetCloneHdr, queue_len: usize) -> NetCloneHdr {
        let state = ServerState::from_queue_len(queue_len);
        self.counters.served.fetch_add(1, Ordering::Relaxed);
        self.counters.responses.fetch_add(1, Ordering::Relaxed);
        if state.is_idle() {
            self.counters.idle_reports.fetch_add(1, Ordering::Relaxed);
        }
        NetCloneHdr::response_to(req, self.sid, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_dropped_iff_queue_nonempty() {
        let s = ServerCore::new(3);
        assert_eq!(s.admit(CloneStatus::Clone, 0), AdmitDecision::Admit);
        assert_eq!(s.admit(CloneStatus::Clone, 2), AdmitDecision::DropClone);
        // Originals (CLO=1) and uncloned requests always pass.
        assert_eq!(
            s.admit(CloneStatus::ClonedOriginal, 5),
            AdmitDecision::Admit
        );
        assert_eq!(s.admit(CloneStatus::NotCloned, 5), AdmitDecision::Admit);
        assert_eq!(s.stats().clones_dropped, 1);
    }

    #[test]
    fn noted_depths_track_the_peak() {
        let s = ServerCore::new(0);
        s.note_queue_depth(1);
        s.note_queue_depth(5);
        s.note_queue_depth(3);
        assert_eq!(s.stats().peak_queue, 5);
    }

    #[test]
    fn responses_piggyback_state_and_count_idle() {
        let s = ServerCore::new(7);
        let req = NetCloneHdr::request(4, 1, 2, 99);
        let idle = s.response(&req, 0);
        assert!(idle.is_response());
        assert_eq!(idle.sid, 7);
        assert!(idle.state.is_idle());
        assert_eq!(idle.client_seq, 99);
        let busy = s.response(&req, 3);
        assert_eq!(busy.state.queue_len(), 3);
        let st = s.stats();
        assert_eq!(st.served, 2);
        assert_eq!(st.responses, 2);
        assert_eq!(st.idle_reports, 1);
    }

    #[test]
    fn core_is_shareable_across_threads() {
        let s = std::sync::Arc::new(ServerCore::new(0));
        let req = NetCloneHdr::request(0, 0, 0, 0);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        s.admit(CloneStatus::Clone, 1);
                        s.response(&req, 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let st = s.stats();
        assert_eq!(st.clones_dropped, 4_000);
        assert_eq!(st.served, 4_000);
        assert_eq!(st.idle_reports, 4_000);
    }
}
