//! Property tests: histogram quantiles track exact order statistics within
//! the documented bucket error, and merging is equivalent to combined
//! recording.

use netclone_stats::LatencyHistogram;
use proptest::prelude::*;

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The histogram quantile never undershoots the exact order statistic
    /// and overshoots by at most one bucket width (1/64 relative) plus one.
    #[test]
    fn quantile_error_is_bounded(
        mut values in proptest::collection::vec(0u64..10_000_000_000, 1..500),
        qi in 0usize..=100,
    ) {
        let q = qi as f64 / 100.0;
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let exact = exact_quantile(&values, q);
        let got = h.quantile(q);
        prop_assert!(got >= exact, "undershoot: got={got} exact={exact}");
        let bound = exact + exact / 32 + 1; // generous 2-bucket bound
        prop_assert!(got <= bound.max(*values.last().unwrap()),
            "overshoot: got={got} exact={exact} bound={bound}");
    }

    /// count/min/max/mean are exact.
    #[test]
    fn aggregates_are_exact(values in proptest::collection::vec(0u64..1_000_000_000, 1..300)) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        let mean = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-3);
    }

    /// merge(a, b) reports identical quantiles to recording a ∪ b.
    #[test]
    fn merge_is_equivalent(
        a in proptest::collection::vec(0u64..100_000_000, 0..200),
        b in proptest::collection::vec(0u64..100_000_000, 0..200),
    ) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut hc = LatencyHistogram::new();
        for &v in &a { ha.record(v); hc.record(v); }
        for &v in &b { hb.record(v); hc.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hc.count());
        for qi in [0, 25, 50, 75, 90, 99, 100] {
            let q = qi as f64 / 100.0;
            prop_assert_eq!(ha.quantile(q), hc.quantile(q));
        }
    }
}
