//! Fixed-interval event-count timeseries.
//!
//! Fig. 16 plots per-second throughput over a 25-second run with a switch
//! failure injected; this type is that counter.

/// Counts events into fixed-width time buckets.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    bucket_ns: u64,
    counts: Vec<u64>,
}

impl TimeSeries {
    /// Creates a series with `buckets` buckets of `bucket_ns` each.
    pub fn new(bucket_ns: u64, buckets: usize) -> Self {
        assert!(bucket_ns > 0, "bucket width must be positive");
        TimeSeries {
            bucket_ns,
            counts: vec![0; buckets],
        }
    }

    /// Records one event at absolute time `t_ns`. Events beyond the last
    /// bucket are dropped (the run is over).
    pub fn record(&mut self, t_ns: u64) {
        let idx = (t_ns / self.bucket_ns) as usize;
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
    }

    /// Bucket width in nanoseconds.
    pub fn bucket_ns(&self) -> u64 {
        self.bucket_ns
    }

    /// Raw per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-bucket rate in events/second.
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let scale = 1e9 / self.bucket_ns as f64;
        self.counts.iter().map(|&c| c as f64 * scale).collect()
    }

    /// Total events recorded in-range.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds another series bucket-wise. Both series must have been built
    /// with the same bucket width and bucket count (shards of one run
    /// always are); anything else is a caller bug.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(self.bucket_ns, other.bucket_ns, "bucket width mismatch");
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "bucket count mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_land_in_the_right_bucket() {
        let mut ts = TimeSeries::new(1_000, 3);
        ts.record(0);
        ts.record(999);
        ts.record(1_000);
        ts.record(2_500);
        assert_eq!(ts.counts(), &[2, 1, 1]);
        assert_eq!(ts.total(), 4);
    }

    #[test]
    fn out_of_range_events_are_dropped() {
        let mut ts = TimeSeries::new(1_000, 2);
        ts.record(5_000);
        assert_eq!(ts.total(), 0);
    }

    #[test]
    fn rates_scale_by_bucket_width() {
        let mut ts = TimeSeries::new(500_000_000, 2); // 0.5 s buckets
        for _ in 0..100 {
            ts.record(0);
        }
        let rates = ts.rates_per_sec();
        assert_eq!(rates[0], 200.0); // 100 events / 0.5 s
        assert_eq!(rates[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_width_panics() {
        let _ = TimeSeries::new(0, 1);
    }

    #[test]
    fn merge_adds_bucket_wise() {
        let mut a = TimeSeries::new(1_000, 3);
        let mut b = TimeSeries::new(1_000, 3);
        a.record(0);
        a.record(2_100);
        b.record(500);
        b.record(1_500);
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 1, 1]);
        assert_eq!(a.total(), 4);
    }

    #[test]
    #[should_panic(expected = "bucket width mismatch")]
    fn merge_rejects_mismatched_widths() {
        let mut a = TimeSeries::new(1_000, 2);
        a.merge(&TimeSeries::new(2_000, 2));
    }
}
