//! Streaming mean / standard deviation (Welford's algorithm).
//!
//! Used for Fig. 13(b): the paper reports the average p99 over 10 runs at
//! 90 % load, with standard deviations.

/// Accumulates count, mean, and variance in one pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation with Bessel's correction (0 for n < 2).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl std::iter::FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn known_values() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample std dev of this classic set is sqrt(32/7).
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_value_has_zero_std() {
        let s: Summary = [42.0].into_iter().collect();
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.mean(), 42.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| ((i * 7919) % 1000) as f64 / 3.0)
            .collect();
        let s: Summary = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.std_dev() - var.sqrt()).abs() < 1e-9);
    }
}
