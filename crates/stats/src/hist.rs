//! HDR-style log-linear latency histogram.
//!
//! Values are u64 nanoseconds. Buckets: values below 128 are exact; above,
//! each power-of-two octave is split into 64 linear sub-buckets, so the
//! recorded→reported relative error is at most 1/64 ≈ 1.6 % — comfortably
//! below the run-to-run noise of any tail-latency experiment.

/// Number of exact low buckets (also the linear threshold).
const EXACT: u64 = 128;
/// Sub-buckets per octave above the linear threshold.
const SUB: u64 = 64;
/// Total bucket count: covers values up to 2^63.
const NBUCKETS: usize = (EXACT + (63 - 6) * SUB) as usize;

/// A fixed-memory latency histogram with ≤ 1.6 % bucket error.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as u64; // >= 7
        let e = msb - 6; // >= 1
        let mantissa = (v >> e) - SUB; // in [0, 64)
        (EXACT + (e - 1) * SUB + mantissa) as usize
    }
}

/// Upper edge (inclusive) of the bucket containing `v`s of this index.
fn bucket_high(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < EXACT {
        idx
    } else {
        let e = (idx - EXACT) / SUB + 1;
        let mantissa = (idx - EXACT) % SUB + SUB;
        ((mantissa + 1) << e) - 1
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; NBUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value (nanoseconds).
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (exact, not bucketed).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` ∈ [0, 1], e.g. `0.99` for p99.
    ///
    /// Returns the upper edge of the bucket holding the `ceil(q·n)`-th
    /// smallest sample (so the reported value is ≥ the true quantile, by at
    /// most one bucket width). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Convenience: the 50th/99th/99.9th percentiles in one call.
    pub fn p50_p99_p999(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets all recorded state (e.g. to discard a warm-up window).
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (p50, p99, p999) = self.p50_p99_p999();
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("mean_ns", &(self.mean() as u64))
            .field("p50_ns", &p50)
            .field("p99_ns", &p99)
            .field("p999_ns", &p999)
            .field("max_ns", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..EXACT {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), EXACT - 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), EXACT - 1);
    }

    #[test]
    fn single_value_all_quantiles() {
        let mut h = LatencyHistogram::new();
        h.record(25_000);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let got = h.quantile(q);
            let err = (got as f64 - 25_000.0).abs() / 25_000.0;
            assert!(err <= 1.0 / 64.0, "q={q} got={got}");
        }
    }

    #[test]
    fn bucket_error_bound_holds() {
        // For a spread of magnitudes, the reported quantile of a point mass
        // must be within one bucket (1/64) of the true value.
        for v in [130u64, 999, 25_000, 1_000_000, 123_456_789, u32::MAX as u64] {
            let mut h = LatencyHistogram::new();
            h.record(v);
            let got = h.quantile(0.99);
            assert!(
                got >= v,
                "reported quantile must not undershoot: v={v} got={got}"
            );
            let err = (got - v) as f64 / v as f64;
            assert!(err <= 1.0 / 64.0 + 1e-9, "v={v} got={got} err={err}");
        }
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.mean(), 25.0);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 0..10_000u64 {
            h.record(i * 37 % 1_000_000);
        }
        let mut last = 0;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.quantile(q);
            assert!(v >= last, "quantiles must be monotone");
            last = v;
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = i * 101 % 50_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), combined.quantile(q));
        }
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
    }

    #[test]
    fn clear_resets() {
        let mut h = LatencyHistogram::new();
        h.record(123);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn bucket_index_is_monotone_and_consistent() {
        let mut last = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 4 {
            let i = bucket_index(v);
            assert!(i >= last);
            assert!(bucket_high(i) >= v, "upper edge covers the value");
            last = i;
            v = v.saturating_mul(3) / 2 + 1;
        }
    }
}
