//! Tabular result rendering: markdown for the terminal/EXPERIMENTS.md and
//! CSV for `results/*.csv`.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned table builder.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Panics if the arity differs from the header.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders a GitHub-flavoured markdown table with aligned columns.
    pub fn to_markdown(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (i, w) in widths.iter().enumerate().take(ncols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = w - cell.chars().count();
                let _ = write!(out, " {}{} |", cell, " ".repeat(pad));
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            let joined: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&joined.join(","));
            out.push('\n');
        };
        line(&self.headers, &mut out);
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Writes the CSV form to `path`, creating parent directories.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Formats nanoseconds as microseconds with two decimals (`"123.45"`),
/// the unit every paper figure uses.
pub fn ns_as_us(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1_000.0)
}

/// Formats a requests/second rate in MRPS with three decimals.
pub fn rps_as_mrps(rps: f64) -> String {
    format!("{:.3}", rps / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_is_aligned() {
        let mut t = Table::new(["scheme", "p99 (us)"]);
        t.row(["Baseline", "812.00"]);
        t.row(["NetClone", "540.00"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("scheme"));
        assert!(lines[1].starts_with("|--"));
        // all rows same width
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "\"x,y\",\"say \"\"hi\"\"\"");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn unit_format_helpers() {
        assert_eq!(ns_as_us(25_000), "25.00");
        assert_eq!(rps_as_mrps(2_500_000.0), "2.500");
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("netclone-stats-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/result.csv");
        let mut t = Table::new(["x"]);
        t.row(["1"]);
        t.write_csv(&path).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains("x\n1\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
