//! # netclone-stats
//!
//! Measurement plumbing for the NetClone reproduction: latency histograms
//! with microsecond-tail fidelity, streaming mean/σ summaries, per-second
//! throughput timeseries, and result rendering (markdown, CSV, and ASCII
//! charts for the examples).
//!
//! The paper reports 99th-percentile latency against achieved throughput
//! for every figure; [`LatencyHistogram`] is the core type backing those
//! series. It is an HDR-style log-linear histogram: 64 linear sub-buckets
//! per power of two, giving ≤ 1.6 % relative bucket error across the whole
//! ns→minutes range while staying allocation-free after construction.

pub mod chart;
pub mod hist;
pub mod report;
pub mod summary;
pub mod table;
pub mod timeseries;

pub use chart::AsciiChart;
pub use hist::LatencyHistogram;
pub use report::{Report, Section};
pub use summary::Summary;
pub use table::Table;
pub use timeseries::TimeSeries;
