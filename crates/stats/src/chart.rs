//! Tiny ASCII scatter/line charts so examples can visualise a figure
//! in the terminal without a plotting dependency.

/// One named series: label, marker, points.
type Series = (String, char, Vec<(f64, f64)>);

/// Renders one or more named series on shared axes.
pub struct AsciiChart {
    width: usize,
    height: usize,
    log_y: bool,
    series: Vec<Series>,
}

impl AsciiChart {
    /// Creates a chart canvas of `width`×`height` characters.
    pub fn new(width: usize, height: usize) -> Self {
        AsciiChart {
            width: width.max(16),
            height: height.max(6),
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Plots the Y axis on a log10 scale (the paper's latency axes are log).
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Adds a named series drawn with marker `marker`.
    pub fn series<S: Into<String>>(
        mut self,
        name: S,
        marker: char,
        points: impl IntoIterator<Item = (f64, f64)>,
    ) -> Self {
        self.series
            .push((name.into(), marker, points.into_iter().collect()));
        self
    }

    fn y_transform(&self, y: f64) -> f64 {
        if self.log_y {
            y.max(1e-12).log10()
        } else {
            y
        }
    }

    /// Renders the chart to a string.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, _, p)| p.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if pts.is_empty() {
            return "(no data)\n".to_string();
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            let ty = self.y_transform(y);
            y0 = y0.min(ty);
            y1 = y1.max(ty);
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        for (_, marker, points) in &self.series {
            for &(x, y) in points {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let ty = self.y_transform(y);
                let col = ((x - x0) / (x1 - x0) * (self.width - 1) as f64).round() as usize;
                let row = ((ty - y0) / (y1 - y0) * (self.height - 1) as f64).round() as usize;
                let r = self.height - 1 - row.min(self.height - 1);
                grid[r][col.min(self.width - 1)] = *marker;
            }
        }
        let mut out = String::new();
        let y_hi = if self.log_y { 10f64.powf(y1) } else { y1 };
        let y_lo = if self.log_y { 10f64.powf(y0) } else { y0 };
        out.push_str(&format!("  y: {y_lo:.1} .. {y_hi:.1}\n"));
        for row in &grid {
            out.push_str("  |");
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str("  +");
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!("   x: {x0:.2} .. {x1:.2}   "));
        for (name, marker, _) in &self.series {
            out.push_str(&format!("[{marker}] {name}  "));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markers_for_each_series() {
        let chart = AsciiChart::new(40, 10)
            .series("a", '*', vec![(0.0, 1.0), (1.0, 2.0)])
            .series("b", 'o', vec![(0.5, 1.5)]);
        let out = chart.render();
        assert!(out.contains('*'));
        assert!(out.contains('o'));
        assert!(out.contains("[*] a"));
        assert!(out.contains("[o] b"));
    }

    #[test]
    fn empty_chart_is_graceful() {
        let out = AsciiChart::new(40, 10).render();
        assert_eq!(out, "(no data)\n");
    }

    #[test]
    fn log_scale_accepts_wide_ranges() {
        let out = AsciiChart::new(40, 10)
            .log_y()
            .series("lat", '#', vec![(0.0, 100.0), (1.0, 1_000_000.0)])
            .render();
        assert!(out.contains('#'));
    }

    #[test]
    fn degenerate_ranges_do_not_panic() {
        let out = AsciiChart::new(20, 8)
            .series("flat", '.', vec![(1.0, 5.0), (1.0, 5.0)])
            .render();
        assert!(out.contains('.'));
    }
}
