//! The unified experiment artifact: one [`Report`] per figure/table of
//! the evaluation, rendered to markdown, CSV, and JSON through a single
//! code path.
//!
//! A report is metadata (id, title) plus an ordered list of
//! [`Section`]s; each section holds one [`Table`] of results, an
//! optional caption, and free-form annotation notes (e.g. the failure
//! timestamps of Fig. 16). Every renderer walks the same structure, so
//! adding a new experiment never means writing new emit plumbing.
//!
//! All cell values are pre-formatted strings — formatting decisions
//! (units, precision) belong to the experiment that measured them, which
//! also makes every rendering byte-deterministic.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::table::Table;

/// One titled table within a report, with its CSV file stem.
#[derive(Clone, Debug)]
pub struct Section {
    /// Section caption (empty for single-table reports).
    pub name: String,
    /// Annotation lines rendered above the table (and carried in JSON).
    pub notes: Vec<String>,
    /// File stem for CSV output: `<csv_stem>.csv`.
    pub csv_stem: String,
    /// The tabular results.
    pub table: Table,
}

/// A complete, renderable experiment result.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment identifier (e.g. `fig07`).
    pub id: String,
    /// Human title (the paper caption).
    pub title: String,
    /// The tables, in presentation order.
    pub sections: Vec<Section>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            sections: Vec::new(),
        }
    }

    /// Appends a captionless section whose CSV stem is the report id.
    pub fn with_table(mut self, table: Table) -> Self {
        let stem = self.id.replace('-', "_");
        self.sections.push(Section {
            name: String::new(),
            notes: Vec::new(),
            csv_stem: stem,
            table,
        });
        self
    }

    /// Appends a captioned section with an explicit CSV stem.
    pub fn with_section(
        mut self,
        name: impl Into<String>,
        csv_stem: impl Into<String>,
        table: Table,
    ) -> Self {
        self.sections.push(Section {
            name: name.into(),
            notes: Vec::new(),
            csv_stem: csv_stem.into(),
            table,
        });
        self
    }

    /// Appends an annotation note to the most recent section. Panics if
    /// no section exists yet — add a table first, so notes can never be
    /// silently dropped.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.sections
            .last_mut()
            .expect("with_note needs a section: call with_table/with_section first")
            .notes
            .push(note.into());
        self
    }

    /// Renders the whole report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n", self.id, self.title);
        for section in &self.sections {
            if !section.name.is_empty() {
                let _ = write!(out, "\n### {}\n", section.name);
            }
            for note in &section.notes {
                let _ = write!(out, "\n*{note}*\n");
            }
            let _ = write!(out, "\n{}", section.table.to_markdown());
        }
        out
    }

    /// Renders every section as CSV: `(file stem, contents)` pairs.
    pub fn to_csv(&self) -> Vec<(String, String)> {
        self.sections
            .iter()
            .map(|s| (s.csv_stem.clone(), s.table.to_csv()))
            .collect()
    }

    /// Writes `<dir>/<csv_stem>.csv` for every section.
    pub fn write_csv<P: AsRef<Path>>(&self, dir: P) -> io::Result<()> {
        for (stem, csv) in self.to_csv() {
            let path = dir.as_ref().join(format!("{stem}.csv"));
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(path, csv)?;
        }
        Ok(())
    }

    /// Renders the report as pretty-printed JSON (stable key order, all
    /// cells as strings — byte-deterministic for a given report).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"id\": {},", json_str(&self.id));
        let _ = writeln!(out, "  \"title\": {},", json_str(&self.title));
        out.push_str("  \"sections\": [");
        for (i, s) in self.sections.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": {},", json_str(&s.name));
            let _ = writeln!(out, "      \"notes\": {},", json_str_array(&s.notes));
            let _ = writeln!(out, "      \"csv\": {},", json_str(&s.csv_stem));
            let _ = writeln!(
                out,
                "      \"columns\": {},",
                json_str_array(s.table.headers())
            );
            out.push_str("      \"rows\": [");
            for (j, row) in s.table.rows().iter().enumerate() {
                out.push_str(if j == 0 { "\n" } else { ",\n" });
                let _ = write!(out, "        {}", json_str_array(row));
            }
            if !s.table.rows().is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("]\n    }");
        }
        if !self.sections.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Writes `<dir>/<id>.json`.
    pub fn write_json<P: AsRef<Path>>(&self, dir: P) -> io::Result<()> {
        let path = dir.as_ref().join(format!("{}.json", self.id));
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// Writes `<dir>/<id>.md`.
    pub fn write_markdown<P: AsRef<Path>>(&self, dir: P) -> io::Result<()> {
        let path = dir.as_ref().join(format!("{}.md", self.id));
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_markdown())
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a flat JSON array of strings on one line.
fn json_str_array<S: AsRef<str>>(items: &[S]) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_str(s.as_ref())).collect();
    format!("[{}]", cells.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut t = Table::new(["scheme", "p99 (us)"]);
        t.row(["Baseline", "812.0"]);
        t.row(["NetClone", "540.0"]);
        let mut t2 = Table::new(["k", "v"]);
        t2.row(["x,y", "say \"hi\""]);
        Report::new("figxx", "A test figure")
            .with_section("(a) sweep", "figxx_a", t)
            .with_note("stop @ 5s")
            .with_section("(b) detail", "figxx_b", t2)
    }

    #[test]
    fn markdown_has_title_sections_and_notes() {
        let md = sample().to_markdown();
        assert!(md.starts_with("## figxx — A test figure"));
        assert!(md.contains("### (a) sweep"));
        assert!(md.contains("*stop @ 5s*"));
        assert!(md.contains("### (b) detail"));
        assert!(md.contains("| NetClone"));
    }

    #[test]
    fn csv_emits_one_file_per_section() {
        let csvs = sample().to_csv();
        assert_eq!(csvs.len(), 2);
        assert_eq!(csvs[0].0, "figxx_a");
        assert!(csvs[0].1.starts_with("scheme,p99 (us)\n"));
        assert_eq!(csvs[1].0, "figxx_b");
    }

    #[test]
    fn json_is_valid_and_escaped() {
        let json = sample().to_json();
        // Structural sanity a full parser would check: balanced braces and
        // brackets, and the quote/comma escaping of awkward cells.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"id\": \"figxx\""));
        assert!(json.contains("\"say \\\"hi\\\"\""));
        assert!(json.contains("\"columns\": [\"scheme\", \"p99 (us)\"]"));
        assert!(json.contains("\"notes\": [\"stop @ 5s\"]"));
    }

    #[test]
    #[should_panic(expected = "with_note needs a section")]
    fn note_without_section_panics() {
        let _ = Report::new("x", "t").with_note("orphan");
    }

    #[test]
    fn single_table_report_uses_id_as_stem() {
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        let r = Report::new("tab-res", "Resources").with_table(t);
        assert_eq!(r.sections[0].csv_stem, "tab_res");
        assert_eq!(r.sections[0].name, "");
    }

    #[test]
    fn writers_create_files() {
        let dir = std::env::temp_dir().join("netclone-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let r = sample();
        r.write_csv(&dir).unwrap();
        r.write_json(&dir).unwrap();
        r.write_markdown(&dir).unwrap();
        assert!(dir.join("figxx_a.csv").exists());
        assert!(dir.join("figxx_b.csv").exists());
        assert!(dir.join("figxx.json").exists());
        assert!(dir.join("figxx.md").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
