//! # netclone-policies
//!
//! The schemes NetClone is evaluated against (paper §5.1.3):
//!
//! * **Baseline** — "sends requests to workers randomly without cloning".
//!   Client-side random addressing over a plain L3 switch
//!   ([`PlainL3Switch`]).
//! * **C-Clone** — "the client-based cloning mechanism that always sends
//!   duplicate requests to two random worker servers". Same plain switch;
//!   the duplication lives in the client
//!   ([`netclone_hosts::ClientMode::DirectDuplicate`]).
//! * **LÆDGE** — "performs dynamic cloning using the coordinator"
//!   ([`LaedgeCoordinator`]): a CPU-bound host that queues requests, clones
//!   only when ≥ 2 servers are idle, and relays every response — which is
//!   precisely why it cannot scale (§2.2).
//! * **RackSched** — the in-network JSQ scheduler (§6). The §3.7
//!   integration means a standalone RackSched is just the NetClone program
//!   with cloning disabled and the JSQ fallback always active
//!   ([`racksched_switch`]).

pub mod laedge;
pub mod plain;

pub use laedge::{CoordinatorConfig, CoordinatorEvent, LaedgeCoordinator};
pub use plain::PlainL3Switch;

use netclone_core::{NetCloneConfig, NetCloneSwitch, Scheduling};

/// Builds a standalone RackSched switch: queue-length state tracking and
/// JSQ power-of-two scheduling, **no** cloning, no filtering (nothing is
/// ever redundant without clones).
pub fn racksched_switch(mut cfg: NetCloneConfig) -> NetCloneSwitch {
    cfg.cloning_enabled = false;
    cfg.scheduling = Scheduling::RackSched;
    NetCloneSwitch::new(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclone_asic::DataPlane;
    use netclone_proto::{Ipv4, NetCloneHdr, PacketMeta, ServerState};

    #[test]
    fn racksched_switch_never_clones_and_balances() {
        let mut sw = racksched_switch(NetCloneConfig::default());
        for sid in 0..4u16 {
            sw.add_server(sid, Ipv4::server(sid), 10 + sid).unwrap();
        }
        sw.add_client(Ipv4::client(0), 2).unwrap();
        // Load server states: group 0's first candidate busy, second idle.
        let (s1, s2) = sw.group(0).unwrap();
        let probe = sw.process_collected(
            PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(1, 0, 0, 0), 84),
            2,
            0,
        );
        let resp = PacketMeta::netclone_response(
            Ipv4::server(s1),
            Ipv4::client(0),
            NetCloneHdr::response_to(&probe[0].pkt.nc, s1, ServerState(5)),
            84,
        );
        sw.process_collected(resp, 10, 0);

        let out = sw.process_collected(
            PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 0), 84),
            2,
            0,
        );
        assert_eq!(out.len(), 1, "RackSched never clones");
        assert_eq!(out[0].port, 10 + s2, "JSQ picks the idle candidate");
        assert_eq!(sw.counters().cloned, 0);
    }
}
