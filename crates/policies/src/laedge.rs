//! The LÆDGE coordinator (Primorac et al., NSDI'21) as the paper describes
//! it (§2.2):
//!
//! > "The coordinator only replicates requests if at least two servers are
//! > idle. If only one server is available, the request is forwarded
//! > without replication. In the case where all servers are busy, the
//! > coordinator enqueues the request in a request queue and waits for an
//! > idle server. The buffered request is dispatched to a server upon
//! > receiving a response."
//!
//! The model is a single CPU-bound host: every received or transmitted
//! packet serialises on one core for `per_packet_ns` (kernel-bypass class,
//! but still a CPU), which is what caps LÆDGE's throughput in Fig. 8. The
//! coordinator also relays every response — including the redundant slower
//! ones — "making throughput worse" (§2.2).
//!
//! One adaptation for multi-worker servers (ours have 8–16 worker
//! threads): the coordinator tracks per-server *outstanding* counts with a
//! per-server capacity; "idle" (cloneable) means zero outstanding, exactly
//! LÆDGE's invariant, while non-cloned forwards go to the least-loaded
//! server with spare capacity so the baseline is not crippled below its
//! hardware parallelism. Queued requests dispatch singly, FCFS, as slots
//! free up.

use std::collections::{HashMap, VecDeque};

use netclone_hosts::AppPacket;
use netclone_proto::{ClientId, Ipv4, ServerId};

/// Configuration of the coordinator host.
#[derive(Clone, Copy, Debug)]
pub struct CoordinatorConfig {
    /// The coordinator's address (clients send here).
    pub ip: Ipv4,
    /// CPU time to receive or transmit one packet, ns.
    pub per_packet_ns: u64,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            ip: Ipv4::new(10, 0, 3, 1),
            per_packet_ns: 800,
        }
    }
}

/// A packet the coordinator wants to send, with the time its CPU finished
/// preparing it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoordinatorEvent {
    /// The outgoing packet (request toward a server, or response toward a
    /// client).
    pub pkt: AppPacket,
    /// Absolute transmit time, ns.
    pub send_at: u64,
}

#[derive(Clone, Copy, Debug)]
struct Pending {
    client_ip: Ipv4,
    copies_remaining: u8,
    responded: bool,
}

/// Aggregate coordinator statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoordinatorStats {
    /// Requests received from clients.
    pub requests: u64,
    /// Requests replicated to two idle servers.
    pub cloned: u64,
    /// Requests forwarded without replication.
    pub forwarded_single: u64,
    /// Requests buffered waiting for an idle server.
    pub queued: u64,
    /// Responses received from servers.
    pub responses: u64,
    /// Redundant slower responses absorbed (still cost CPU).
    pub redundant_absorbed: u64,
    /// Requests dropped at the NIC ring under CPU overload.
    pub rx_dropped: u64,
}

/// The LÆDGE coordinator host.
pub struct LaedgeCoordinator {
    cfg: CoordinatorConfig,
    servers: Vec<(ServerId, Ipv4)>,
    capacity: Vec<usize>,
    outstanding: Vec<usize>,
    queue: VecDeque<AppPacket>,
    cpu_free_at: u64,
    pending: HashMap<(ClientId, u32), Pending>,
    stats: CoordinatorStats,
}

impl LaedgeCoordinator {
    /// Builds an empty coordinator.
    pub fn new(cfg: CoordinatorConfig) -> Self {
        LaedgeCoordinator {
            cfg,
            servers: Vec::new(),
            capacity: Vec::new(),
            outstanding: Vec::new(),
            queue: VecDeque::new(),
            cpu_free_at: 0,
            pending: HashMap::new(),
            stats: CoordinatorStats::default(),
        }
    }

    /// The coordinator's address.
    pub fn ip(&self) -> Ipv4 {
        self.cfg.ip
    }

    /// Registers a worker server with its parallelism (worker threads).
    pub fn add_server(&mut self, sid: ServerId, ip: Ipv4, workers: usize) {
        self.servers.push((sid, ip));
        self.capacity.push(workers.max(1));
        self.outstanding.push(0);
    }

    /// Statistics so far.
    pub fn stats(&self) -> CoordinatorStats {
        self.stats
    }

    /// Buffered requests waiting for an idle server.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Charges the CPU for one packet and returns when it is done.
    fn cpu(&mut self, now: u64) -> u64 {
        let done = now.max(self.cpu_free_at) + self.cfg.per_packet_ns;
        self.cpu_free_at = done;
        done
    }

    /// Builds the outgoing copy of `pkt` toward server `idx`.
    fn dispatch_to(&mut self, mut pkt: AppPacket, idx: usize, send_at: u64) -> CoordinatorEvent {
        self.outstanding[idx] += 1;
        pkt.meta.src_ip = self.cfg.ip;
        pkt.meta.dst_ip = self.servers[idx].1;
        CoordinatorEvent { pkt, send_at }
    }

    /// CPU backlog beyond which the NIC ring overflows and incoming
    /// *requests* are dropped (≈ a few hundred descriptors at 800 ns per
    /// packet). Without this bound, overload would bury response relaying
    /// under an ever-growing request backlog — a real host drops instead,
    /// which is what keeps LÆDGE's curve flat-at-the-cap in Fig. 8.
    /// Responses are never dropped: in overload their arrival rate is
    /// already CPU-bounded (servers only hold what the coordinator
    /// dispatched).
    const RING_BACKLOG_NS: u64 = 200_000;

    /// Handles one client request arriving at `now`.
    pub fn on_request(&mut self, pkt: AppPacket, now: u64) -> Vec<CoordinatorEvent> {
        if self.cpu_free_at.saturating_sub(now) > Self::RING_BACKLOG_NS {
            self.stats.rx_dropped += 1;
            return Vec::new();
        }
        let rx_done = self.cpu(now);
        self.stats.requests += 1;
        self.pending.insert(
            (pkt.meta.nc.client_id, pkt.meta.nc.client_seq),
            Pending {
                client_ip: pkt.meta.src_ip,
                copies_remaining: 0,
                responded: false,
            },
        );
        let idle: Vec<usize> = (0..self.servers.len())
            .filter(|&i| self.outstanding[i] == 0)
            .collect();
        let cloneable = pkt.op.is_cloneable();
        let key = (pkt.meta.nc.client_id, pkt.meta.nc.client_seq);
        if idle.len() >= 2 && cloneable {
            // Dynamic cloning: two idle servers get copies.
            self.stats.cloned += 1;
            let t1 = self.cpu(rx_done);
            let t2 = self.cpu(t1);
            let a = self.dispatch_to(pkt, idle[0], t1);
            let b = self.dispatch_to(pkt, idle[1], t2);
            self.pending
                .get_mut(&key)
                .expect("just inserted")
                .copies_remaining = 2;
            vec![a, b]
        } else if let Some(i) = self.least_loaded_with_capacity() {
            self.stats.forwarded_single += 1;
            let t1 = self.cpu(rx_done);
            let ev = self.dispatch_to(pkt, i, t1);
            self.pending
                .get_mut(&key)
                .expect("just inserted")
                .copies_remaining = 1;
            vec![ev]
        } else {
            self.stats.queued += 1;
            self.queue.push_back(pkt);
            Vec::new()
        }
    }

    fn least_loaded_with_capacity(&self) -> Option<usize> {
        (0..self.servers.len())
            .filter(|&i| self.outstanding[i] < self.capacity[i])
            .min_by_key(|&i| self.outstanding[i])
    }

    /// Handles one server response arriving at `now`.
    pub fn on_response(&mut self, mut pkt: AppPacket, now: u64) -> Vec<CoordinatorEvent> {
        let rx_done = self.cpu(now);
        self.stats.responses += 1;
        if let Some(idx) = self
            .servers
            .iter()
            .position(|&(sid, _)| sid == pkt.meta.nc.sid)
        {
            self.outstanding[idx] = self.outstanding[idx].saturating_sub(1);
        }
        let key = (pkt.meta.nc.client_id, pkt.meta.nc.client_seq);
        let mut out = Vec::new();
        let mut t = rx_done;
        match self.pending.get_mut(&key) {
            Some(p) if !p.responded => {
                p.responded = true;
                p.copies_remaining = p.copies_remaining.saturating_sub(1);
                let client_ip = p.client_ip;
                if p.copies_remaining == 0 {
                    self.pending.remove(&key);
                }
                t = self.cpu(t);
                pkt.meta.src_ip = self.cfg.ip;
                pkt.meta.dst_ip = client_ip;
                out.push(CoordinatorEvent { pkt, send_at: t });
            }
            Some(p) => {
                // The redundant slower response: absorbed, CPU already paid.
                self.stats.redundant_absorbed += 1;
                p.copies_remaining = p.copies_remaining.saturating_sub(1);
                if p.copies_remaining == 0 {
                    self.pending.remove(&key);
                }
            }
            None => {
                self.stats.redundant_absorbed += 1;
            }
        }
        // "The buffered request is dispatched to a server upon receiving a
        // response": drain FCFS into freed capacity, one CPU TX each.
        while !self.queue.is_empty() {
            let Some(i) = self.least_loaded_with_capacity() else {
                break;
            };
            let q = self.queue.pop_front().expect("non-empty");
            let qkey = (q.meta.nc.client_id, q.meta.nc.client_seq);
            t = self.cpu(t);
            let ev = self.dispatch_to(q, i, t);
            if let Some(p) = self.pending.get_mut(&qkey) {
                p.copies_remaining = 1;
            }
            self.stats.forwarded_single += 1;
            out.push(ev);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclone_proto::{MsgType, NetCloneHdr, PacketMeta, RpcOp, ServerState};

    fn coord(n_servers: u16, workers: usize) -> LaedgeCoordinator {
        let mut c = LaedgeCoordinator::new(CoordinatorConfig::default());
        for sid in 0..n_servers {
            c.add_server(sid, Ipv4::server(sid), workers);
        }
        c
    }

    fn req(seq: u32) -> AppPacket {
        AppPacket {
            meta: PacketMeta::netclone_request(
                Ipv4::client(0),
                NetCloneHdr::request(0, 0, 0, seq),
                84,
            ),
            op: RpcOp::Echo { class_ns: 25_000 },
            born_ns: 0,
        }
    }

    fn resp_for(ev: &CoordinatorEvent, sid: ServerId) -> AppPacket {
        let nc = NetCloneHdr::response_to(&ev.pkt.meta.nc, sid, ServerState(0));
        AppPacket {
            meta: PacketMeta::netclone_response(Ipv4::server(sid), ev.pkt.meta.src_ip, nc, 84),
            op: ev.pkt.op,
            born_ns: ev.pkt.born_ns,
        }
    }

    #[test]
    fn clones_when_two_servers_idle() {
        let mut c = coord(3, 8);
        let out = c.on_request(req(0), 0);
        assert_eq!(out.len(), 2, "two idle servers → replicate");
        assert_ne!(out[0].pkt.meta.dst_ip, out[1].pkt.meta.dst_ip);
        assert_eq!(c.stats().cloned, 1);
        // CPU serialisation: rx + 2 tx = 3 packet times.
        assert_eq!(out[1].send_at, 3 * 800);
    }

    #[test]
    fn forwards_single_when_one_idle() {
        let mut c = coord(2, 1);
        let a = c.on_request(req(0), 0);
        assert_eq!(a.len(), 2); // both idle initially → cloned
                                // Now both servers hold one outstanding; a new request sees zero
                                // idle servers and no spare capacity → queued.
        let b = c.on_request(req(1), 0);
        assert!(b.is_empty());
        assert_eq!(c.queue_len(), 1);
        assert_eq!(c.stats().queued, 1);
    }

    #[test]
    fn single_idle_server_gets_unreplicated_request() {
        let mut c = coord(2, 4);
        // Occupy server picked first with one outstanding request:
        let first = c.on_request(req(0), 0);
        assert_eq!(first.len(), 2); // both were idle
                                    // Second request: no server has zero outstanding → forwarded single.
        let out = c.on_request(req(1), 0);
        assert_eq!(out.len(), 1);
        assert_eq!(c.stats().forwarded_single, 1);
    }

    #[test]
    fn first_response_relays_to_client_second_is_absorbed() {
        let mut c = coord(2, 8);
        let out = c.on_request(req(7), 0);
        assert_eq!(out.len(), 2);
        let r1 = c.on_response(resp_for(&out[0], 0), 100_000);
        assert_eq!(r1.len(), 1, "first response forwarded to the client");
        assert_eq!(r1[0].pkt.meta.dst_ip, Ipv4::client(0));
        let r2 = c.on_response(resp_for(&out[1], 1), 110_000);
        assert!(r2.is_empty(), "slower response absorbed");
        assert_eq!(c.stats().redundant_absorbed, 1);
    }

    #[test]
    fn queued_request_dispatches_on_response() {
        let mut c = coord(1, 1);
        let first = c.on_request(req(0), 0);
        assert_eq!(first.len(), 1);
        assert!(c.on_request(req(1), 0).is_empty()); // queued
        let out = c.on_response(resp_for(&first[0], 0), 50_000);
        // Response to client + the dequeued request to the server.
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|e| e.pkt.meta.nc.msg_type == MsgType::Resp));
        assert!(out.iter().any(|e| e.pkt.meta.nc.msg_type == MsgType::Req));
        assert_eq!(c.queue_len(), 0);
    }

    #[test]
    fn writes_are_never_replicated() {
        let mut c = coord(4, 8);
        let mut w = req(0);
        w.op = RpcOp::Put {
            key: netclone_proto::KvKey::from_index(0),
            value_len: 64,
        };
        let out = c.on_request(w, 0);
        assert_eq!(out.len(), 1, "writes forwarded without replication");
        assert_eq!(c.stats().cloned, 0);
    }

    #[test]
    fn cpu_is_the_bottleneck() {
        // Back-to-back requests serialise on the coordinator CPU even with
        // plenty of idle servers: the Nth request leaves no earlier than
        // ~2N packet times (rx + tx each).
        let mut c = coord(16, 8);
        let mut last_send = 0;
        for i in 0..100 {
            let out = c.on_request(req(i), 0);
            if let Some(e) = out.last() {
                last_send = e.send_at;
            }
        }
        assert!(
            last_send >= 100 * 2 * 800,
            "CPU serialisation must bound the dispatch rate (got {last_send})"
        );
    }
}
