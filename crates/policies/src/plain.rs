//! A plain L3 switch: route on destination IP, nothing else. This is the
//! fabric under the Baseline and C-Clone schemes — all intelligence lives
//! in the clients.

use netclone_asic::{
    AsicSpec, DataPlane, Emission, EmissionSink, Layout, MatchTable, PacketPass, PortId,
};
use netclone_core::{EngineError, SwitchCounters, SwitchEngine};
use netclone_proto::{Ipv4, PacketMeta, ServerId};

/// Route-only data plane.
pub struct PlainL3Switch {
    layout: Layout,
    route_t: MatchTable<u32, PortId>,
    forwarded: u64,
    dropped: u64,
}

impl PlainL3Switch {
    /// Builds an empty switch on the given ASIC.
    pub fn new(spec: AsicSpec) -> Self {
        let mut layout = Layout::new(spec);
        let route_t = MatchTable::alloc(&mut layout, "RouteT", 0, 65_536, 4, 2, 1)
            .expect("route table must fit an empty ASIC");
        PlainL3Switch {
            layout,
            route_t,
            forwarded: 0,
            dropped: 0,
        }
    }

    /// Installs a route.
    pub fn add_route(&mut self, ip: Ipv4, port: PortId) {
        self.route_t
            .insert(ip.0, port)
            .expect("route table capacity");
    }

    /// Packets forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Packets dropped (no route).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Resource report (for comparison against NetClone's §4.1 numbers).
    pub fn resource_report(&self) -> netclone_asic::ResourceReport {
        self.layout.report("PlainL3")
    }
}

impl DataPlane for PlainL3Switch {
    fn name(&self) -> &'static str {
        "PlainL3"
    }

    fn process(&mut self, pkt: PacketMeta, _ingress: PortId, _now_ns: u64, out: &mut EmissionSink) {
        let mut pass = PacketPass::new();
        match self
            .route_t
            .lookup(&mut pass, pkt.dst_ip.0)
            .expect("single lookup per pass")
        {
            Some(port) => {
                self.forwarded += 1;
                out.push(Emission {
                    pkt,
                    port,
                    latency_ns: self.layout.spec().pass_latency_ns,
                });
            }
            None => self.dropped += 1,
        }
    }
}

impl SwitchEngine for PlainL3Switch {
    /// The plain fabric surfaces its forwarded/dropped totals through the
    /// shared counter struct; every cloning/filtering counter stays 0,
    /// which is exactly what a route-only switch reports.
    fn counters(&self) -> SwitchCounters {
        SwitchCounters {
            routed_plain: self.forwarded,
            dropped_unroutable: self.dropped,
            ..SwitchCounters::default()
        }
    }

    /// A plain switch has no server table — registration is just a route.
    fn register_server(
        &mut self,
        _sid: ServerId,
        ip: Ipv4,
        port: PortId,
    ) -> Result<(), EngineError> {
        self.add_route(ip, port);
        Ok(())
    }

    fn register_client(&mut self, ip: Ipv4, port: PortId) -> Result<(), EngineError> {
        self.add_route(ip, port);
        Ok(())
    }

    fn register_route(&mut self, ip: Ipv4, port: PortId) -> Result<(), EngineError> {
        self.add_route(ip, port);
        Ok(())
    }

    // `deregister_server` and `install_custom_groups` keep the default
    // `Unsupported` answer: the plain fabric has no server/group tables,
    // and under the client-side schemes failure handling lives in the
    // clients (they stop addressing the dead server).
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclone_proto::NetCloneHdr;

    #[test]
    fn routes_by_destination() {
        let mut sw = PlainL3Switch::new(AsicSpec::tofino());
        sw.add_route(Ipv4::server(0), 10);
        sw.add_route(Ipv4::client(0), 2);
        let mut pkt =
            PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 0), 84);
        pkt.dst_ip = Ipv4::server(0);
        let out = sw.process_collected(pkt, 2, 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, 10);
        // Header is untouched: no request IDs, no cloning.
        assert_eq!(out[0].pkt.nc.req_id, 0);
        assert_eq!(sw.forwarded(), 1);
    }

    #[test]
    fn unrouted_packets_drop() {
        let mut sw = PlainL3Switch::new(AsicSpec::tofino());
        let mut pkt =
            PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 0), 84);
        pkt.dst_ip = Ipv4::new(198, 18, 0, 1);
        assert!(sw.process_collected(pkt, 2, 0).is_empty());
        assert_eq!(sw.dropped(), 1);
    }

    #[test]
    fn uses_far_less_sram_than_netclone() {
        let plain = PlainL3Switch::new(AsicSpec::tofino()).resource_report();
        let nc = netclone_core::NetCloneSwitch::paper_prototype().resource_report();
        assert!(plain.sram_pct < nc.sram_pct);
        assert!(plain.stages_used < nc.stages_used);
    }
}
