//! Property tests for the proto-layer packet metadata: any
//! `NetCloneHdr`/`PacketMeta` pair — including response headers and
//! non-NetClone ports — round-trips through the full IPv4/UDP
//! encapsulation, mirroring the preheader-codec test in
//! `crates/net/tests/prop_codec.rs` at the layer below it.

use bytes::Bytes;
use netclone_proto::l3::{decode_ip_packet, encode_ip_packet, IPV4_HEADER_LEN, UDP_HEADER_LEN};
use netclone_proto::wire::HEADER_LEN;
use netclone_proto::{
    CloneStatus, Ipv4, KvKey, MsgType, NetCloneHdr, PacketMeta, RpcOp, ServerState,
};
use proptest::prelude::*;

fn arb_msg_type() -> impl Strategy<Value = MsgType> {
    prop_oneof![Just(MsgType::Req), Just(MsgType::Resp)]
}

fn arb_clone_status() -> impl Strategy<Value = CloneStatus> {
    prop_oneof![
        Just(CloneStatus::NotCloned),
        Just(CloneStatus::ClonedOriginal),
        Just(CloneStatus::Clone),
    ]
}

prop_compose! {
    fn arb_header()(
        msg_type in arb_msg_type(),
        req_id in any::<u32>(),
        grp in any::<u16>(),
        sid in any::<u16>(),
        state in any::<u16>(),
        clo in arb_clone_status(),
        idx in any::<u8>(),
        switch_id in any::<u8>(),
        client_id in any::<u16>(),
        client_seq in any::<u32>(),
    ) -> NetCloneHdr {
        NetCloneHdr {
            msg_type, req_id, grp, sid,
            state: ServerState(state),
            clo, idx, switch_id, client_id, client_seq,
        }
    }
}

fn arb_op() -> impl Strategy<Value = RpcOp> {
    prop_oneof![
        any::<u64>().prop_map(|class_ns| RpcOp::Echo { class_ns }),
        any::<u64>().prop_map(|n| RpcOp::Get {
            key: KvKey::from_index(n)
        }),
        (any::<u64>(), any::<u16>()).prop_map(|(n, count)| RpcOp::Scan {
            key: KvKey::from_index(n),
            count,
        }),
        (any::<u64>(), any::<u16>()).prop_map(|(n, value_len)| RpcOp::Put {
            key: KvKey::from_index(n),
            value_len,
        }),
    ]
}

prop_compose! {
    fn arb_meta()(
        nc in arb_header(),
        src in any::<u32>(),
        dst in any::<u32>(),
        dport in any::<u16>(),
    ) -> PacketMeta {
        PacketMeta {
            src_ip: Ipv4(src),
            dst_ip: Ipv4(dst),
            l4_dport: dport,
            nc,
            // Overwritten by the decoder with the measured frame length.
            wire_bytes: 0,
        }
    }
}

proptest! {
    #[test]
    fn meta_round_trips_through_the_ip_encapsulation(
        meta in arb_meta(),
        sport in any::<u16>(),
        op in arb_op(),
    ) {
        let pkt = encode_ip_packet(&meta, sport, &op);
        let total = pkt.len();
        let (m2, op2) = decode_ip_packet(pkt).unwrap();
        prop_assert_eq!(m2.src_ip, meta.src_ip);
        prop_assert_eq!(m2.dst_ip, meta.dst_ip);
        prop_assert_eq!(m2.l4_dport, meta.l4_dport);
        prop_assert_eq!(m2.nc, meta.nc);
        prop_assert_eq!(op2, op);
        prop_assert_eq!(m2.wire_bytes as usize, total, "every byte counted once");
        prop_assert!(total >= IPV4_HEADER_LEN + UDP_HEADER_LEN + HEADER_LEN);
    }

    #[test]
    fn truncated_prefixes_never_panic(
        meta in arb_meta(),
        op in arb_op(),
        cut in any::<u16>(),
    ) {
        let pkt = encode_ip_packet(&meta, 999, &op);
        let cut = (cut as usize) % pkt.len();
        // Any strict prefix must error cleanly (checksum/length mismatch)
        // or decode — never panic or read out of bounds.
        let _ = decode_ip_packet(pkt.slice(0..cut));
    }

    #[test]
    fn single_byte_corruption_is_rejected_or_detected(
        meta in arb_meta(),
        op in arb_op(),
        pos in any::<u16>(),
        flip in 1u8..=255,
    ) {
        let pkt = encode_ip_packet(&meta, 7, &op);
        let mut raw = pkt.to_vec();
        let pos = (pos as usize) % raw.len();
        raw[pos] ^= flip;
        // A flipped byte anywhere in the checksummed region must not
        // yield a *different* packet that decodes as valid with altered
        // metadata silently — the UDP checksum covers header and payload.
        if let Ok((m2, op2)) = decode_ip_packet(Bytes::from(raw)) {
            // The flip can only survive inside fields the checksums
            // ignore: there are none in this encapsulation, so decoding
            // successfully means the packet was reconstructed identically.
            prop_assert_eq!(m2.nc, meta.nc);
            prop_assert_eq!(op2, op);
        }
    }
}
