//! Property tests: any header/op round-trips through the wire codec, and
//! the decoder never panics on arbitrary bytes.

use bytes::{Bytes, BytesMut};
use netclone_proto::wire::{decode_frame, decode_header, encode_header, encode_op, HEADER_LEN};
use netclone_proto::{CloneStatus, KvKey, MsgType, NetCloneHdr, RpcOp, ServerState};
use proptest::prelude::*;

fn arb_msg_type() -> impl Strategy<Value = MsgType> {
    prop_oneof![Just(MsgType::Req), Just(MsgType::Resp)]
}

fn arb_clone_status() -> impl Strategy<Value = CloneStatus> {
    prop_oneof![
        Just(CloneStatus::NotCloned),
        Just(CloneStatus::ClonedOriginal),
        Just(CloneStatus::Clone),
    ]
}

prop_compose! {
    fn arb_header()(
        msg_type in arb_msg_type(),
        req_id in any::<u32>(),
        grp in any::<u16>(),
        sid in any::<u16>(),
        state in any::<u16>(),
        clo in arb_clone_status(),
        idx in any::<u8>(),
        switch_id in any::<u8>(),
        client_id in any::<u16>(),
        client_seq in any::<u32>(),
    ) -> NetCloneHdr {
        NetCloneHdr {
            msg_type, req_id, grp, sid,
            state: ServerState(state),
            clo, idx, switch_id, client_id, client_seq,
        }
    }
}

fn arb_op() -> impl Strategy<Value = RpcOp> {
    prop_oneof![
        any::<u64>().prop_map(|class_ns| RpcOp::Echo { class_ns }),
        any::<u64>().prop_map(|n| RpcOp::Get {
            key: KvKey::from_index(n)
        }),
        (any::<u64>(), any::<u16>()).prop_map(|(n, count)| RpcOp::Scan {
            key: KvKey::from_index(n),
            count,
        }),
        (any::<u64>(), any::<u16>()).prop_map(|(n, value_len)| RpcOp::Put {
            key: KvKey::from_index(n),
            value_len,
        }),
    ]
}

proptest! {
    #[test]
    fn header_round_trips(h in arb_header()) {
        let mut buf = BytesMut::new();
        encode_header(&h, &mut buf);
        prop_assert_eq!(buf.len(), HEADER_LEN);
        let mut bytes = buf.freeze();
        let back = decode_header(&mut bytes).unwrap();
        prop_assert_eq!(back, h);
        prop_assert!(bytes.is_empty());
    }

    #[test]
    fn frame_round_trips(h in arb_header(), op in arb_op()) {
        let mut buf = BytesMut::new();
        encode_header(&h, &mut buf);
        encode_op(&op, &mut buf);
        let mut bytes = buf.freeze();
        let (h2, op2) = decode_frame(&mut bytes).unwrap();
        prop_assert_eq!(h2, h);
        prop_assert_eq!(op2, op);
    }

    #[test]
    fn decoder_never_panics_on_garbage(raw in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut bytes = Bytes::from(raw);
        // Must return Ok or Err, never panic / never read out of bounds.
        let _ = decode_frame(&mut bytes);
    }

    #[test]
    fn key_index_round_trips(n in any::<u64>()) {
        prop_assert_eq!(KvKey::from_index(n).index(), n);
    }
}
