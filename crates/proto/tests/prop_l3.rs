//! Property tests for the full IPv4/UDP encapsulation: round trips for
//! arbitrary headers/ops, checksum detection of arbitrary single-byte
//! corruption, and panic-freedom on garbage.

use bytes::Bytes;
use netclone_proto::l3::{decode_ip_packet, encode_ip_packet, internet_checksum};
use netclone_proto::{Ipv4, KvKey, NetCloneHdr, PacketMeta, RpcOp};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = RpcOp> {
    prop_oneof![
        any::<u64>().prop_map(|class_ns| RpcOp::Echo { class_ns }),
        any::<u64>().prop_map(|n| RpcOp::Get {
            key: KvKey::from_index(n)
        }),
        (any::<u64>(), any::<u16>()).prop_map(|(n, count)| RpcOp::Scan {
            key: KvKey::from_index(n),
            count,
        }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trips(
        src in any::<u32>(),
        dst in any::<u32>(),
        grp in any::<u16>(),
        idx in any::<u8>(),
        seq in any::<u32>(),
        sport in any::<u16>(),
        op in arb_op(),
    ) {
        let mut meta = PacketMeta::netclone_request(
            Ipv4(src),
            NetCloneHdr::request(grp, idx, 3, seq),
            0,
        );
        meta.dst_ip = Ipv4(dst);
        let pkt = encode_ip_packet(&meta, sport, &op);
        let (m2, op2) = decode_ip_packet(pkt).unwrap();
        prop_assert_eq!(m2.src_ip, meta.src_ip);
        prop_assert_eq!(m2.dst_ip, meta.dst_ip);
        prop_assert_eq!(m2.nc, meta.nc);
        prop_assert_eq!(op2, op);
    }

    /// Any single-byte corruption is caught by one of the two checksums
    /// (or the structural validators).
    #[test]
    fn single_byte_corruption_is_detected(
        seq in any::<u32>(),
        flip_pos in 0usize..57,
        flip_bit in 0u8..8,
    ) {
        let meta = PacketMeta::netclone_request(
            Ipv4::client(0),
            NetCloneHdr::request(1, 0, 0, seq),
            0,
        );
        let pkt = encode_ip_packet(&meta, 9999, &RpcOp::Echo { class_ns: 25_000 });
        prop_assume!(flip_pos < pkt.len());
        let mut raw = pkt.to_vec();
        raw[flip_pos] ^= 1 << flip_bit;
        let decoded = decode_ip_packet(Bytes::from(raw));
        prop_assert!(
            decoded.is_err(),
            "corruption at byte {flip_pos} bit {flip_bit} slipped through"
        );
    }

    /// Garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode_ip_packet(Bytes::from(raw));
    }

    /// The checksum of data with its own checksum appended is zero.
    #[test]
    fn checksum_self_verifies(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut padded = data.clone();
        if padded.len() % 2 == 1 {
            padded.push(0);
        }
        let csum = internet_checksum(&padded);
        padded.extend_from_slice(&csum.to_be_bytes());
        prop_assert_eq!(internet_checksum(&padded), 0);
    }
}
