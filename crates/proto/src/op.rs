//! Application payloads carried by NetClone requests.
//!
//! The paper evaluates two payload families: synthetic dummy RPCs whose
//! service time is drawn from a configured distribution (§5.1.2), and
//! key-value operations against Redis/Memcached-style stores (§5.5) where
//! `GET` reads one object and `SCAN` reads 100.

/// A fixed-size 16-byte key, matching the paper's KV experiments
/// ("1 million objects with 16-byte keys and 64-byte values", §5.5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct KvKey(pub [u8; 16]);

impl KvKey {
    /// Derives the canonical key for object number `n` (the generator and
    /// the store must agree on this mapping).
    pub fn from_index(n: u64) -> Self {
        let mut k = [0u8; 16];
        k[..8].copy_from_slice(&n.to_be_bytes());
        // Mix the index into the tail so keys are not prefix-degenerate for
        // hash functions that favour late bytes.
        k[8..].copy_from_slice(&(n.wrapping_mul(0x9E37_79B9_7F4A_7C15)).to_be_bytes());
        KvKey(k)
    }

    /// Recovers the object index encoded by [`KvKey::from_index`].
    pub fn index(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8 bytes"))
    }
}

/// The RPC operation requested by a client.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum RpcOp {
    /// Synthetic dummy RPC: the server busy-works for a duration drawn
    /// around `class_ns` (the workload's intrinsic class, e.g. the 25 μs or
    /// 250 μs mode of a bimodal mix).
    Echo {
        /// Intrinsic mean service time of this request's class, in ns.
        class_ns: u64,
    },
    /// Read one object (Redis/Memcached `GET`).
    Get {
        /// Key to read.
        key: KvKey,
    },
    /// Read `count` consecutive objects starting at `key` (the paper's
    /// `SCAN` reads 100 objects).
    Scan {
        /// First key of the range.
        key: KvKey,
        /// Number of objects to read.
        count: u16,
    },
    /// Write one object. NetClone never clones writes (§5.5: "write
    /// coordination should be handled by replication protocols"), but the
    /// store and runtime support them.
    Put {
        /// Key to write.
        key: KvKey,
        /// Length of the value in bytes (the sim carries lengths, the real
        /// runtime carries bytes).
        value_len: u16,
    },
}

impl RpcOp {
    /// True for operations that NetClone may clone. Writes are excluded
    /// (§5.5).
    pub fn is_cloneable(&self) -> bool {
        !matches!(self, RpcOp::Put { .. })
    }

    /// Number of objects this operation touches (used by service-cost
    /// models: `SCAN` costs ≈ 100 × a `GET`'s per-object work).
    pub fn objects_touched(&self) -> u32 {
        match self {
            RpcOp::Echo { .. } => 0,
            RpcOp::Get { .. } | RpcOp::Put { .. } => 1,
            RpcOp::Scan { count, .. } => *count as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_index_round_trip() {
        for n in [0u64, 1, 42, 999_999, u64::MAX] {
            assert_eq!(KvKey::from_index(n).index(), n);
        }
    }

    #[test]
    fn distinct_indices_give_distinct_keys() {
        let a = KvKey::from_index(1);
        let b = KvKey::from_index(2);
        assert_ne!(a, b);
    }

    #[test]
    fn writes_are_not_cloneable() {
        assert!(!RpcOp::Put {
            key: KvKey::from_index(0),
            value_len: 64
        }
        .is_cloneable());
        assert!(RpcOp::Get {
            key: KvKey::from_index(0)
        }
        .is_cloneable());
        assert!(RpcOp::Echo { class_ns: 25_000 }.is_cloneable());
    }

    #[test]
    fn scan_touches_count_objects() {
        let op = RpcOp::Scan {
            key: KvKey::from_index(3),
            count: 100,
        };
        assert_eq!(op.objects_touched(), 100);
        assert_eq!(RpcOp::Echo { class_ns: 1 }.objects_touched(), 0);
    }
}
