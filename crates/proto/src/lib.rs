//! # netclone-proto
//!
//! Packet formats for the NetClone reproduction.
//!
//! This crate defines the NetClone header exactly as in Fig. 3 of the paper
//! (TYPE, REQ_ID, GRP, SID, STATE, CLO, IDX), together with the extensions
//! described in §3.7:
//!
//! * `SWITCH_ID` — multi-rack deployments gate NetClone processing on the
//!   client-side ToR switch,
//! * `CLIENT_ID` / `CLIENT_SEQ` — Lamport-clock style request identifiers so
//!   TCP retransmissions keep a stable request ID.
//!
//! It also defines:
//!
//! * [`PacketMeta`] — the slice of a packet a programmable switch reads and
//!   rewrites (L3 addresses, L4 destination port, NetClone header). The
//!   simulator, the data-plane program ([`netclone-core`]), and the real
//!   UDP runtime ([`netclone-net`]) all exchange this type, so the exact
//!   same switch program runs in both worlds.
//! * [`RpcOp`] — the application payload carried by a request (synthetic
//!   echo with a service class, or KV GET/SCAN/PUT).
//! * [`wire`] — a fixed-layout binary codec (20-byte header) used on real
//!   sockets, with exhaustive round-trip tests.
//!
//! [`netclone-core`]: ../netclone_core/index.html
//! [`netclone-net`]: ../netclone_net/index.html

pub mod addr;
pub mod header;
pub mod l3;
pub mod op;
pub mod packet;
pub mod pcap;
pub mod wire;

pub use addr::Ipv4;
pub use header::{CloneStatus, MsgType, NetCloneHdr, ServerState};
pub use op::{KvKey, RpcOp};
pub use packet::PacketMeta;

/// L4 (UDP) destination port reserved for NetClone traffic (§3.2).
///
/// The switch applies the NetClone modules only to packets addressed to this
/// port; everything else takes the traditional L2/L3 path.
pub const NETCLONE_UDP_PORT: u16 = 0xC10E;

/// Identifier of a worker server, used as the index into the switch's
/// address and state tables (`SID` field).
pub type ServerId = u16;

/// Identifier of a candidate-server pair (`GRP` field). Groups are the
/// ordered 2-permutations of the server set (§3.3).
pub type GroupId = u16;

/// Switch-assigned monotonically increasing request identifier
/// (`REQ_ID` field).
pub type ReqId = u32;

/// Identifier of a ToR switch for multi-rack deployments (§3.7). The value
/// `0` means "not yet stamped by any client-side ToR".
pub type SwitchId = u8;

/// Identifier of a client host, used by the TCP-mode request-ID scheme
/// (§3.7).
pub type ClientId = u16;
