//! Binary wire codec for the NetClone header and RPC payloads.
//!
//! Layout (network byte order), 20 bytes total for the header:
//!
//! ```text
//!  0      1          5      7      9      11    12    13          14
//!  +------+----------+------+------+------+-----+-----+-----------+-----------+------------+
//!  | TYPE | REQ_ID   | GRP  | SID  | STATE| CLO | IDX | SWITCH_ID | CLIENT_ID | CLIENT_SEQ |
//!  | u8   | u32      | u16  | u16  | u16  | u8  | u8  | u8        | u16       | u32        |
//!  +------+----------+------+------+------+-----+-----+-----------+-----------+------------+
//! ```
//!
//! followed by an operation payload (tag byte + fields). The codec is used
//! by the real-socket runtime (`netclone-net`); the simulator exchanges the
//! parsed structs directly, exactly like a switch pipeline operates on
//! parsed metadata rather than raw bytes.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{CloneStatus, KvKey, MsgType, NetCloneHdr, RpcOp, ServerState};

/// Size of the encoded NetClone header in bytes.
pub const HEADER_LEN: usize = 20;

/// Errors produced when decoding NetClone frames.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The buffer is shorter than the fixed header or a declared field.
    Truncated {
        /// Bytes required by the field being decoded.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The `TYPE` field held an unknown value.
    BadMsgType(u8),
    /// The `CLO` field held an unknown value.
    BadCloneStatus(u8),
    /// The operation tag byte held an unknown value.
    BadOpTag(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            WireError::BadMsgType(v) => write!(f, "unknown TYPE value {v}"),
            WireError::BadCloneStatus(v) => write!(f, "unknown CLO value {v}"),
            WireError::BadOpTag(v) => write!(f, "unknown op tag {v}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serializes a header into `dst` (any [`BufMut`], e.g. `BytesMut` or a
/// reusable `Vec<u8>` for allocation-free encode paths).
pub fn encode_header<B: BufMut>(h: &NetCloneHdr, dst: &mut B) {
    dst.put_u8(h.msg_type as u8);
    dst.put_u32(h.req_id);
    dst.put_u16(h.grp);
    dst.put_u16(h.sid);
    dst.put_u16(h.state.0);
    dst.put_u8(h.clo as u8);
    dst.put_u8(h.idx);
    dst.put_u8(h.switch_id);
    dst.put_u16(h.client_id);
    dst.put_u32(h.client_seq);
}

/// Deserializes a header from the front of `src` (any [`Buf`], e.g.
/// `Bytes` or a borrowed `&[u8]` cursor), advancing it.
pub fn decode_header<B: Buf>(src: &mut B) -> Result<NetCloneHdr, WireError> {
    if src.remaining() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            have: src.remaining(),
        });
    }
    let ty_raw = src.get_u8();
    let msg_type = MsgType::from_u8(ty_raw).ok_or(WireError::BadMsgType(ty_raw))?;
    let req_id = src.get_u32();
    let grp = src.get_u16();
    let sid = src.get_u16();
    let state = ServerState(src.get_u16());
    let clo_raw = src.get_u8();
    let clo = CloneStatus::from_u8(clo_raw).ok_or(WireError::BadCloneStatus(clo_raw))?;
    let idx = src.get_u8();
    let switch_id = src.get_u8();
    let client_id = src.get_u16();
    let client_seq = src.get_u32();
    Ok(NetCloneHdr {
        msg_type,
        req_id,
        grp,
        sid,
        state,
        clo,
        idx,
        switch_id,
        client_id,
        client_seq,
    })
}

const OP_ECHO: u8 = 0;
const OP_GET: u8 = 1;
const OP_SCAN: u8 = 2;
const OP_PUT: u8 = 3;

/// Serializes an operation payload into `dst`.
pub fn encode_op<B: BufMut>(op: &RpcOp, dst: &mut B) {
    match op {
        RpcOp::Echo { class_ns } => {
            dst.put_u8(OP_ECHO);
            dst.put_u64(*class_ns);
        }
        RpcOp::Get { key } => {
            dst.put_u8(OP_GET);
            dst.put_slice(&key.0);
        }
        RpcOp::Scan { key, count } => {
            dst.put_u8(OP_SCAN);
            dst.put_slice(&key.0);
            dst.put_u16(*count);
        }
        RpcOp::Put { key, value_len } => {
            dst.put_u8(OP_PUT);
            dst.put_slice(&key.0);
            dst.put_u16(*value_len);
        }
    }
}

fn need<B: Buf>(src: &B, n: usize) -> Result<(), WireError> {
    if src.remaining() < n {
        Err(WireError::Truncated {
            needed: n,
            have: src.remaining(),
        })
    } else {
        Ok(())
    }
}

fn get_key<B: Buf>(src: &mut B) -> KvKey {
    let mut k = [0u8; 16];
    src.copy_to_slice(&mut k);
    KvKey(k)
}

/// Deserializes an operation payload from the front of `src`.
pub fn decode_op<B: Buf>(src: &mut B) -> Result<RpcOp, WireError> {
    need(src, 1)?;
    let tag = src.get_u8();
    match tag {
        OP_ECHO => {
            need(src, 8)?;
            Ok(RpcOp::Echo {
                class_ns: src.get_u64(),
            })
        }
        OP_GET => {
            need(src, 16)?;
            Ok(RpcOp::Get { key: get_key(src) })
        }
        OP_SCAN => {
            need(src, 18)?;
            let key = get_key(src);
            let count = src.get_u16();
            Ok(RpcOp::Scan { key, count })
        }
        OP_PUT => {
            need(src, 18)?;
            let key = get_key(src);
            let value_len = src.get_u16();
            Ok(RpcOp::Put { key, value_len })
        }
        other => Err(WireError::BadOpTag(other)),
    }
}

/// Serializes a full frame (header + op) into a fresh buffer.
pub fn encode_frame(h: &NetCloneHdr, op: &RpcOp) -> Bytes {
    let mut b = BytesMut::with_capacity(HEADER_LEN + 24);
    encode_header(h, &mut b);
    encode_op(op, &mut b);
    b.freeze()
}

/// Deserializes a full frame. Trailing bytes (e.g. a carried value) are
/// returned untouched in `src`.
pub fn decode_frame<B: Buf>(src: &mut B) -> Result<(NetCloneHdr, RpcOp), WireError> {
    let h = decode_header(src)?;
    let op = decode_op(src)?;
    Ok((h, op))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> NetCloneHdr {
        NetCloneHdr {
            msg_type: MsgType::Resp,
            req_id: 0xDEAD_BEEF,
            grp: 29,
            sid: 5,
            state: ServerState(3),
            clo: CloneStatus::Clone,
            idx: 1,
            switch_id: 2,
            client_id: 7,
            client_seq: 123_456,
        }
    }

    #[test]
    fn header_round_trip() {
        let h = sample_header();
        let mut buf = BytesMut::new();
        encode_header(&h, &mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let mut bytes = buf.freeze();
        let back = decode_header(&mut bytes).unwrap();
        assert_eq!(back, h);
        assert!(bytes.is_empty());
    }

    #[test]
    fn op_round_trips() {
        let ops = [
            RpcOp::Echo { class_ns: 25_000 },
            RpcOp::Get {
                key: KvKey::from_index(9),
            },
            RpcOp::Scan {
                key: KvKey::from_index(100),
                count: 100,
            },
            RpcOp::Put {
                key: KvKey::from_index(3),
                value_len: 64,
            },
        ];
        for op in ops {
            let mut buf = BytesMut::new();
            encode_op(&op, &mut buf);
            let mut bytes = buf.freeze();
            assert_eq!(decode_op(&mut bytes).unwrap(), op);
            assert!(bytes.is_empty());
        }
    }

    #[test]
    fn frame_round_trip_preserves_trailing_bytes() {
        let h = sample_header();
        let op = RpcOp::Get {
            key: KvKey::from_index(1),
        };
        let mut framed = BytesMut::new();
        encode_header(&h, &mut framed);
        encode_op(&op, &mut framed);
        framed.put_slice(b"VALUEBYTES");
        let mut bytes = framed.freeze();
        let (h2, op2) = decode_frame(&mut bytes).unwrap();
        assert_eq!((h2, op2), (h, op));
        assert_eq!(&bytes[..], b"VALUEBYTES");
    }

    #[test]
    fn truncated_header_is_rejected() {
        let mut short = Bytes::from_static(&[1, 2, 3]);
        match decode_header(&mut short) {
            Err(WireError::Truncated { needed, have }) => {
                assert_eq!(needed, HEADER_LEN);
                assert_eq!(have, 3);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn bad_fields_are_rejected() {
        let h = sample_header();
        let mut buf = BytesMut::new();
        encode_header(&h, &mut buf);
        // The error must carry the actual on-wire byte, not a placeholder.
        let mut bad_type = buf.clone();
        bad_type[0] = 9;
        assert_eq!(
            decode_header(&mut bad_type.freeze()),
            Err(WireError::BadMsgType(9))
        );
        let mut bad_type2 = buf.clone();
        bad_type2[0] = 0xFF;
        assert_eq!(
            decode_header(&mut bad_type2.freeze()),
            Err(WireError::BadMsgType(0xFF))
        );
        let mut bad_clo = buf.clone();
        bad_clo[11] = 9;
        assert_eq!(
            decode_header(&mut bad_clo.freeze()),
            Err(WireError::BadCloneStatus(9))
        );
        let mut bad_op = Bytes::from_static(&[99]);
        assert_eq!(decode_op(&mut bad_op), Err(WireError::BadOpTag(99)));
    }

    #[test]
    fn error_display_is_informative() {
        let e = WireError::Truncated {
            needed: 20,
            have: 3,
        };
        assert!(e.to_string().contains("20"));
        assert!(WireError::BadOpTag(7).to_string().contains('7'));
    }
}
