//! The NetClone header (paper Fig. 3) and its field types.
//!
//! The header rides between the L4 header and the application payload. The
//! seven fields from the paper are `TYPE`, `REQ_ID`, `GRP`, `SID`, `STATE`,
//! `CLO`, and `IDX`; §3.7 adds `SWITCH_ID` (multi-rack) and we carry
//! `CLIENT_ID`/`CLIENT_SEQ` for the TCP-mode request-ID scheme.

use crate::{ClientId, GroupId, ReqId, ServerId, SwitchId};

/// `TYPE` field: request vs. response.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[repr(u8)]
pub enum MsgType {
    /// An RPC request travelling client → server.
    Req = 1,
    /// An RPC response travelling server → client.
    Resp = 2,
}

impl MsgType {
    /// Parses the on-wire byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(MsgType::Req),
            2 => Some(MsgType::Resp),
            _ => None,
        }
    }
}

/// `CLO` field: cloning status of a request, echoed into its response.
///
/// * `0` — request was not cloned;
/// * `1` — the *original* copy of a cloned request (processed normally by
///   the server even when busy);
/// * `2` — the switch-generated clone (dropped by the server if its request
///   queue is non-empty, §3.4).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
#[repr(u8)]
pub enum CloneStatus {
    /// Not cloned (`CLO = 0`).
    #[default]
    NotCloned = 0,
    /// The original copy of a cloned pair (`CLO = 1`).
    ClonedOriginal = 1,
    /// The switch-generated duplicate (`CLO = 2`).
    Clone = 2,
}

impl CloneStatus {
    /// Parses the on-wire byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(CloneStatus::NotCloned),
            1 => Some(CloneStatus::ClonedOriginal),
            2 => Some(CloneStatus::Clone),
            _ => None,
        }
    }

    /// True if this request was cloned (original or duplicate) — the filter
    /// logic only engages for such packets (Algorithm 1 line 17).
    pub fn was_cloned(self) -> bool {
        !matches!(self, CloneStatus::NotCloned)
    }
}

/// `STATE` field: the server state piggybacked on responses (§3.4).
///
/// The base design needs only a binary idle/busy signal ("idle" ⇔ the
/// server's request queue is empty). The RackSched integration (§3.7)
/// generalises the field to the *queue length* so the switch can fall back
/// to join-the-shortest-queue. Both views share one 16-bit encoding:
/// `0` = idle / empty queue, `n > 0` = busy with `n` queued requests.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default, PartialOrd, Ord)]
pub struct ServerState(pub u16);

impl ServerState {
    /// The idle state (empty request queue).
    pub const IDLE: ServerState = ServerState(0);

    /// Builds a state from an observed queue length, saturating at
    /// `u16::MAX`.
    pub fn from_queue_len(len: usize) -> Self {
        ServerState(len.min(u16::MAX as usize) as u16)
    }

    /// True iff the server reported an empty request queue.
    pub fn is_idle(self) -> bool {
        self.0 == 0
    }

    /// The reported queue length (0 when idle).
    pub fn queue_len(self) -> u16 {
        self.0
    }
}

/// The NetClone header (Fig. 3 + §3.7 extensions).
///
/// All switch-side logic operates on this struct; the wire layout lives in
/// [`crate::wire`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct NetCloneHdr {
    /// `TYPE`: request or response.
    pub msg_type: MsgType,
    /// `REQ_ID`: switch-assigned sequence number shared by a request, its
    /// clone, and both responses.
    pub req_id: ReqId,
    /// `GRP`: client-chosen group identifying a pair of candidate servers.
    pub grp: GroupId,
    /// `SID`: server ID. On responses, the responding server; on a cloned
    /// original in flight, the switch temporarily stores the *clone's*
    /// destination here (Algorithm 1 line 8).
    pub sid: ServerId,
    /// `STATE`: the piggybacked server state (responses only).
    pub state: ServerState,
    /// `CLO`: cloning status.
    pub clo: CloneStatus,
    /// `IDX`: which filter *table* (not slot) this request's responses use;
    /// chosen uniformly at random by the client (§3.5).
    pub idx: u8,
    /// `SWITCH_ID`: 0 until stamped by the client-side ToR (§3.7).
    pub switch_id: SwitchId,
    /// TCP-mode: originating client, for Lamport-style request IDs (§3.7).
    pub client_id: ClientId,
    /// TCP-mode: client-local sequence number (§3.7).
    pub client_seq: u32,
}

impl NetCloneHdr {
    /// A fresh request as a client emits it: no request ID yet (the switch
    /// assigns it), unspecified destination, not cloned.
    pub fn request(grp: GroupId, idx: u8, client_id: ClientId, client_seq: u32) -> Self {
        NetCloneHdr {
            msg_type: MsgType::Req,
            req_id: 0,
            grp,
            sid: 0,
            state: ServerState::IDLE,
            clo: CloneStatus::NotCloned,
            idx,
            switch_id: 0,
            client_id,
            client_seq,
        }
    }

    /// The response a server sends for `req`: echoes the identifying fields
    /// and piggybacks the server's current state (§3.3 "Response packets").
    pub fn response_to(req: &NetCloneHdr, sid: ServerId, state: ServerState) -> Self {
        NetCloneHdr {
            msg_type: MsgType::Resp,
            req_id: req.req_id,
            grp: req.grp,
            sid,
            state,
            clo: req.clo,
            idx: req.idx,
            switch_id: req.switch_id,
            client_id: req.client_id,
            client_seq: req.client_seq,
        }
    }

    /// True iff this is a request packet.
    pub fn is_request(&self) -> bool {
        self.msg_type == MsgType::Req
    }

    /// True iff this is a response packet.
    pub fn is_response(&self) -> bool {
        self.msg_type == MsgType::Resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_type_round_trip() {
        for t in [MsgType::Req, MsgType::Resp] {
            assert_eq!(MsgType::from_u8(t as u8), Some(t));
        }
        assert_eq!(MsgType::from_u8(0), None);
        assert_eq!(MsgType::from_u8(3), None);
    }

    #[test]
    fn clone_status_round_trip() {
        for c in [
            CloneStatus::NotCloned,
            CloneStatus::ClonedOriginal,
            CloneStatus::Clone,
        ] {
            assert_eq!(CloneStatus::from_u8(c as u8), Some(c));
        }
        assert_eq!(CloneStatus::from_u8(3), None);
    }

    #[test]
    fn was_cloned_matches_paper_semantics() {
        assert!(!CloneStatus::NotCloned.was_cloned());
        assert!(CloneStatus::ClonedOriginal.was_cloned());
        assert!(CloneStatus::Clone.was_cloned());
    }

    #[test]
    fn server_state_idle_iff_queue_empty() {
        assert!(ServerState::from_queue_len(0).is_idle());
        assert!(!ServerState::from_queue_len(1).is_idle());
        assert_eq!(ServerState::from_queue_len(7).queue_len(), 7);
    }

    #[test]
    fn server_state_saturates() {
        assert_eq!(
            ServerState::from_queue_len(usize::MAX).queue_len(),
            u16::MAX
        );
    }

    #[test]
    fn response_echoes_request_identity() {
        let mut req = NetCloneHdr::request(5, 1, 9, 42);
        req.req_id = 1234;
        req.clo = CloneStatus::ClonedOriginal;
        let resp = NetCloneHdr::response_to(&req, 3, ServerState::from_queue_len(2));
        assert!(resp.is_response());
        assert_eq!(resp.req_id, 1234);
        assert_eq!(resp.grp, 5);
        assert_eq!(resp.idx, 1);
        assert_eq!(resp.clo, CloneStatus::ClonedOriginal);
        assert_eq!(resp.sid, 3);
        assert_eq!(resp.state.queue_len(), 2);
        assert_eq!(resp.client_id, 9);
        assert_eq!(resp.client_seq, 42);
    }

    #[test]
    fn fresh_request_has_no_req_id() {
        let req = NetCloneHdr::request(0, 0, 0, 0);
        assert!(req.is_request());
        assert_eq!(req.req_id, 0);
        assert_eq!(req.clo, CloneStatus::NotCloned);
        assert_eq!(req.switch_id, 0);
    }
}
