//! Compact IPv4 address newtype used throughout the switch models.
//!
//! `std::net::Ipv4Addr` would work, but a `u32` newtype keeps packet metadata
//! `Copy`-cheap in the simulator's hot loop and mirrors how a switch ALU
//! actually sees the field. Conversions to/from `std::net::Ipv4Addr` are
//! provided for the real-socket runtime.

use std::fmt;
use std::net::Ipv4Addr;

/// An IPv4 address stored in host byte order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// The unspecified address `0.0.0.0`, used for requests before the
    /// switch's address table assigns a destination (§3.3: "clients do not
    /// have to know server information").
    pub const UNSPECIFIED: Ipv4 = Ipv4(0);

    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(u32::from_be_bytes([a, b, c, d]))
    }

    /// Returns the four octets in network order.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// True for `0.0.0.0`.
    pub const fn is_unspecified(self) -> bool {
        self.0 == 0
    }

    /// Convenience constructor for the testbed's server subnet
    /// (`10.0.1.100 + id`, mirroring the example in paper Fig. 5).
    pub const fn server(id: u16) -> Self {
        Ipv4(u32::from_be_bytes([10, 0, 1, 100]).wrapping_add(id as u32 + 1))
    }

    /// Convenience constructor for the testbed's client subnet
    /// (`10.0.2.1 + id`).
    pub const fn client(id: u16) -> Self {
        Ipv4(u32::from_be_bytes([10, 0, 2, 0]).wrapping_add(id as u32 + 1))
    }
}

impl fmt::Debug for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl From<Ipv4Addr> for Ipv4 {
    fn from(a: Ipv4Addr) -> Self {
        Ipv4(u32::from(a))
    }
}

impl From<Ipv4> for Ipv4Addr {
    fn from(a: Ipv4) -> Self {
        Ipv4Addr::from(a.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octet_round_trip() {
        let a = Ipv4::new(10, 0, 1, 103);
        assert_eq!(a.octets(), [10, 0, 1, 103]);
        assert_eq!(a.to_string(), "10.0.1.103");
    }

    #[test]
    fn unspecified_is_zero() {
        assert!(Ipv4::UNSPECIFIED.is_unspecified());
        assert!(!Ipv4::new(10, 0, 0, 1).is_unspecified());
    }

    #[test]
    fn std_conversions_round_trip() {
        let a = Ipv4::new(192, 168, 69, 1);
        let std: Ipv4Addr = a.into();
        assert_eq!(std, Ipv4Addr::new(192, 168, 69, 1));
        assert_eq!(Ipv4::from(std), a);
    }

    #[test]
    fn server_addresses_match_paper_example() {
        // Fig. 5 uses 10.0.1.101..10.0.1.104 for servers 1..4. Our SIDs are
        // zero-based, so server(0) == 10.0.1.101.
        assert_eq!(Ipv4::server(0).to_string(), "10.0.1.101");
        assert_eq!(Ipv4::server(2).to_string(), "10.0.1.103");
    }

    #[test]
    fn client_addresses_are_disjoint_from_servers() {
        for c in 0..64 {
            for s in 0..64 {
                assert_ne!(Ipv4::client(c), Ipv4::server(s));
            }
        }
    }
}
