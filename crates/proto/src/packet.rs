//! [`PacketMeta`] — the switch-visible slice of a packet.
//!
//! A PISA switch parses a packet into per-field metadata, runs the
//! match-action pipeline over that metadata, and deparses the (possibly
//! rewritten) fields back onto the wire. `PacketMeta` is exactly that
//! parsed view: L3 addresses, the L4 destination port (which selects
//! NetClone vs. normal processing, §3.2), and the NetClone header.
//!
//! Both the discrete-event simulator and the real UDP soft switch drive the
//! data-plane program ([`netclone-core`]) with this type, which is what lets
//! one implementation of Algorithm 1 serve both worlds.
//!
//! [`netclone-core`]: ../../netclone_core/index.html

use crate::{Ipv4, NetCloneHdr, NETCLONE_UDP_PORT};

/// The parsed, rewritable representation of one packet inside a switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PacketMeta {
    /// L3 source address.
    pub src_ip: Ipv4,
    /// L3 destination address. Fresh NetClone requests leave the client
    /// with this unspecified; the switch's address table fills it in
    /// (Algorithm 1 line 5).
    pub dst_ip: Ipv4,
    /// L4 destination port; [`NETCLONE_UDP_PORT`] selects NetClone
    /// processing.
    pub l4_dport: u16,
    /// The NetClone header.
    pub nc: NetCloneHdr,
    /// Total frame length in bytes (for serialization-delay models).
    pub wire_bytes: u16,
}

impl PacketMeta {
    /// Builds the metadata for a fresh NetClone request leaving a client.
    pub fn netclone_request(src_ip: Ipv4, nc: NetCloneHdr, wire_bytes: u16) -> Self {
        PacketMeta {
            src_ip,
            dst_ip: Ipv4::UNSPECIFIED,
            l4_dport: NETCLONE_UDP_PORT,
            nc,
            wire_bytes,
        }
    }

    /// Builds the metadata for a response from a server back to `dst_ip`
    /// (the client).
    pub fn netclone_response(src_ip: Ipv4, dst_ip: Ipv4, nc: NetCloneHdr, wire_bytes: u16) -> Self {
        PacketMeta {
            src_ip,
            dst_ip,
            l4_dport: NETCLONE_UDP_PORT,
            nc,
            wire_bytes,
        }
    }

    /// True iff the switch should run the NetClone modules on this packet
    /// (§3.2: a reserved L4 port distinguishes NetClone packets; everything
    /// else uses the traditional routing path).
    pub fn is_netclone(&self) -> bool {
        self.l4_dport == NETCLONE_UDP_PORT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MsgType;

    #[test]
    fn fresh_request_has_unspecified_destination() {
        let nc = NetCloneHdr::request(3, 0, 1, 7);
        let pkt = PacketMeta::netclone_request(Ipv4::client(0), nc, 84);
        assert!(pkt.dst_ip.is_unspecified());
        assert!(pkt.is_netclone());
        assert_eq!(pkt.nc.msg_type, MsgType::Req);
    }

    #[test]
    fn non_netclone_port_is_not_netclone() {
        let nc = NetCloneHdr::request(0, 0, 0, 0);
        let mut pkt = PacketMeta::netclone_request(Ipv4::client(0), nc, 84);
        pkt.l4_dport = 53;
        assert!(!pkt.is_netclone());
    }

    #[test]
    fn response_carries_both_endpoints() {
        let req = NetCloneHdr::request(0, 0, 2, 5);
        let nc = NetCloneHdr::response_to(&req, 4, crate::ServerState::IDLE);
        let pkt = PacketMeta::netclone_response(Ipv4::server(4), Ipv4::client(2), nc, 84);
        assert_eq!(pkt.src_ip, Ipv4::server(4));
        assert_eq!(pkt.dst_ip, Ipv4::client(2));
        assert!(pkt.is_netclone());
    }
}
