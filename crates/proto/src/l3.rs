//! Complete IPv4 + UDP header codecs with internet checksums.
//!
//! The simulator and the loopback soft switch exchange parsed
//! [`crate::PacketMeta`] directly, but a deployment on a real fabric (or a
//! pcap-writing debug tap) needs the full encapsulation the paper's
//! packets ride in: `IPv4 / UDP / NetClone header / payload` (§3.2 — "the
//! NetClone header is encapsulated as a L4 payload"). This module provides
//! that framing, smoltcp-style: plain structs, explicit field offsets,
//! checksums generated and verified.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::wire::{self, WireError};
use crate::{Ipv4, PacketMeta, RpcOp};

/// IPv4 protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;

/// Length of the fixed IPv4 header (no options).
pub const IPV4_HEADER_LEN: usize = 20;

/// Length of the UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// RFC 1071 internet checksum over `data` (pad with a zero byte if odd).
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += u16::from_be_bytes([*last, 0]) as u32;
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// A parsed IPv4 header (fixed part; options unsupported, like most
/// data-plane parsers — the paper's switch would send optioned packets to
/// the slow path).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ipv4Header {
    /// Differentiated services byte.
    pub dscp_ecn: u8,
    /// Total length: header + payload.
    pub total_len: u16,
    /// Identification (fragmentation).
    pub ident: u16,
    /// Flags + fragment offset raw field.
    pub flags_frag: u16,
    /// Time to live.
    pub ttl: u8,
    /// L4 protocol (17 = UDP).
    pub protocol: u8,
    /// Source address.
    pub src: Ipv4,
    /// Destination address.
    pub dst: Ipv4,
}

impl Ipv4Header {
    /// A fresh UDP datagram header with sensible defaults (TTL 64, don't
    /// fragment).
    pub fn udp(src: Ipv4, dst: Ipv4, payload_len: usize) -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: (IPV4_HEADER_LEN + UDP_HEADER_LEN + payload_len) as u16,
            ident: 0,
            flags_frag: 0x4000, // DF
            ttl: 64,
            protocol: IPPROTO_UDP,
            src,
            dst,
        }
    }

    /// Serialises the header with a correct checksum.
    pub fn emit(&self, dst: &mut BytesMut) {
        let mut hdr = [0u8; IPV4_HEADER_LEN];
        hdr[0] = 0x45; // version 4, IHL 5
        hdr[1] = self.dscp_ecn;
        hdr[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        hdr[4..6].copy_from_slice(&self.ident.to_be_bytes());
        hdr[6..8].copy_from_slice(&self.flags_frag.to_be_bytes());
        hdr[8] = self.ttl;
        hdr[9] = self.protocol;
        // checksum (10..12) computed over the header with the field zeroed
        hdr[12..16].copy_from_slice(&self.src.octets());
        hdr[16..20].copy_from_slice(&self.dst.octets());
        let csum = internet_checksum(&hdr);
        hdr[10..12].copy_from_slice(&csum.to_be_bytes());
        dst.put_slice(&hdr);
    }

    /// Parses and checksum-verifies a header from the front of `src`.
    pub fn parse(src: &mut Bytes) -> Result<Self, WireError> {
        if src.len() < IPV4_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: IPV4_HEADER_LEN,
                have: src.len(),
            });
        }
        if internet_checksum(&src[..IPV4_HEADER_LEN]) != 0 {
            // A non-zero residue means a corrupt header.
            return Err(WireError::BadMsgType(0xFE));
        }
        let ver_ihl = src.get_u8();
        if ver_ihl != 0x45 {
            return Err(WireError::BadMsgType(ver_ihl));
        }
        let dscp_ecn = src.get_u8();
        let total_len = src.get_u16();
        let ident = src.get_u16();
        let flags_frag = src.get_u16();
        let ttl = src.get_u8();
        let protocol = src.get_u8();
        let _checksum = src.get_u16();
        let src_ip = Ipv4(src.get_u32());
        let dst_ip = Ipv4(src.get_u32());
        Ok(Ipv4Header {
            dscp_ecn,
            total_len,
            ident,
            flags_frag,
            ttl,
            protocol,
            src: src_ip,
            dst: dst_ip,
        })
    }
}

/// A parsed UDP header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UdpHeader {
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// Length: header + payload.
    pub len: u16,
    /// Checksum over the pseudo-header + segment (0 = unused, legal in
    /// IPv4).
    pub checksum: u16,
}

impl UdpHeader {
    /// Serialises the header, computing the checksum over the IPv4
    /// pseudo-header and `payload`.
    pub fn emit(&self, src_ip: Ipv4, dst_ip: Ipv4, payload: &[u8], dst: &mut BytesMut) {
        let mut seg = Vec::with_capacity(12 + UDP_HEADER_LEN + payload.len());
        // Pseudo-header.
        seg.extend_from_slice(&src_ip.octets());
        seg.extend_from_slice(&dst_ip.octets());
        seg.push(0);
        seg.push(IPPROTO_UDP);
        seg.extend_from_slice(&self.len.to_be_bytes());
        // Segment with zero checksum.
        seg.extend_from_slice(&self.sport.to_be_bytes());
        seg.extend_from_slice(&self.dport.to_be_bytes());
        seg.extend_from_slice(&self.len.to_be_bytes());
        seg.extend_from_slice(&[0, 0]);
        seg.extend_from_slice(payload);
        let mut csum = internet_checksum(&seg);
        if csum == 0 {
            csum = 0xFFFF; // RFC 768: transmitted as all-ones
        }
        dst.put_u16(self.sport);
        dst.put_u16(self.dport);
        dst.put_u16(self.len);
        dst.put_u16(csum);
    }

    /// Parses a header from the front of `src` (checksum validation is
    /// [`verify_udp_checksum`], which needs the addresses).
    pub fn parse(src: &mut Bytes) -> Result<Self, WireError> {
        if src.len() < UDP_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: UDP_HEADER_LEN,
                have: src.len(),
            });
        }
        Ok(UdpHeader {
            sport: src.get_u16(),
            dport: src.get_u16(),
            len: src.get_u16(),
            checksum: src.get_u16(),
        })
    }
}

/// Verifies a UDP checksum given the pseudo-header addresses and the full
/// UDP segment (header + payload).
pub fn verify_udp_checksum(src_ip: Ipv4, dst_ip: Ipv4, segment: &[u8]) -> bool {
    if segment.len() < UDP_HEADER_LEN {
        return false;
    }
    let stored = u16::from_be_bytes([segment[6], segment[7]]);
    if stored == 0 {
        return true; // checksum unused
    }
    let mut seg = Vec::with_capacity(12 + segment.len());
    seg.extend_from_slice(&src_ip.octets());
    seg.extend_from_slice(&dst_ip.octets());
    seg.push(0);
    seg.push(IPPROTO_UDP);
    seg.extend_from_slice(&(segment.len() as u16).to_be_bytes());
    seg.extend_from_slice(segment);
    internet_checksum(&seg) == 0
}

/// Builds a complete `IPv4 / UDP / NetClone / op` packet.
pub fn encode_ip_packet(meta: &PacketMeta, sport: u16, op: &RpcOp) -> Bytes {
    let mut payload = BytesMut::new();
    wire::encode_header(&meta.nc, &mut payload);
    wire::encode_op(op, &mut payload);
    let payload = payload.freeze();

    let mut out = BytesMut::with_capacity(IPV4_HEADER_LEN + UDP_HEADER_LEN + payload.len());
    Ipv4Header::udp(meta.src_ip, meta.dst_ip, payload.len()).emit(&mut out);
    UdpHeader {
        sport,
        dport: meta.l4_dport,
        len: (UDP_HEADER_LEN + payload.len()) as u16,
        checksum: 0,
    }
    .emit(meta.src_ip, meta.dst_ip, &payload, &mut out);
    out.put_slice(&payload);
    out.freeze()
}

/// Parses a complete packet back into switch metadata + op, verifying both
/// checksums.
pub fn decode_ip_packet(mut datagram: Bytes) -> Result<(PacketMeta, RpcOp), WireError> {
    let segment_view = datagram.clone();
    let ip = Ipv4Header::parse(&mut datagram)?;
    if ip.protocol != IPPROTO_UDP {
        return Err(WireError::BadOpTag(ip.protocol));
    }
    let udp_segment = &segment_view[IPV4_HEADER_LEN..];
    if !verify_udp_checksum(ip.src, ip.dst, udp_segment) {
        return Err(WireError::BadMsgType(0xFD));
    }
    let udp = UdpHeader::parse(&mut datagram)?;
    let (nc, op) = wire::decode_frame(&mut datagram)?;
    Ok((
        PacketMeta {
            src_ip: ip.src,
            dst_ip: ip.dst,
            l4_dport: udp.dport,
            nc,
            wire_bytes: ip.total_len,
        },
        op,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetCloneHdr, NETCLONE_UDP_PORT};

    #[test]
    fn checksum_known_vector() {
        // Classic RFC 1071 example.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn checksum_of_checksummed_header_is_zero_residue() {
        let mut buf = BytesMut::new();
        Ipv4Header::udp(Ipv4::client(0), Ipv4::server(1), 32).emit(&mut buf);
        assert_eq!(internet_checksum(&buf), 0);
    }

    fn sample_meta() -> PacketMeta {
        PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(7, 1, 0, 42), 0)
    }

    #[test]
    fn full_packet_round_trips() {
        let mut meta = sample_meta();
        meta.dst_ip = Ipv4::server(3);
        let op = RpcOp::Echo { class_ns: 25_000 };
        let pkt = encode_ip_packet(&meta, 5555, &op);
        assert_eq!(
            pkt.len(),
            IPV4_HEADER_LEN + UDP_HEADER_LEN + wire::HEADER_LEN + 9
        );
        let (m2, op2) = decode_ip_packet(pkt).unwrap();
        assert_eq!(m2.src_ip, meta.src_ip);
        assert_eq!(m2.dst_ip, meta.dst_ip);
        assert_eq!(m2.l4_dport, NETCLONE_UDP_PORT);
        assert_eq!(m2.nc, meta.nc);
        assert_eq!(op2, op);
    }

    #[test]
    fn corrupt_ip_header_is_rejected() {
        let meta = sample_meta();
        let pkt = encode_ip_packet(&meta, 5555, &RpcOp::Echo { class_ns: 1 });
        let mut raw = pkt.to_vec();
        raw[8] ^= 0xFF; // flip the TTL
        assert!(decode_ip_packet(Bytes::from(raw)).is_err());
    }

    #[test]
    fn corrupt_udp_payload_is_rejected() {
        let meta = sample_meta();
        let pkt = encode_ip_packet(&meta, 5555, &RpcOp::Echo { class_ns: 1 });
        let mut raw = pkt.to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        assert!(decode_ip_packet(Bytes::from(raw)).is_err());
    }

    #[test]
    fn non_udp_protocol_is_rejected() {
        let meta = sample_meta();
        let pkt = encode_ip_packet(&meta, 5555, &RpcOp::Echo { class_ns: 1 });
        let mut raw = pkt.to_vec();
        raw[9] = 6; // TCP
                    // Fix the IP checksum for the mutated header so we get past it to
                    // the protocol check.
        raw[10] = 0;
        raw[11] = 0;
        let csum = internet_checksum(&raw[..IPV4_HEADER_LEN]);
        raw[10..12].copy_from_slice(&csum.to_be_bytes());
        assert!(matches!(
            decode_ip_packet(Bytes::from(raw)),
            Err(WireError::BadOpTag(6))
        ));
    }

    #[test]
    fn truncated_packets_are_rejected_without_panic() {
        let meta = sample_meta();
        let pkt = encode_ip_packet(&meta, 5555, &RpcOp::Echo { class_ns: 1 });
        for cut in 0..pkt.len() {
            let _ = decode_ip_packet(pkt.slice(..cut)); // must never panic
        }
    }
}
