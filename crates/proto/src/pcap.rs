//! Minimal libpcap file writer, for debug taps.
//!
//! Emits the classic pcap format (magic 0xa1b2c3d4, microsecond
//! timestamps, LINKTYPE_RAW = 101: packets start at the IPv4 header), so
//! captures from the soft switch or the simulator open directly in
//! Wireshark/tcpdump. Writing is append-only and infallible from the data
//! plane's perspective — a tap must never break forwarding.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// LINKTYPE_RAW: packets begin with the IP header.
const LINKTYPE_RAW: u32 = 101;

/// An open pcap file.
pub struct PcapWriter {
    out: BufWriter<File>,
    packets: u64,
}

impl PcapWriter {
    /// Creates the file and writes the global header.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<PcapWriter> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&0xa1b2_c3d4u32.to_le_bytes())?; // magic
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&65_535u32.to_le_bytes())?; // snaplen
        out.write_all(&LINKTYPE_RAW.to_le_bytes())?;
        Ok(PcapWriter { out, packets: 0 })
    }

    /// Appends one packet with the given timestamp (ns since an epoch of
    /// the caller's choosing).
    pub fn record(&mut self, ts_ns: u64, packet: &[u8]) -> std::io::Result<()> {
        let secs = (ts_ns / 1_000_000_000) as u32;
        let usecs = ((ts_ns % 1_000_000_000) / 1_000) as u32;
        self.out.write_all(&secs.to_le_bytes())?;
        self.out.write_all(&usecs.to_le_bytes())?;
        let len = packet.len() as u32;
        self.out.write_all(&len.to_le_bytes())?; // incl_len
        self.out.write_all(&len.to_le_bytes())?; // orig_len
        self.out.write_all(packet)?;
        self.packets += 1;
        Ok(())
    }

    /// Packets written so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Flushes buffered records to disk.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

impl Drop for PcapWriter {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::l3::encode_ip_packet;
    use crate::{Ipv4, NetCloneHdr, PacketMeta, RpcOp};

    #[test]
    fn writes_a_parseable_capture() {
        let dir = std::env::temp_dir().join("netclone-pcap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tap.pcap");
        {
            let mut w = PcapWriter::create(&path).unwrap();
            for i in 0..3u32 {
                let mut meta = PacketMeta::netclone_request(
                    Ipv4::client(0),
                    NetCloneHdr::request(0, 0, 0, i),
                    0,
                );
                meta.dst_ip = Ipv4::server(1);
                let pkt = encode_ip_packet(&meta, 4000, &RpcOp::Echo { class_ns: 1 });
                w.record(i as u64 * 1_000_000, &pkt).unwrap();
            }
            assert_eq!(w.packets(), 3);
        }
        let raw = std::fs::read(&path).unwrap();
        // Global header.
        assert_eq!(&raw[..4], &0xa1b2_c3d4u32.to_le_bytes());
        assert_eq!(u32::from_le_bytes(raw[20..24].try_into().unwrap()), 101);
        // First record header: ts 0, two equal lengths, then an IPv4
        // version nibble.
        let incl = u32::from_le_bytes(raw[32..36].try_into().unwrap());
        let orig = u32::from_le_bytes(raw[36..40].try_into().unwrap());
        assert_eq!(incl, orig);
        assert_eq!(raw[40] >> 4, 4, "record must start at the IPv4 header");
        // Total size: 24 + 3 × (16 + incl).
        assert_eq!(raw.len(), 24 + 3 * (16 + incl as usize));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timestamps_split_into_secs_and_usecs() {
        let dir = std::env::temp_dir().join("netclone-pcap-ts");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ts.pcap");
        let mut w = PcapWriter::create(&path).unwrap();
        w.record(2_500_000_000, &[0x45, 0, 0, 0]).unwrap();
        w.flush().unwrap();
        let raw = std::fs::read(&path).unwrap();
        assert_eq!(u32::from_le_bytes(raw[24..28].try_into().unwrap()), 2);
        assert_eq!(u32::from_le_bytes(raw[28..32].try_into().unwrap()), 500_000);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
