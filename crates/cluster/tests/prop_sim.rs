//! Property tests for the testbed simulation: conservation laws and
//! determinism for arbitrary (small) scenario parameters.

use netclone_cluster::{Scenario, Scheme, Sim};
use netclone_workloads::exp25;
use proptest::prelude::*;

fn tiny(scheme: Scheme, servers: usize, load_pct: u8, seed: u64) -> Scenario {
    let mut s = Scenario::synthetic_default(scheme, exp25(), 1.0);
    s.servers.truncate(servers.max(2));
    s.warmup_ns = 2_000_000;
    s.measure_ns = 8_000_000;
    s.offered_rps = (s.capacity_rps() * load_pct.clamp(5, 95) as f64 / 100.0).max(10_000.0);
    s.seed = seed;
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation for NetClone runs at arbitrary sizes and loads:
    /// decision counters partition requests, recirculations equal clones,
    /// and filtered ≤ cloned.
    #[test]
    fn netclone_counters_partition(
        servers in 2usize..6,
        load in 10u8..90,
        seed in any::<u64>(),
    ) {
        let r = Sim::run(tiny(Scheme::NETCLONE, servers, load, seed));
        prop_assert_eq!(
            r.switch.requests,
            r.switch.cloned + r.switch.clone_skipped_busy + r.switch.clone_skipped_uncloneable
        );
        prop_assert_eq!(r.switch.cloned, r.switch.recirculated);
        // Windowed counters: clones born in warm-up may be filtered inside
        // the measurement window, so allow in-flight boundary slack.
        prop_assert!(r.switch.responses_filtered <= r.switch.cloned + 32);
        prop_assert!(r.completed > 0);
        // Without loss injection nothing vanishes silently. Windowed
        // boundary: requests born during warm-up can complete inside the
        // window, so completions may exceed generations by the in-flight
        // population (bounded well under 256 at these rates).
        prop_assert!(r.completed <= r.generated + 256);
    }

    /// Identical seeds give identical results; different seeds differ, for
    /// any scheme.
    #[test]
    fn determinism_holds_for_all_schemes(
        scheme_pick in 0usize..4,
        seed in any::<u64>(),
    ) {
        let scheme = [
            Scheme::Baseline,
            Scheme::CClone,
            Scheme::NETCLONE,
            Scheme::RackSchedOnly,
        ][scheme_pick];
        let a = Sim::run(tiny(scheme, 3, 40, seed));
        let b = Sim::run(tiny(scheme, 3, 40, seed));
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.latency.quantile(0.99), b.latency.quantile(0.99));
        prop_assert_eq!(a.generated, b.generated);
    }

    /// Baseline goodput tracks offered load below saturation, regardless
    /// of fleet size.
    #[test]
    fn baseline_goodput_tracks_offered(
        servers in 2usize..6,
        load in 10u8..70,
        seed in any::<u64>(),
    ) {
        let r = Sim::run(tiny(Scheme::Baseline, servers, load, seed));
        prop_assert!(
            r.achieved_rps > r.offered_rps * 0.85,
            "achieved {} far below offered {}",
            r.achieved_rps,
            r.offered_rps
        );
    }
}
