//! Seed-pinned shape of the fat-tree oversubscription experiment
//! (`fattree`), at Smoke scale (k = 4, 8 racks, seed 7):
//!
//! * p99 inflates monotonically as the fabric thins from 1:1 to 4:1
//!   under background incast — for both schemes;
//! * NetClone's clone-win ratio degrades monotonically over the same
//!   sweep: congestion delays the idle reports the cloning decision
//!   feeds on, so clones land on busy servers and lose;
//! * drops concentrate on the victim rack's downlinks and grow with the
//!   ratio;
//! * the whole congested, multi-rack, background-traffic configuration
//!   is bit-identical under sharded execution.

use netclone_cluster::experiments::{fattree, Scale};
use netclone_cluster::harness::RunCtx;
use netclone_cluster::Sim;

fn smoke_ctx() -> RunCtx {
    RunCtx::new(Scale::Smoke).with_jobs(netclone_cluster::harness::default_jobs())
}

#[test]
fn p99_inflates_and_clone_win_degrades_with_oversubscription() {
    let r = fattree::run(&smoke_ctx());
    assert_eq!(r.k, 4);
    for scheme in ["Baseline", "NetClone"] {
        let p99s: Vec<f64> = fattree::OVERSUB
            .iter()
            .map(|&o| r.p99_at(o, scheme).expect("cell"))
            .collect();
        eprintln!("{scheme} p99 over {:?}: {p99s:?}", fattree::OVERSUB);
        for w in p99s.windows(2) {
            assert!(
                w[1] > w[0],
                "{scheme} p99 must inflate with oversubscription: {p99s:?}"
            );
        }
    }
    let wins: Vec<f64> = fattree::OVERSUB
        .iter()
        .map(|&o| r.clone_win_at(o, "NetClone").expect("cell"))
        .collect();
    eprintln!("NetClone clone-win over {:?}: {wins:?}", fattree::OVERSUB);
    assert!(wins[0] > 0.05, "cloning must matter at 1:1: {wins:?}");
    for w in wins.windows(2) {
        assert!(
            w[1] < w[0],
            "clone-win ratio must degrade with oversubscription: {wins:?}"
        );
    }
}

#[test]
fn drops_concentrate_on_victim_downlinks_and_grow() {
    let r = fattree::run(&smoke_ctx());
    let mut prev = 0u64;
    for &o in &fattree::OVERSUB {
        let cell = r
            .cells
            .iter()
            .find(|c| c.oversub == o && c.run.scheme == "NetClone")
            .expect("cell");
        let totals = cell.run.link_totals.expect("links enabled");
        assert!(
            totals.down.dropped >= prev,
            "down drops must not shrink as the fabric thins"
        );
        prev = totals.down.dropped;
        // Every dropping link is a victim-rack (leaf 0) downlink.
        for l in &cell.run.link_stats {
            if l.dropped > 0 {
                assert!(
                    l.link.starts_with("leaf0.down"),
                    "unexpected congested link {}",
                    l.link
                );
            }
        }
    }
    // The thinnest fabric must actually drop.
    assert!(prev > 0, "4:1 under incast must tail-drop");
}

#[test]
fn congested_fattree_is_bit_identical_under_sharding() {
    // One congested cell (3:1, NetClone, background incast), shortened:
    // the full warm-up is irrelevant to equivalence.
    let ctx = smoke_ctx();
    let mut s = fattree::scenario(4, 3.0, netclone_cluster::Scheme::NETCLONE, &ctx);
    s.warmup_ns = 500_000;
    s.measure_ns = 3_000_000;
    let serial = Sim::run_with_shards(s.clone(), 1);
    let sharded = Sim::run_with_shards(s, 4);
    assert_eq!(format!("{serial:?}"), format!("{sharded:?}"));
}
