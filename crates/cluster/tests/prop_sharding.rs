//! Property tests for sharded execution: for *any* topology (1–8 racks,
//! arbitrary host placement) and *any* shard count, the sharded run must
//! execute exactly the serial event sequence — same `(time, key)` trace,
//! same merged `RunResult`, byte for byte.
//!
//! The trace check is stronger than result equality alone: it pins the
//! *order* events fired in, which is what the conservative window
//! protocol must preserve. A serial trace is in execution order; the
//! sharded trace is the key-sorted merge of the per-shard orders (with
//! broadcast control replicas collapsed) — equality proves both that the
//! serial order is the `(time, domain, seq)` total order and that
//! sharding executed precisely that set.

use netclone_cluster::{
    DrainPlan, Fault, FaultTimeline, LinkFlapPlan, RetryPolicy, Scenario, Scheme, Sim,
    SlowdownPlan, SwitchFailurePlan, Topology,
};
use netclone_workloads::exp25;
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Shape {
    racks: usize,
    server_racks: Vec<usize>,
    client_racks: Vec<usize>,
}

fn shapes() -> impl Strategy<Value = Shape> {
    // Rack indices are drawn from the widest range and folded into the
    // drawn rack count, so every placement — all-in-one-rack, fully
    // spread, client-only racks — is reachable (the same strategy as the
    // fabric proptests).
    (
        1usize..9,
        proptest::collection::vec(0usize..8, 2..=12),
        proptest::collection::vec(0usize..8, 1..=4),
    )
        .prop_map(|(racks, server_racks, client_racks)| Shape {
            racks,
            server_racks: server_racks.into_iter().map(|r| r % racks).collect(),
            client_racks: client_racks.into_iter().map(|r| r % racks).collect(),
        })
}

fn scenario_for(shape: &Shape, seed: u64, loss: bool) -> Scenario {
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 0.0);
    s.servers.truncate(2);
    while s.servers.len() < shape.server_racks.len() {
        s.servers.push(s.servers[0]);
    }
    s.n_clients = shape.client_racks.len();
    s.topology = Topology::uniform(shape.racks)
        .with_server_racks(shape.server_racks.clone())
        .with_client_racks(shape.client_racks.clone());
    // Short but non-trivial: a few thousand events through warm-up and
    // measurement, cross-rack whenever the placement forces it.
    s.warmup_ns = 300_000;
    s.measure_ns = 1_500_000;
    s.offered_rps = s.capacity_rps() * 0.5;
    s.seed = seed;
    s.loss = if loss { 0.01 } else { 0.0 };
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Execution order and results are shard-count-invariant.
    #[test]
    fn execution_order_is_shard_count_invariant(
        shape in shapes(),
        shards in 2usize..=8,
        seed in 0u64..1_000,
        loss in any::<bool>(),
    ) {
        let (serial, serial_trace) =
            Sim::run_traced(scenario_for(&shape, seed, loss), 1);
        let (sharded, sharded_trace) =
            Sim::run_traced(scenario_for(&shape, seed, loss), shards);
        prop_assert_eq!(
            serial_trace,
            sharded_trace,
            "event execution order diverged (racks={}, shards={})",
            shape.racks,
            shards
        );
        prop_assert_eq!(format!("{serial:?}"), format!("{sharded:?}"));
    }

    /// Mid-run degradation (server slowdown, leaf drain) is primed as
    /// fabric-domain-0 control events on the owning shard alone — for any
    /// random plan and shard count, the trace must still be the serial
    /// one, byte for byte.
    #[test]
    fn degradation_plans_are_shard_count_invariant(
        shape in shapes(),
        shards in 2usize..=8,
        seed in 0u64..1_000,
        use_slow in any::<bool>(),
        slow in (0usize..16, 200_000u64..900_000, 100_000u64..800_000, 15u32..80),
        use_drain in any::<bool>(),
        drain in (0usize..8, 200_000u64..900_000, 100_000u64..800_000),
    ) {
        let build = || {
            let mut s = scenario_for(&shape, seed, false);
            if let (true, (sid, start, dur, f10)) = (use_slow, slow) {
                s.degradation.slowdown = Some(SlowdownPlan {
                    sid: (sid % s.servers.len()) as u16,
                    start_ns: start,
                    end_ns: start + dur,
                    factor: f64::from(f10) / 10.0,
                });
            }
            // Drains need a fabric: fold the drawn rack into the shape
            // when multi-rack, skip the injection for single-rack draws.
            if use_drain && shape.racks >= 2 {
                let (rack, start, dur) = drain;
                s.degradation.drain = Some(DrainPlan {
                    rack: rack % shape.racks,
                    drain_at_ns: start,
                    restore_at_ns: start + dur,
                });
            }
            s
        };
        let (serial, serial_trace) = Sim::run_traced(build(), 1);
        let (sharded, sharded_trace) = Sim::run_traced(build(), shards);
        prop_assert_eq!(
            serial_trace,
            sharded_trace,
            "degraded execution order diverged (racks={}, shards={})",
            shape.racks,
            shards
        );
        prop_assert_eq!(format!("{serial:?}"), format!("{sharded:?}"));
    }

    /// Composed [`FaultTimeline`]s (any mix of slowdown, drain, link
    /// flap, and switch reboot) with or without a client [`RetryPolicy`]
    /// are still shard-count invariant — every fault edge and retry tick
    /// is a fabric-domain-0 control event — and the clients' whole-run
    /// conservation identity `generated == completed + lost +
    /// outstanding` holds at run end, retries and evictions included.
    #[test]
    fn fault_timelines_conserve_and_are_shard_count_invariant(
        shape in shapes(),
        shards in 2usize..=8,
        seed in 0u64..1_000,
        loss in any::<bool>(),
        retry in proptest::option::of((60_000u64..300_000, 0u32..4, 0u64..64)),
        slow in proptest::option::of((0usize..16, 200_000u64..900_000, 100_000u64..800_000, 15u32..80)),
        drain in proptest::option::of((0usize..8, 200_000u64..900_000, 100_000u64..800_000)),
        flap in proptest::option::of((0usize..8, 200_000u64..900_000, 100_000u64..800_000, 2u64..64)),
        reboot in proptest::option::of((200_000u64..900_000, 100_000u64..600_000, 0u64..200_000)),
    ) {
        let build = || {
            let mut s = scenario_for(&shape, seed, loss);
            let mut faults = Vec::new();
            if let Some((sid, start, dur, f10)) = slow {
                faults.push(Fault::Slowdown(SlowdownPlan {
                    sid: (sid % s.servers.len()) as u16,
                    start_ns: start,
                    end_ns: start + dur,
                    factor: f64::from(f10) / 10.0,
                }));
            }
            // Drains and flaps need a fabric: fold the drawn rack into
            // the shape when multi-rack, skip the injection otherwise.
            if shape.racks >= 2 {
                if let Some((rack, start, dur)) = drain {
                    faults.push(Fault::Drain(DrainPlan {
                        rack: rack % shape.racks,
                        drain_at_ns: start,
                        restore_at_ns: start + dur,
                    }));
                }
                if let Some((rack, start, dur, factor)) = flap {
                    s.links = Some(netclone_linksim::LinkSpec::flat(10.0, 150_000));
                    faults.push(Fault::LinkFlap(LinkFlapPlan {
                        rack: rack % shape.racks,
                        start_ns: start,
                        end_ns: start + dur,
                        factor,
                    }));
                }
            }
            if let Some((fail, dur, bringup)) = reboot {
                faults.push(Fault::Reboot(SwitchFailurePlan {
                    fail_at_ns: fail,
                    reactivate_at_ns: fail + dur,
                    bringup_ns: bringup,
                }));
            }
            s.faults = FaultTimeline { faults };
            if let Some((timeout, tries, budget)) = retry {
                let mut p = RetryPolicy::new(timeout);
                p.max_retries = tries;
                // Budget 0 means "effectively unlimited" here, so both
                // the eviction-by-budget and the plain retry paths are
                // drawn.
                p.budget = if budget == 0 { u64::MAX } else { budget };
                s.retry = Some(p);
            }
            s
        };
        let (serial, serial_trace) = Sim::run_traced(build(), 1);
        let (sharded, sharded_trace) = Sim::run_traced(build(), shards);
        prop_assert_eq!(
            serial_trace,
            sharded_trace,
            "fault-timeline execution order diverged (racks={}, shards={})",
            shape.racks,
            shards
        );
        prop_assert_eq!(format!("{serial:?}"), format!("{sharded:?}"));
        for r in [&serial, &sharded] {
            prop_assert_eq!(
                r.lifetime.generated,
                r.lifetime.completed + r.lifetime.lost + r.client_outstanding,
                "conservation violated: generated {} != completed {} + lost {} + outstanding {}",
                r.lifetime.generated,
                r.lifetime.completed,
                r.lifetime.lost,
                r.client_outstanding
            );
        }
    }
}
