//! Property tests for the two-tier fabric (§3.7): for *any* topology —
//! 1–8 racks, 1–16 servers per rack, arbitrary client placement — every
//! request reaches a registered server, every response returns to its
//! client, nothing loops, and NetClone logic fires only at the
//! client-side ToR (the SWITCH_ID gate).

use netclone_cluster::topology::{Fabric, Hop};
use netclone_cluster::{build_fabric, Scenario, Scheme, Sim, Topology};
use netclone_proto::{Ipv4, NetCloneHdr, PacketMeta, ServerState};
use netclone_workloads::exp25;
use proptest::prelude::*;

/// A random two-tier shape: explicit placements so every corner —
/// all-in-one-rack, fully spread, client-only racks — is reachable.
#[derive(Clone, Debug)]
struct Shape {
    racks: usize,
    server_racks: Vec<usize>,
    client_racks: Vec<usize>,
}

fn shapes() -> impl Strategy<Value = Shape> {
    // Rack indices are drawn from the widest range and folded into the
    // drawn rack count, so every placement — all-in-one-rack, fully
    // spread, client-only racks — is reachable. ≥ 2 servers (the
    // NetClone minimum), up to 16 per rack.
    (
        1usize..9,
        proptest::collection::vec(0usize..8, 2..=24),
        proptest::collection::vec(0usize..8, 1..=4),
    )
        .prop_map(|(racks, server_racks, client_racks)| Shape {
            racks,
            server_racks: server_racks.into_iter().map(|r| r % racks).collect(),
            client_racks: client_racks.into_iter().map(|r| r % racks).collect(),
        })
}

fn scenario_for(shape: &Shape) -> Scenario {
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1e5);
    s.servers.truncate(2);
    while s.servers.len() < shape.server_racks.len() {
        s.servers.push(s.servers[0]);
    }
    s.n_clients = shape.client_racks.len();
    s.topology = Topology::uniform(shape.racks)
        .with_server_racks(shape.server_racks.clone())
        .with_client_racks(shape.client_racks.clone());
    s
}

/// Walks one packet through the fabric; panics on a forwarding loop.
/// Returns the `(switch, port)` host deliveries.
fn walk(fabric: &mut Fabric, entry: usize, pkt: PacketMeta) -> Vec<(usize, PacketMeta, u16)> {
    let mut delivered = Vec::new();
    let mut work = vec![(entry, pkt)];
    let mut hops = 0;
    while let Some((sw, pkt)) = work.pop() {
        hops += 1;
        assert!(hops <= 32, "forwarding loop");
        for e in fabric.engines[sw].process_collected(pkt, 0, 0) {
            match fabric.hop(sw, e.port) {
                Hop::Switch(next) => work.push((next, e.pkt)),
                Hop::Local(port) => delivered.push((sw, e.pkt, port)),
            }
        }
    }
    delivered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Request/response reachability and the §3.7 gate, packet by packet.
    #[test]
    fn every_request_reaches_a_server_and_returns(shape in shapes(), seq in 0u32..1000) {
        let scenario = scenario_for(&shape);
        let mut fabric = build_fabric(&scenario);
        let n_servers = shape.server_racks.len();

        for (cid, &rack) in shape.client_racks.iter().enumerate() {
            let tor = fabric.client_leaf(cid);
            prop_assert_eq!(tor, rack);
            let grp = (seq as u16 + cid as u16) % fabric.engines[tor].num_groups();
            let req = PacketMeta::netclone_request(
                Ipv4::client(cid as u16),
                NetCloneHdr::request(grp, 0, cid as u16, seq),
                84,
            );
            let delivered = walk(&mut fabric, tor, req);

            // Reaches one server, or two distinct ones when cloned.
            prop_assert!(!delivered.is_empty(), "request vanished");
            prop_assert!(delivered.len() <= 2);
            let mut ports: Vec<u16> = delivered.iter().map(|d| d.2).collect();
            ports.dedup();
            prop_assert_eq!(ports.len(), delivered.len(), "same server twice");
            for &(sw, pkt, port) in &delivered {
                let sid = (port - 10) as usize;
                prop_assert!(sid < n_servers, "unknown server port {port}");
                prop_assert_eq!(sw, fabric.server_leaf(sid), "wrong rack");
                // Stamped by the client-side ToR, and by nothing else.
                prop_assert_eq!(pkt.nc.switch_id as usize, tor + 1);

                // The response finds its way back to exactly this client.
                let nc = NetCloneHdr::response_to(&pkt.nc, sid as u16, ServerState(0));
                let resp = PacketMeta::netclone_response(
                    Ipv4::server(sid as u16),
                    Ipv4::client(cid as u16),
                    nc,
                    84,
                );
                let server_tor = fabric.server_leaf(sid);
                let back = walk(&mut fabric, server_tor, resp);
                // The first response survives the filter; a cloned
                // sibling may be dropped, but nothing is misdelivered.
                for &(bsw, _, bport) in &back {
                    prop_assert_eq!(bsw, tor);
                    prop_assert_eq!(bport, 100 + cid as u16);
                }
            }
        }

        // The gate: NetClone request processing happened only at
        // client-bearing leaves, never at server-only leaves or the spine.
        for (sw, c) in fabric.counters().iter().enumerate() {
            let is_client_tor = shape.client_racks.contains(&sw);
            if !is_client_tor {
                prop_assert_eq!(c.requests, 0, "switch {sw} ran NetClone logic");
                prop_assert_eq!(c.cloned, 0);
                prop_assert_eq!(c.responses, 0);
            }
            prop_assert_eq!(c.dropped_unroutable, 0, "switch {sw} dropped packets");
        }
    }

    /// Whole-simulation conservation on random multi-rack shapes: the
    /// fleet completes work, cloning happens only at client ToRs, and the
    /// fabric-wide counters stay consistent.
    #[test]
    fn full_runs_conserve_on_any_topology(shape in shapes(), seed in any::<u64>()) {
        let mut s = scenario_for(&shape);
        s.warmup_ns = 1_000_000;
        s.measure_ns = 4_000_000;
        s.offered_rps = (s.capacity_rps() * 0.4).max(10_000.0);
        s.seed = seed;
        let r = Sim::run(s);
        prop_assert!(r.completed > 0);
        prop_assert_eq!(r.per_switch.len(), if shape.racks == 1 { 1 } else { shape.racks + 1 });
        prop_assert_eq!(
            r.switch.requests,
            r.switch.cloned + r.switch.clone_skipped_busy + r.switch.clone_skipped_uncloneable
        );
        prop_assert_eq!(r.switch.cloned, r.switch.recirculated);
        for (sw, c) in r.per_switch.iter().enumerate() {
            if !shape.client_racks.contains(&sw) {
                prop_assert_eq!(c.cloned, 0, "cloning outside a client ToR (switch {sw})");
            }
            prop_assert_eq!(c.dropped_unroutable, 0);
        }
    }
}
