//! Shape tests: the qualitative claims of the paper's evaluation must hold
//! in the simulated testbed at smoke scale. These are the guardrails that
//! keep refactors from silently breaking the reproduction.

use netclone_cluster::{Scenario, Scheme, Sim};
use netclone_workloads::exp25;

fn run_at(scheme: Scheme, frac_of_capacity: f64, seed: u64) -> netclone_cluster::RunResult {
    let mut s = Scenario::synthetic_default(scheme, exp25(), 1.0);
    s.warmup_ns = 10_000_000;
    s.measure_ns = 60_000_000;
    s.offered_rps = s.capacity_rps() * frac_of_capacity;
    s.seed = seed;
    Sim::run(s)
}

#[test]
fn baseline_achieves_offered_load_below_saturation() {
    let r = run_at(Scheme::Baseline, 0.5, 1);
    println!(
        "baseline@50%: offered {:.2} achieved {:.2} MRPS, p50 {:.0}us p99 {:.0}us",
        r.offered_rps / 1e6,
        r.achieved_mrps(),
        r.percentiles_us().0,
        r.p99_us()
    );
    assert!(r.achieved_rps > r.offered_rps * 0.93, "goodput collapse");
    // Latency floor: ~8 μs network + 25 μs service; p50 in the tens of μs.
    let (p50, p99, _) = r.percentiles_us();
    assert!(p50 > 25.0 && p50 < 120.0, "p50 {p50}");
    assert!(p99 > p50, "p99 {p99} must exceed p50 {p50}");
    assert!(p99 < 2_000.0, "p99 {p99} absurdly high at 50% load");
}

#[test]
fn netclone_beats_baseline_tail_at_mid_load() {
    let base = run_at(Scheme::Baseline, 0.4, 2);
    let nc = run_at(Scheme::NETCLONE, 0.4, 2);
    println!(
        "mid-load p99: baseline {:.0}us netclone {:.0}us (clone rate {:.2})",
        base.p99_us(),
        nc.p99_us(),
        nc.switch.clone_rate()
    );
    assert!(
        nc.p99_us() < base.p99_us() * 0.9,
        "NetClone must cut the tail: {} vs {}",
        nc.p99_us(),
        base.p99_us()
    );
    assert!(
        nc.switch.clone_rate() > 0.2,
        "cloning should be frequent at 40% load"
    );
    assert!(
        nc.achieved_rps > nc.offered_rps * 0.93,
        "NetClone must not sacrifice goodput"
    );
}

#[test]
fn cclone_collapses_at_high_load_netclone_does_not() {
    let cc = run_at(Scheme::CClone, 0.8, 3);
    let nc = run_at(Scheme::NETCLONE, 0.8, 3);
    println!(
        "80% load: cclone p99 {:.0}us achieved {:.2}, netclone p99 {:.0}us achieved {:.2}",
        cc.p99_us(),
        cc.achieved_mrps(),
        nc.p99_us(),
        nc.achieved_mrps()
    );
    // C-Clone doubles server load: at 80% of capacity it is far past its
    // tipping point.
    assert!(
        cc.p99_us() > nc.p99_us() * 3.0,
        "C-Clone must be deep in overload: {} vs {}",
        cc.p99_us(),
        nc.p99_us()
    );
}

#[test]
fn cclone_wins_slightly_at_low_load() {
    // §5.2: "at low loads, NetClone experiences worse latency than
    // C-Clone" (C-Clone always clones; NetClone skips when a tracked queue
    // is non-empty).
    let cc = run_at(Scheme::CClone, 0.1, 4);
    let nc = run_at(Scheme::NETCLONE, 0.1, 4);
    println!(
        "10% load p99: cclone {:.0}us netclone {:.0}us",
        cc.p99_us(),
        nc.p99_us()
    );
    assert!(
        cc.p99_us() <= nc.p99_us() * 1.10,
        "C-Clone should be at least on par at low load: {} vs {}",
        cc.p99_us(),
        nc.p99_us()
    );
}

#[test]
fn laedge_throughput_is_capped_by_the_coordinator() {
    let mut s = Scenario::synthetic_default(Scheme::Laedge, exp25(), 1.0);
    s.warmup_ns = 10_000_000;
    s.measure_ns = 60_000_000;
    s.offered_rps = 1_000_000.0; // well beyond the coordinator's CPU
    let r = Sim::run(s);
    println!(
        "laedge@1MRPS offered: achieved {:.3} MRPS, p99 {:.0}us",
        r.achieved_mrps(),
        r.p99_us()
    );
    assert!(
        r.achieved_mrps() < 0.7,
        "LÆDGE must be CPU-capped: {}",
        r.achieved_mrps()
    );
    // And NetClone at the same offered load sails through.
    let mut s2 = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1.0);
    s2.warmup_ns = 10_000_000;
    s2.measure_ns = 60_000_000;
    s2.offered_rps = 1_000_000.0;
    let nc = Sim::run(s2);
    assert!(nc.achieved_rps > 0.9e6);
}

#[test]
fn unfiltered_redundancy_hurts_at_high_load() {
    let nof = run_at(Scheme::NETCLONE_NOFILTER, 0.92, 5);
    let nc = run_at(Scheme::NETCLONE, 0.92, 5);
    let base = run_at(Scheme::Baseline, 0.92, 5);
    println!(
        "92% load p99: nofilter {:.0}us netclone {:.0}us baseline {:.0}us (redundant rx {})",
        nof.p99_us(),
        nc.p99_us(),
        base.p99_us(),
        nof.client_redundant
    );
    assert!(
        nof.client_redundant > 0,
        "unfiltered run must leak responses"
    );
    assert!(
        nof.p99_us() > nc.p99_us(),
        "filtering must help at high load: {} vs {}",
        nof.p99_us(),
        nc.p99_us()
    );
}

#[test]
fn empty_queue_fraction_declines_with_load() {
    let lo = run_at(Scheme::NETCLONE, 0.15, 6);
    let hi = run_at(Scheme::NETCLONE, 0.9, 6);
    println!(
        "empty-queue fraction: 15% load {:.2}, 90% load {:.2}",
        lo.empty_queue_fraction(),
        hi.empty_queue_fraction()
    );
    assert!(lo.empty_queue_fraction() > hi.empty_queue_fraction());
    assert!(
        hi.empty_queue_fraction() > 0.02,
        "queues still drain sometimes even at 90% (Fig. 13a)"
    );
    assert!(lo.empty_queue_fraction() > 0.7);
}

#[test]
fn switch_failure_creates_a_throughput_hole_and_recovers() {
    use netclone_cluster::experiments::{fig16, Scale};
    use netclone_cluster::harness::RunCtx;
    let f = fig16::run(&RunCtx::new(Scale::Smoke));
    let before = f.mean_mrps_between(1.0, 5.0);
    let during = f.mean_mrps_between(6.0, 9.5);
    let after = f.mean_mrps_between(11.0, 24.0);
    println!("fig16 smoke: before {before:.3} during {during:.3} after {after:.3} MRPS");
    assert!(before > 0.5, "healthy throughput before the failure");
    assert!(during < before * 0.1, "failure must zero throughput");
    assert!(after > before * 0.8, "full recovery (soft state only)");
}

#[test]
fn runs_are_deterministic_for_a_seed() {
    let a = run_at(Scheme::NETCLONE, 0.5, 42);
    let b = run_at(Scheme::NETCLONE, 0.5, 42);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.latency.quantile(0.99), b.latency.quantile(0.99));
    assert_eq!(a.switch.cloned, b.switch.cloned);
    let c = run_at(Scheme::NETCLONE, 0.5, 43);
    assert_ne!(
        (a.completed, a.switch.cloned),
        (c.completed, c.switch.cloned),
        "different seeds should differ"
    );
}
