//! Property tests for the k-ary fat-tree fabric: for *any* radix
//! (k ∈ {4, 6, 8}), oversubscription ratio, host placement, and ECMP
//! hash seed —
//!
//! * every request reaches a registered server and its response returns
//!   to the issuing client, through the full leaf→agg→core walk;
//! * ECMP walks are loop-free (≤ 4 switch hops) and per-flow stable: a
//!   fixed (src, dst, seed) flow takes the same path every time;
//! * a congested full run conserves packets at every link tier:
//!   everything offered to a tier is forwarded or dropped there, nothing
//!   is minted or lost.

use netclone_cluster::topology::{flow_hash, Fabric, Hop};
use netclone_cluster::{build_fabric, Scenario, Scheme, Sim, Topology};
use netclone_linksim::LinkSpec;
use netclone_proto::{Ipv4, NetCloneHdr, PacketMeta, ServerState};
use netclone_workloads::exp25;
use proptest::prelude::*;

/// A random fat-tree shape: radix plus explicit placements, so every
/// corner — all hosts in one pod, fully spread, client-only racks — is
/// reachable.
#[derive(Clone, Debug)]
struct Shape {
    k: usize,
    server_racks: Vec<usize>,
    client_racks: Vec<usize>,
    ecmp_seed: u64,
}

fn shapes() -> impl Strategy<Value = Shape> {
    (
        prop_oneof![Just(4usize), Just(6), Just(8)],
        proptest::collection::vec(0usize..32, 2..=24),
        proptest::collection::vec(0usize..32, 1..=4),
        any::<u64>(),
    )
        .prop_map(|(k, server_racks, client_racks, ecmp_seed)| {
            let racks = k * k / 2;
            Shape {
                k,
                server_racks: server_racks.into_iter().map(|r| r % racks).collect(),
                client_racks: client_racks.into_iter().map(|r| r % racks).collect(),
                ecmp_seed,
            }
        })
}

fn scenario_for(shape: &Shape) -> Scenario {
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1e5);
    s.servers.truncate(2);
    while s.servers.len() < shape.server_racks.len() {
        s.servers.push(s.servers[0]);
    }
    s.n_clients = shape.client_racks.len();
    s.topology = Topology::fat_tree(shape.k)
        .with_server_racks(shape.server_racks.clone())
        .with_client_racks(shape.client_racks.clone())
        .with_ecmp_seed(shape.ecmp_seed);
    s
}

/// Walks one packet through the fabric under ECMP; panics on a
/// forwarding loop. Returns the host deliveries and the switch path.
fn walk(
    fabric: &mut Fabric,
    entry: usize,
    pkt: PacketMeta,
) -> (Vec<(usize, PacketMeta, u16)>, Vec<usize>) {
    let seed = fabric.ecmp_seed();
    let mut delivered = Vec::new();
    let mut path = Vec::new();
    let mut work = vec![(entry, pkt)];
    let mut hops = 0;
    while let Some((sw, pkt)) = work.pop() {
        hops += 1;
        assert!(hops <= 32, "forwarding loop");
        path.push(sw);
        let h = flow_hash(pkt.src_ip, pkt.dst_ip, seed);
        for e in fabric.engines[sw].process_collected(pkt, 0, 0) {
            match fabric.route(sw, e.port, h) {
                Hop::Switch(next) => work.push((next, e.pkt)),
                Hop::Local(port) => delivered.push((sw, e.pkt, port)),
            }
        }
    }
    (delivered, path)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Request/response reachability through the three-tier walk, and
    /// the §3.7 gate: NetClone logic only at client-bearing leaves.
    #[test]
    fn every_request_reaches_a_server_and_returns(shape in shapes(), seq in 0u32..1000) {
        let scenario = scenario_for(&shape);
        let mut fabric = build_fabric(&scenario);
        let n_servers = shape.server_racks.len();

        for (cid, &rack) in shape.client_racks.iter().enumerate() {
            let tor = fabric.client_leaf(cid);
            prop_assert_eq!(tor, rack);
            let grp = (seq as u16 + cid as u16) % fabric.engines[tor].num_groups();
            let req = PacketMeta::netclone_request(
                Ipv4::client(cid as u16),
                NetCloneHdr::request(grp, 0, cid as u16, seq),
                84,
            );
            let (delivered, _) = walk(&mut fabric, tor, req);

            prop_assert!(!delivered.is_empty(), "request vanished");
            prop_assert!(delivered.len() <= 2);
            for &(sw, pkt, port) in &delivered {
                let sid = (port - 10) as usize;
                prop_assert!(sid < n_servers, "unknown server port {port}");
                prop_assert_eq!(sw, fabric.server_leaf(sid), "wrong rack");
                prop_assert_eq!(pkt.nc.switch_id as usize, tor + 1);

                let nc = NetCloneHdr::response_to(&pkt.nc, sid as u16, ServerState(0));
                let resp = PacketMeta::netclone_response(
                    Ipv4::server(sid as u16),
                    Ipv4::client(cid as u16),
                    nc,
                    84,
                );
                let server_tor = fabric.server_leaf(sid);
                let (back, _) = walk(&mut fabric, server_tor, resp);
                for &(bsw, _, bport) in &back {
                    prop_assert_eq!(bsw, tor);
                    prop_assert_eq!(bport, 100 + cid as u16);
                }
            }
        }

        for (sw, c) in fabric.counters().iter().enumerate() {
            let is_client_tor = shape.client_racks.contains(&sw);
            if !is_client_tor {
                prop_assert_eq!(c.requests, 0, "switch {sw} ran NetClone logic");
                prop_assert_eq!(c.cloned, 0);
            }
            prop_assert_eq!(c.dropped_unroutable, 0, "switch {sw} dropped packets");
        }
    }

    /// ECMP is loop-free and per-flow stable: under a fixed hash seed the
    /// same flow walks the identical switch path in a fresh fabric.
    #[test]
    fn ecmp_paths_are_loop_free_and_flow_stable(shape in shapes(), seq in 0u32..1000) {
        let scenario = scenario_for(&shape);
        let mut paths = Vec::new();
        for _ in 0..2 {
            let mut fabric = build_fabric(&scenario);
            let mut run_paths = Vec::new();
            for (cid, &rack) in shape.client_racks.iter().enumerate() {
                let grp = (seq as u16 + cid as u16) % fabric.engines[rack].num_groups();
                let req = PacketMeta::netclone_request(
                    Ipv4::client(cid as u16),
                    NetCloneHdr::request(grp, 0, cid as u16, seq),
                    84,
                );
                let (_, path) = walk(&mut fabric, rack, req);
                // leaf → agg → core → agg → leaf is the longest legal
                // walk; a clone adds one more partial walk, never more.
                prop_assert!(path.len() <= 2 * 5, "path too long: {path:?}");
                run_paths.push(path);
            }
            paths.push(run_paths);
        }
        prop_assert_eq!(&paths[0], &paths[1], "per-flow path not stable");
    }

    /// Congested full runs conserve packets at every link tier, for any
    /// radix, ratio, and placement.
    #[test]
    fn congested_runs_conserve_packets_per_tier(
        shape in shapes(),
        oversub in 1usize..=4,
        seed in any::<u64>(),
    ) {
        let mut s = scenario_for(&shape);
        s.warmup_ns = 300_000;
        s.measure_ns = 1_500_000;
        s.offered_rps = (s.capacity_rps() * 0.5).max(10_000.0);
        s.seed = seed;
        // Small queues so drops actually happen at the higher ratios.
        s.links = Some(LinkSpec::oversubscribed(10.0, oversub as f64, 20_000));
        s.background = Some(netclone_cluster::scenario::Background {
            rps: 50_000.0,
            wire_bytes: 9_000,
            victim_rack: shape.client_racks[0],
        });
        let r = Sim::run(s);
        prop_assert!(r.completed > 0);
        let totals = r.link_totals.expect("links enabled");
        for (tier, t) in [("edge", totals.edge), ("up", totals.up), ("down", totals.down)] {
            prop_assert_eq!(
                t.offered, t.forwarded + t.dropped,
                "{} tier leaks packets", tier
            );
        }
        prop_assert_eq!(r.switch.dropped_unroutable, 0);
    }
}
