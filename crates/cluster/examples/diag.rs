//! Developer diagnostic: clone/filter/redundancy rates across loads.
use netclone_cluster::{Scenario, Scheme, Sim};
use netclone_workloads::exp25;

fn main() {
    for scheme in [Scheme::NETCLONE, Scheme::NETCLONE_NOFILTER] {
        println!("== {}", scheme.label());
        for pct in [10, 30, 50, 70, 80, 90, 95] {
            let mut s = Scenario::synthetic_default(scheme, exp25(), 1.0);
            s.warmup_ns = 10_000_000;
            s.measure_ns = 80_000_000;
            s.offered_rps = s.capacity_rps() * pct as f64 / 100.0;
            let r = Sim::run(s);
            println!(
                "load {pct:>3}%: p99 {:>7.1}us clone_rate {:.3} empty_frac {:.3} \
                 filtered/resp {:.3} redundant_rx/completed {:.4} clone_drops/req {:.3} achieved {:.2}",
                r.p99_us(),
                r.switch.clone_rate(),
                r.empty_queue_fraction(),
                r.switch.filter_rate(),
                r.client_redundant as f64 / r.completed.max(1) as f64,
                r.server_clone_drops as f64 / r.switch.requests.max(1) as f64,
                r.achieved_mrps(),
            );
        }
    }
}
