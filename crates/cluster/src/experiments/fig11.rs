//! Figure 11: "Experimental results for Redis."
//!
//! Baseline vs C-Clone vs NetClone over the Redis-style store: 1 M objects
//! (16 B keys / 64 B values), Zipf-0.99 reads, 8 worker threads, GET/SCAN
//! mixes of 99 %/1 % and 90 %/10 % (§5.5).
//!
//! Expected shape: the tail-latency gap is biggest at low loads (up to
//! 22.59× for 99/1) and shrinks with load; C-Clone matches NetClone's
//! latency but at half the throughput.

use netclone_stats::Report;

use crate::experiments::panel::Figure;
use crate::harness::{run_sweeps, Experiment, RunCtx, SweepSpec};
use crate::scenario::{Scenario, Workload};
use crate::scheme::Scheme;
use crate::sweep::capacity_fractions;

pub(crate) const TITLE_REDIS: &str = "Redis workload: p99 vs throughput (GET/SCAN mixes)";
pub(crate) const TITLE_MEMCACHED: &str = "Memcached workload: p99 vs throughput (GET/SCAN mixes)";

/// Runs the figure on the given context; `memcached` switches the cost
/// model (shared implementation with Fig. 12).
pub fn run_kv(ctx: &RunCtx, memcached: bool) -> Figure {
    let schemes = [Scheme::Baseline, Scheme::CClone, Scheme::NETCLONE];
    let id = if memcached { "fig12" } else { "fig11" };
    let mut specs = Vec::new();
    for get_frac in [0.99, 0.90] {
        let workload = if memcached {
            Workload::memcached(get_frac)
        } else {
            Workload::redis(get_frac)
        };
        let mut template = Scenario::kv_default(Scheme::Baseline, workload, 1.0);
        template.warmup_ns = ctx.scale.warmup_ns();
        template.measure_ns = ctx.scale.measure_ns().saturating_mul(2); // rarer SCANs need samples
        let rates = capacity_fractions(&template, 0.08, 0.92, ctx.scale.sweep_points());
        let panel = format!(
            "{}%-GET,{}%-SCAN",
            (get_frac * 100.0).round() as u32,
            ((1.0 - get_frac) * 100.0).round() as u32
        );
        for scheme in schemes {
            let mut t = template.clone();
            t.scheme = scheme;
            specs.push(SweepSpec {
                panel: panel.clone(),
                scheme: scheme.label(),
                template: t,
                rates: rates.clone(),
            });
        }
    }
    Figure {
        id,
        title: if memcached {
            TITLE_MEMCACHED
        } else {
            TITLE_REDIS
        },
        panels: run_sweeps(ctx, id, specs),
    }
}

/// Runs Figure 11 (Redis) on the given context.
pub fn run(ctx: &RunCtx) -> Figure {
    run_kv(ctx, false)
}

/// Figure 11 in the experiment registry.
pub struct Fig11;

impl Experiment for Fig11 {
    fn id(&self) -> &'static str {
        "fig11"
    }
    fn title(&self) -> &'static str {
        TITLE_REDIS
    }
    fn tags(&self) -> &'static [&'static str] {
        &["figure", "sweep", "kv", "redis"]
    }
    fn run(&self, ctx: &RunCtx) -> Report {
        run(ctx).into_report()
    }
}
