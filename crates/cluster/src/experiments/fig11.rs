//! Figure 11: "Experimental results for Redis."
//!
//! Baseline vs C-Clone vs NetClone over the Redis-style store: 1 M objects
//! (16 B keys / 64 B values), Zipf-0.99 reads, 8 worker threads, GET/SCAN
//! mixes of 99 %/1 % and 90 %/10 % (§5.5).
//!
//! Expected shape: the tail-latency gap is biggest at low loads (up to
//! 22.59× for 99/1) and shrinks with load; C-Clone matches NetClone's
//! latency but at half the throughput.

use crate::experiments::panel::{Figure, Panel, Series};
use crate::experiments::scale::Scale;
use crate::scenario::{Scenario, Workload};
use crate::scheme::Scheme;
use crate::sweep::{capacity_fractions, sweep};

/// Runs the figure at the given scale; `memcached` switches the cost
/// model (shared implementation with Fig. 12).
pub fn run_kv(scale: Scale, memcached: bool) -> Figure {
    let schemes = [Scheme::Baseline, Scheme::CClone, Scheme::NETCLONE];
    let mut panels = Vec::new();
    for get_frac in [0.99, 0.90] {
        let workload = if memcached {
            Workload::memcached(get_frac)
        } else {
            Workload::redis(get_frac)
        };
        let mut template = Scenario::kv_default(Scheme::Baseline, workload, 1.0);
        template.warmup_ns = scale.warmup_ns();
        template.measure_ns = scale.measure_ns().saturating_mul(2); // rarer SCANs need samples
        let rates = capacity_fractions(&template, 0.08, 0.92, scale.sweep_points());
        let mut series = Vec::new();
        for scheme in schemes {
            let mut t = template.clone();
            t.scheme = scheme;
            series.push(Series {
                scheme: scheme.label(),
                points: sweep(&t, &rates),
            });
        }
        panels.push(Panel {
            name: format!(
                "{}%-GET,{}%-SCAN",
                (get_frac * 100.0).round() as u32,
                ((1.0 - get_frac) * 100.0).round() as u32
            ),
            series,
        });
    }
    Figure {
        id: if memcached { "fig12" } else { "fig11" },
        title: if memcached {
            "Memcached workload: p99 vs throughput (GET/SCAN mixes)"
        } else {
            "Redis workload: p99 vs throughput (GET/SCAN mixes)"
        },
        panels,
    }
}

/// Runs Figure 11 (Redis).
pub fn run(scale: Scale) -> Figure {
    run_kv(scale, false)
}
