//! Experiment scaling: the same experiment definitions run at three
//! fidelities so tests stay fast while `cargo bench` / the `repro` CLI can
//! regenerate full-fidelity series.

/// How much simulated time and how many sweep points to spend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long wall time: tiny windows, few points. For unit tests.
    Smoke,
    /// The default for `cargo bench`: enough samples for stable p99s.
    Standard,
    /// Full-fidelity: the EXPERIMENTS.md numbers.
    Full,
}

/// Error for an unrecognised scale name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseScaleError(pub String);

impl std::fmt::Display for ParseScaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scale {:?} (expected smoke, standard, or full)",
            self.0
        )
    }
}

impl std::error::Error for ParseScaleError {}

impl std::str::FromStr for Scale {
    type Err = ParseScaleError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "smoke" => Ok(Scale::Smoke),
            "standard" => Ok(Scale::Standard),
            "full" => Ok(Scale::Full),
            other => Err(ParseScaleError(other.to_string())),
        }
    }
}

impl Scale {
    /// Reads the scale from `NETCLONE_BENCH_SCALE` (`smoke` / `standard`
    /// / `full`). Unset means `Standard`; an unrecognised value is an
    /// error, never a silent default.
    pub fn try_from_env() -> Result<Self, ParseScaleError> {
        match std::env::var("NETCLONE_BENCH_SCALE") {
            Ok(v) => v.parse(),
            Err(_) => Ok(Scale::Standard),
        }
    }

    /// [`Scale::try_from_env`], panicking with the parse error on an
    /// unrecognised value (for bench binaries without CLI error paths).
    pub fn from_env() -> Self {
        Scale::try_from_env().unwrap_or_else(|e| panic!("NETCLONE_BENCH_SCALE: {e}"))
    }

    /// Warm-up duration, ns.
    pub fn warmup_ns(self) -> u64 {
        match self {
            Scale::Smoke => 4_000_000,
            Scale::Standard => 20_000_000,
            Scale::Full => 50_000_000,
        }
    }

    /// Measurement window, ns.
    pub fn measure_ns(self) -> u64 {
        match self {
            Scale::Smoke => 20_000_000,
            Scale::Standard => 120_000_000,
            Scale::Full => 400_000_000,
        }
    }

    /// Number of points per load sweep.
    pub fn sweep_points(self) -> usize {
        match self {
            Scale::Smoke => 3,
            Scale::Standard => 8,
            Scale::Full => 12,
        }
    }

    /// Repetitions for mean±σ experiments (Fig. 13b: the paper uses 10).
    pub fn repeats(self) -> usize {
        match self {
            Scale::Smoke => 3,
            Scale::Standard => 6,
            Scale::Full => 10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Smoke.measure_ns() < Scale::Standard.measure_ns());
        assert!(Scale::Standard.measure_ns() < Scale::Full.measure_ns());
        assert!(Scale::Smoke.sweep_points() < Scale::Full.sweep_points());
        assert_eq!(Scale::Full.repeats(), 10);
    }

    #[test]
    fn env_parsing_defaults_to_standard() {
        // Not setting the variable in-process: just exercise the default
        // path (the env may be set by the harness; accept any valid value).
        let s = Scale::try_from_env().expect("harness env must hold a valid scale");
        assert!(matches!(s, Scale::Smoke | Scale::Standard | Scale::Full));
    }

    #[test]
    fn parsing_accepts_names_and_rejects_junk() {
        assert_eq!("smoke".parse(), Ok(Scale::Smoke));
        assert_eq!("standard".parse(), Ok(Scale::Standard));
        assert_eq!("full".parse(), Ok(Scale::Full));
        let err = "Full".parse::<Scale>().unwrap_err();
        assert_eq!(err, ParseScaleError("Full".into()));
        assert!(err.to_string().contains("smoke, standard, or full"));
        assert!("".parse::<Scale>().is_err());
    }
}
