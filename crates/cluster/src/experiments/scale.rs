//! Experiment scaling: the same experiment definitions run at three
//! fidelities so tests stay fast while `cargo bench` / the `repro` CLI can
//! regenerate full-fidelity series.

/// How much simulated time and how many sweep points to spend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long wall time: tiny windows, few points. For unit tests.
    Smoke,
    /// The default for `cargo bench`: enough samples for stable p99s.
    Standard,
    /// Full-fidelity: the EXPERIMENTS.md numbers.
    Full,
}

impl Scale {
    /// Reads the scale from `NETCLONE_BENCH_SCALE` (`smoke` / `standard` /
    /// `full`), defaulting to `Standard`.
    pub fn from_env() -> Self {
        match std::env::var("NETCLONE_BENCH_SCALE").as_deref() {
            Ok("smoke") => Scale::Smoke,
            Ok("full") => Scale::Full,
            _ => Scale::Standard,
        }
    }

    /// Warm-up duration, ns.
    pub fn warmup_ns(self) -> u64 {
        match self {
            Scale::Smoke => 4_000_000,
            Scale::Standard => 20_000_000,
            Scale::Full => 50_000_000,
        }
    }

    /// Measurement window, ns.
    pub fn measure_ns(self) -> u64 {
        match self {
            Scale::Smoke => 20_000_000,
            Scale::Standard => 120_000_000,
            Scale::Full => 400_000_000,
        }
    }

    /// Number of points per load sweep.
    pub fn sweep_points(self) -> usize {
        match self {
            Scale::Smoke => 3,
            Scale::Standard => 8,
            Scale::Full => 12,
        }
    }

    /// Repetitions for mean±σ experiments (Fig. 13b: the paper uses 10).
    pub fn repeats(self) -> usize {
        match self {
            Scale::Smoke => 3,
            Scale::Standard => 6,
            Scale::Full => 10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Smoke.measure_ns() < Scale::Standard.measure_ns());
        assert!(Scale::Standard.measure_ns() < Scale::Full.measure_ns());
        assert!(Scale::Smoke.sweep_points() < Scale::Full.sweep_points());
        assert_eq!(Scale::Full.repeats(), 10);
    }

    #[test]
    fn env_parsing_defaults_to_standard() {
        // Not setting the variable in-process: just exercise the default
        // path (the env may be set by the harness; accept any valid value).
        let s = Scale::from_env();
        assert!(matches!(s, Scale::Smoke | Scale::Standard | Scale::Full));
    }
}
