//! Figure 15: "Impact of redundant response filtering."
//!
//! Baseline vs NetClone-without-filtering vs NetClone on Exp(25).
//! Expected shape (§5.6.3): at low load the unfiltered redundancy barely
//! matters; as load grows the extra responses overwhelm the client
//! receivers and the unfiltered variant becomes *worse than the baseline*.

use netclone_workloads::exp25;

use crate::experiments::panel::{Figure, Panel, Series};
use crate::experiments::scale::Scale;
use crate::scenario::Scenario;
use crate::scheme::Scheme;
use crate::sweep::{capacity_fractions, sweep};

/// Runs the figure at the given scale.
pub fn run(scale: Scale) -> Figure {
    let schemes = [
        Scheme::Baseline,
        Scheme::NETCLONE_NOFILTER,
        Scheme::NETCLONE,
    ];
    let mut template = Scenario::synthetic_default(Scheme::Baseline, exp25(), 1.0);
    template.warmup_ns = scale.warmup_ns();
    template.measure_ns = scale.measure_ns();
    let rates = capacity_fractions(&template, 0.1, 0.98, scale.sweep_points());
    let mut series = Vec::new();
    for scheme in schemes {
        let mut t = template.clone();
        t.scheme = scheme;
        series.push(Series {
            scheme: scheme.label(),
            points: sweep(&t, &rates),
        });
    }
    Figure {
        id: "fig15",
        title: "Impact of redundant response filtering (Exp(25))",
        panels: vec![Panel {
            name: "Exp(25)".into(),
            series,
        }],
    }
}
