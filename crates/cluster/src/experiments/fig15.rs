//! Figure 15: "Impact of redundant response filtering."
//!
//! Baseline vs NetClone-without-filtering vs NetClone on Exp(25).
//! Expected shape (§5.6.3): at low load the unfiltered redundancy barely
//! matters; as load grows the extra responses overwhelm the client
//! receivers and the unfiltered variant becomes *worse than the baseline*.

use netclone_stats::Report;
use netclone_workloads::exp25;

use crate::experiments::panel::Figure;
use crate::harness::{run_sweeps, Experiment, RunCtx, SweepSpec};
use crate::scenario::Scenario;
use crate::scheme::Scheme;
use crate::sweep::capacity_fractions;

const TITLE: &str = "Impact of redundant response filtering (Exp(25))";

/// Runs the figure on the given context.
pub fn run(ctx: &RunCtx) -> Figure {
    let schemes = [
        Scheme::Baseline,
        Scheme::NETCLONE_NOFILTER,
        Scheme::NETCLONE,
    ];
    let mut template = Scenario::synthetic_default(Scheme::Baseline, exp25(), 1.0);
    template.warmup_ns = ctx.scale.warmup_ns();
    template.measure_ns = ctx.scale.measure_ns();
    let rates = capacity_fractions(&template, 0.1, 0.98, ctx.scale.sweep_points());
    let mut specs = Vec::new();
    for scheme in schemes {
        let mut t = template.clone();
        t.scheme = scheme;
        specs.push(SweepSpec {
            panel: "Exp(25)".into(),
            scheme: scheme.label(),
            template: t,
            rates: rates.clone(),
        });
    }
    Figure {
        id: "fig15",
        title: TITLE,
        panels: run_sweeps(ctx, "fig15", specs),
    }
}

/// Figure 15 in the experiment registry.
pub struct Fig15;

impl Experiment for Fig15 {
    fn id(&self) -> &'static str {
        "fig15"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn tags(&self) -> &'static [&'static str] {
        &["figure", "sweep", "filtering"]
    }
    fn run(&self, ctx: &RunCtx) -> Report {
        run(ctx).into_report()
    }
}
