//! Figure 10: "Performance with RackSched under homogeneous and
//! heterogeneous workloads."
//!
//! Baseline vs NetClone vs NetClone w/ RackSched, for Exp(25) and
//! Bimodal(90%-25,10%-250), with homogeneous servers (6 × 15 worker
//! threads) and heterogeneous ones (3 × 15 + 3 × 8 threads, §5.4).
//!
//! Expected shape: "NetClone with RackSched achieves the best
//! performance … performs better with heterogeneous workloads"; in
//! homogeneous settings it can trail plain NetClone at very high loads
//! (more tracked-vs-actual state mismatches).

use netclone_stats::Report;
use netclone_workloads::{bimodal_25_250, exp25};

use crate::calib;
use crate::experiments::panel::Figure;
use crate::harness::{run_sweeps, Experiment, RunCtx, SweepSpec};
use crate::scenario::{Scenario, ServerSpec};
use crate::scheme::Scheme;
use crate::sweep::capacity_fractions;

const TITLE: &str = "NetClone + RackSched under homogeneous/heterogeneous workers";

fn hetero_servers() -> Vec<ServerSpec> {
    let mut v = vec![
        ServerSpec {
            workers: calib::SYNTHETIC_WORKERS
        };
        3
    ];
    v.extend(vec![
        ServerSpec {
            workers: calib::KV_WORKERS
        };
        3
    ]);
    v
}

/// Runs the figure on the given context.
pub fn run(ctx: &RunCtx) -> Figure {
    let schemes = [Scheme::Baseline, Scheme::NETCLONE, Scheme::NETCLONE_RS];
    let mut specs = Vec::new();
    for wl in [exp25(), bimodal_25_250()] {
        for hetero in [false, true] {
            let mut template = Scenario::synthetic_default(Scheme::Baseline, wl, 1.0);
            if hetero {
                template.servers = hetero_servers();
            }
            template.warmup_ns = ctx.scale.warmup_ns();
            template.measure_ns = ctx.scale.measure_ns();
            let rates = capacity_fractions(&template, 0.1, 0.95, ctx.scale.sweep_points());
            let panel = format!(
                "{}-{}",
                if wl.label().starts_with("Exp") {
                    "Exp"
                } else {
                    "Bimodal"
                },
                if hetero {
                    "Heterogeneous"
                } else {
                    "Homogeneous"
                }
            );
            for scheme in schemes {
                let mut t = template.clone();
                t.scheme = scheme;
                specs.push(SweepSpec {
                    panel: panel.clone(),
                    scheme: scheme.label(),
                    template: t,
                    rates: rates.clone(),
                });
            }
        }
    }
    Figure {
        id: "fig10",
        title: TITLE,
        panels: run_sweeps(ctx, "fig10", specs),
    }
}

/// Figure 10 in the experiment registry.
pub struct Fig10;

impl Experiment for Fig10 {
    fn id(&self) -> &'static str {
        "fig10"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn tags(&self) -> &'static [&'static str] {
        &["figure", "sweep", "racksched"]
    }
    fn run(&self, ctx: &RunCtx) -> Report {
        run(ctx).into_report()
    }
}
