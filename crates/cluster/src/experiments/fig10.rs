//! Figure 10: "Performance with RackSched under homogeneous and
//! heterogeneous workloads."
//!
//! Baseline vs NetClone vs NetClone w/ RackSched, for Exp(25) and
//! Bimodal(90%-25,10%-250), with homogeneous servers (6 × 15 worker
//! threads) and heterogeneous ones (3 × 15 + 3 × 8 threads, §5.4).
//!
//! Expected shape: "NetClone with RackSched achieves the best
//! performance … performs better with heterogeneous workloads"; in
//! homogeneous settings it can trail plain NetClone at very high loads
//! (more tracked-vs-actual state mismatches).

use netclone_workloads::{bimodal_25_250, exp25};

use crate::calib;
use crate::experiments::panel::{Figure, Panel, Series};
use crate::experiments::scale::Scale;
use crate::scenario::{Scenario, ServerSpec};
use crate::scheme::Scheme;
use crate::sweep::{capacity_fractions, sweep};

fn hetero_servers() -> Vec<ServerSpec> {
    let mut v = vec![
        ServerSpec {
            workers: calib::SYNTHETIC_WORKERS
        };
        3
    ];
    v.extend(vec![
        ServerSpec {
            workers: calib::KV_WORKERS
        };
        3
    ]);
    v
}

/// Runs the figure at the given scale.
pub fn run(scale: Scale) -> Figure {
    let schemes = [Scheme::Baseline, Scheme::NETCLONE, Scheme::NETCLONE_RS];
    let mut panels = Vec::new();
    for wl in [exp25(), bimodal_25_250()] {
        for hetero in [false, true] {
            let mut template = Scenario::synthetic_default(Scheme::Baseline, wl, 1.0);
            if hetero {
                template.servers = hetero_servers();
            }
            template.warmup_ns = scale.warmup_ns();
            template.measure_ns = scale.measure_ns();
            let rates = capacity_fractions(&template, 0.1, 0.95, scale.sweep_points());
            let mut series = Vec::new();
            for scheme in schemes {
                let mut t = template.clone();
                t.scheme = scheme;
                series.push(Series {
                    scheme: scheme.label(),
                    points: sweep(&t, &rates),
                });
            }
            panels.push(Panel {
                name: format!(
                    "{}-{}",
                    if wl.label().starts_with("Exp") {
                        "Exp"
                    } else {
                        "Bimodal"
                    },
                    if hetero {
                        "Heterogeneous"
                    } else {
                        "Homogeneous"
                    }
                ),
                series,
            });
        }
    }
    Figure {
        id: "fig10",
        title: "NetClone + RackSched under homogeneous/heterogeneous workers",
        panels,
    }
}
