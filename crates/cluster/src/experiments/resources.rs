//! §4.1 resource usage: the NetClone program's footprint on the modeled
//! ASIC, next to the paper's reported figures, plus the back-of-the-
//! envelope filter-capacity calculation.

use netclone_core::NetCloneSwitch;
use netclone_stats::{Report, Table};

use crate::harness::{Experiment, RunCtx};

const TITLE: &str = "Switch resource usage (§4.1)";

/// The report rows: (metric, measured, paper).
pub fn to_table() -> Table {
    let sw = NetCloneSwitch::paper_prototype();
    let r = sw.resource_report();
    let mut t = Table::new(["metric", "this reproduction", "paper (§4.1)"]);
    t.row([
        "match-action stages".to_string(),
        r.stages_used.to_string(),
        "7".to_string(),
    ]);
    t.row([
        "SRAM".to_string(),
        format!("{:.2}%", r.sram_pct),
        "18.04%".to_string(),
    ]);
    t.row([
        "match input crossbar".to_string(),
        format!("{:.2}%", r.crossbar_pct),
        "12.28%".to_string(),
    ]);
    t.row([
        "hash unit".to_string(),
        format!("{:.2}%", r.hash_pct),
        "26.79%".to_string(),
    ]);
    t.row([
        "ALUs".to_string(),
        format!("{:.2}%", r.alu_pct),
        "21.43%".to_string(),
    ]);
    t.row([
        "filter-table memory".to_string(),
        format!(
            "{:.2} MB ({:.2}% of switch memory)",
            r.register_sram_bytes as f64 / 1e6,
            r.register_sram_pct
        ),
        "1.05 MB (4.77%)".to_string(),
    ]);
    // The paper's throughput back-of-envelope: 2^18 slots, 20 KRPS per
    // slot at 50 μs per request ⇒ ≈ 5.24 BRPS.
    let slots = 2u64 * (1 << 17);
    let per_slot_rps = 1.0 / 50e-6;
    t.row([
        "supported throughput (50us RPCs)".to_string(),
        format!("{:.2} BRPS", slots as f64 * per_slot_rps / 1e9),
        "~5.24 BRPS".to_string(),
    ]);
    t
}

/// Builds the unified report artifact. The CSV keeps its historical
/// `tab_resources` stem.
pub fn report() -> Report {
    Report::new("tab-res", TITLE).with_section("", "tab_resources", to_table())
}

/// The §4.1 resource report in the experiment registry (pure — ignores
/// the context).
pub struct TabRes;

impl Experiment for TabRes {
    fn id(&self) -> &'static str {
        "tab-res"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn tags(&self) -> &'static [&'static str] {
        &["table", "resources"]
    }
    fn run(&self, _ctx: &RunCtx) -> Report {
        report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_of_envelope_matches_paper() {
        let md = report().to_markdown();
        assert!(md.contains("5.24 BRPS"), "{md}");
        assert!(md.contains("18.04%"));
    }

    #[test]
    fn measured_stages_are_7() {
        let sw = NetCloneSwitch::paper_prototype();
        assert_eq!(sw.resource_report().stages_used, 7);
    }
}
