//! Figure 14: "Experimental results with a low service-time variability
//! (p = 0.001)."
//!
//! Same protocol as Fig. 7(a)/(b) but with the low-variability jitter.
//! Expected shape: "NetClone can decrease tail latency even if the
//! service-time variability is low … performance improvement slightly
//! decreases."

use netclone_stats::Report;
use netclone_workloads::{bimodal_25_250, exp25, Jitter};

use crate::experiments::panel::Figure;
use crate::harness::{run_sweeps, Experiment, RunCtx, SweepSpec};
use crate::scenario::Scenario;
use crate::scheme::Scheme;
use crate::sweep::capacity_fractions;

const TITLE: &str = "Low service-time variability (p = 0.001)";

/// Runs the figure on the given context.
pub fn run(ctx: &RunCtx) -> Figure {
    let schemes = [Scheme::Baseline, Scheme::CClone, Scheme::NETCLONE];
    let mut specs = Vec::new();
    for wl in [exp25(), bimodal_25_250()] {
        let mut template = Scenario::synthetic_default(Scheme::Baseline, wl, 1.0);
        template.jitter = Jitter::LOW;
        template.warmup_ns = ctx.scale.warmup_ns();
        template.measure_ns = ctx.scale.measure_ns();
        let rates = capacity_fractions(&template, 0.08, 0.95, ctx.scale.sweep_points());
        for scheme in schemes {
            let mut t = template.clone();
            t.scheme = scheme;
            specs.push(SweepSpec {
                panel: wl.label(),
                scheme: scheme.label(),
                template: t,
                rates: rates.clone(),
            });
        }
    }
    Figure {
        id: "fig14",
        title: TITLE,
        panels: run_sweeps(ctx, "fig14", specs),
    }
}

/// Figure 14 in the experiment registry.
pub struct Fig14;

impl Experiment for Fig14 {
    fn id(&self) -> &'static str {
        "fig14"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn tags(&self) -> &'static [&'static str] {
        &["figure", "sweep", "low-variability"]
    }
    fn run(&self, ctx: &RunCtx) -> Report {
        run(ctx).into_report()
    }
}
