//! Figure 14: "Experimental results with a low service-time variability
//! (p = 0.001)."
//!
//! Same protocol as Fig. 7(a)/(b) but with the low-variability jitter.
//! Expected shape: "NetClone can decrease tail latency even if the
//! service-time variability is low … performance improvement slightly
//! decreases."

use netclone_workloads::{bimodal_25_250, exp25, Jitter};

use crate::experiments::panel::{Figure, Panel, Series};
use crate::experiments::scale::Scale;
use crate::scenario::Scenario;
use crate::scheme::Scheme;
use crate::sweep::{capacity_fractions, sweep};

/// Runs the figure at the given scale.
pub fn run(scale: Scale) -> Figure {
    let schemes = [Scheme::Baseline, Scheme::CClone, Scheme::NETCLONE];
    let mut panels = Vec::new();
    for wl in [exp25(), bimodal_25_250()] {
        let mut template = Scenario::synthetic_default(Scheme::Baseline, wl, 1.0);
        template.jitter = Jitter::LOW;
        template.warmup_ns = scale.warmup_ns();
        template.measure_ns = scale.measure_ns();
        let rates = capacity_fractions(&template, 0.08, 0.95, scale.sweep_points());
        let mut series = Vec::new();
        for scheme in schemes {
            let mut t = template.clone();
            t.scheme = scheme;
            series.push(Series {
                scheme: scheme.label(),
                points: sweep(&t, &rates),
            });
        }
        panels.push(Panel {
            name: wl.label(),
            series,
        });
    }
    Figure {
        id: "fig14",
        title: "Low service-time variability (p = 0.001)",
        panels,
    }
}
