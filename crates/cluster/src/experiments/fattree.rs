//! Oversubscribed fat-tree fabrics: cloning under real congestion.
//!
//! The paper's evaluation (and the `multirack` sweep) runs over
//! fixed-latency hops — the fabric is never the bottleneck. This
//! experiment puts NetClone where cloning actually hurts: a k-ary
//! fat-tree ([`Topology::fat_tree`]) with congestion-aware links
//! (`netclone-linksim`), swept over the fabric oversubscription ratio
//! (1:1 wire-speed → 4:1), with bulk background incast converging on the
//! rack where every client sits. Two effects compose against cloning:
//!
//! * the redundant response stream doubles NetClone's share of the
//!   victim rack's downlink bytes, so it saturates the oversubscribed
//!   fabric earlier than the baseline;
//! * cloned responses crossing the congested core are delayed or
//!   tail-dropped, so the clone loses (or never arrives) more often —
//!   the clone-win ratio degrades as the ratio grows, while p99 inflates
//!   for everyone.
//!
//! The per-link drop table ([`FatTreeResult::links_table`]) names the
//! congested links — the victim's downlinks, by construction.
//!
//! Scale picks the radix (`--fattree-k` overrides): Smoke k=4 (8 racks,
//! 16 host slots), Standard k=6 (18 racks, 54 slots), Full k=16 (128
//! racks, 1024 slots — the 1k-host fabric).

use netclone_linksim::LinkSpec;
use netclone_stats::{Report, Table};
use netclone_workloads::exp50;

use crate::harness::{Experiment, RunCtx};
use crate::metrics::RunResult;
use crate::scenario::{Background, Scenario, ServerSpec};
use crate::scheme::Scheme;
use crate::topology::Topology;

const TITLE: &str = "Fat-tree oversubscription: clone-win ratio and p99 under incast";

/// Oversubscription ratios under test (fabric rate = edge rate ÷ ratio).
pub const OVERSUB: [f64; 4] = [1.0, 2.0, 3.0, 4.0];

/// Schemes under test.
pub const SCHEMES: [Scheme; 2] = [Scheme::Baseline, Scheme::NETCLONE];

/// Host access-link rate, Gbit/s.
pub const EDGE_GBPS: f64 = 10.0;

/// Per-link queue capacity, bytes (≈ 5 jumbo frames).
pub const QUEUE_BYTES: u32 = 45_000;

/// Background packet size, bytes (bulk flows: jumbo frames).
pub const BG_WIRE_BYTES: u16 = 9_000;

/// Background load as a fraction of the victim rack's *wire-speed*
/// downlink capacity — fixed across the sweep, so rising ratios turn the
/// same offered bytes into rising overload.
pub const BG_FRACTION: f64 = 0.30;

/// RPC load as a fraction of the binding host ceiling (the clients'
/// receive rate).
pub const CLIENT_LOAD: f64 = 0.6;

/// Target worker-thread utilization. High enough that a clone landing on
/// an actually-busy server queues behind real work and loses — which is
/// what lets stale idle signals (delayed by fabric congestion) degrade
/// the clone-win ratio.
pub const WORKER_UTIL: f64 = 0.7;

/// The experiment's seed (all cells share it; the sweep varies only the
/// ratio and scheme).
pub const SEED: u64 = 7;

/// Fat-tree radix per scale (even, ≥ 4).
pub fn radix_for(ctx: &RunCtx) -> usize {
    ctx.fattree_k.unwrap_or(match ctx.scale {
        crate::experiments::Scale::Smoke => 4,
        crate::experiments::Scale::Standard => 6,
        crate::experiments::Scale::Full => 16,
    })
}

/// The scenario of one cell: a k-ary fat-tree filled to its canonical
/// k/2 hosts per leaf — rack 0 is all clients (the incast victim), every
/// other rack all servers, worker threads sized to [`WORKER_UTIL`] so
/// idle signals carry real information.
pub fn scenario(k: usize, oversub: f64, scheme: Scheme, ctx: &RunCtx) -> Scenario {
    assert!(k >= 4 && k % 2 == 0, "the experiment needs an even k >= 4");
    let topo = Topology::fat_tree(k);
    let racks = topo.racks;
    let hosts_per_leaf = k / 2;
    let n_clients = hosts_per_leaf;
    let n_servers = (racks - 1) * hosts_per_leaf;
    let mut server_racks = Vec::new();
    for r in 1..racks {
        server_racks.extend(std::iter::repeat(r).take(hosts_per_leaf));
    }
    let mut s = Scenario::synthetic_default(scheme, exp50(), 1.0);
    s.n_clients = n_clients;
    s.seed = SEED;
    s.warmup_ns = ctx.scale.warmup_ns();
    s.measure_ns = ctx.scale.measure_ns();
    s.topology = topo
        .with_server_racks(server_racks)
        .with_client_racks(vec![0; n_clients])
        .with_ecmp_seed(SEED);
    s.links = Some(LinkSpec::oversubscribed(EDGE_GBPS, oversub, QUEUE_BYTES));
    // Offered RPC load: a fixed fraction of the clients' receive ceiling
    // (the binding host limit) — the *fabric* is then the only thing the
    // sweep varies.
    let client_rx_rps = n_clients as f64 * 1e9 / crate::calib::CLIENT_RX_NS as f64;
    s.offered_rps = CLIENT_LOAD * client_rx_rps;
    // Worker threads sized so the pool runs at ≈ WORKER_UTIL (floor: one
    // thread per server), spread as evenly as the integer split allows.
    // An overprovisioned pool would make every clone land on an idle
    // server and hide the cost of stale idle signals entirely.
    s.servers = vec![ServerSpec { workers: 1 }; n_servers];
    let mean_eff_s = n_servers as f64 / s.capacity_rps();
    let threads = ((s.offered_rps * mean_eff_s / WORKER_UTIL).ceil() as usize).max(n_servers);
    let threads = threads.min(n_servers * crate::calib::SYNTHETIC_WORKERS);
    let (base, extra) = (threads / n_servers, threads % n_servers);
    for (i, spec) in s.servers.iter_mut().enumerate() {
        spec.workers = base + usize::from(i < extra);
    }
    // Background incast: a fixed byte rate against the victim's
    // wire-speed downlink capacity, independent of the ratio under test.
    let victim_capacity_bps = (k / 2) as f64 * EDGE_GBPS * 1e9;
    s.background = Some(Background {
        rps: BG_FRACTION * victim_capacity_bps / (8.0 * BG_WIRE_BYTES as f64),
        wire_bytes: BG_WIRE_BYTES,
        victim_rack: 0,
    });
    s
}

/// One measured cell of the sweep.
pub struct Cell {
    /// Oversubscription ratio (fabric = edge ÷ ratio).
    pub oversub: f64,
    /// The full run result.
    pub run: RunResult,
}

/// The typed result: every (ratio, scheme) cell, in sweep order.
pub struct FatTreeResult {
    /// The fat-tree radix.
    pub k: usize,
    /// The measured cells.
    pub cells: Vec<Cell>,
}

impl FatTreeResult {
    /// The headline table: ratio × scheme rows with tail latency, the
    /// clone-win ratio, and the fabric-wide drop/mark totals by tier.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new([
            "oversub",
            "scheme",
            "offered (MRPS)",
            "achieved (MRPS)",
            "p50 (us)",
            "p99 (us)",
            "clone-win ratio",
            "up drops",
            "down drops",
            "edge drops",
            "ecn marks",
        ]);
        for cell in &self.cells {
            let (p50, p99, _) = cell.run.percentiles_us();
            let lt = cell.run.link_totals.unwrap_or_default();
            t.row([
                format!("{}:1", cell.oversub),
                cell.run.scheme.to_string(),
                format!("{:.3}", cell.run.offered_rps / 1e6),
                format!("{:.3}", cell.run.achieved_mrps()),
                format!("{p50:.1}"),
                format!("{p99:.1}"),
                format!("{:.3}", cell.run.clone_win_ratio()),
                lt.up.dropped.to_string(),
                lt.down.dropped.to_string(),
                lt.edge.dropped.to_string(),
                cell.run.link_ecn_marks().to_string(),
            ]);
        }
        t
    }

    /// The congested links, per cell: every link that dropped or
    /// ECN-marked a packet, capped at the eight worst per cell.
    pub fn links_table(&self) -> Table {
        let mut t = Table::new([
            "oversub",
            "scheme",
            "link",
            "forwarded",
            "dropped",
            "ecn marked",
        ]);
        for cell in &self.cells {
            let mut links: Vec<_> = cell.run.link_stats.iter().collect();
            links.sort_by_key(|l| std::cmp::Reverse((l.dropped, l.ecn_marked)));
            for l in links.into_iter().take(8) {
                t.row([
                    format!("{}:1", cell.oversub),
                    cell.run.scheme.to_string(),
                    l.link.clone(),
                    l.forwarded.to_string(),
                    l.dropped.to_string(),
                    l.ecn_marked.to_string(),
                ]);
            }
        }
        t
    }

    /// Converts the sweep into the unified report artifact.
    pub fn into_report(self) -> Report {
        let k = self.k;
        let main = self.to_table();
        let links = self.links_table();
        Report::new("fattree", TITLE)
            .with_section(
                format!("k={k} fat-tree, oversubscription sweep"),
                "fattree",
                main,
            )
            .with_note(format!(
                "edge {EDGE_GBPS} Gbit/s; fabric = edge / ratio; queue {QUEUE_BYTES} B/link; \
                 background incast {:.0}% of wire-speed victim downlink capacity",
                BG_FRACTION * 100.0
            ))
            .with_section("congested links (worst 8 per cell)", "fattree_links", links)
    }

    /// p99 latency (µs) of the given (ratio, scheme) cell.
    pub fn p99_at(&self, oversub: f64, scheme: &str) -> Option<f64> {
        self.cell(oversub, scheme).map(|c| c.run.p99_us())
    }

    /// Clone-win ratio of the given (ratio, scheme) cell.
    pub fn clone_win_at(&self, oversub: f64, scheme: &str) -> Option<f64> {
        self.cell(oversub, scheme).map(|c| c.run.clone_win_ratio())
    }

    fn cell(&self, oversub: f64, scheme: &str) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.oversub == oversub && c.run.scheme == scheme)
    }
}

/// Runs the sweep on the given context.
pub fn run(ctx: &RunCtx) -> FatTreeResult {
    let k = radix_for(ctx);
    let ratios: Vec<f64> = match ctx.oversub {
        Some(r) => vec![r],
        None => OVERSUB.to_vec(),
    };
    let mut cells: Vec<(f64, Scenario)> = Vec::new();
    for &oversub in &ratios {
        for scheme in SCHEMES {
            cells.push((oversub, scenario(k, oversub, scheme, ctx)));
        }
    }
    let cells = ctx.map("fattree", cells, |(oversub, s)| Cell {
        oversub,
        run: ctx.run_sim(s),
    });
    FatTreeResult { k, cells }
}

/// The fat-tree oversubscription sweep in the experiment registry.
pub struct FatTree;

impl Experiment for FatTree {
    fn id(&self) -> &'static str {
        "fattree"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn tags(&self) -> &'static [&'static str] {
        &["table", "sweep", "topology", "links", "congestion"]
    }
    fn topology(&self) -> &'static str {
        "fat-tree"
    }
    fn run(&self, ctx: &RunCtx) -> Report {
        run(ctx).into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn smoke_run_covers_every_cell() {
        let ctx = RunCtx::new(Scale::Smoke).with_jobs(crate::harness::default_jobs());
        let r = run(&ctx);
        assert_eq!(r.k, 4);
        assert_eq!(r.cells.len(), OVERSUB.len() * SCHEMES.len());
        for cell in &r.cells {
            assert!(
                cell.run.completed > 0,
                "{}:1 {}",
                cell.oversub,
                cell.run.scheme
            );
            let totals = cell.run.link_totals.expect("links enabled");
            // Conservation per tier: everything offered is forwarded or
            // dropped, nowhere else.
            for t in [totals.edge, totals.up, totals.down] {
                assert_eq!(t.offered, t.forwarded + t.dropped);
            }
        }
        let report = r.into_report();
        assert!(report.to_markdown().contains("fattree"));
    }

    #[test]
    fn oversub_override_pins_one_ratio() {
        let ctx = RunCtx::new(Scale::Smoke).with_oversub(2.0);
        let r = run(&ctx);
        assert_eq!(r.cells.len(), SCHEMES.len());
        assert!(r.cells.iter().all(|c| c.oversub == 2.0));
    }
}
