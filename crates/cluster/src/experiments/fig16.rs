//! Figure 16: "Performance under switch failures."
//!
//! A 25-second NetClone run; the switch is stopped at 5 s and reactivated
//! at 7 s; with the modelled ~3 s pipeline bring-up, throughput recovers
//! around 10 s ("the downtime … depends on the switch architecture").
//! Recovery is complete because only soft state is lost (§3.6).

use netclone_stats::{Report, Table};
use netclone_workloads::exp25;

use crate::experiments::scale::Scale;
use crate::harness::{Experiment, RunCtx};
use crate::scenario::{Scenario, SwitchFailurePlan};
use crate::scheme::Scheme;

const TITLE: &str = "Switch failure timeline (stop 5s, reactivate 7s, up ~10s)";

/// The timeline result.
pub struct Fig16 {
    /// (second, throughput MRPS) — one row per bucket.
    pub timeline: Vec<(f64, f64)>,
    /// When the switch was stopped, s.
    pub fail_at_s: f64,
    /// When it was reactivated, s.
    pub reactivate_at_s: f64,
    /// When forwarding actually resumed, s.
    pub up_at_s: f64,
}

impl Fig16 {
    /// Renders the timeline.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(["time (s)", "throughput (MRPS)"]);
        for &(s, mrps) in &self.timeline {
            t.row([format!("{s:.1}"), format!("{mrps:.3}")]);
        }
        t
    }

    /// Converts the timeline into the unified report artifact, with the
    /// stop/reactivate/bring-up marks as section notes.
    pub fn into_report(self) -> Report {
        let note = format!(
            "stop @ {:.1}s, reactivate @ {:.1}s, forwarding up @ {:.1}s",
            self.fail_at_s, self.reactivate_at_s, self.up_at_s
        );
        let table = self.to_table();
        Report::new("fig16", TITLE)
            .with_table(table)
            .with_note(note)
    }

    /// Mean throughput over buckets whose centre falls in `[from_s, to_s)`.
    pub fn mean_mrps_between(&self, from_s: f64, to_s: f64) -> f64 {
        let pts: Vec<f64> = self
            .timeline
            .iter()
            .filter(|(s, _)| *s >= from_s && *s < to_s)
            .map(|&(_, m)| m)
            .collect();
        if pts.is_empty() {
            0.0
        } else {
            pts.iter().sum::<f64>() / pts.len() as f64
        }
    }
}

/// Runs the timeline (one simulation — the context only contributes its
/// scale). At `Scale::Full` this is the paper's exact 25 s / 5 s / 7 s
/// layout at 0.8 MRPS; smaller scales compress time by 10× (Smoke: 50×)
/// while preserving the stop/reactivate/bring-up proportions.
pub fn run(ctx: &RunCtx) -> Fig16 {
    let compress = match ctx.scale {
        Scale::Smoke => 50,
        Scale::Standard => 10,
        Scale::Full => 1,
    };
    let sec = 1_000_000_000u64 / compress;
    let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 800_000.0);
    s.warmup_ns = 0;
    s.measure_ns = 25 * sec;
    s.timeseries_bucket_ns = sec / 2;
    s.switch_failure = Some(SwitchFailurePlan {
        fail_at_ns: 5 * sec,
        reactivate_at_ns: 7 * sec,
        bringup_ns: 3 * sec,
    });
    let run = ctx.run_sim(s);
    // rates_per_sec is per *sim* second — already the paper's y-axis; only
    // the time axis needs decompressing back to paper seconds.
    let rates = run.throughput_series.rates_per_sec();
    let bucket_s = (sec / 2) as f64 / 1e9;
    let timeline = rates
        .iter()
        .enumerate()
        .map(|(i, &r)| (i as f64 * bucket_s * compress as f64, r / 1e6))
        .collect();
    Fig16 {
        timeline,
        fail_at_s: 5.0,
        reactivate_at_s: 7.0,
        up_at_s: 10.0,
    }
}

/// Figure 16 in the experiment registry.
pub struct Fig16Exp;

impl Experiment for Fig16Exp {
    fn id(&self) -> &'static str {
        "fig16"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn tags(&self) -> &'static [&'static str] {
        &["figure", "timeline", "failure"]
    }
    fn run(&self, ctx: &RunCtx) -> Report {
        run(ctx).into_report()
    }
}
