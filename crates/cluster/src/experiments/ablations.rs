//! Ablations of NetClone's design choices (this reproduction's additions;
//! DESIGN.md §3 lists them):
//!
//! * **Filter-table count** (§3.5 "we arrange multiple filter tables"):
//!   1 vs 2 vs 4 tables — fewer tables mean more (IDX, slot) collisions,
//!   visible as redundant responses leaking to clients.
//! * **Group ordering** (§3.3 "multiplying by two is to sustain the
//!   randomness"): ordered n·(n−1) pairs vs naive C(n,2) — the naive table
//!   skews non-cloned load onto low-numbered servers.
//! * **Cloning threshold** (§3.4's rejected alternative): clone below a
//!   queue-length threshold instead of only-when-idle. Looser thresholds
//!   clone more under load and pay for it in clone drops and tail — the
//!   "complex performance profiling" problem the paper avoids.

use netclone_stats::{Report, Table};
use netclone_workloads::exp25;

use crate::harness::{Experiment, RunCtx};
use crate::scenario::Scenario;
use crate::scheme::Scheme;

const TITLE: &str = "Design-choice ablations (filter tables, group ordering, clone threshold)";

/// Result of the filter-table-count ablation.
pub struct FilterAblation {
    /// (tables, redundant responses per 1k completions, filtered fraction).
    pub rows: Vec<(usize, f64, f64)>,
}

impl FilterAblation {
    /// Renders the rows.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new([
            "filter tables",
            "redundant responses / 1k completions",
            "filter rate",
        ]);
        for &(n, leak, rate) in &self.rows {
            t.row([n.to_string(), format!("{leak:.2}"), format!("{rate:.3}")]);
        }
        t
    }
}

/// Runs the filter-table-count ablation at mid load (cloning frequent,
/// responses dense enough for collisions).
///
/// At the paper's 2^17 slots per table, collisions are essentially
/// unobservable at testbed rates (which is the point of the sizing); the
/// ablation shrinks the tables to 2^7 slots so the *relief* extra tables
/// provide is measurable.
pub fn filter_tables(ctx: &RunCtx) -> FilterAblation {
    let rows = ctx.map("ablation:filter", vec![1usize, 2, 4], |n_tables| {
        let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1.0);
        s.warmup_ns = ctx.scale.warmup_ns();
        s.measure_ns = ctx.scale.measure_ns();
        s.offered_rps = s.capacity_rps() * 0.5;
        s.n_filter_tables = n_tables;
        s.filter_slots_log2 = 7;
        let run = ctx.run_sim(s);
        let leak = if run.completed == 0 {
            0.0
        } else {
            run.client_redundant as f64 * 1_000.0 / run.completed as f64
        };
        (n_tables, leak, run.switch.filter_rate())
    });
    FilterAblation { rows }
}

/// Result of the group-ordering ablation.
pub struct GroupAblation {
    /// Max/min per-server served ratio with ordered n(n−1) groups.
    pub ordered_imbalance: f64,
    /// The same ratio with naive unordered C(n,2) groups.
    pub unordered_imbalance: f64,
}

impl GroupAblation {
    /// Renders the comparison.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(["group table", "max/min per-server load"]);
        t.row([
            "ordered n(n-1) (paper)".to_string(),
            format!("{:.2}", self.ordered_imbalance),
        ]);
        t.row([
            "naive C(n,2)".to_string(),
            format!("{:.2}", self.unordered_imbalance),
        ]);
        t
    }
}

fn imbalance(served: &[u64]) -> f64 {
    let max = served.iter().copied().max().unwrap_or(0) as f64;
    let min = served.iter().copied().min().unwrap_or(0).max(1) as f64;
    max / min
}

/// Runs the group-ordering ablation at high load (where non-cloned
/// forwarding to "server 1" dominates).
pub fn group_ordering(ctx: &RunCtx) -> GroupAblation {
    let mut template = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1.0);
    template.warmup_ns = ctx.scale.warmup_ns();
    template.measure_ns = ctx.scale.measure_ns();
    template.offered_rps = template.capacity_rps() * 0.85;

    // Naive: only (a, b) with a < b — every non-cloned request lands on
    // the lower-numbered candidate.
    let n = template.servers.len() as u16;
    let mut naive = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            naive.push((a, b));
        }
    }
    let mut naive_scenario = template.clone();
    naive_scenario.custom_groups = Some(naive);

    let imbalances = ctx.map(
        "ablation:groups",
        vec![template, naive_scenario],
        |scenario| imbalance(&ctx.run_sim(scenario).per_server_served),
    );
    GroupAblation {
        ordered_imbalance: imbalances[0],
        unordered_imbalance: imbalances[1],
    }
}

/// Result of the cloning-threshold ablation.
pub struct ThresholdAblation {
    /// (threshold, clone rate, clone drops per 1k requests, p99 μs) at
    /// high load.
    pub rows: Vec<(u16, f64, f64, f64)>,
}

impl ThresholdAblation {
    /// Renders the rows.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new([
            "clone if queue <",
            "clone rate",
            "clone drops / 1k reqs",
            "p99 (us)",
        ]);
        for &(thr, rate, drops, p99) in &self.rows {
            t.row([
                thr.to_string(),
                format!("{rate:.3}"),
                format!("{drops:.1}"),
                format!("{p99:.1}"),
            ]);
        }
        t
    }
}

/// Runs the cloning-threshold ablation at high load, where the condition
/// matters most.
pub fn clone_threshold(ctx: &RunCtx) -> ThresholdAblation {
    let rows = ctx.map("ablation:threshold", vec![1u16, 2, 4], |thr| {
        let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1.0);
        s.warmup_ns = ctx.scale.warmup_ns();
        s.measure_ns = ctx.scale.measure_ns();
        s.offered_rps = s.capacity_rps() * 0.8;
        s.clone_condition = netclone_core::CloneCondition::QueueBelow(thr);
        let run = ctx.run_sim(s);
        let drops = if run.switch.requests == 0 {
            0.0
        } else {
            run.server_clone_drops as f64 * 1_000.0 / run.switch.requests as f64
        };
        (thr, run.switch.clone_rate(), drops, run.p99_us())
    });
    ThresholdAblation { rows }
}

/// Runs all three ablations into the unified report artifact.
pub fn run(ctx: &RunCtx) -> Report {
    Report::new("ablations", TITLE)
        .with_section(
            "Filter-table count (§3.5)",
            "ablation_filter_tables",
            filter_tables(ctx).to_table(),
        )
        .with_section(
            "Group ordering (§3.3)",
            "ablation_group_ordering",
            group_ordering(ctx).to_table(),
        )
        .with_section(
            "Cloning threshold (§3.4 alternative)",
            "ablation_clone_threshold",
            clone_threshold(ctx).to_table(),
        )
}

/// The ablation suite in the experiment registry.
pub struct Ablations;

impl Experiment for Ablations {
    fn id(&self) -> &'static str {
        "ablations"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn tags(&self) -> &'static [&'static str] {
        &["ablation", "design"]
    }
    fn run(&self, ctx: &RunCtx) -> Report {
        run(ctx)
    }
}
