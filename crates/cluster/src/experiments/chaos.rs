//! The chaos suite: composed fault timelines against recovering clients,
//! as a seed-pinned policy shootout.
//!
//! Where the adversarial suite stresses *service-time* shape, this one
//! stresses the *fabric and fleet*: every scenario runs a
//! [`FaultTimeline`] (the composable generalization of the single-window
//! degradation plans) while the clients run the real recovery path — a
//! [`RetryPolicy`] with capped exponential backoff and a per-client
//! retry budget. Four kinds:
//!
//! * **rolling-drain** — a maintenance wave: two server-bearing leaves
//!   of a 4-rack fabric drain one after another
//!   ([`FaultTimeline::rolling_drain`]), each returning with cold soft
//!   state while the next goes down. Requests parked behind a dead leaf
//!   time out and retransmit with *fresh* addressing, so recovery rides
//!   the same policy lever the shootout measures: NetClone's second copy
//!   (and a retry's re-roll) routes around the hole, C-Clone pays double
//!   load for the privilege.
//! * **correlated-gray** — two servers slow down 4× over the *same*
//!   window ([`FaultTimeline::correlated_gray`]): the shared-power-cap /
//!   bad-rollout shape. With a quarter of the fleet gray, random
//!   placement alone cannot dodge it.
//! * **linkflap** — one rack's adjacent links renegotiate down three
//!   orders of magnitude mid-window ([`LinkFlapPlan`],
//!   netclone-linksim) — the classic bad-transceiver flap, 10 Gbps
//!   falling to ~10 Mbps: the queues grow, ECN marks, and tail drops
//!   concentrate on one rack while the switch keeps forwarding — gray
//!   at the *link* layer, surfaced to clients only as timeouts.
//! * **retry-storm** — injected packet loss with a tight timeout and a
//!   deliberately small retry budget: the recovery path itself under
//!   stress, exercising eviction-by-budget (`budget_exhausted`) and the
//!   backoff cap rather than any switch-side fault. This kind also
//!   surfaces a structural LÆDGE weakness: the coordinator admits per
//!   server only up to a fixed outstanding capacity and a *lost response
//!   leaks its slot forever*, so under sustained loss the coordinator
//!   wedges and client retries — which route through the same wedged
//!   coordinator — cannot recover it. The client-driven and in-network
//!   schemes have no such single point of state.
//!
//! Every fault edge is a fabric-domain-0 control event, so serial and
//! sharded runs are byte-identical (CI diffs `--shards 1` vs `--shards
//! 4` on this experiment's JSON); `tests/chaos.rs` pins the exact
//! seed-42 state per kind.

use netclone_stats::{Report, Table};
use netclone_workloads::exp25;

use crate::harness::{Experiment, RunCtx};
use crate::metrics::RunResult;
use crate::scenario::{Fault, FaultTimeline, LinkFlapPlan, RetryPolicy, Scenario};
use crate::scheme::Scheme;
use crate::sweep::capacity_fractions;
use crate::topology::Topology;

const TITLE: &str = "Chaos shootout: fault timelines vs recovering clients";

/// The chaos scenario kinds, in report order.
pub const KINDS: [&str; 4] = [
    "rolling-drain",
    "correlated-gray",
    "linkflap",
    "retry-storm",
];

/// Schemes under test: the in-network policy, the coordinator policy,
/// and unconditional client duplication.
pub const SCHEMES: [Scheme; 3] = [Scheme::NETCLONE, Scheme::Laedge, Scheme::CClone];

/// Load fractions swept (of each template's own capacity — see the
/// adversarial suite for why the asymmetry vs C-Clone is the point).
pub const LOAD_RANGE: (f64, f64) = (0.3, 0.7);

/// The recovery policy every chaos client runs (except retry-storm's
/// tighter one): a 1 ms timeout — far past the healthy p99, so retries
/// fire on faults, not noise — doubling to an 8 ms cap, 3 tries, no
/// budget pressure.
pub fn retry_policy() -> RetryPolicy {
    RetryPolicy::new(1_000_000)
}

/// Retry-storm's deliberately strained policy: a 400 µs timeout and a
/// 64-retransmission budget per client, so the budget actually runs out
/// inside the window and `budget_exhausted` is exercised.
pub fn storm_policy() -> RetryPolicy {
    RetryPolicy {
        timeout_ns: 400_000,
        backoff_cap_ns: 3_200_000,
        max_retries: 3,
        budget: 64,
    }
}

/// The scenario template of one chaos kind (offered load filled in by
/// the sweep). Fault windows sit inside the middle half of the
/// measurement window, so they scale with `--scale`.
pub fn scenario(kind: &str, scheme: Scheme, ctx: &RunCtx) -> Scenario {
    let mut s = Scenario::synthetic_default(scheme, exp25(), 1.0);
    s.warmup_ns = ctx.scale.warmup_ns();
    s.measure_ns = ctx.scale.measure_ns();
    let mid_start = s.warmup_ns + s.measure_ns / 4;
    let mid_end = s.warmup_ns + 3 * s.measure_ns / 4;
    s.retry = Some(retry_policy());
    match kind {
        "rolling-drain" => {
            // Racks 2 and 3 hold servers but no clients (round-robin
            // placement: clients 0–1 → racks 0–1) and neither is the
            // coordinator's rack (rack 0), so every scheme keeps its
            // control path while the wave rolls.
            s.topology = Topology::uniform(4);
            s.faults = FaultTimeline::rolling_drain(
                &[2, 3],
                mid_start,
                s.measure_ns / 4,
                s.measure_ns / 6,
            );
        }
        "correlated-gray" => {
            s.faults = FaultTimeline::correlated_gray(&[0, 1], mid_start, mid_end, 4.0);
        }
        "linkflap" => {
            s.topology = Topology::uniform(4);
            s.links = Some(netclone_linksim::LinkSpec::flat(10.0, 150_000));
            s.faults = FaultTimeline {
                faults: vec![Fault::LinkFlap(LinkFlapPlan {
                    rack: 3,
                    start_ns: mid_start,
                    end_ns: mid_end,
                    factor: 1000,
                })],
            };
        }
        "retry-storm" => {
            s.loss = 0.02;
            s.retry = Some(storm_policy());
        }
        other => panic!("unknown chaos kind {other:?}"),
    }
    s
}

/// One measured cell of the shootout.
pub struct Cell {
    /// The chaos kind (one of [`KINDS`]).
    pub kind: &'static str,
    /// The full run result.
    pub run: RunResult,
}

/// The typed result: every (kind, scheme, load) cell, in sweep order.
pub struct ChaosResult {
    /// The measured cells.
    pub cells: Vec<Cell>,
}

impl ChaosResult {
    /// Renders the shootout as one table: kind × scheme × load rows with
    /// the tail percentiles and the recovery diagnostics.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new([
            "scenario",
            "scheme",
            "offered (MRPS)",
            "achieved (MRPS)",
            "p50 (us)",
            "p99 (us)",
            "p999 (us)",
            "retried",
            "retry wins",
            "lost",
            "budget out",
        ]);
        for cell in &self.cells {
            let (p50, p99, p999) = cell.run.percentiles_us();
            t.row([
                cell.kind.to_string(),
                cell.run.scheme.to_string(),
                format!("{:.3}", cell.run.offered_rps / 1e6),
                format!("{:.3}", cell.run.achieved_mrps()),
                format!("{p50:.1}"),
                format!("{p99:.1}"),
                format!("{p999:.1}"),
                cell.run.client_retried.to_string(),
                cell.run.client_retry_wins.to_string(),
                cell.run.client_lost.to_string(),
                cell.run.client_budget_exhausted.to_string(),
            ]);
        }
        t
    }

    /// Converts the shootout into the unified report artifact.
    pub fn into_report(self) -> Report {
        let table = self.to_table();
        Report::new("chaos", TITLE).with_table(table)
    }

    /// p99 of the given (kind, scheme) series at the highest load point
    /// (for shape assertions).
    pub fn p99_at_peak(&self, kind: &str, scheme: &str) -> Option<f64> {
        self.cells
            .iter()
            .rev()
            .find(|c| c.kind == kind && c.run.scheme == scheme)
            .map(|c| c.run.p99_us())
    }
}

/// Runs the shootout on the given context.
pub fn run(ctx: &RunCtx) -> ChaosResult {
    let mut cells: Vec<(&'static str, Scenario)> = Vec::new();
    for kind in KINDS {
        // Rates come from each kind's own capacity, measured once per
        // kind so every scheme sweeps the identical offered loads.
        let template = scenario(kind, Scheme::Baseline, ctx);
        let rates = capacity_fractions(
            &template,
            LOAD_RANGE.0,
            LOAD_RANGE.1,
            ctx.scale.sweep_points(),
        );
        for scheme in SCHEMES {
            for &rate in &rates {
                let mut s = scenario(kind, scheme, ctx);
                s.offered_rps = rate;
                cells.push((kind, s));
            }
        }
    }
    let cells = ctx.map("chaos", cells, |(kind, s)| Cell {
        kind,
        run: ctx.run_sim(s),
    });
    ChaosResult { cells }
}

/// The chaos shootout in the experiment registry.
pub struct Chaos;

impl Experiment for Chaos {
    fn id(&self) -> &'static str {
        "chaos"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn tags(&self) -> &'static [&'static str] {
        &["table", "sweep", "chaos", "faults", "retry", "recovery"]
    }
    fn topology(&self) -> &'static str {
        "mixed"
    }
    fn run(&self, ctx: &RunCtx) -> Report {
        run(ctx).into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn smoke_run_covers_every_cell_and_recovery_is_exercised() {
        let ctx = RunCtx::new(Scale::Smoke).with_jobs(crate::harness::default_jobs());
        let r = run(&ctx);
        assert_eq!(
            r.cells.len(),
            KINDS.len() * SCHEMES.len() * Scale::Smoke.sweep_points()
        );
        for cell in &r.cells {
            // The storm is allowed to *win* against the non-NetClone
            // schemes: LÆDGE's coordinator wedges on leaked slots (see
            // the module docs), and C-Clone's doubled load under a tight
            // timeout collapses metastably (every response lands after
            // its request was evicted). Those cells must still show the
            // damage; every other cell must complete work.
            if cell.kind == "retry-storm" && cell.run.scheme != "NetClone" {
                assert!(
                    cell.run.client_lost > 0 || cell.run.completed > 0,
                    "{} {} neither completed nor lost anything",
                    cell.kind,
                    cell.run.scheme
                );
                continue;
            }
            assert!(cell.run.completed > 0, "{} {}", cell.kind, cell.run.scheme);
        }
        // Every fault kind actually triggered the recovery path.
        for kind in KINDS {
            assert!(
                r.cells
                    .iter()
                    .filter(|c| c.kind == kind)
                    .any(|c| c.run.client_retried > 0),
                "{kind} cells never retried"
            );
        }
        // The strained policy ran out of budget somewhere in the storm.
        assert!(
            r.cells
                .iter()
                .filter(|c| c.kind == "retry-storm")
                .any(|c| c.run.client_budget_exhausted > 0),
            "retry-storm never exhausted a budget"
        );
        // The flap congested the flapped rack's links.
        assert!(
            r.cells
                .iter()
                .filter(|c| c.kind == "linkflap")
                .any(|c| c.run.link_ecn_marks() > 0 || c.run.link_drops() > 0),
            "linkflap produced no congestion signal"
        );
        let report = r.into_report();
        assert!(report.to_markdown().contains("chaos"));
    }
}
