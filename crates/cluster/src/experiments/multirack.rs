//! Multi-rack scale-out (§3.7): the two-tier leaf/spine fabric.
//!
//! The paper deploys NetClone on one rack and sketches the multi-rack
//! story in §3.7: clone only at the client-side ToR, gate everything else
//! with `SWITCH_ID`, route plainly across the aggregation layer. This
//! experiment measures what that deployment actually costs: the same
//! fleet spread over 1, 2, and 4 racks (servers and clients round-robin),
//! swept over offered load for each scheme. Two effects compose:
//!
//! * every cross-rack RPC pays two extra switch passes plus two
//!   inter-rack link traversals each way, lifting the latency floor;
//! * each client-side ToR only learns server states from the responses
//!   *it* terminates, so its idle-tracking confidence degrades as the
//!   fleet spreads — visible in the clone-win ratio.

use netclone_stats::{Report, Table};
use netclone_workloads::exp25;

use crate::harness::{Experiment, RunCtx};
use crate::metrics::RunResult;
use crate::scenario::Scenario;
use crate::scheme::Scheme;
use crate::sweep::capacity_fractions;
use crate::topology::Topology;

const TITLE: &str = "Multi-rack scale-out: leaf/spine fabric (§3.7)";

/// Rack counts under test (1 = the paper's single-rack testbed).
pub const RACK_COUNTS: [usize; 3] = [1, 2, 4];

/// Schemes under test.
pub const SCHEMES: [Scheme; 2] = [Scheme::Baseline, Scheme::NETCLONE];

/// One measured cell of the sweep.
pub struct Cell {
    /// Number of racks.
    pub racks: usize,
    /// The full run result.
    pub run: RunResult,
}

/// The typed result: every (racks, scheme, load) cell, in sweep order.
pub struct MultiRackResult {
    /// The measured cells.
    pub cells: Vec<Cell>,
}

impl MultiRackResult {
    /// Renders the sweep as one table: racks × scheme × load rows with
    /// the paper's headline metrics plus the cloning diagnostics.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new([
            "racks",
            "scheme",
            "offered (MRPS)",
            "achieved (MRPS)",
            "p50 (us)",
            "p99 (us)",
            "clone rate",
            "clone-win ratio",
        ]);
        for cell in &self.cells {
            let (p50, p99, _) = cell.run.percentiles_us();
            t.row([
                cell.racks.to_string(),
                cell.run.scheme.to_string(),
                format!("{:.3}", cell.run.offered_rps / 1e6),
                format!("{:.3}", cell.run.achieved_mrps()),
                format!("{p50:.1}"),
                format!("{p99:.1}"),
                format!("{:.3}", cell.run.switch.clone_rate()),
                format!("{:.3}", cell.run.clone_win_ratio()),
            ]);
        }
        t
    }

    /// Converts the sweep into the unified report artifact.
    pub fn into_report(self) -> Report {
        let table = self.to_table();
        Report::new("multirack", TITLE).with_table(table)
    }

    /// p99 of the given (racks, scheme) series at the highest load point
    /// (for shape assertions).
    pub fn p99_at_peak(&self, racks: usize, scheme: &str) -> Option<f64> {
        self.cells
            .iter()
            .rev()
            .find(|c| c.racks == racks && c.run.scheme == scheme)
            .map(|c| c.run.p99_us())
    }
}

/// Runs the sweep on the given context.
pub fn run(ctx: &RunCtx) -> MultiRackResult {
    let mut template = Scenario::synthetic_default(Scheme::Baseline, exp25(), 1.0);
    template.warmup_ns = ctx.scale.warmup_ns();
    template.measure_ns = ctx.scale.measure_ns();
    let rates = capacity_fractions(&template, 0.3, 0.9, ctx.scale.sweep_points());

    let mut cells: Vec<(usize, Scenario)> = Vec::new();
    for &racks in &RACK_COUNTS {
        for scheme in SCHEMES {
            for &rate in &rates {
                let mut s = template.clone();
                s.scheme = scheme;
                s.offered_rps = rate;
                s.topology = Topology::uniform(racks);
                cells.push((racks, s));
            }
        }
    }
    let cells = ctx.map("multirack", cells, |(racks, s)| Cell {
        racks,
        run: ctx.run_sim(s),
    });
    MultiRackResult { cells }
}

/// The multi-rack sweep in the experiment registry.
pub struct MultiRack;

impl Experiment for MultiRack {
    fn id(&self) -> &'static str {
        "multirack"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn tags(&self) -> &'static [&'static str] {
        &["table", "sweep", "topology", "multirack"]
    }
    fn topology(&self) -> &'static str {
        "leaf/spine"
    }
    fn run(&self, ctx: &RunCtx) -> Report {
        run(ctx).into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn smoke_run_covers_every_cell() {
        let ctx = RunCtx::new(Scale::Smoke).with_jobs(crate::harness::default_jobs());
        let r = run(&ctx);
        assert_eq!(
            r.cells.len(),
            RACK_COUNTS.len() * SCHEMES.len() * Scale::Smoke.sweep_points()
        );
        for cell in &r.cells {
            assert!(
                cell.run.completed > 0,
                "{}r {}",
                cell.racks,
                cell.run.scheme
            );
            let switches = if cell.racks == 1 { 1 } else { cell.racks + 1 };
            assert_eq!(cell.run.per_switch.len(), switches);
        }
        // NetClone still clones — and still beats the baseline tail at
        // the peak load point — in every multi-rack shape.
        for &racks in &RACK_COUNTS {
            let cloned: u64 = r
                .cells
                .iter()
                .filter(|c| c.racks == racks && c.run.scheme == "NetClone")
                .map(|c| c.run.switch.cloned)
                .sum();
            assert!(cloned > 0, "no clones at {racks} racks");
            let nc = r.p99_at_peak(racks, "NetClone").expect("NetClone series");
            let base = r.p99_at_peak(racks, "Baseline").expect("Baseline series");
            assert!(nc < base, "{racks} racks: p99 {nc} >= baseline {base}");
        }
        let report = r.into_report();
        assert!(report.to_markdown().contains("multirack"));
    }
}
