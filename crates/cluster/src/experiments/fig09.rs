//! Figure 9: "Impact of the number of servers."
//!
//! Baseline vs NetClone at 2, 4, and 6 worker servers under Exp(25).
//!
//! Expected shape (§5.3.2): NetClone keeps lower tail latency at every
//! scale; with 2 or 4 servers it may do *worse* than the baseline at very
//! high loads (clone-drop processing cost + herding on a small idle pool),
//! and the effect fades at 6 servers.

use netclone_stats::Report;
use netclone_workloads::exp25;

use crate::calib;
use crate::experiments::panel::Figure;
use crate::harness::{run_sweeps, Experiment, RunCtx, SweepSpec};
use crate::scenario::{Scenario, ServerSpec};
use crate::scheme::Scheme;
use crate::sweep::capacity_fractions;

const TITLE: &str = "Impact of the number of servers (Exp(25); 2/4/6 workers)";

/// Runs the figure on the given context.
pub fn run(ctx: &RunCtx) -> Figure {
    let mut specs = Vec::new();
    for n_servers in [2usize, 4, 6] {
        let mut template = Scenario::synthetic_default(Scheme::Baseline, exp25(), 1.0);
        template.servers = vec![
            ServerSpec {
                workers: calib::SYNTHETIC_WORKERS
            };
            n_servers
        ];
        template.warmup_ns = ctx.scale.warmup_ns();
        template.measure_ns = ctx.scale.measure_ns();
        // "very high loads" included: run past the knee.
        let rates = capacity_fractions(&template, 0.1, 1.0, ctx.scale.sweep_points());
        for scheme in [Scheme::Baseline, Scheme::NETCLONE] {
            let mut t = template.clone();
            t.scheme = scheme;
            specs.push(SweepSpec {
                panel: format!("{n_servers} servers"),
                scheme: match (scheme, n_servers) {
                    (Scheme::Baseline, 2) => "Baseline(2)",
                    (Scheme::Baseline, 4) => "Baseline(4)",
                    (Scheme::Baseline, _) => "Baseline(6)",
                    (_, 2) => "NetClone(2)",
                    (_, 4) => "NetClone(4)",
                    (_, _) => "NetClone(6)",
                },
                template: t,
                rates: rates.clone(),
            });
        }
    }
    Figure {
        id: "fig09",
        title: TITLE,
        panels: run_sweeps(ctx, "fig09", specs),
    }
}

/// Figure 9 in the experiment registry.
pub struct Fig09;

impl Experiment for Fig09 {
    fn id(&self) -> &'static str {
        "fig09"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn tags(&self) -> &'static [&'static str] {
        &["figure", "sweep", "scalability"]
    }
    fn run(&self, ctx: &RunCtx) -> Report {
        run(ctx).into_report()
    }
}
