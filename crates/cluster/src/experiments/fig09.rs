//! Figure 9: "Impact of the number of servers."
//!
//! Baseline vs NetClone at 2, 4, and 6 worker servers under Exp(25).
//!
//! Expected shape (§5.3.2): NetClone keeps lower tail latency at every
//! scale; with 2 or 4 servers it may do *worse* than the baseline at very
//! high loads (clone-drop processing cost + herding on a small idle pool),
//! and the effect fades at 6 servers.

use netclone_workloads::exp25;

use crate::calib;
use crate::experiments::panel::{Figure, Panel, Series};
use crate::experiments::scale::Scale;
use crate::scenario::{Scenario, ServerSpec};
use crate::scheme::Scheme;
use crate::sweep::{capacity_fractions, sweep};

/// Runs the figure at the given scale.
pub fn run(scale: Scale) -> Figure {
    let mut panels = Vec::new();
    for n_servers in [2usize, 4, 6] {
        let mut template = Scenario::synthetic_default(Scheme::Baseline, exp25(), 1.0);
        template.servers = vec![
            ServerSpec {
                workers: calib::SYNTHETIC_WORKERS
            };
            n_servers
        ];
        template.warmup_ns = scale.warmup_ns();
        template.measure_ns = scale.measure_ns();
        // "very high loads" included: run past the knee.
        let rates = capacity_fractions(&template, 0.1, 1.0, scale.sweep_points());
        let mut series = Vec::new();
        for scheme in [Scheme::Baseline, Scheme::NETCLONE] {
            let mut t = template.clone();
            t.scheme = scheme;
            series.push(Series {
                scheme: match (scheme, n_servers) {
                    (Scheme::Baseline, 2) => "Baseline(2)",
                    (Scheme::Baseline, 4) => "Baseline(4)",
                    (Scheme::Baseline, _) => "Baseline(6)",
                    (_, 2) => "NetClone(2)",
                    (_, 4) => "NetClone(4)",
                    (_, _) => "NetClone(6)",
                },
                points: sweep(&t, &rates),
            });
        }
        panels.push(Panel {
            name: format!("{n_servers} servers"),
            series,
        });
    }
    Figure {
        id: "fig09",
        title: "Impact of the number of servers (Exp(25); 2/4/6 workers)",
        panels,
    }
}
