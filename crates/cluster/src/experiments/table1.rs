//! Table 1: "Comparison to existing works."
//!
//! The qualitative capability matrix, derived from the implemented
//! policies rather than hard-coded prose: each property corresponds to a
//! measurable behaviour of the implementations in this repository (the
//! cross-references are listed in EXPERIMENTS.md).

use netclone_stats::{Report, Table};

use crate::harness::{Experiment, RunCtx};

const TITLE: &str = "Comparison to existing works";

/// One row of the comparison.
pub struct SchemeProperties {
    /// Scheme name.
    pub name: &'static str,
    /// Where cloning decisions are made.
    pub cloning_point: &'static str,
    /// Load-aware cloning decisions?
    pub dynamic_cloning: bool,
    /// Scales beyond a single coordinator CPU?
    pub scalable: bool,
    /// Sustains the cluster's full throughput?
    pub high_throughput: bool,
    /// Adds no microsecond-scale decision latency?
    pub low_latency_overhead: bool,
}

/// The three compared systems, as implemented here.
pub fn rows() -> Vec<SchemeProperties> {
    vec![
        SchemeProperties {
            name: "C-Clone",
            cloning_point: "Client",
            dynamic_cloning: false, // always duplicates (hosts::ClientMode::DirectDuplicate)
            scalable: true,         // no central component
            high_throughput: false, // halves capacity (Fig. 7)
            low_latency_overhead: true, // no extra hop
        },
        SchemeProperties {
            name: "LAEDGE",
            cloning_point: "Coordinator",
            dynamic_cloning: true, // clones only on >=2 idle (policies::laedge)
            scalable: false,       // coordinator CPU bound (Fig. 8)
            high_throughput: false, // ~0.5 MRPS cap (Fig. 8)
            low_latency_overhead: false, // two extra hops + CPU queueing
        },
        SchemeProperties {
            name: "NetClone",
            cloning_point: "Switch",
            dynamic_cloning: true, // state-tracked cloning (core Algorithm 1)
            scalable: true,        // per-packet ns processing in the ASIC
            high_throughput: true, // matches baseline capacity (Fig. 7)
            low_latency_overhead: true, // nanosecond-scale decisions (§2.3)
        },
    ]
}

fn mark(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

/// Renders the table.
pub fn to_table() -> Table {
    let mut t = Table::new(["", "C-Clone", "LAEDGE", "NetClone"]);
    let r = rows();
    t.row([
        "Cloning point",
        r[0].cloning_point,
        r[1].cloning_point,
        r[2].cloning_point,
    ]);
    t.row([
        "Dynamic cloning",
        mark(r[0].dynamic_cloning),
        mark(r[1].dynamic_cloning),
        mark(r[2].dynamic_cloning),
    ]);
    t.row([
        "Scalability",
        mark(r[0].scalable),
        mark(r[1].scalable),
        mark(r[2].scalable),
    ]);
    t.row([
        "High throughput",
        mark(r[0].high_throughput),
        mark(r[1].high_throughput),
        mark(r[2].high_throughput),
    ]);
    t.row([
        "Low latency overhead",
        mark(r[0].low_latency_overhead),
        mark(r[1].low_latency_overhead),
        mark(r[2].low_latency_overhead),
    ]);
    t
}

/// Builds the unified report artifact.
pub fn report() -> Report {
    Report::new("tab01", TITLE).with_table(to_table())
}

/// Table 1 in the experiment registry (pure — ignores the context).
pub struct Tab01;

impl Experiment for Tab01 {
    fn id(&self) -> &'static str {
        "tab01"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn tags(&self) -> &'static [&'static str] {
        &["table", "qualitative"]
    }
    fn run(&self, _ctx: &RunCtx) -> Report {
        report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_paper_table_1() {
        let r = rows();
        // C-Clone: × dynamic, ✓ scalable, × throughput, ✓ latency.
        assert!(!r[0].dynamic_cloning && r[0].scalable);
        assert!(!r[0].high_throughput && r[0].low_latency_overhead);
        // LÆDGE: ✓ dynamic, × scalable, × throughput, × latency.
        assert!(r[1].dynamic_cloning && !r[1].scalable);
        assert!(!r[1].high_throughput && !r[1].low_latency_overhead);
        // NetClone: ✓ everywhere.
        assert!(r[2].dynamic_cloning && r[2].scalable);
        assert!(r[2].high_throughput && r[2].low_latency_overhead);
    }

    #[test]
    fn renders_five_property_rows() {
        assert_eq!(to_table().len(), 5);
        assert!(report().to_markdown().contains("Cloning point"));
    }
}
