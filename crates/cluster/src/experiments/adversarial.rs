//! The adversarial scenario suite: heavy tails, hot keys, and mid-run
//! degradation, as a seed-pinned policy shootout.
//!
//! The paper's sweeps (Figs. 7–16) are uniform and failure-free, but
//! NetClone's value proposition is tail latency *under adversity*. This
//! experiment runs NetClone against LÆDGE and plain duplication
//! (C-Clone) across four adversarial shapes:
//!
//! * **bimodal** — the paper's 90/10 25 µs/250 µs mix, the mild case;
//! * **heavytail** — bounded-Pareto classes (α = 1.3, 5 µs–2.5 ms): the
//!   p999 class sits two orders of magnitude past the median, so one
//!   unlucky draw dominates a request's fate and racing two servers
//!   ([`Scheme::CClone`] always, NetClone when both targets look idle)
//!   is the only lever;
//! * **zipf-hotkey** — a KV GET mix over a Zipf-0.99 population with a
//!   cache-aware hit/miss cost split ([`HotKeyCost`]): hot keys are
//!   cheap hits, the Zipf tail pays a 10× miss path — service bimodality
//!   induced by *key popularity*, the Ditto-style fidelity shape;
//! * **slowdown** — a gray failure: mid-window, one server's service
//!   times inflate 4× ([`SlowdownPlan`]) and recover later. The switch
//!   never removes the server (it still answers), so fail-stop handling
//!   does nothing and only cloning can route a request's *second* copy
//!   around the slow machine;
//! * **drain** — a 4-rack leaf/spine fabric where a server-bearing leaf
//!   stops forwarding mid-window and returns with cold soft state
//!   ([`DrainPlan`]) — the multi-rack degradation case.
//!
//! Every degradation edge is a fabric-domain-0 control event, so serial
//! and sharded runs are byte-identical (CI diffs `--shards 1` vs
//! `--shards 4` on this experiment's JSON).

use netclone_kvstore::{HotKeyCost, ServiceCostModel};
use netclone_stats::{Report, Table};
use netclone_workloads::{bimodal_25_250, exp25, heavy_tail_25};

use crate::harness::{Experiment, RunCtx};
use crate::metrics::RunResult;
use crate::scenario::{DrainPlan, Scenario, SlowdownPlan, Workload};
use crate::scheme::Scheme;
use crate::sweep::capacity_fractions;
use crate::topology::Topology;

const TITLE: &str = "Adversarial shootout: heavy tails, hot keys, mid-run degradation";

/// The adversarial scenario kinds, in report order.
pub const KINDS: [&str; 5] = ["bimodal", "heavytail", "zipf-hotkey", "slowdown", "drain"];

/// Schemes under test: the in-network policy, the coordinator policy,
/// and unconditional client duplication.
pub const SCHEMES: [Scheme; 3] = [Scheme::NETCLONE, Scheme::Laedge, Scheme::CClone];

/// Load fractions swept (of each template's own capacity; duplication
/// doubles its effective load, so the sweep tops out below saturation
/// for the single-copy schemes and *above* it for C-Clone — that
/// asymmetry is the point of the comparison).
pub const LOAD_RANGE: (f64, f64) = (0.3, 0.7);

/// The hot-key split of the zipf-hotkey scenario: top 1 000 ranks of a
/// 10 000-key population resident, misses 10× the Redis hit cost.
pub fn hot_key_model() -> HotKeyCost {
    HotKeyCost::redis_with_backing_store(1_000)
}

/// The scenario template of one adversarial kind (offered load filled in
/// by the sweep). Degradation windows sit at the middle half of the
/// measurement window, so they scale with `--scale`.
pub fn scenario(kind: &str, scheme: Scheme, ctx: &RunCtx) -> Scenario {
    let mut s = match kind {
        "bimodal" => Scenario::synthetic_default(scheme, bimodal_25_250(), 1.0),
        "heavytail" => Scenario::synthetic_default(scheme, heavy_tail_25(), 1.0),
        "zipf-hotkey" => {
            let mut s = Scenario::kv_default(
                scheme,
                Workload::Kv {
                    get_frac: 0.99,
                    scan_count: 100,
                    objects: 10_000,
                    zipf_theta: 0.99,
                    cost: ServiceCostModel::redis(),
                },
                1.0,
            );
            s.service_model.hot_key = Some(hot_key_model());
            s
        }
        "slowdown" => Scenario::synthetic_default(scheme, exp25(), 1.0),
        "drain" => {
            let mut s = Scenario::synthetic_default(scheme, exp25(), 1.0);
            s.topology = Topology::uniform(4);
            s
        }
        other => panic!("unknown adversarial kind {other:?}"),
    };
    s.warmup_ns = ctx.scale.warmup_ns();
    s.measure_ns = ctx.scale.measure_ns();
    let mid_start = s.warmup_ns + s.measure_ns / 4;
    let mid_end = s.warmup_ns + 3 * s.measure_ns / 4;
    match kind {
        "slowdown" => {
            s.degradation.slowdown = Some(SlowdownPlan {
                sid: 0,
                start_ns: mid_start,
                end_ns: mid_end,
                factor: 4.0,
            });
        }
        "drain" => {
            // Rack 3 holds server 3 and no client (round-robin placement:
            // clients 0–1 → racks 0–1) and is not the coordinator's rack
            // (rack 0), so every scheme keeps its control path.
            s.degradation.drain = Some(DrainPlan {
                rack: 3,
                drain_at_ns: mid_start,
                restore_at_ns: mid_end,
            });
        }
        _ => {}
    }
    s
}

/// One measured cell of the shootout.
pub struct Cell {
    /// The adversarial kind (one of [`KINDS`]).
    pub kind: &'static str,
    /// The full run result.
    pub run: RunResult,
}

/// The typed result: every (kind, scheme, load) cell, in sweep order.
pub struct AdversarialResult {
    /// The measured cells.
    pub cells: Vec<Cell>,
}

impl AdversarialResult {
    /// Renders the shootout as one table: kind × scheme × load rows with
    /// the tail percentiles and the clone-win diagnostic.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new([
            "scenario",
            "scheme",
            "offered (MRPS)",
            "achieved (MRPS)",
            "p50 (us)",
            "p99 (us)",
            "p999 (us)",
            "clone-win ratio",
        ]);
        for cell in &self.cells {
            let (p50, p99, p999) = cell.run.percentiles_us();
            t.row([
                cell.kind.to_string(),
                cell.run.scheme.to_string(),
                format!("{:.3}", cell.run.offered_rps / 1e6),
                format!("{:.3}", cell.run.achieved_mrps()),
                format!("{p50:.1}"),
                format!("{p99:.1}"),
                format!("{p999:.1}"),
                format!("{:.3}", cell.run.clone_win_ratio()),
            ]);
        }
        t
    }

    /// Converts the shootout into the unified report artifact.
    pub fn into_report(self) -> Report {
        let table = self.to_table();
        Report::new("adversarial", TITLE).with_table(table)
    }

    /// p99 of the given (kind, scheme) series at the highest load point
    /// (for shape assertions).
    pub fn p99_at_peak(&self, kind: &str, scheme: &str) -> Option<f64> {
        self.cells
            .iter()
            .rev()
            .find(|c| c.kind == kind && c.run.scheme == scheme)
            .map(|c| c.run.p99_us())
    }
}

/// Runs the shootout on the given context.
pub fn run(ctx: &RunCtx) -> AdversarialResult {
    let mut cells: Vec<(&'static str, Scenario)> = Vec::new();
    for kind in KINDS {
        // Rates come from each kind's own capacity (the heavy-tail and
        // hot-key models shift the mean service time), measured once per
        // kind so every scheme sweeps the identical offered loads.
        let template = scenario(kind, Scheme::Baseline, ctx);
        let rates = capacity_fractions(
            &template,
            LOAD_RANGE.0,
            LOAD_RANGE.1,
            ctx.scale.sweep_points(),
        );
        for scheme in SCHEMES {
            for &rate in &rates {
                let mut s = scenario(kind, scheme, ctx);
                s.offered_rps = rate;
                cells.push((kind, s));
            }
        }
    }
    let cells = ctx.map("adversarial", cells, |(kind, s)| Cell {
        kind,
        run: ctx.run_sim(s),
    });
    AdversarialResult { cells }
}

/// The adversarial shootout in the experiment registry.
pub struct Adversarial;

impl Experiment for Adversarial {
    fn id(&self) -> &'static str {
        "adversarial"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn tags(&self) -> &'static [&'static str] {
        &["table", "sweep", "adversarial", "degradation", "laedge"]
    }
    fn topology(&self) -> &'static str {
        "mixed"
    }
    fn run(&self, ctx: &RunCtx) -> Report {
        run(ctx).into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn smoke_run_covers_every_cell_and_netclone_wins_under_slowdown() {
        let ctx = RunCtx::new(Scale::Smoke).with_jobs(crate::harness::default_jobs());
        let r = run(&ctx);
        assert_eq!(
            r.cells.len(),
            KINDS.len() * SCHEMES.len() * Scale::Smoke.sweep_points()
        );
        for cell in &r.cells {
            assert!(cell.run.completed > 0, "{} {}", cell.kind, cell.run.scheme);
        }
        // The acceptance shape: under the gray-failure slowdown, cloning
        // with the idle signal beats unconditional duplication on p99 at
        // the peak load point (C-Clone's doubled load saturates first).
        let nc = r.p99_at_peak("slowdown", "NetClone").expect("series");
        let dup = r.p99_at_peak("slowdown", "C-Clone").expect("series");
        assert!(nc < dup, "slowdown p99: NetClone {nc} >= C-Clone {dup}");
        // The drain cells actually exercised the drain: packets were
        // lost while the leaf was down.
        assert!(
            r.cells
                .iter()
                .filter(|c| c.kind == "drain")
                .all(|c| c.run.packets_lost > 0),
            "drain cells lost no packets"
        );
        let report = r.into_report();
        assert!(report.to_markdown().contains("adversarial"));
    }
}
