//! Figure 7: "Experimental results for synthetic workloads."
//!
//! Four panels — Exp(25), Bimodal(90%-25,10%-250), Exp(50),
//! Bimodal(90%-50,10%-500) — each plotting 99th-percentile latency versus
//! achieved throughput for Baseline, C-Clone, and NetClone on 6 worker
//! servers.
//!
//! Expected shape (paper §5.2): C-Clone's throughput is limited by static
//! cloning; NetClone keeps the baseline's maximum throughput but with
//! lower tail latency at low/mid loads (≈1.48×/1.27× average improvement
//! for the 25 μs workloads); for the 50 μs workloads the high-load
//! improvement becomes negligible.

use netclone_stats::Report;
use netclone_workloads::{bimodal_25_250, bimodal_50_500, exp25, exp50, SyntheticWorkload};

use crate::experiments::panel::Figure;
use crate::harness::{run_sweeps, Experiment, RunCtx, SweepSpec};
use crate::scenario::Scenario;
use crate::scheme::Scheme;
use crate::sweep::capacity_fractions;

const TITLE: &str =
    "Synthetic workloads: p99 latency vs throughput (Baseline / C-Clone / NetClone, 6 workers)";

/// The figure's workloads, in panel order.
pub fn workloads() -> Vec<SyntheticWorkload> {
    vec![exp25(), bimodal_25_250(), exp50(), bimodal_50_500()]
}

/// Runs the figure on the given context.
pub fn run(ctx: &RunCtx) -> Figure {
    let schemes = [Scheme::Baseline, Scheme::CClone, Scheme::NETCLONE];
    let mut specs = Vec::new();
    for wl in workloads() {
        let mut template = Scenario::synthetic_default(Scheme::Baseline, wl, 1.0);
        template.warmup_ns = ctx.scale.warmup_ns();
        template.measure_ns = ctx.scale.measure_ns();
        let rates = capacity_fractions(&template, 0.08, 0.95, ctx.scale.sweep_points());
        for scheme in schemes {
            let mut t = template.clone();
            t.scheme = scheme;
            specs.push(SweepSpec {
                panel: wl.label(),
                scheme: scheme.label(),
                template: t,
                rates: rates.clone(),
            });
        }
    }
    Figure {
        id: "fig07",
        title: TITLE,
        panels: run_sweeps(ctx, "fig07", specs),
    }
}

/// Figure 7 in the experiment registry.
pub struct Fig07;

impl Experiment for Fig07 {
    fn id(&self) -> &'static str {
        "fig07"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn tags(&self) -> &'static [&'static str] {
        &["figure", "sweep", "synthetic"]
    }
    fn run(&self, ctx: &RunCtx) -> Report {
        run(ctx).into_report()
    }
}
