//! Figure 7: "Experimental results for synthetic workloads."
//!
//! Four panels — Exp(25), Bimodal(90%-25,10%-250), Exp(50),
//! Bimodal(90%-50,10%-500) — each plotting 99th-percentile latency versus
//! achieved throughput for Baseline, C-Clone, and NetClone on 6 worker
//! servers.
//!
//! Expected shape (paper §5.2): C-Clone's throughput is limited by static
//! cloning; NetClone keeps the baseline's maximum throughput but with
//! lower tail latency at low/mid loads (≈1.48×/1.27× average improvement
//! for the 25 μs workloads); for the 50 μs workloads the high-load
//! improvement becomes negligible.

use netclone_workloads::{bimodal_25_250, bimodal_50_500, exp25, exp50, SyntheticWorkload};

use crate::experiments::panel::{Figure, Panel, Series};
use crate::experiments::scale::Scale;
use crate::scenario::Scenario;
use crate::scheme::Scheme;
use crate::sweep::{capacity_fractions, sweep};

/// The figure's workloads, in panel order.
pub fn workloads() -> Vec<SyntheticWorkload> {
    vec![exp25(), bimodal_25_250(), exp50(), bimodal_50_500()]
}

/// Runs the figure at the given scale.
pub fn run(scale: Scale) -> Figure {
    let schemes = [Scheme::Baseline, Scheme::CClone, Scheme::NETCLONE];
    let mut panels = Vec::new();
    for wl in workloads() {
        let mut template = Scenario::synthetic_default(Scheme::Baseline, wl, 1.0);
        template.warmup_ns = scale.warmup_ns();
        template.measure_ns = scale.measure_ns();
        let rates = capacity_fractions(&template, 0.08, 0.95, scale.sweep_points());
        let mut series = Vec::new();
        for scheme in schemes {
            let mut t = template.clone();
            t.scheme = scheme;
            series.push(Series {
                scheme: scheme.label(),
                points: sweep(&t, &rates),
            });
        }
        panels.push(Panel {
            name: wl.label(),
            series,
        });
    }
    Figure {
        id: "fig07",
        title: "Synthetic workloads: p99 latency vs throughput (Baseline / C-Clone / NetClone, 6 workers)",
        panels,
    }
}
