//! Shared shape of multi-panel, multi-scheme sweep figures
//! (Figs. 7–12, 14, 15): typed panels/series for shape assertions, and
//! the one conversion into the unified [`Report`] artifact.

use netclone_stats::{Report, Table};

use crate::sweep::SweepPoint;

/// One scheme's series within a panel.
pub struct Series {
    /// Scheme label (legend entry).
    pub scheme: &'static str,
    /// The sweep points.
    pub points: Vec<SweepPoint>,
}

/// One subfigure: a workload/configuration with several schemes.
pub struct Panel {
    /// Panel caption (e.g. `Exp(25)`).
    pub name: String,
    /// The plotted series.
    pub series: Vec<Series>,
}

impl Panel {
    /// p99 of the series named `scheme` at the sweep point closest to the
    /// given offered load, for shape assertions.
    pub fn p99_at(&self, scheme: &str, offered_mrps: f64) -> Option<f64> {
        let s = self.series.iter().find(|s| s.scheme == scheme)?;
        s.points
            .iter()
            .min_by(|a, b| {
                (a.offered_mrps - offered_mrps)
                    .abs()
                    .total_cmp(&(b.offered_mrps - offered_mrps).abs())
            })
            .map(|p| p.p99_us)
    }

    /// Maximum achieved throughput of the series named `scheme`, MRPS.
    pub fn max_achieved(&self, scheme: &str) -> Option<f64> {
        let s = self.series.iter().find(|s| s.scheme == scheme)?;
        s.points
            .iter()
            .map(|p| p.achieved_mrps)
            .max_by(f64::total_cmp)
    }
}

/// A complete figure.
pub struct Figure {
    /// Figure identifier (e.g. `fig07`).
    pub id: &'static str,
    /// Figure title (the paper caption).
    pub title: &'static str,
    /// The subfigures.
    pub panels: Vec<Panel>,
}

impl Figure {
    /// Renders the paper-style rows: one per (panel, scheme, load point).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new([
            "panel",
            "scheme",
            "offered (MRPS)",
            "achieved (MRPS)",
            "p50 (us)",
            "p99 (us)",
            "p99.9 (us)",
            "clone rate",
        ]);
        for panel in &self.panels {
            for series in &panel.series {
                for p in &series.points {
                    t.row([
                        panel.name.clone(),
                        series.scheme.to_string(),
                        format!("{:.3}", p.offered_mrps),
                        format!("{:.3}", p.achieved_mrps),
                        format!("{:.1}", p.p50_us),
                        format!("{:.1}", p.p99_us),
                        format!("{:.1}", p.p999_us),
                        format!("{:.3}", p.clone_rate),
                    ]);
                }
            }
        }
        t
    }

    /// Converts the figure into the unified report artifact (one
    /// section; CSV stem = figure id).
    pub fn into_report(self) -> Report {
        let table = self.to_table();
        Report::new(self.id, self.title).with_table(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RunResult;
    use netclone_core::SwitchCounters;
    use netclone_stats::{LatencyHistogram, TimeSeries};

    fn dummy_point(offered: f64, p99: f64, achieved: f64) -> SweepPoint {
        SweepPoint {
            offered_mrps: offered,
            achieved_mrps: achieved,
            p50_us: p99 / 4.0,
            p99_us: p99,
            p999_us: p99 * 2.0,
            mean_us: p99 / 3.0,
            clone_rate: 0.5,
            empty_queue_fraction: 0.5,
            run: RunResult {
                scheme: "x",
                workload: "w".into(),
                offered_rps: offered * 1e6,
                achieved_rps: achieved * 1e6,
                latency: LatencyHistogram::new(),
                generated: 0,
                completed: 0,
                client_redundant: 0,
                client_clone_wins: 0,
                client_lost: 0,
                client_retried: 0,
                client_retry_wins: 0,
                client_budget_exhausted: 0,
                lifetime: Default::default(),
                client_outstanding: 0,
                switch: SwitchCounters::default(),
                per_switch: vec![SwitchCounters::default()],
                server_clone_drops: 0,
                server_idle_reports: 0,
                server_responses: 0,
                throughput_series: TimeSeries::new(1_000_000, 1),
                packets_lost: 0,
                per_server_served: vec![],
                events: 0,
                link_stats: vec![],
                link_totals: None,
            },
        }
    }

    #[test]
    fn panel_lookups() {
        let panel = Panel {
            name: "Exp(25)".into(),
            series: vec![Series {
                scheme: "NetClone",
                points: vec![dummy_point(0.5, 100.0, 0.5), dummy_point(1.0, 200.0, 0.99)],
            }],
        };
        assert_eq!(panel.p99_at("NetClone", 0.6), Some(100.0));
        assert_eq!(panel.p99_at("NetClone", 0.9), Some(200.0));
        assert_eq!(panel.max_achieved("NetClone"), Some(0.99));
        assert_eq!(panel.p99_at("Nope", 0.5), None);
    }

    #[test]
    fn figure_converts_to_report() {
        let fig = Figure {
            id: "figXX",
            title: "test",
            panels: vec![Panel {
                name: "P".into(),
                series: vec![Series {
                    scheme: "Baseline",
                    points: vec![dummy_point(1.0, 50.0, 1.0)],
                }],
            }],
        };
        assert_eq!(fig.to_table().len(), 1);
        let report = fig.into_report();
        let md = report.to_markdown();
        assert!(md.contains("figXX"));
        assert!(md.contains("Baseline"));
        assert_eq!(report.sections.len(), 1);
        assert_eq!(report.sections[0].csv_stem, "figXX");
    }
}
