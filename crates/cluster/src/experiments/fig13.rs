//! Figure 13: "Confidence of the empty queue for state signaling."
//!
//! (a) The fraction of responses reporting an empty queue as offered load
//! sweeps 10–100 % — it declines with load but never reaches zero, which
//! is both why NetClone trails C-Clone at low load and why cloning still
//! happens at high load (§5.6.1).
//!
//! (b) Ten repeated runs at 90 % load: mean ± σ of the p99 for Baseline vs
//! NetClone — NetClone can occasionally lose a run but wins on average.

use std::path::Path;

use netclone_stats::{Summary, Table};
use netclone_workloads::exp25;

use crate::experiments::scale::Scale;
use crate::scenario::Scenario;
use crate::scheme::Scheme;
use crate::sim::Sim;

/// Results of both subfigures.
pub struct Fig13 {
    /// (offered %, empty-queue fraction %) — subfigure (a).
    pub empty_queue: Vec<(f64, f64)>,
    /// p99 summary over repeats at 90 % load — subfigure (b).
    pub baseline_p99_us: Summary,
    /// NetClone's p99 summary at 90 % load.
    pub netclone_p99_us: Summary,
}

impl Fig13 {
    /// Renders subfigure (a) as a table.
    pub fn table_a(&self) -> Table {
        let mut t = Table::new(["offered load (%)", "portion of empty queues (%)"]);
        for &(load, frac) in &self.empty_queue {
            t.row([format!("{load:.0}"), format!("{frac:.1}")]);
        }
        t
    }

    /// Renders subfigure (b) as a table.
    pub fn table_b(&self) -> Table {
        let mut t = Table::new(["scheme", "mean p99 (us)", "std dev (us)", "runs"]);
        for (name, s) in [
            ("Baseline", &self.baseline_p99_us),
            ("NetClone", &self.netclone_p99_us),
        ] {
            t.row([
                name.to_string(),
                format!("{:.1}", s.mean()),
                format!("{:.1}", s.std_dev()),
                s.count().to_string(),
            ]);
        }
        t
    }

    /// Writes both CSVs.
    pub fn write_csv<P: AsRef<Path>>(&self, dir: P) -> std::io::Result<()> {
        self.table_a().write_csv(dir.as_ref().join("fig13a.csv"))?;
        self.table_b().write_csv(dir.as_ref().join("fig13b.csv"))
    }

    /// Renders both tables.
    pub fn render(&self) -> String {
        format!(
            "## fig13 — Confidence of the empty-queue signal\n\n### (a) empty queues vs load\n\n{}\n### (b) p99 at 90% load, {} runs\n\n{}",
            self.table_a().to_markdown(),
            self.baseline_p99_us.count(),
            self.table_b().to_markdown()
        )
    }
}

/// Runs the experiment at the given scale.
pub fn run(scale: Scale) -> Fig13 {
    let mut template = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1.0);
    template.warmup_ns = scale.warmup_ns();
    template.measure_ns = scale.measure_ns();
    let cap = template.capacity_rps();

    // (a): empty-queue fraction vs load, 10%..100%.
    let loads: Vec<f64> = match scale {
        Scale::Smoke => vec![10.0, 50.0, 90.0],
        _ => (1..=10).map(|i| i as f64 * 10.0).collect(),
    };
    let empty_queue = loads
        .iter()
        .map(|&pct| {
            let mut s = template.clone();
            s.offered_rps = cap * pct / 100.0;
            let run = Sim::run(s);
            (pct, run.empty_queue_fraction() * 100.0)
        })
        .collect();

    // (b): repeated runs at 90% load with different seeds.
    let mut baseline = Summary::new();
    let mut netclone = Summary::new();
    for rep in 0..scale.repeats() {
        for (scheme, acc) in [
            (Scheme::Baseline, &mut baseline),
            (Scheme::NETCLONE, &mut netclone),
        ] {
            let mut s = template.clone();
            s.scheme = scheme;
            s.offered_rps = cap * 0.9;
            s.seed = 1000 + rep as u64;
            let run = Sim::run(s);
            acc.add(run.p99_us());
        }
    }
    Fig13 {
        empty_queue,
        baseline_p99_us: baseline,
        netclone_p99_us: netclone,
    }
}
