//! Figure 13: "Confidence of the empty queue for state signaling."
//!
//! (a) The fraction of responses reporting an empty queue as offered load
//! sweeps 10–100 % — it declines with load but never reaches zero, which
//! is both why NetClone trails C-Clone at low load and why cloning still
//! happens at high load (§5.6.1).
//!
//! (b) Ten repeated runs at 90 % load: mean ± σ of the p99 for Baseline vs
//! NetClone — NetClone can occasionally lose a run but wins on average.

use netclone_stats::{Report, Summary, Table};
use netclone_workloads::exp25;

use crate::harness::{Experiment, RunCtx};
use crate::scenario::Scenario;
use crate::scheme::Scheme;

const TITLE: &str = "Confidence of the empty-queue signal";

/// Results of both subfigures.
pub struct Fig13 {
    /// (offered %, empty-queue fraction %) — subfigure (a).
    pub empty_queue: Vec<(f64, f64)>,
    /// p99 summary over repeats at 90 % load — subfigure (b).
    pub baseline_p99_us: Summary,
    /// NetClone's p99 summary at 90 % load.
    pub netclone_p99_us: Summary,
}

impl Fig13 {
    /// Renders subfigure (a) as a table.
    pub fn table_a(&self) -> Table {
        let mut t = Table::new(["offered load (%)", "portion of empty queues (%)"]);
        for &(load, frac) in &self.empty_queue {
            t.row([format!("{load:.0}"), format!("{frac:.1}")]);
        }
        t
    }

    /// Renders subfigure (b) as a table.
    pub fn table_b(&self) -> Table {
        let mut t = Table::new(["scheme", "mean p99 (us)", "std dev (us)", "runs"]);
        for (name, s) in [
            ("Baseline", &self.baseline_p99_us),
            ("NetClone", &self.netclone_p99_us),
        ] {
            t.row([
                name.to_string(),
                format!("{:.1}", s.mean()),
                format!("{:.1}", s.std_dev()),
                s.count().to_string(),
            ]);
        }
        t
    }

    /// Converts both subfigures into the unified report artifact.
    pub fn into_report(self) -> Report {
        let runs = self.baseline_p99_us.count();
        Report::new("fig13", TITLE)
            .with_section("(a) empty queues vs load", "fig13a", self.table_a())
            .with_section(
                format!("(b) p99 at 90% load, {runs} runs"),
                "fig13b",
                self.table_b(),
            )
    }
}

/// Runs the experiment on the given context.
pub fn run(ctx: &RunCtx) -> Fig13 {
    let mut template = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1.0);
    template.warmup_ns = ctx.scale.warmup_ns();
    template.measure_ns = ctx.scale.measure_ns();
    let cap = template.capacity_rps();

    // (a): empty-queue fraction vs load, 10%..100%.
    let loads: Vec<f64> = match ctx.scale {
        crate::experiments::Scale::Smoke => vec![10.0, 50.0, 90.0],
        _ => (1..=10).map(|i| i as f64 * 10.0).collect(),
    };
    let empty_queue = ctx.map("fig13a", loads, |pct| {
        let mut s = template.clone();
        s.offered_rps = cap * pct / 100.0;
        let run = ctx.run_sim(s);
        (pct, run.empty_queue_fraction() * 100.0)
    });

    // (b): repeated runs at 90% load with different seeds.
    let mut cells = Vec::new();
    for rep in 0..ctx.scale.repeats() {
        for scheme in [Scheme::Baseline, Scheme::NETCLONE] {
            cells.push((rep, scheme));
        }
    }
    let p99s = ctx.map("fig13b", cells, |(rep, scheme)| {
        let mut s = template.clone();
        s.scheme = scheme;
        s.offered_rps = cap * 0.9;
        s.seed = 1000 + rep as u64;
        (scheme, ctx.run_sim(s).p99_us())
    });
    let mut baseline = Summary::new();
    let mut netclone = Summary::new();
    for (scheme, p99) in p99s {
        if scheme == Scheme::Baseline {
            baseline.add(p99);
        } else {
            netclone.add(p99);
        }
    }
    Fig13 {
        empty_queue,
        baseline_p99_us: baseline,
        netclone_p99_us: netclone,
    }
}

/// Figure 13 in the experiment registry.
pub struct Fig13Exp;

impl Experiment for Fig13Exp {
    fn id(&self) -> &'static str {
        "fig13"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn tags(&self) -> &'static [&'static str] {
        &["figure", "state-signal"]
    }
    fn run(&self, ctx: &RunCtx) -> Report {
        run(ctx).into_report()
    }
}
