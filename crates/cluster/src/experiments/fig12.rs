//! Figure 12: "Experimental results for Memcached."
//!
//! Identical protocol to Fig. 11 with the Memcached cost model (§5.5):
//! slightly cheaper per-op costs, same GET/SCAN mixes. Expected shape
//! matches Fig. 11 ("similar trends"); the paper reports a largest
//! improvement of 22.0× and a smallest of 1.06× for 99/1.

use crate::experiments::fig11;
use crate::experiments::panel::Figure;
use crate::experiments::scale::Scale;

/// Runs the figure at the given scale.
pub fn run(scale: Scale) -> Figure {
    fig11::run_kv(scale, true)
}
