//! Figure 12: "Experimental results for Memcached."
//!
//! Identical protocol to Fig. 11 with the Memcached cost model (§5.5):
//! slightly cheaper per-op costs, same GET/SCAN mixes. Expected shape
//! matches Fig. 11 ("similar trends"); the paper reports a largest
//! improvement of 22.0× and a smallest of 1.06× for 99/1.

use netclone_stats::Report;

use crate::experiments::fig11;
use crate::experiments::panel::Figure;
use crate::harness::{Experiment, RunCtx};

/// Runs the figure on the given context.
pub fn run(ctx: &RunCtx) -> Figure {
    fig11::run_kv(ctx, true)
}

/// Figure 12 in the experiment registry.
pub struct Fig12;

impl Experiment for Fig12 {
    fn id(&self) -> &'static str {
        "fig12"
    }
    fn title(&self) -> &'static str {
        fig11::TITLE_MEMCACHED
    }
    fn tags(&self) -> &'static [&'static str] {
        &["figure", "sweep", "kv", "memcached"]
    }
    fn run(&self, ctx: &RunCtx) -> Report {
        run(ctx).into_report()
    }
}
