//! Figure 8: "Comparison with the existing solutions."
//!
//! C-Clone vs LÆDGE vs NetClone on **five** worker servers (one host is
//! dedicated to the LÆDGE coordinator, §5.3.1), for Exp(25) and
//! Bimodal(90%-25,10%-250).
//!
//! Expected shape: "NetClone provides high throughput, while LÆDGE and
//! C-Clone exhibit low throughput … LÆDGE performs even worse than
//! C-Clone since it relies on a CPU-based coordinator."

use netclone_workloads::{bimodal_25_250, exp25};

use crate::calib;
use crate::experiments::panel::{Figure, Panel, Series};
use crate::experiments::scale::Scale;
use crate::scenario::{Scenario, ServerSpec};
use crate::scheme::Scheme;
use crate::sweep::{capacity_fractions, sweep};

/// Runs the figure at the given scale.
pub fn run(scale: Scale) -> Figure {
    let schemes = [Scheme::CClone, Scheme::Laedge, Scheme::NETCLONE];
    let mut panels = Vec::new();
    for wl in [exp25(), bimodal_25_250()] {
        let mut template = Scenario::synthetic_default(Scheme::CClone, wl, 1.0);
        template.servers = vec![
            ServerSpec {
                workers: calib::SYNTHETIC_WORKERS
            };
            5
        ];
        template.warmup_ns = scale.warmup_ns();
        template.measure_ns = scale.measure_ns();
        let rates = capacity_fractions(&template, 0.05, 0.9, scale.sweep_points());
        let mut series = Vec::new();
        for scheme in schemes {
            let mut t = template.clone();
            t.scheme = scheme;
            series.push(Series {
                scheme: scheme.label(),
                points: sweep(&t, &rates),
            });
        }
        panels.push(Panel {
            name: wl.label(),
            series,
        });
    }
    Figure {
        id: "fig08",
        title: "Scalability comparison: C-Clone / LAEDGE / NetClone (5 workers, one host as coordinator)",
        panels,
    }
}
