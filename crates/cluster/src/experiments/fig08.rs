//! Figure 8: "Comparison with the existing solutions."
//!
//! C-Clone vs LÆDGE vs NetClone on **five** worker servers (one host is
//! dedicated to the LÆDGE coordinator, §5.3.1), for Exp(25) and
//! Bimodal(90%-25,10%-250).
//!
//! Expected shape: "NetClone provides high throughput, while LÆDGE and
//! C-Clone exhibit low throughput … LÆDGE performs even worse than
//! C-Clone since it relies on a CPU-based coordinator."

use netclone_stats::Report;
use netclone_workloads::{bimodal_25_250, exp25};

use crate::calib;
use crate::experiments::panel::Figure;
use crate::harness::{run_sweeps, Experiment, RunCtx, SweepSpec};
use crate::scenario::{Scenario, ServerSpec};
use crate::scheme::Scheme;
use crate::sweep::capacity_fractions;

const TITLE: &str =
    "Scalability comparison: C-Clone / LAEDGE / NetClone (5 workers, one host as coordinator)";

/// Runs the figure on the given context.
pub fn run(ctx: &RunCtx) -> Figure {
    let schemes = [Scheme::CClone, Scheme::Laedge, Scheme::NETCLONE];
    let mut specs = Vec::new();
    for wl in [exp25(), bimodal_25_250()] {
        let mut template = Scenario::synthetic_default(Scheme::CClone, wl, 1.0);
        template.servers = vec![
            ServerSpec {
                workers: calib::SYNTHETIC_WORKERS
            };
            5
        ];
        template.warmup_ns = ctx.scale.warmup_ns();
        template.measure_ns = ctx.scale.measure_ns();
        let rates = capacity_fractions(&template, 0.05, 0.9, ctx.scale.sweep_points());
        for scheme in schemes {
            let mut t = template.clone();
            t.scheme = scheme;
            specs.push(SweepSpec {
                panel: wl.label(),
                scheme: scheme.label(),
                template: t,
                rates: rates.clone(),
            });
        }
    }
    Figure {
        id: "fig08",
        title: TITLE,
        panels: run_sweeps(ctx, "fig08", specs),
    }
}

/// Figure 8 in the experiment registry.
pub struct Fig08;

impl Experiment for Fig08 {
    fn id(&self) -> &'static str {
        "fig08"
    }
    fn title(&self) -> &'static str {
        TITLE
    }
    fn tags(&self) -> &'static [&'static str] {
        &["figure", "sweep", "comparison", "laedge"]
    }
    fn run(&self, ctx: &RunCtx) -> Report {
        run(ctx).into_report()
    }
}
