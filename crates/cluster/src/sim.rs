//! The event-driven testbed simulation: the event loop only.
//!
//! Everything about *assembling* a testbed (scheme → switch engines,
//! hosts, workload streams, priming events) lives in
//! [`crate::build::ScenarioBuilder`]; this module drains the event queue
//! and keeps the measurement windows. Every switch is a
//! [`Box<dyn SwitchEngine>`](netclone_core::SwitchEngine) — the same
//! trait object the real-socket soft switch drives — so the simulator has
//! no per-scheme dispatch at all.
//!
//! Topology: a [`Fabric`] built from the
//! scenario's [`Topology`](crate::topology::Topology). The default single
//! rack (the paper's testbed) is one ToR switch with every host attached;
//! multi-rack shapes (§3.7) add per-rack leaves and an aggregation spine,
//! with `Ev::SwitchIn` carrying the switch index and
//! [`Fabric::hop`](crate::topology::Fabric::hop) walking emissions
//! between switches (each leaf↔spine traversal costs the topology's
//! inter-rack latency). The full fabric path — cloning at the client-side
//! ToR only, `SWITCH_ID`-gated pass-through elsewhere — is covered by
//! `tests/multirack.rs` and the topology proptests.
//! Ports: servers at `10+sid`, coordinator at 99, clients at `100+cid`,
//! uplinks per [`crate::topology`].
//!
//! Event flow for one RPC (NetClone scheme):
//!
//! ```text
//! Gen ─→ SwitchIn(req) ─→ ServerIn ─→ ServerDone ─→ SwitchIn(resp) ─→ ClientIn
//!            │ (clone)                                   │ (slower resp:
//!            └─→ ServerIn(clone) ─→ … ─┘                    filtered at switch)
//! ```

use netclone_core::SwitchCounters;
use netclone_des::{EventQueue, SimTime};
use netclone_hosts::{Admission, AppPacket, ClientMode, ClientSim, ServerSim};
use netclone_policies::LaedgeCoordinator;
use netclone_proto::{Ipv4, MsgType, PacketMeta, RpcOp, ServerId};
use netclone_stats::{LatencyHistogram, TimeSeries};
use netclone_workloads::{KvMix, PoissonArrivals, SyntheticWorkload};
use rand::rngs::StdRng;
use rand::Rng;

use crate::build::{ScenarioBuilder, COORD_PORT};
use crate::calib;
use crate::metrics::RunResult;
use crate::scenario::Scenario;
use crate::topology::{Fabric, Hop};

/// Simulation events.
pub(crate) enum Ev {
    /// Client `cid` generates its next request.
    Gen(usize),
    /// A packet reaches switch `idx` of the fabric.
    SwitchIn(usize, AppPacket),
    /// A packet reaches server `idx`'s NIC.
    ServerIn(usize, AppPacket),
    /// Server `idx` finishes serving `pkt` (valid only in `epoch`).
    ServerDone {
        idx: usize,
        epoch: u32,
        pkt: AppPacket,
    },
    /// A packet reaches client `cid`'s NIC.
    ClientIn(usize, AppPacket),
    /// A packet reaches the coordinator.
    CoordIn(AppPacket),
    /// Measurements start.
    EndWarmup,
    /// The fabric stops forwarding (Fig. 16; see
    /// [`crate::scenario::SwitchFailurePlan`] for multi-rack semantics).
    SwitchFail,
    /// The operator reactivates the fabric; bring-up begins.
    SwitchReactivate { bringup_ns: u64 },
    /// Bring-up complete: forwarding resumes with cleared soft state on
    /// every switch.
    SwitchUp,
    /// Server `idx` dies (§3.6).
    ServerKill(usize),
    /// The control plane removes a failed server from the switch tables.
    ServerRemove(ServerId),
}

/// One testbed simulation.
pub struct Sim {
    pub(crate) scenario: Scenario,
    pub(crate) q: EventQueue<Ev>,
    pub(crate) clients: Vec<ClientSim>,
    pub(crate) servers: Vec<ServerSim>,
    pub(crate) server_epoch: Vec<u32>,
    /// The switch fabric — one engine per switch, assembled by
    /// [`crate::build::build_fabric`].
    pub(crate) fabric: Fabric,
    pub(crate) switch_up: bool,
    pub(crate) coordinator: Option<LaedgeCoordinator>,
    pub(crate) arrivals: PoissonArrivals,
    pub(crate) arrival_rngs: Vec<StdRng>,
    pub(crate) workload_rngs: Vec<StdRng>,
    pub(crate) loss_rng: StdRng,
    pub(crate) synthetic: Option<SyntheticWorkload>,
    pub(crate) kvmix: Option<KvMix>,
    pub(crate) end_ns: u64,
    pub(crate) measure_start_ns: u64,
    pub(crate) throughput: TimeSeries,
    pub(crate) completed_in_window: u64,
    pub(crate) generated_in_window: u64,
    pub(crate) packets_lost: u64,
    pub(crate) switch_counters_at_warmup: Vec<SwitchCounters>,
    pub(crate) server_stats_at_warmup: Vec<netclone_hosts::server::ServerStats>,
}

impl Sim {
    /// Builds the testbed for a scenario (see [`ScenarioBuilder`]).
    pub fn new(scenario: Scenario) -> Self {
        ScenarioBuilder::new(scenario).build()
    }

    /// Runs to completion and returns the measured results.
    pub fn run(scenario: Scenario) -> RunResult {
        let mut sim = Sim::new(scenario);
        while let Some((t, ev)) = sim.q.pop() {
            sim.handle(t.as_ns(), ev);
        }
        sim.finish()
    }

    fn lose_packet(&mut self) -> bool {
        self.scenario.loss > 0.0 && self.loss_rng.random::<f64>() < self.scenario.loss
    }

    fn draw_op(&mut self, cid: usize) -> RpcOp {
        if let Some(wl) = self.synthetic {
            RpcOp::Echo {
                class_ns: wl.sample_class(&mut self.workload_rngs[cid]),
            }
        } else {
            self.kvmix
                .as_ref()
                .expect("kv workload")
                .sample(&mut self.workload_rngs[cid])
        }
    }

    fn handle(&mut self, now: u64, ev: Ev) {
        match ev {
            Ev::Gen(cid) => self.on_gen(cid, now),
            Ev::SwitchIn(sw, pkt) => self.on_switch_in(sw, pkt, now),
            Ev::ServerIn(idx, pkt) => self.on_server_in(idx, pkt, now),
            Ev::ServerDone { idx, epoch, pkt } => self.on_server_done(idx, epoch, pkt, now),
            Ev::ClientIn(cid, pkt) => self.on_client_in(cid, pkt, now),
            Ev::CoordIn(pkt) => self.on_coord_in(pkt, now),
            Ev::EndWarmup => self.on_end_warmup(now),
            Ev::SwitchFail => self.switch_up = false,
            Ev::SwitchReactivate { bringup_ns } => {
                self.q
                    .schedule(SimTime::from_ns(now + bringup_ns), Ev::SwitchUp);
            }
            Ev::SwitchUp => {
                // §3.6: only soft state is lost; the control plane's table
                // entries are reinstalled during bring-up.
                for e in &mut self.fabric.engines {
                    e.reset_soft_state();
                }
                self.switch_up = true;
            }
            Ev::ServerKill(idx) => {
                self.servers[idx].kill();
                self.server_epoch[idx] += 1;
            }
            Ev::ServerRemove(sid) => self.on_server_remove(sid),
        }
    }

    /// §3.6 "Server failures": every engine holding the server in its
    /// tables drops it (engines without server tables decline, which is
    /// fine — their clients handle failure below), and every client stops
    /// addressing it. Each client refreshes its group count from its own
    /// ToR, the engine its requests traverse.
    fn on_server_remove(&mut self, sid: ServerId) {
        let mut any_deregistered = false;
        for e in &mut self.fabric.engines {
            any_deregistered |= e.deregister_server(sid).is_ok();
        }
        if any_deregistered {
            for (cid, c) in self.clients.iter_mut().enumerate() {
                if let ClientMode::NetClone { num_groups, .. } = c.mode_mut() {
                    *num_groups = self.fabric.engines[self.fabric.client_leaf(cid)].num_groups();
                }
            }
        }
        let dead_ip = Ipv4::server(sid);
        for c in &mut self.clients {
            match c.mode_mut() {
                ClientMode::DirectRandom { servers } | ClientMode::DirectDuplicate { servers } => {
                    servers.retain(|ip| *ip != dead_ip);
                }
                _ => {}
            }
        }
    }

    fn on_gen(&mut self, cid: usize, now: u64) {
        if now >= self.end_ns {
            return; // generation stops; in-flight work drains
        }
        if now >= self.measure_start_ns && self.measure_start_ns > 0 {
            self.generated_in_window += 1;
        }
        let op = self.draw_op(cid);
        let tor = self.fabric.client_leaf(cid);
        let pkts = self.clients[cid].generate(op, now);
        for (pkt, tx_done) in pkts {
            if self.lose_packet() {
                self.packets_lost += 1;
                continue;
            }
            self.q.schedule(
                SimTime::from_ns(tx_done + calib::LINK_ONE_WAY_NS),
                Ev::SwitchIn(tor, pkt),
            );
        }
        let gap = self.arrivals.next_gap_ns(&mut self.arrival_rngs[cid]);
        self.q.schedule(SimTime::from_ns(now + gap), Ev::Gen(cid));
    }

    fn on_switch_in(&mut self, sw: usize, pkt: AppPacket, now: u64) {
        if !self.switch_up {
            self.packets_lost += 1;
            return;
        }
        let emissions = self.fabric.engines[sw].process(pkt.meta, 0, now);
        for e in emissions {
            if self.lose_packet() {
                self.packets_lost += 1;
                continue;
            }
            let out = AppPacket {
                meta: e.pkt,
                op: pkt.op,
                born_ns: pkt.born_ns,
            };
            match self.fabric.hop(sw, e.port) {
                Hop::Switch(next) => {
                    // A leaf↔spine traversal: no host NIC on this hop,
                    // the fabric link latency applies instead.
                    let at = SimTime::from_ns(now + e.latency_ns + self.fabric.inter_rack_ns());
                    self.q.schedule(at, Ev::SwitchIn(next, out));
                }
                Hop::Local(port) => {
                    let at = SimTime::from_ns(now + e.latency_ns + calib::LINK_ONE_WAY_NS);
                    if port == COORD_PORT {
                        self.q.schedule(at, Ev::CoordIn(out));
                    } else if port >= 100 {
                        let cid = (port - 100) as usize;
                        if cid < self.clients.len() {
                            self.q.schedule(at, Ev::ClientIn(cid, out));
                        }
                    } else if port >= 10 {
                        let idx = (port - 10) as usize;
                        if idx < self.servers.len() {
                            self.q.schedule(at, Ev::ServerIn(idx, out));
                        }
                    }
                }
            }
        }
    }

    fn on_server_in(&mut self, idx: usize, pkt: AppPacket, now: u64) {
        if !self.servers[idx].is_alive() {
            return; // a dead server swallows packets
        }
        let seen_at = now + calib::HOST_RX_STACK_NS;
        match self.servers[idx].on_request(pkt, seen_at) {
            Admission::Start { done_at } => {
                self.q.schedule(
                    SimTime::from_ns(done_at),
                    Ev::ServerDone {
                        idx,
                        epoch: self.server_epoch[idx],
                        pkt,
                    },
                );
            }
            Admission::Queued | Admission::CloneDropped => {}
        }
    }

    fn on_server_done(&mut self, idx: usize, epoch: u32, pkt: AppPacket, now: u64) {
        if epoch != self.server_epoch[idx] || !self.servers[idx].is_alive() {
            return; // the server died while this was in service
        }
        let completion = self.servers[idx].on_service_done(&pkt.meta.nc, now);
        let sid = self.servers[idx].sid();
        let resp = AppPacket {
            meta: PacketMeta::netclone_response(
                Ipv4::server(sid),
                pkt.meta.src_ip,
                completion.resp,
                84,
            ),
            op: pkt.op,
            born_ns: pkt.born_ns,
        };
        if self.lose_packet() {
            self.packets_lost += 1;
        } else {
            self.q.schedule(
                SimTime::from_ns(now + calib::LINK_ONE_WAY_NS),
                Ev::SwitchIn(self.fabric.server_leaf(idx), resp),
            );
        }
        if let Some((next_pkt, next_done)) = completion.next {
            self.q.schedule(
                SimTime::from_ns(next_done),
                Ev::ServerDone {
                    idx,
                    epoch: self.server_epoch[idx],
                    pkt: next_pkt,
                },
            );
        }
    }

    fn on_client_in(&mut self, cid: usize, pkt: AppPacket, now: u64) {
        let outcome = self.clients[cid].on_response(&pkt, now);
        if outcome.latency_ns.is_some() && self.measure_start_ns > 0 {
            self.throughput.record(outcome.done_at);
            if outcome.done_at <= self.end_ns {
                self.completed_in_window += 1;
            }
        }
    }

    fn on_coord_in(&mut self, pkt: AppPacket, now: u64) {
        let coord = self.coordinator.as_mut().expect("coordinator scheme");
        let events = match pkt.meta.nc.msg_type {
            MsgType::Req => coord.on_request(pkt, now),
            MsgType::Resp => coord.on_response(pkt, now),
        };
        for e in events {
            if self.lose_packet() {
                self.packets_lost += 1;
                continue;
            }
            self.q.schedule(
                SimTime::from_ns(e.send_at + calib::LINK_ONE_WAY_NS),
                Ev::SwitchIn(self.fabric.coord_leaf(), e.pkt),
            );
        }
    }

    fn on_end_warmup(&mut self, now: u64) {
        self.measure_start_ns = now.max(1);
        for c in &mut self.clients {
            c.reset_measurements();
        }
        self.switch_counters_at_warmup = self.fabric.counters();
        for (i, s) in self.servers.iter().enumerate() {
            self.server_stats_at_warmup[i] = s.stats();
        }
    }

    fn finish(self) -> RunResult {
        let mut latency = LatencyHistogram::new();
        let mut generated = 0u64;
        let mut redundant = 0u64;
        let mut clone_wins = 0u64;
        for c in &self.clients {
            latency.merge(c.latencies());
            generated += c.stats().generated;
            redundant += c.stats().redundant;
            clone_wins += c.stats().clone_wins;
        }
        let measure_secs = self.scenario.measure_ns as f64 / 1e9;
        // Every counter field is windowed, so plain-fabric counts
        // (routed_plain, dropped_unroutable) and the rarer NetClone
        // counters stay comparable with the windowed requests/responses.
        // Per-switch deltas first, then the fabric-wide merge.
        let per_switch: Vec<SwitchCounters> = self
            .fabric
            .counters()
            .iter()
            .zip(&self.switch_counters_at_warmup)
            .map(|(now, base)| now.since(base))
            .collect();
        let switch: SwitchCounters = per_switch.iter().sum();

        let mut clone_drops = 0;
        let mut idle_reports = 0;
        let mut responses = 0;
        let mut per_server_served = Vec::with_capacity(self.servers.len());
        for (i, s) in self.servers.iter().enumerate() {
            let st = s.stats();
            let b = self.server_stats_at_warmup[i];
            clone_drops += st.clones_dropped - b.clones_dropped;
            idle_reports += st.idle_reports - b.idle_reports;
            responses += st.responses - b.responses;
            per_server_served.push(st.served - b.served);
        }

        RunResult {
            scheme: self.scenario.scheme.label(),
            workload: self.scenario.workload.label(),
            offered_rps: self.scenario.offered_rps,
            achieved_rps: self.completed_in_window as f64 / measure_secs,
            latency,
            generated,
            completed: self.completed_in_window,
            client_redundant: redundant,
            client_clone_wins: clone_wins,
            switch,
            server_clone_drops: clone_drops,
            server_idle_reports: idle_reports,
            server_responses: responses,
            throughput_series: self.throughput,
            packets_lost: self.packets_lost,
            per_server_served,
            per_switch,
        }
    }
}
