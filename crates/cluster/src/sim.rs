//! The event-driven testbed simulation: the event loop only.
//!
//! Everything about *assembling* a testbed (scheme → switch engines,
//! hosts, workload streams, priming events) lives in
//! [`crate::build::ScenarioBuilder`]; this module executes events and
//! keeps the measurement windows. Every switch is a
//! [`Box<dyn SwitchEngine>`](netclone_core::SwitchEngine) — the same
//! trait object the real-socket soft switch drives — so the simulator has
//! no per-scheme dispatch at all.
//!
//! ## Sharded execution
//!
//! The run state lives in per-rack `Shard`s: each shard owns its leaf
//! engine(s), its racks' clients and servers, a slice of the loss/workload
//! RNG streams, a private [`EventQueue`], and a private `PayloadSlab`.
//! [`Sim::run`] drives one shard serially;
//! [`Sim::run_with_shards`] fans the racks out across threads under the
//! conservative lookahead protocol in `crate::shard`. Both produce
//! **bit-identical** results for a seed because every event is keyed
//! `(time, source domain, per-domain seq)` (see
//! [`netclone_des::sync`]) — a total order no interleaving can change.
//! Single-rack runs collapse to one domain whose keys equal the old
//! global `(time, seq)` order, so the pre-sharding seed pins still hold.
//!
//! The spine never gets events of its own: it is stateless plain L3, so
//! each shard processes spine hops *inline* against a private replica
//! (counters are merged at the end — order-insensitive by
//! `SwitchCounters::merge`). That removes the spine queue round-trip from
//! the hot path and, more importantly, removes the one switch every shard
//! would otherwise have to synchronise on; the cross-shard lookahead
//! becomes two switch passes plus two inter-rack link traversals.
//!
//! ## The allocation-free hot path
//!
//! The per-packet path performs no heap allocation in steady state:
//!
//! * switch programs write into the shard's reusable
//!   [`EmissionSink`] (see the contract in `netclone_asic::dataplane`),
//!   which `Shard::on_switch_in` drains in place;
//! * events carry a `SimPacket` — metadata plus a payload-slab id —
//!   instead of a full `AppPacket`, so the immutable `(op, born_ns)`
//!   pair is interned once per packet rather than copied through every
//!   hop (see the `payload` module for the reference-counting
//!   discipline);
//! * the event queue itself is `netclone-des`'s indexed 4-ary heap over
//!   a flat `Vec`.
//!
//! Topology: the scenario's [`Topology`](crate::topology::Topology),
//! assembled by [`crate::build::build_fabric`]. The default single rack
//! (the paper's testbed) is one ToR switch with every host attached;
//! multi-rack shapes (§3.7) add per-rack leaves and an aggregation spine,
//! with `Ev::SwitchIn` carrying the *leaf* index and leaf↔spine
//! traversals costing the topology's inter-rack latency each way. The
//! full fabric path — cloning at the client-side ToR only,
//! `SWITCH_ID`-gated pass-through elsewhere — is covered by
//! `tests/multirack.rs` and the topology proptests.
//! Ports: servers at `10+sid`, coordinator at 99, clients at `100+cid`,
//! uplinks per [`crate::topology`].
//!
//! Event flow for one RPC (NetClone scheme):
//!
//! ```text
//! Gen ─→ SwitchIn(req) ─→ ServerIn ─→ ServerDone ─→ SwitchIn(resp) ─→ ClientIn
//!            │ (clone)                                   │ (slower resp:
//!            └─→ ServerIn(clone) ─→ … ─┘                    filtered at switch)
//! ```

use netclone_asic::EmissionSink;
use netclone_core::SwitchCounters;
use netclone_des::sync::tie_key;
use netclone_des::{EventQueue, SimTime};
use netclone_hosts::{Admission, AppPacket, ClientMode, ClientSim, ServerSim};
use netclone_policies::LaedgeCoordinator;
use netclone_proto::{Ipv4, MsgType, PacketMeta, RpcOp, ServerId};
use netclone_stats::TimeSeries;
use netclone_workloads::{KvMix, PoissonArrivals, SyntheticWorkload};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

use crate::build::{ScenarioBuilder, COORD_PORT};
use crate::calib;
use crate::metrics::RunResult;
use crate::payload::{PayloadSlab, SimPacket};
use crate::scenario::Scenario;
use crate::shard::ShardCoordinator;
use crate::topology::{spine_port, UPLINK_PORT};

/// Simulation events.
///
/// Packet-bearing variants carry a [`SimPacket`] (metadata + interned
/// payload id), not a full `AppPacket` — see the module docs.
/// `SwitchIn` always targets a *leaf*; spine hops are processed inline.
pub(crate) enum Ev {
    /// Client `cid` generates its next request.
    Gen(usize),
    /// A packet reaches leaf switch `idx` of the fabric.
    SwitchIn(usize, SimPacket),
    /// A packet reaches server `idx`'s NIC.
    ServerIn(usize, SimPacket),
    /// Server `idx` finishes serving `pkt` (valid only in `epoch`).
    ServerDone {
        idx: usize,
        epoch: u32,
        pkt: SimPacket,
    },
    /// A packet reaches client `cid`'s NIC.
    ClientIn(usize, SimPacket),
    /// A packet reaches the coordinator.
    CoordIn(SimPacket),
    /// Measurements start.
    EndWarmup,
    /// The fabric stops forwarding (Fig. 16; see
    /// [`crate::scenario::SwitchFailurePlan`] for multi-rack semantics).
    SwitchFail,
    /// The operator reactivates the fabric; bring-up begins.
    SwitchReactivate { bringup_ns: u64 },
    /// Bring-up complete: forwarding resumes with cleared soft state on
    /// every switch.
    SwitchUp,
    /// Server `idx` dies (§3.6).
    ServerKill(usize),
    /// The control plane removes a failed server from the switch tables.
    ServerRemove(ServerId),
}

/// The source domain of the control plane (primed events, warm-up end,
/// failure injections). Domain 0 so control events win timestamp ties —
/// and so the single-rack case, where *every* event maps to domain 0,
/// degenerates to one counter identical to the old global sequence.
pub(crate) const CONTROL_SRC: u16 = 0;

/// The link-loss model, materialised only for lossy scenarios: the
/// zero-loss fast path (`scenario.loss == 0.0`, known at build time)
/// holds no RNGs and never draws. One independent stream per rack
/// (`SeedFactory` fan-out, `("loss", rack)`): every traversal of a packet
/// executing in rack *r*'s domain draws from stream *r*, so the draw
/// order is a per-domain property that sharding cannot change. A shard
/// only holds the streams of the racks it owns. Single-rack runs hold
/// exactly the old `("loss", 0)` stream — pinned by
/// `tests/loss_determinism.rs` on both sides.
pub(crate) struct LossModel {
    /// Per-link-traversal loss probability (`scenario.loss`).
    pub prob: f64,
    /// Per-rack loss streams (`None` for racks owned by other shards).
    pub rngs: Vec<Option<StdRng>>,
}

/// One shard of a testbed simulation: the event loop state for a subset
/// of the racks (all of them, for a serial run).
///
/// Host and engine vectors are indexed by *global* id with `None` holes
/// for entities owned by other shards, so port arithmetic and
/// result-assembly order are identical at any shard count.
pub(crate) struct Shard {
    /// This shard's index and the total count (`racks % nshards` owner
    /// mapping, see [`Shard::shard_of_rack`]).
    pub(crate) id: usize,
    pub(crate) nshards: usize,
    pub(crate) scenario: Arc<Scenario>,
    pub(crate) q: EventQueue<Ev>,
    pub(crate) clients: Vec<Option<ClientSim>>,
    pub(crate) servers: Vec<Option<ServerSim>>,
    pub(crate) server_epoch: Vec<u32>,
    /// Owned leaf engines, indexed by rack (`None` = foreign rack).
    pub(crate) engines: Vec<Option<Box<dyn netclone_core::SwitchEngine>>>,
    /// This shard's replica of the (stateless) spine, `None` when
    /// `racks == 1`. Counter replicas are merged at the end.
    pub(crate) spine: Option<Box<dyn netclone_core::SwitchEngine>>,
    pub(crate) racks: usize,
    pub(crate) inter_rack_ns: u64,
    pub(crate) server_leaf: Vec<usize>,
    pub(crate) client_leaf: Vec<usize>,
    pub(crate) coord_leaf: usize,
    /// Fabric-forwarding flag; a replica on every shard, flipped by
    /// broadcast control events.
    pub(crate) switch_up: bool,
    pub(crate) coordinator: Option<LaedgeCoordinator>,
    pub(crate) arrivals: PoissonArrivals,
    pub(crate) arrival_rngs: Vec<Option<StdRng>>,
    pub(crate) workload_rngs: Vec<Option<StdRng>>,
    pub(crate) loss: Option<LossModel>,
    pub(crate) synthetic: Option<SyntheticWorkload>,
    pub(crate) kvmix: Option<Arc<KvMix>>,
    /// The shard's reusable emission buffer (`on_switch_in` drains it in
    /// place; see the `EmissionSink` contract)…
    pub(crate) sink: EmissionSink,
    /// …and a second one for inline spine hops, which happen while the
    /// leaf sink is detached.
    pub(crate) spine_sink: EmissionSink,
    /// Interned `(op, born_ns)` payloads for packets in flight *within*
    /// this shard; cross-shard packets are re-interned on arrival.
    pub(crate) payloads: PayloadSlab,
    pub(crate) end_ns: u64,
    pub(crate) measure_start_ns: u64,
    pub(crate) throughput: TimeSeries,
    pub(crate) completed_in_window: u64,
    pub(crate) generated_in_window: u64,
    pub(crate) packets_lost: u64,
    /// Warm-up snapshots of the owned leaves (by rack index) and of the
    /// spine replica.
    pub(crate) switch_counters_at_warmup: Vec<SwitchCounters>,
    pub(crate) spine_counters_at_warmup: SwitchCounters,
    pub(crate) server_stats_at_warmup: Vec<netclone_hosts::server::ServerStats>,
    /// Per-source tie-break sequence counters (index = source id).
    /// Control counters (`seq[0]`) evolve identically on every shard;
    /// rack counters are only touched by their owner.
    pub(crate) seq: Vec<u64>,
    /// Source id of the currently-executing event's domain.
    pub(crate) cur_src: u16,
    /// Rack of the currently-executing event (selects the loss stream);
    /// control events never draw.
    pub(crate) cur_rack: usize,
    /// Logical events scheduled by this shard (cross-shard sends counted
    /// at the sender, broadcast control replicas once, on shard 0) — the
    /// shard's share of `RunResult::events`.
    pub(crate) events_scheduled: u64,
    /// Outbound cross-shard messages, per destination shard, flushed at
    /// the end of each window.
    pub(crate) outbox: Vec<Vec<CrossMsg>>,
    /// When tracing, the popped `(time, tie)` keys in execution order.
    pub(crate) trace: Option<Vec<(u64, u64)>>,
}

/// A cross-shard `Ev::SwitchIn` in transit: the sender stamps the
/// deterministic delivery key and materialises the payload (the slabs
/// are shard-private), the receiver re-interns it.
pub(crate) struct CrossMsg {
    pub at: u64,
    pub tie: u64,
    pub leaf: usize,
    pub meta: PacketMeta,
    pub op: RpcOp,
    pub born_ns: u64,
}

impl Shard {
    /// Owner shard of a rack.
    #[inline]
    pub(crate) fn shard_of_rack(&self, rack: usize) -> usize {
        rack % self.nshards
    }

    /// Source id of a rack's domain: single-rack runs collapse onto the
    /// control domain (one counter — the old global sequence); multi-rack
    /// runs put racks above the control domain so control events win
    /// ties.
    #[inline]
    fn src_of_rack(&self, rack: usize) -> u16 {
        if self.racks == 1 {
            CONTROL_SRC
        } else {
            (rack + 1) as u16
        }
    }

    #[inline]
    fn set_rack_ctx(&mut self, rack: usize) {
        self.cur_src = self.src_of_rack(rack);
        self.cur_rack = rack;
    }

    #[inline]
    fn set_control_ctx(&mut self) {
        self.cur_src = CONTROL_SRC;
        // Control handlers never traverse links, so they never draw from
        // a loss stream; poison the rack index to catch violations.
        self.cur_rack = usize::MAX;
    }

    /// Schedules `ev` on this shard's queue, keyed by the executing
    /// domain. All targets are local by construction (the only non-local
    /// sends are the spine-inline deliveries in [`Self::via_spine`]).
    #[inline]
    fn sched(&mut self, at_ns: u64, ev: Ev) {
        let tie = self.next_tie();
        self.events_scheduled += 1;
        self.q.schedule_keyed(SimTime::from_ns(at_ns), tie, ev);
    }

    /// The next tie-break key of the executing domain.
    #[inline]
    fn next_tie(&mut self) -> u64 {
        let s = self.cur_src as usize;
        let tie = tie_key(self.cur_src, self.seq[s]);
        self.seq[s] += 1;
        tie
    }

    #[inline]
    fn lose_packet(&mut self) -> bool {
        match &mut self.loss {
            None => false,
            Some(m) => {
                let rng = m.rngs[self.cur_rack]
                    .as_mut()
                    .expect("loss stream of an owned rack");
                rng.random::<f64>() < m.prob
            }
        }
    }

    fn draw_op(&mut self, cid: usize) -> RpcOp {
        let rng = self.workload_rngs[cid]
            .as_mut()
            .expect("workload stream of an owned client");
        if let Some(wl) = &self.synthetic {
            RpcOp::Echo {
                class_ns: wl.sample_class(rng),
            }
        } else {
            self.kvmix.as_ref().expect("kv workload").sample(rng)
        }
    }

    /// Reconstitutes the host-layer view of an in-flight packet.
    #[inline]
    fn app(&self, sp: &SimPacket) -> AppPacket {
        let (op, born_ns) = self.payloads.get(sp.pid);
        AppPacket {
            meta: sp.meta,
            op,
            born_ns,
        }
    }

    pub(crate) fn handle(&mut self, now: u64, ev: Ev) {
        match ev {
            Ev::Gen(cid) => {
                self.set_rack_ctx(self.client_leaf[cid]);
                self.on_gen(cid, now);
            }
            Ev::SwitchIn(sw, pkt) => {
                self.set_rack_ctx(sw);
                self.on_switch_in(sw, pkt, now);
            }
            Ev::ServerIn(idx, pkt) => {
                self.set_rack_ctx(self.server_leaf[idx]);
                self.on_server_in(idx, pkt, now);
            }
            Ev::ServerDone { idx, epoch, pkt } => {
                self.set_rack_ctx(self.server_leaf[idx]);
                self.on_server_done(idx, epoch, pkt, now);
            }
            Ev::ClientIn(cid, pkt) => {
                self.set_rack_ctx(self.client_leaf[cid]);
                self.on_client_in(cid, pkt, now);
            }
            Ev::CoordIn(pkt) => {
                self.set_rack_ctx(self.coord_leaf);
                self.on_coord_in(pkt, now);
            }
            Ev::EndWarmup => {
                self.set_control_ctx();
                self.on_end_warmup(now);
            }
            Ev::SwitchFail => {
                self.set_control_ctx();
                self.switch_up = false;
            }
            Ev::SwitchReactivate { bringup_ns } => {
                // Broadcast control event: every shard schedules its own
                // SwitchUp replica with the *same* key (the control
                // counters march in lockstep), counted once.
                self.set_control_ctx();
                let tie = self.next_tie();
                if self.id == 0 {
                    self.events_scheduled += 1;
                }
                self.q
                    .schedule_keyed(SimTime::from_ns(now + bringup_ns), tie, Ev::SwitchUp);
            }
            Ev::SwitchUp => {
                // §3.6: only soft state is lost; the control plane's table
                // entries are reinstalled during bring-up.
                self.set_control_ctx();
                for e in self.engines.iter_mut().flatten() {
                    e.reset_soft_state();
                }
                if let Some(spine) = &mut self.spine {
                    spine.reset_soft_state();
                }
                self.switch_up = true;
            }
            Ev::ServerKill(idx) => {
                self.set_control_ctx();
                self.servers[idx].as_mut().expect("owned server").kill();
                self.server_epoch[idx] += 1;
            }
            Ev::ServerRemove(sid) => {
                self.set_control_ctx();
                self.on_server_remove(sid);
            }
        }
    }

    /// §3.6 "Server failures": every engine holding the server in its
    /// tables drops it (engines without server tables decline, which is
    /// fine — their clients handle failure below), and every client stops
    /// addressing it. Each client refreshes its group count from its own
    /// ToR, the engine its requests traverse. A broadcast control event:
    /// each shard walks its own engines and clients.
    fn on_server_remove(&mut self, sid: ServerId) {
        let mut any_deregistered = false;
        for e in self.engines.iter_mut().flatten() {
            any_deregistered |= e.deregister_server(sid).is_ok();
        }
        if let Some(spine) = &mut self.spine {
            any_deregistered |= spine.deregister_server(sid).is_ok();
        }
        if any_deregistered {
            for cid in 0..self.client_leaf.len() {
                let leaf = self.client_leaf[cid];
                let Some(c) = self.clients[cid].as_mut() else {
                    continue;
                };
                if let ClientMode::NetClone { num_groups, .. } = c.mode_mut() {
                    *num_groups = self.engines[leaf]
                        .as_ref()
                        .expect("a client's leaf lives on its shard")
                        .num_groups();
                }
            }
        }
        let dead_ip = Ipv4::server(sid);
        for c in self.clients.iter_mut().flatten() {
            match c.mode_mut() {
                ClientMode::DirectRandom { servers } | ClientMode::DirectDuplicate { servers } => {
                    servers.retain(|ip| *ip != dead_ip);
                }
                _ => {}
            }
        }
    }

    fn on_gen(&mut self, cid: usize, now: u64) {
        if now >= self.end_ns {
            return; // generation stops; in-flight work drains
        }
        if now >= self.measure_start_ns && self.measure_start_ns > 0 {
            self.generated_in_window += 1;
        }
        let op = self.draw_op(cid);
        let tor = self.client_leaf[cid];
        let pkts = self.clients[cid]
            .as_mut()
            .expect("owned client")
            .generate(op, now);
        for (pkt, tx_done) in pkts {
            if self.lose_packet() {
                self.packets_lost += 1;
                continue;
            }
            let pid = self.payloads.alloc(pkt.op, pkt.born_ns);
            self.sched(
                tx_done + calib::LINK_ONE_WAY_NS,
                Ev::SwitchIn(
                    tor,
                    SimPacket {
                        meta: pkt.meta,
                        pid,
                    },
                ),
            );
        }
        let rng = self.arrival_rngs[cid]
            .as_mut()
            .expect("arrival stream of an owned client");
        let gap = self.arrivals.next_gap_ns(rng);
        self.sched(now + gap, Ev::Gen(cid));
    }

    fn on_switch_in(&mut self, sw: usize, sp: SimPacket, now: u64) {
        if !self.switch_up {
            self.packets_lost += 1;
            self.payloads.release(sp.pid);
            return;
        }
        // The sink moves out for the drain so scheduling below can borrow
        // `self` freely; `mem::take` swaps in an (unallocated) empty one.
        let mut sink = std::mem::take(&mut self.sink);
        self.engines[sw]
            .as_mut()
            .expect("owned leaf engine")
            .process(sp.meta, 0, now, &mut sink);
        for e in sink.drain() {
            if self.lose_packet() {
                self.packets_lost += 1;
                continue;
            }
            if e.port == UPLINK_PORT && self.racks > 1 {
                // A leaf→spine traversal: no host NIC on this hop, the
                // fabric link latency applies instead; the spine pass is
                // processed inline (module docs).
                let at_spine = now + e.latency_ns + self.inter_rack_ns;
                self.via_spine(e.pkt, at_spine, sp.pid);
            } else {
                let at = now + e.latency_ns + calib::LINK_ONE_WAY_NS;
                let out = SimPacket {
                    meta: e.pkt,
                    pid: sp.pid,
                };
                if e.port == COORD_PORT {
                    self.payloads.retain(sp.pid);
                    self.sched(at, Ev::CoordIn(out));
                } else if e.port >= 100 {
                    let cid = (e.port - 100) as usize;
                    if cid < self.clients.len() {
                        self.payloads.retain(sp.pid);
                        self.sched(at, Ev::ClientIn(cid, out));
                    }
                } else if e.port >= 10 {
                    let idx = (e.port - 10) as usize;
                    if idx < self.servers.len() {
                        self.payloads.retain(sp.pid);
                        self.sched(at, Ev::ServerIn(idx, out));
                    }
                }
            }
        }
        self.sink = sink;
        // The consumed ingress packet's reference, released last so the
        // payload stayed alive while emissions were scheduled.
        self.payloads.release(sp.pid);
    }

    /// Processes one packet's spine pass inline against this shard's
    /// replica, at the simulated time it would have reached the spine,
    /// and delivers the emission to the destination leaf — locally, or
    /// through the cross-shard outbox with a sender-stamped key.
    fn via_spine(&mut self, meta: PacketMeta, at_spine: u64, pid: crate::payload::PayloadId) {
        let mut sink = std::mem::take(&mut self.spine_sink);
        self.spine
            .as_mut()
            .expect("spine replica on a multi-rack shard")
            .process(meta, 0, at_spine, &mut sink);
        for e in sink.drain() {
            if self.lose_packet() {
                self.packets_lost += 1;
                continue;
            }
            // Spine ports map 1:1 onto leaves (`spine_port`), exactly the
            // arithmetic `Fabric::hop` applies.
            let leaf = (e.port - spine_port(0)) as usize;
            let at = at_spine + e.latency_ns + self.inter_rack_ns;
            let dst = self.shard_of_rack(leaf);
            let out = SimPacket { meta: e.pkt, pid };
            if dst == self.id {
                self.payloads.retain(pid);
                self.sched(at, Ev::SwitchIn(leaf, out));
            } else {
                let tie = self.next_tie();
                self.events_scheduled += 1;
                let (op, born_ns) = self.payloads.get(pid);
                self.outbox[dst].push(CrossMsg {
                    at,
                    tie,
                    leaf,
                    meta: e.pkt,
                    op,
                    born_ns,
                });
            }
        }
        self.spine_sink = sink;
    }

    fn on_server_in(&mut self, idx: usize, sp: SimPacket, now: u64) {
        if !self.servers[idx].as_ref().expect("owned server").is_alive() {
            self.payloads.release(sp.pid);
            return; // a dead server swallows packets
        }
        let seen_at = now + calib::HOST_RX_STACK_NS;
        let app = self.app(&sp);
        match self.servers[idx]
            .as_mut()
            .expect("owned server")
            .on_request(app, seen_at)
        {
            Admission::Start { done_at } => {
                // The packet keeps its payload reference while in service.
                self.sched(
                    done_at,
                    Ev::ServerDone {
                        idx,
                        epoch: self.server_epoch[idx],
                        pkt: sp,
                    },
                );
            }
            Admission::Queued | Admission::CloneDropped => {
                // Queued packets live inside the server (full AppPacket);
                // dropped clones are gone. Either way this reference ends.
                self.payloads.release(sp.pid);
            }
        }
    }

    fn on_server_done(&mut self, idx: usize, epoch: u32, sp: SimPacket, now: u64) {
        let server = self.servers[idx].as_mut().expect("owned server");
        if epoch != self.server_epoch[idx] || !server.is_alive() {
            self.payloads.release(sp.pid);
            return; // the server died while this was in service
        }
        let completion = server.on_service_done(&sp.meta.nc, now);
        let sid = server.sid();
        let resp_meta =
            PacketMeta::netclone_response(Ipv4::server(sid), sp.meta.src_ip, completion.resp, 84);
        if self.lose_packet() {
            self.packets_lost += 1;
            self.payloads.release(sp.pid);
        } else {
            // The response inherits the request's payload reference.
            self.sched(
                now + calib::LINK_ONE_WAY_NS,
                Ev::SwitchIn(
                    self.server_leaf[idx],
                    SimPacket {
                        meta: resp_meta,
                        pid: sp.pid,
                    },
                ),
            );
        }
        if let Some((next_pkt, next_done)) = completion.next {
            // A queued request leaves the server's internal queue and
            // re-enters the event system: intern its payload afresh.
            let pid = self.payloads.alloc(next_pkt.op, next_pkt.born_ns);
            self.sched(
                next_done,
                Ev::ServerDone {
                    idx,
                    epoch: self.server_epoch[idx],
                    pkt: SimPacket {
                        meta: next_pkt.meta,
                        pid,
                    },
                },
            );
        }
    }

    fn on_client_in(&mut self, cid: usize, sp: SimPacket, now: u64) {
        let app = self.app(&sp);
        let outcome = self.clients[cid]
            .as_mut()
            .expect("owned client")
            .on_response(&app, now);
        self.payloads.release(sp.pid);
        if outcome.latency_ns.is_some() && self.measure_start_ns > 0 {
            self.throughput.record(outcome.done_at);
            if outcome.done_at <= self.end_ns {
                self.completed_in_window += 1;
            }
        }
    }

    fn on_coord_in(&mut self, sp: SimPacket, now: u64) {
        let app = self.app(&sp);
        self.payloads.release(sp.pid);
        let coord = self.coordinator.as_mut().expect("coordinator scheme");
        let events = match app.meta.nc.msg_type {
            MsgType::Req => coord.on_request(app, now),
            MsgType::Resp => coord.on_response(app, now),
        };
        for e in events {
            if self.lose_packet() {
                self.packets_lost += 1;
                continue;
            }
            let pid = self.payloads.alloc(e.pkt.op, e.pkt.born_ns);
            self.sched(
                e.send_at + calib::LINK_ONE_WAY_NS,
                Ev::SwitchIn(
                    self.coord_leaf,
                    SimPacket {
                        meta: e.pkt.meta,
                        pid,
                    },
                ),
            );
        }
    }

    /// Installs one round's inbound cross-shard messages. The
    /// conservative lookahead guarantees none of them lands inside the
    /// window just executed; the mailbox's arrival order is irrelevant
    /// because the queue re-sorts by the sender-stamped keys (which are
    /// globally unique — domains are disjoint across shards).
    pub(crate) fn deliver(&mut self, window_end_ns: u64, inbound: Vec<CrossMsg>) {
        for m in inbound {
            debug_assert!(
                m.at >= window_end_ns,
                "cross-shard message due inside the executed window"
            );
            let pid = self.payloads.alloc(m.op, m.born_ns);
            // The sender already counted this event; schedule without
            // touching `events_scheduled` or the local key counters.
            self.q.schedule_keyed(
                SimTime::from_ns(m.at),
                m.tie,
                Ev::SwitchIn(m.leaf, SimPacket { meta: m.meta, pid }),
            );
        }
    }

    fn on_end_warmup(&mut self, now: u64) {
        self.measure_start_ns = now.max(1);
        for c in self.clients.iter_mut().flatten() {
            c.reset_measurements();
        }
        for (r, e) in self.engines.iter().enumerate() {
            if let Some(e) = e {
                self.switch_counters_at_warmup[r] = e.counters();
            }
        }
        if let Some(spine) = &self.spine {
            self.spine_counters_at_warmup = spine.counters();
        }
        for (i, s) in self.servers.iter().enumerate() {
            if let Some(s) = s {
                self.server_stats_at_warmup[i] = s.stats();
            }
        }
    }
}

/// One testbed simulation — the public entry points. State lives in
/// per-rack `Shard`s driven by `crate::shard::ShardCoordinator`.
pub struct Sim;

impl Sim {
    /// Runs to completion serially and returns the measured results.
    pub fn run(scenario: Scenario) -> RunResult {
        Self::run_with_shards(scenario, 1)
    }

    /// Runs with the event loop partitioned into up to `shards` per-rack
    /// shards (clamped to `[1, racks]`; `usize::MAX` = one per rack),
    /// synchronized conservatively on the inter-rack latency lookahead.
    ///
    /// The result is **bit-identical** to [`Sim::run`] for any shard
    /// count — sharding is an execution strategy, not a model change
    /// (asserted by `tests/harness_determinism.rs` and the sharding
    /// proptests).
    pub fn run_with_shards(scenario: Scenario, shards: usize) -> RunResult {
        ShardCoordinator::new(ScenarioBuilder::new(scenario), shards, false)
            .run()
            .0
    }

    /// [`Sim::run_with_shards`], also returning the `(time, tie-key)` of
    /// every executed event, merged across shards in key order — the
    /// hook the sharding-order proptests compare against the serial
    /// execution order.
    #[doc(hidden)]
    pub fn run_traced(scenario: Scenario, shards: usize) -> (RunResult, Vec<(u64, u64)>) {
        let (result, trace) =
            ShardCoordinator::new(ScenarioBuilder::new(scenario), shards, true).run();
        (result, trace.expect("tracing enabled"))
    }
}
