//! The event-driven testbed simulation: the event loop only.
//!
//! Everything about *assembling* a testbed (scheme → switch engines,
//! hosts, workload streams, priming events) lives in
//! [`crate::build::ScenarioBuilder`]; this module executes events and
//! keeps the measurement windows. Every switch is a
//! [`Box<dyn SwitchEngine>`](netclone_core::SwitchEngine) — the same
//! trait object the real-socket soft switch drives — so the simulator has
//! no per-scheme dispatch at all.
//!
//! ## Sharded execution
//!
//! The run state lives in per-rack `Shard`s: each shard owns its leaf
//! engine(s), its racks' clients and servers, a slice of the loss/workload
//! RNG streams, a private [`EventQueue`], and a private `PayloadSlab`.
//! [`Sim::run`] drives one shard serially;
//! [`Sim::run_with_shards`] fans the racks out across threads under the
//! conservative lookahead protocol in `crate::shard`. Both produce
//! **bit-identical** results for a seed because every event is keyed
//! `(time, source domain, per-domain seq)` (see
//! [`netclone_des::sync`]) — a total order no interleaving can change.
//! Single-rack runs collapse to one domain whose keys equal the old
//! global `(time, seq)` order, so the pre-sharding seed pins still hold.
//!
//! The upper-tier switches (the leaf/spine spine, or a fat-tree's
//! aggregation and core layers) never get events of their own: they are
//! stateless plain L3, so each shard processes upper-tier hops *inline*
//! against private replicas (counters are merged at the end —
//! order-insensitive by `SwitchCounters::merge`). That removes the spine
//! queue round-trip from the hot path and, more importantly, removes the
//! switches every shard would otherwise have to synchronise on; the
//! cross-shard lookahead becomes two switch passes plus an inter-rack
//! link traversal (or two, without congestion-aware links).
//!
//! ## Congestion-aware links
//!
//! With [`Scenario::links`](crate::scenario::Scenario::links) set, every
//! *rack-adjacent* link — host access links and each leaf's
//! uplinks/downlinks — is a `netclone_linksim::Link`: finite bandwidth,
//! a bounded tail-drop FIFO, ECN-mark counters. Interior fabric links
//! (agg↔core) stay latency-only: they are never the oversubscription
//! bottleneck, and keeping stateful links rack-adjacent means every link
//! is mutated only by events of its owning rack's domain, which execute
//! in the same total key order at any shard count — the bit-identity
//! argument of the sharded loop extends to link state for free. A packet
//! crossing the upper tier is parked as an `Ev::DownlinkIn` at the
//! destination leaf's downlink head, where the *destination* rack's
//! domain applies queueing (or tail-drops it). Background incast
//! (`Ev::BgGen`/`Ev::BgDown`) rides the same links without ever
//! touching an engine, server, or client. `links: None` takes none of
//! these paths — the pre-linksim event stream, bit for bit.
//!
//! ## The allocation-free hot path
//!
//! The per-packet path performs no heap allocation in steady state:
//!
//! * switch programs write into the shard's reusable
//!   [`EmissionSink`] (see the contract in `netclone_asic::dataplane`),
//!   which `Shard::on_switch_in` drains in place;
//! * events carry a `SimPacket` — metadata plus a payload-slab id —
//!   instead of a full `AppPacket`, so the immutable `(op, born_ns)`
//!   pair is interned once per packet rather than copied through every
//!   hop (see the `payload` module for the reference-counting
//!   discipline);
//! * the event queue itself is `netclone-des`'s indexed 4-ary heap over
//!   a flat `Vec`.
//!
//! Topology: the scenario's [`Topology`](crate::topology::Topology),
//! assembled by [`crate::build::build_fabric`]. The default single rack
//! (the paper's testbed) is one ToR switch with every host attached;
//! multi-rack shapes (§3.7) add per-rack leaves and an aggregation spine,
//! with `Ev::SwitchIn` carrying the *leaf* index and leaf↔spine
//! traversals costing the topology's inter-rack latency each way. The
//! full fabric path — cloning at the client-side ToR only,
//! `SWITCH_ID`-gated pass-through elsewhere — is covered by
//! `tests/multirack.rs` and the topology proptests.
//! Ports: servers at `10+sid`, coordinator at 99, clients at `100+cid`,
//! uplinks per [`crate::topology`].
//!
//! Event flow for one RPC (NetClone scheme):
//!
//! ```text
//! Gen ─→ SwitchIn(req) ─→ ServerIn ─→ ServerDone ─→ SwitchIn(resp) ─→ ClientIn
//!            │ (clone)                                   │ (slower resp:
//!            └─→ ServerIn(clone) ─→ … ─┘                    filtered at switch)
//! ```

use netclone_asic::EmissionSink;
use netclone_core::SwitchCounters;
use netclone_des::sync::tie_key;
use netclone_des::{EventQueue, SimTime};
use netclone_hosts::{Admission, AppPacket, ClientMode, ClientSim, ServerSim};
use netclone_linksim::{Link, Verdict};
use netclone_policies::LaedgeCoordinator;
use netclone_proto::{Ipv4, MsgType, PacketMeta, RpcOp, ServerId};
use netclone_stats::TimeSeries;
use netclone_workloads::{KvMix, PoissonArrivals, SyntheticWorkload};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

use crate::build::{ScenarioBuilder, COORD_PORT};
use crate::calib;
use crate::metrics::RunResult;
use crate::payload::{PayloadId, PayloadSlab, SimPacket};
use crate::scenario::Scenario;
use crate::shard::ShardCoordinator;
use crate::topology::{agg_down_port, core_port, flow_hash, spine_port, FabricShape, UPLINK_PORT};

/// Simulation events.
///
/// Packet-bearing variants carry a [`SimPacket`] (metadata + interned
/// payload id), not a full `AppPacket` — see the module docs.
/// `SwitchIn` always targets a *leaf*; spine hops are processed inline.
pub(crate) enum Ev {
    /// Client `cid` generates its next request.
    Gen(usize),
    /// A packet reaches leaf switch `idx` of the fabric.
    SwitchIn(usize, SimPacket),
    /// A packet reaches server `idx`'s NIC.
    ServerIn(usize, SimPacket),
    /// Server `idx` finishes serving `pkt` (valid only in `epoch`).
    ServerDone {
        idx: usize,
        epoch: u32,
        pkt: SimPacket,
    },
    /// A packet reaches client `cid`'s NIC.
    ClientIn(usize, SimPacket),
    /// A packet reaches the coordinator.
    CoordIn(SimPacket),
    /// A packet reaches the head of downlink `via` into leaf `leaf`
    /// (congestion-aware links only): the destination rack's domain
    /// offers it to the queue.
    DownlinkIn {
        /// Destination leaf.
        leaf: usize,
        /// Downlink index (== the ECMP uplink index that carried it up).
        via: usize,
        /// The packet.
        pkt: SimPacket,
    },
    /// Source rack `r` generates its next background packet.
    BgGen(usize),
    /// A background packet reaches the head of downlink `via` into leaf
    /// `leaf`; it is absorbed after the queue (background is load, not
    /// workload).
    BgDown {
        /// Destination (victim) leaf.
        leaf: usize,
        /// Downlink index.
        via: usize,
        /// On-wire size, bytes.
        wire: u16,
    },
    /// Measurements start.
    EndWarmup,
    /// The fabric stops forwarding (Fig. 16; see
    /// [`crate::scenario::SwitchFailurePlan`] for multi-rack semantics).
    SwitchFail,
    /// The operator reactivates the fabric; bring-up begins.
    SwitchReactivate { bringup_ns: u64 },
    /// Bring-up complete: forwarding resumes with cleared soft state on
    /// every switch.
    SwitchUp,
    /// Server `idx` dies (§3.6).
    ServerKill(usize),
    /// The control plane removes a failed server from the switch tables.
    ServerRemove(ServerId),
    /// Server `idx`'s future service draws scale by `factor` (gray
    /// failure; 1.0 restores full speed — see
    /// [`crate::scenario::SlowdownPlan`]).
    ServerSlow {
        /// The degrading server.
        idx: usize,
        /// Multiplicative service-time factor.
        factor: f64,
    },
    /// Leaf `rack` stops forwarding (maintenance drain / leaf outage;
    /// see [`crate::scenario::DrainPlan`]).
    LeafDrain(usize),
    /// Leaf `rack` resumes forwarding with its soft state cleared.
    LeafRestore(usize),
    /// Every rack-adjacent link of `rack` sets its rate-collapse
    /// multiplier to `factor` (1 restores nominal; see
    /// [`crate::scenario::LinkFlapPlan`]).
    LinkFlap {
        /// The victim rack.
        rack: usize,
        /// The serialization-cost multiplier.
        factor: u64,
    },
    /// Client `cid` runs its retry wheel: expired requests are
    /// retransmitted (or evicted) per the scenario's
    /// [`RetryPolicy`](netclone_hosts::RetryPolicy). Only primed when a
    /// policy is configured.
    ClientTick(usize),
}

/// The source domain of the control plane (primed events, warm-up end,
/// failure injections). Domain 0 so control events win timestamp ties —
/// and so the single-rack case, where *every* event maps to domain 0,
/// degenerates to one counter identical to the old global sequence.
pub(crate) const CONTROL_SRC: u16 = 0;

/// The link-loss model, materialised only for lossy scenarios: the
/// zero-loss fast path (`scenario.loss == 0.0`, known at build time)
/// holds no RNGs and never draws. One independent stream per rack
/// (`SeedFactory` fan-out, `("loss", rack)`): every traversal of a packet
/// executing in rack *r*'s domain draws from stream *r*, so the draw
/// order is a per-domain property that sharding cannot change. A shard
/// only holds the streams of the racks it owns. Single-rack runs hold
/// exactly the old `("loss", 0)` stream — pinned by
/// `tests/loss_determinism.rs` on both sides.
pub(crate) struct LossModel {
    /// Per-link-traversal loss probability (`scenario.loss`).
    pub prob: f64,
    /// Per-rack loss streams (`None` for racks owned by other shards).
    pub rngs: Vec<Option<StdRng>>,
}

/// The congestion-aware links owned by one shard (see the module docs):
/// host access links by global host id, leaf uplinks/downlinks by
/// `[rack][uplink index]`. Entries of foreign racks are `None`/empty —
/// every link is touched only by its owning rack's event domain.
pub(crate) struct LinkState {
    pub client_up: Vec<Option<Link>>,
    pub client_down: Vec<Option<Link>>,
    pub server_up: Vec<Option<Link>>,
    pub server_down: Vec<Option<Link>>,
    pub coord_up: Option<Link>,
    pub coord_down: Option<Link>,
    /// Leaf `r` → upper tier via uplink `j`.
    pub up: Vec<Vec<Link>>,
    /// Upper tier → leaf `r` via downlink `j`.
    pub down: Vec<Vec<Link>>,
}

/// Background incast state: per-source-rack Poisson streams converging
/// on the victim rack's downlinks.
pub(crate) struct BgState {
    /// Per-source-rack arrival process (aggregate rate ÷ source racks).
    pub arrivals: PoissonArrivals,
    /// Per-rack arrival streams (`None` = foreign rack or the victim).
    pub rngs: Vec<Option<StdRng>>,
    /// On-wire bytes per background packet.
    pub wire: u16,
    /// The rack whose downlinks the flows converge on.
    pub victim: usize,
    /// Packets generated per source rack (the flow-hash counter: each
    /// background packet is its own flow, spreading across uplinks).
    pub sent: Vec<u64>,
}

/// Mixes a background packet's (source rack, sequence) into its ECMP
/// hash (a splitmix64 round — any deterministic mix works).
#[inline]
fn bg_hash(rack: u64, n: u64) -> u64 {
    let mut z = rack
        .wrapping_mul(0xff51_afd7_ed55_8ccd)
        .wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x2545_f491_4f6c_dd1d);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Which host access link an [`Shard::edge_hop`] traversal uses.
#[derive(Clone, Copy)]
enum EdgeLink {
    ClientUp(usize),
    ClientDown(usize),
    ServerUp(usize),
    ServerDown(usize),
    CoordUp,
    CoordDown,
}

/// One shard of a testbed simulation: the event loop state for a subset
/// of the racks (all of them, for a serial run).
///
/// Host and engine vectors are indexed by *global* id with `None` holes
/// for entities owned by other shards, so port arithmetic and
/// result-assembly order are identical at any shard count.
pub(crate) struct Shard {
    /// This shard's index and the total count (`racks % nshards` owner
    /// mapping, see [`Shard::shard_of_rack`]).
    pub(crate) id: usize,
    pub(crate) nshards: usize,
    pub(crate) scenario: Arc<Scenario>,
    pub(crate) q: EventQueue<Ev>,
    pub(crate) clients: Vec<Option<ClientSim>>,
    pub(crate) servers: Vec<Option<ServerSim>>,
    pub(crate) server_epoch: Vec<u32>,
    /// Owned leaf engines, indexed by rack (`None` = foreign rack).
    pub(crate) engines: Vec<Option<Box<dyn netclone_core::SwitchEngine>>>,
    /// This shard's replicas of the (stateless) upper-tier switches —
    /// the spine, or a fat-tree's aggs then cores, indexed by
    /// `global switch index - racks`. Empty when `racks == 1`. Counter
    /// replicas are merged at the end.
    pub(crate) upper: Vec<Box<dyn netclone_core::SwitchEngine>>,
    pub(crate) racks: usize,
    pub(crate) inter_rack_ns: u64,
    /// The upper-fabric wiring and its ECMP hash seed.
    pub(crate) shape: FabricShape,
    pub(crate) ecmp_seed: u64,
    /// One switch pass latency, ns (background packets cross leaves
    /// without engine processing but still pay the pass).
    pub(crate) pass_ns: u64,
    pub(crate) server_leaf: Vec<usize>,
    pub(crate) client_leaf: Vec<usize>,
    pub(crate) coord_leaf: usize,
    /// Congestion-aware links (`None` = fixed-latency hops).
    pub(crate) links: Option<LinkState>,
    /// Background incast traffic (`None` = quiet fabric).
    pub(crate) bg: Option<BgState>,
    /// Fabric-forwarding flag; a replica on every shard, flipped by
    /// broadcast control events.
    pub(crate) switch_up: bool,
    /// Per-leaf forwarding flags (drain plans). Only the owning shard's
    /// entries are ever consulted — a leaf's packets execute in its own
    /// rack domain — so drain events prime on the owner alone.
    pub(crate) leaf_up: Vec<bool>,
    pub(crate) coordinator: Option<LaedgeCoordinator>,
    pub(crate) arrivals: PoissonArrivals,
    pub(crate) arrival_rngs: Vec<Option<StdRng>>,
    pub(crate) workload_rngs: Vec<Option<StdRng>>,
    pub(crate) loss: Option<LossModel>,
    pub(crate) synthetic: Option<SyntheticWorkload>,
    pub(crate) kvmix: Option<Arc<KvMix>>,
    /// The shard's reusable emission buffer (`on_switch_in` drains it in
    /// place; see the `EmissionSink` contract)…
    pub(crate) sink: EmissionSink,
    /// …and a second one for inline upper-tier hops, which happen while
    /// the leaf sink is detached.
    pub(crate) upper_sink: EmissionSink,
    /// Interned `(op, born_ns)` payloads for packets in flight *within*
    /// this shard; cross-shard packets are re-interned on arrival.
    pub(crate) payloads: PayloadSlab,
    pub(crate) end_ns: u64,
    pub(crate) measure_start_ns: u64,
    pub(crate) throughput: TimeSeries,
    pub(crate) completed_in_window: u64,
    pub(crate) generated_in_window: u64,
    pub(crate) packets_lost: u64,
    /// Warm-up snapshots of the owned leaves (by rack index) and of the
    /// upper-tier replicas.
    pub(crate) switch_counters_at_warmup: Vec<SwitchCounters>,
    pub(crate) upper_counters_at_warmup: Vec<SwitchCounters>,
    pub(crate) server_stats_at_warmup: Vec<netclone_hosts::server::ServerStats>,
    /// Per-source tie-break sequence counters (index = source id).
    /// Control counters (`seq[0]`) evolve identically on every shard;
    /// rack counters are only touched by their owner.
    pub(crate) seq: Vec<u64>,
    /// Source id of the currently-executing event's domain.
    pub(crate) cur_src: u16,
    /// Rack of the currently-executing event (selects the loss stream);
    /// control events never draw.
    pub(crate) cur_rack: usize,
    /// Logical events scheduled by this shard (cross-shard sends counted
    /// at the sender, broadcast control replicas once, on shard 0) — the
    /// shard's share of `RunResult::events`.
    pub(crate) events_scheduled: u64,
    /// Outbound cross-shard messages, per destination shard, flushed at
    /// the end of each window.
    pub(crate) outbox: Vec<Vec<CrossMsg>>,
    /// When tracing, the popped `(time, tie)` keys in execution order.
    pub(crate) trace: Option<Vec<(u64, u64)>>,
}

/// A cross-shard event in transit: the sender stamps the deterministic
/// delivery key and materialises any payload (the slabs are
/// shard-private), the receiver re-interns it.
pub(crate) struct CrossMsg {
    pub at: u64,
    pub tie: u64,
    pub ev: CrossEv,
}

/// The cross-shard event kinds (the only events that ever cross racks).
pub(crate) enum CrossEv {
    /// A packet arriving at a foreign leaf (fixed-latency fabrics).
    SwitchIn {
        leaf: usize,
        meta: PacketMeta,
        op: RpcOp,
        born_ns: u64,
    },
    /// A packet arriving at a foreign leaf's downlink queue
    /// (congestion-aware fabrics).
    DownlinkIn {
        leaf: usize,
        via: usize,
        meta: PacketMeta,
        op: RpcOp,
        born_ns: u64,
    },
    /// A background packet arriving at the victim leaf's downlink queue.
    BgDown { leaf: usize, via: usize, wire: u16 },
}

impl Shard {
    /// Owner shard of a rack.
    #[inline]
    pub(crate) fn shard_of_rack(&self, rack: usize) -> usize {
        rack % self.nshards
    }

    /// Source id of a rack's domain: single-rack runs collapse onto the
    /// control domain (one counter — the old global sequence); multi-rack
    /// runs put racks above the control domain so control events win
    /// ties.
    #[inline]
    fn src_of_rack(&self, rack: usize) -> u16 {
        if self.racks == 1 {
            CONTROL_SRC
        } else {
            (rack + 1) as u16
        }
    }

    #[inline]
    fn set_rack_ctx(&mut self, rack: usize) {
        self.cur_src = self.src_of_rack(rack);
        self.cur_rack = rack;
    }

    #[inline]
    fn set_control_ctx(&mut self) {
        self.cur_src = CONTROL_SRC;
        // Control handlers never traverse links, so they never draw from
        // a loss stream; poison the rack index to catch violations.
        self.cur_rack = usize::MAX;
    }

    /// Schedules `ev` on this shard's queue, keyed by the executing
    /// domain. All targets are local by construction (the only non-local
    /// sends go through the outbox in [`Self::send_to_leaf`] and the
    /// background path).
    #[inline]
    fn sched(&mut self, at_ns: u64, ev: Ev) {
        let tie = self.next_tie();
        self.events_scheduled += 1;
        self.q.schedule_keyed(SimTime::from_ns(at_ns), tie, ev);
    }

    /// The next tie-break key of the executing domain.
    #[inline]
    fn next_tie(&mut self) -> u64 {
        let s = self.cur_src as usize;
        let tie = tie_key(self.cur_src, self.seq[s]);
        self.seq[s] += 1;
        tie
    }

    #[inline]
    fn lose_packet(&mut self) -> bool {
        match &mut self.loss {
            None => false,
            Some(m) => {
                let rng = m.rngs[self.cur_rack]
                    .as_mut()
                    .expect("loss stream of an owned rack");
                rng.random::<f64>() < m.prob
            }
        }
    }

    fn draw_op(&mut self, cid: usize) -> RpcOp {
        let rng = self.workload_rngs[cid]
            .as_mut()
            .expect("workload stream of an owned client");
        if let Some(wl) = &self.synthetic {
            RpcOp::Echo {
                class_ns: wl.sample_class(rng),
            }
        } else {
            self.kvmix.as_ref().expect("kv workload").sample(rng)
        }
    }

    /// Reconstitutes the host-layer view of an in-flight packet.
    #[inline]
    fn app(&self, sp: &SimPacket) -> AppPacket {
        let (op, born_ns) = self.payloads.get(sp.pid);
        AppPacket {
            meta: sp.meta,
            op,
            born_ns,
        }
    }

    /// Carries a packet across one host access link, starting at
    /// `egress_ns` (when the sender's last bit is ready): returns the
    /// arrival time at the far end, or `None` if the bounded queue
    /// tail-dropped it. Links disabled → the historical fixed-latency
    /// hop, arithmetic unchanged.
    #[inline]
    fn edge_hop(&mut self, which: EdgeLink, egress_ns: u64, wire: u16) -> Option<u64> {
        let Some(ls) = &mut self.links else {
            return Some(egress_ns + calib::LINK_ONE_WAY_NS);
        };
        let link = match which {
            EdgeLink::ClientUp(cid) => ls.client_up[cid].as_mut(),
            EdgeLink::ClientDown(cid) => ls.client_down[cid].as_mut(),
            EdgeLink::ServerUp(idx) => ls.server_up[idx].as_mut(),
            EdgeLink::ServerDown(idx) => ls.server_down[idx].as_mut(),
            EdgeLink::CoordUp => ls.coord_up.as_mut(),
            EdgeLink::CoordDown => ls.coord_down.as_mut(),
        }
        .expect("access link of an owned host");
        match link.offer(egress_ns, u32::from(wire)) {
            Verdict::Forward { depart_ns, .. } => Some(depart_ns + calib::LINK_ONE_WAY_NS),
            Verdict::Drop => None,
        }
    }

    pub(crate) fn handle(&mut self, now: u64, ev: Ev) {
        match ev {
            Ev::Gen(cid) => {
                self.set_rack_ctx(self.client_leaf[cid]);
                self.on_gen(cid, now);
            }
            Ev::SwitchIn(sw, pkt) => {
                self.set_rack_ctx(sw);
                self.on_switch_in(sw, pkt, now);
            }
            Ev::ServerIn(idx, pkt) => {
                self.set_rack_ctx(self.server_leaf[idx]);
                self.on_server_in(idx, pkt, now);
            }
            Ev::ServerDone { idx, epoch, pkt } => {
                self.set_rack_ctx(self.server_leaf[idx]);
                self.on_server_done(idx, epoch, pkt, now);
            }
            Ev::ClientIn(cid, pkt) => {
                self.set_rack_ctx(self.client_leaf[cid]);
                self.on_client_in(cid, pkt, now);
            }
            Ev::CoordIn(pkt) => {
                self.set_rack_ctx(self.coord_leaf);
                self.on_coord_in(pkt, now);
            }
            Ev::DownlinkIn { leaf, via, pkt } => {
                self.set_rack_ctx(leaf);
                self.on_downlink_in(leaf, via, pkt, now);
            }
            Ev::BgGen(r) => {
                self.set_rack_ctx(r);
                self.on_bg_gen(r, now);
            }
            Ev::BgDown { leaf, via, wire } => {
                self.set_rack_ctx(leaf);
                self.on_bg_down(leaf, via, wire, now);
            }
            Ev::EndWarmup => {
                self.set_control_ctx();
                self.on_end_warmup(now);
            }
            Ev::SwitchFail => {
                self.set_control_ctx();
                self.switch_up = false;
            }
            Ev::SwitchReactivate { bringup_ns } => {
                // Broadcast control event: every shard schedules its own
                // SwitchUp replica with the *same* key (the control
                // counters march in lockstep), counted once.
                self.set_control_ctx();
                let tie = self.next_tie();
                if self.id == 0 {
                    self.events_scheduled += 1;
                }
                self.q
                    .schedule_keyed(SimTime::from_ns(now + bringup_ns), tie, Ev::SwitchUp);
            }
            Ev::SwitchUp => {
                // §3.6: only soft state is lost; the control plane's table
                // entries are reinstalled during bring-up.
                self.set_control_ctx();
                for e in self.engines.iter_mut().flatten() {
                    e.reset_soft_state();
                }
                for u in &mut self.upper {
                    u.reset_soft_state();
                }
                self.switch_up = true;
            }
            Ev::ServerKill(idx) => {
                self.set_control_ctx();
                self.servers[idx].as_mut().expect("owned server").kill();
                self.server_epoch[idx] += 1;
            }
            Ev::ServerRemove(sid) => {
                self.set_control_ctx();
                self.on_server_remove(sid);
            }
            Ev::ServerSlow { idx, factor } => {
                // Gray failure: only future service draws change; the
                // switch keeps the server in its tables and the queue
                // keeps filling — which is the point.
                self.set_control_ctx();
                self.servers[idx]
                    .as_mut()
                    .expect("owned server")
                    .set_slow_factor(factor);
            }
            Ev::LeafDrain(rack) => {
                self.set_control_ctx();
                self.leaf_up[rack] = false;
            }
            Ev::LeafRestore(rack) => {
                // Fig. 16 bring-up semantics scoped to one leaf: packets
                // flow again, but the leaf's soft state (idle tracking,
                // filters) restarts cold.
                self.set_control_ctx();
                self.leaf_up[rack] = true;
                self.engines[rack]
                    .as_mut()
                    .expect("owned leaf engine")
                    .reset_soft_state();
            }
            Ev::LinkFlap { rack, factor } => {
                self.set_control_ctx();
                self.on_link_flap(rack, factor);
            }
            Ev::ClientTick(cid) => {
                self.set_rack_ctx(self.client_leaf[cid]);
                self.on_client_tick(cid, now);
            }
        }
    }

    /// Gray failure of the *network*: every rack-adjacent link of the
    /// victim rack shifts its effective rate (queued packets keep their
    /// schedule). Owner-primed — only the owning shard materializes these
    /// links, and only its domain ever touches them, so the flap composes
    /// with the sharded loop's bit-identity argument unchanged.
    fn on_link_flap(&mut self, rack: usize, factor: u64) {
        let Shard {
            links,
            client_leaf,
            server_leaf,
            coord_leaf,
            ..
        } = self;
        let ls = links.as_mut().expect("link flap requires links");
        for l in &mut ls.up[rack] {
            l.set_degradation(factor);
        }
        for l in &mut ls.down[rack] {
            l.set_degradation(factor);
        }
        for (cid, leaf) in client_leaf.iter().enumerate() {
            if *leaf == rack {
                if let Some(l) = ls.client_up[cid].as_mut() {
                    l.set_degradation(factor);
                }
                if let Some(l) = ls.client_down[cid].as_mut() {
                    l.set_degradation(factor);
                }
            }
        }
        for (idx, leaf) in server_leaf.iter().enumerate() {
            if *leaf == rack {
                if let Some(l) = ls.server_up[idx].as_mut() {
                    l.set_degradation(factor);
                }
                if let Some(l) = ls.server_down[idx].as_mut() {
                    l.set_degradation(factor);
                }
            }
        }
        if *coord_leaf == rack {
            if let Some(l) = ls.coord_up.as_mut() {
                l.set_degradation(factor);
            }
            if let Some(l) = ls.coord_down.as_mut() {
                l.set_degradation(factor);
            }
        }
    }

    /// The client's retry wheel: expired requests retransmit through the
    /// same loss/link/payload pipeline as first transmissions (a retry
    /// storm loads the fabric like real traffic), without touching the
    /// offered-load accounting — retries are recovery, not offered work.
    /// Reschedules itself at the policy cadence until generation ends.
    fn on_client_tick(&mut self, cid: usize, now: u64) {
        let tor = self.client_leaf[cid];
        let pkts = self.clients[cid].as_mut().expect("owned client").tick(now);
        for (pkt, tx_done) in pkts {
            if self.lose_packet() {
                self.packets_lost += 1;
                continue;
            }
            let Some(at) = self.edge_hop(EdgeLink::ClientUp(cid), tx_done, pkt.meta.wire_bytes)
            else {
                continue; // tail-dropped at the access link
            };
            let pid = self.payloads.alloc(pkt.op, pkt.born_ns);
            self.sched(
                at,
                Ev::SwitchIn(
                    tor,
                    SimPacket {
                        meta: pkt.meta,
                        pid,
                    },
                ),
            );
        }
        if now < self.end_ns {
            let tick = self
                .scenario
                .retry
                .expect("client tick requires a retry policy")
                .tick_ns();
            self.sched(now + tick, Ev::ClientTick(cid));
        }
    }

    /// §3.6 "Server failures": every engine holding the server in its
    /// tables drops it (engines without server tables decline, which is
    /// fine — their clients handle failure below), and every client stops
    /// addressing it. Each client refreshes its group count from its own
    /// ToR, the engine its requests traverse. A broadcast control event:
    /// each shard walks its own engines and clients.
    fn on_server_remove(&mut self, sid: ServerId) {
        let mut any_deregistered = false;
        for e in self.engines.iter_mut().flatten() {
            any_deregistered |= e.deregister_server(sid).is_ok();
        }
        for u in &mut self.upper {
            any_deregistered |= u.deregister_server(sid).is_ok();
        }
        if any_deregistered {
            for cid in 0..self.client_leaf.len() {
                let leaf = self.client_leaf[cid];
                let Some(c) = self.clients[cid].as_mut() else {
                    continue;
                };
                if let ClientMode::NetClone { num_groups, .. } = c.mode_mut() {
                    *num_groups = self.engines[leaf]
                        .as_ref()
                        .expect("a client's leaf lives on its shard")
                        .num_groups();
                }
            }
        }
        let dead_ip = Ipv4::server(sid);
        for c in self.clients.iter_mut().flatten() {
            match c.mode_mut() {
                ClientMode::DirectRandom { servers } | ClientMode::DirectDuplicate { servers } => {
                    servers.retain(|ip| *ip != dead_ip);
                }
                _ => {}
            }
        }
    }

    fn on_gen(&mut self, cid: usize, now: u64) {
        if now >= self.end_ns {
            return; // generation stops; in-flight work drains
        }
        if now >= self.measure_start_ns && self.measure_start_ns > 0 {
            self.generated_in_window += 1;
        }
        let op = self.draw_op(cid);
        let tor = self.client_leaf[cid];
        let pkts = self.clients[cid]
            .as_mut()
            .expect("owned client")
            .generate(op, now);
        for (pkt, tx_done) in pkts {
            if self.lose_packet() {
                self.packets_lost += 1;
                continue;
            }
            let Some(at) = self.edge_hop(EdgeLink::ClientUp(cid), tx_done, pkt.meta.wire_bytes)
            else {
                continue; // tail-dropped at the access link
            };
            let pid = self.payloads.alloc(pkt.op, pkt.born_ns);
            self.sched(
                at,
                Ev::SwitchIn(
                    tor,
                    SimPacket {
                        meta: pkt.meta,
                        pid,
                    },
                ),
            );
        }
        let rng = self.arrival_rngs[cid]
            .as_mut()
            .expect("arrival stream of an owned client");
        let gap = self.arrivals.next_gap_ns(rng);
        self.sched(now + gap, Ev::Gen(cid));
    }

    fn on_switch_in(&mut self, sw: usize, sp: SimPacket, now: u64) {
        if !self.switch_up || !self.leaf_up[sw] {
            self.packets_lost += 1;
            self.payloads.release(sp.pid);
            return;
        }
        // The sink moves out for the drain so scheduling below can borrow
        // `self` freely; `mem::take` swaps in an (unallocated) empty one.
        let mut sink = std::mem::take(&mut self.sink);
        self.engines[sw]
            .as_mut()
            .expect("owned leaf engine")
            .process(sp.meta, 0, now, &mut sink);
        for e in sink.drain() {
            if self.lose_packet() {
                self.packets_lost += 1;
                continue;
            }
            if e.port == UPLINK_PORT && self.racks > 1 {
                // A leaf→upper traversal: no host NIC on this hop, the
                // fabric link latency applies instead; the upper-tier
                // passes are processed inline (module docs). ECMP picks
                // the physical uplink (a fat-tree has n_uplinks > 1;
                // leaf/spine collapses to 0).
                let h = flow_hash(e.pkt.src_ip, e.pkt.dst_ip, self.ecmp_seed);
                let via = (h % self.shape.n_uplinks() as u64) as usize;
                let mut egress = now + e.latency_ns;
                if let Some(ls) = &mut self.links {
                    match ls.up[sw][via].offer(egress, u32::from(e.pkt.wire_bytes)) {
                        Verdict::Forward { depart_ns, .. } => egress = depart_ns,
                        Verdict::Drop => continue,
                    }
                }
                self.via_upper(e.pkt, egress, sp.pid, sw, h);
            } else {
                let egress = now + e.latency_ns;
                let out = SimPacket {
                    meta: e.pkt,
                    pid: sp.pid,
                };
                if e.port == COORD_PORT {
                    if let Some(at) = self.edge_hop(EdgeLink::CoordDown, egress, e.pkt.wire_bytes) {
                        self.payloads.retain(sp.pid);
                        self.sched(at, Ev::CoordIn(out));
                    }
                } else if e.port >= 100 {
                    let cid = (e.port - 100) as usize;
                    if cid < self.clients.len() {
                        if let Some(at) =
                            self.edge_hop(EdgeLink::ClientDown(cid), egress, e.pkt.wire_bytes)
                        {
                            self.payloads.retain(sp.pid);
                            self.sched(at, Ev::ClientIn(cid, out));
                        }
                    }
                } else if e.port >= 10 {
                    let idx = (e.port - 10) as usize;
                    if idx < self.servers.len() {
                        if let Some(at) =
                            self.edge_hop(EdgeLink::ServerDown(idx), egress, e.pkt.wire_bytes)
                        {
                            self.payloads.retain(sp.pid);
                            self.sched(at, Ev::ServerIn(idx, out));
                        }
                    }
                }
            }
        }
        self.sink = sink;
        // The consumed ingress packet's reference, released last so the
        // payload stayed alive while emissions were scheduled.
        self.payloads.release(sp.pid);
    }

    /// Walks one packet through the upper tier inline against this
    /// shard's replicas, starting from its leaf-uplink egress at
    /// `egress_ns`, and parks the result at the destination leaf —
    /// locally, or through the cross-shard outbox with a sender-stamped
    /// key. Leaf/spine is one pass; a fat-tree is agg (same pod) or
    /// agg → core → agg, with ECMP hash `h` fixing the path.
    fn via_upper(
        &mut self,
        meta: PacketMeta,
        egress_ns: u64,
        pid: PayloadId,
        src_leaf: usize,
        h: u64,
    ) {
        match self.shape {
            FabricShape::LeafSpine => {
                let at_spine = egress_ns + self.inter_rack_ns;
                let mut sink = std::mem::take(&mut self.upper_sink);
                self.upper[0].process(meta, 0, at_spine, &mut sink);
                for e in sink.drain() {
                    if self.lose_packet() {
                        self.packets_lost += 1;
                        continue;
                    }
                    // Spine ports map 1:1 onto leaves (`spine_port`),
                    // exactly the arithmetic `Fabric::route` applies.
                    let leaf = (e.port - spine_port(0)) as usize;
                    self.send_to_leaf(leaf, 0, e.pkt, at_spine + e.latency_ns, pid);
                }
                self.upper_sink = sink;
            }
            FabricShape::FatTree {
                pods,
                aggs_per_pod,
                cores_per_group,
            } => {
                let lpp = self.shape.leaves_per_pod(self.racks);
                let j = (h % aggs_per_pod as u64) as usize;
                // Local upper indices: aggs pod-major, cores after.
                let mut u = (src_leaf / lpp) * aggs_per_pod + j;
                let mut at = egress_ns + self.inter_rack_ns;
                let mut meta = meta;
                loop {
                    let mut sink = std::mem::take(&mut self.upper_sink);
                    self.upper[u].process(meta, 0, at, &mut sink);
                    let mut next = None;
                    for e in sink.drain() {
                        if self.lose_packet() {
                            self.packets_lost += 1;
                            continue;
                        }
                        if e.port == UPLINK_PORT {
                            // Agg → a core of its group (second ECMP
                            // stage reuses the higher hash bits).
                            let c = ((h / aggs_per_pod as u64) % cores_per_group as u64) as usize;
                            let cu = pods * aggs_per_pod + j * cores_per_group + c;
                            next = Some((cu, e.pkt, at + e.latency_ns + self.inter_rack_ns));
                        } else if u < pods * aggs_per_pod {
                            // Agg down-port → a leaf of its pod; the
                            // downlink index equals the uplink index `j`
                            // (leaf uplink j ↔ agg j of its pod).
                            let leaf =
                                (u / aggs_per_pod) * lpp + (e.port - agg_down_port(0)) as usize;
                            self.send_to_leaf(leaf, j, e.pkt, at + e.latency_ns, pid);
                        } else {
                            // Core → aggregation `j` of the target pod.
                            let pod = (e.port - core_port(0)) as usize;
                            next = Some((
                                pod * aggs_per_pod + j,
                                e.pkt,
                                at + e.latency_ns + self.inter_rack_ns,
                            ));
                        }
                    }
                    self.upper_sink = sink;
                    let Some((nu, nmeta, nat)) = next else { break };
                    (u, meta, at) = (nu, nmeta, nat);
                }
            }
        }
    }

    /// Parks a packet leaving the upper tier at `down_egress_ns` (the
    /// last upper switch's egress instant) at leaf `leaf`: without links
    /// it arrives `inter_rack_ns` later as a plain `SwitchIn`; with
    /// links it becomes a [`Ev::DownlinkIn`] so the *destination* rack's
    /// domain offers it to downlink `via`'s queue. Cross-shard targets go
    /// through the outbox under a sender-stamped key either way.
    fn send_to_leaf(
        &mut self,
        leaf: usize,
        via: usize,
        meta: PacketMeta,
        down_egress_ns: u64,
        pid: PayloadId,
    ) {
        let dst = self.shard_of_rack(leaf);
        let (at, local_ev) = if self.links.is_some() {
            (
                down_egress_ns,
                Ev::DownlinkIn {
                    leaf,
                    via,
                    pkt: SimPacket { meta, pid },
                },
            )
        } else {
            (
                down_egress_ns + self.inter_rack_ns,
                Ev::SwitchIn(leaf, SimPacket { meta, pid }),
            )
        };
        if dst == self.id {
            self.payloads.retain(pid);
            self.sched(at, local_ev);
        } else {
            let tie = self.next_tie();
            self.events_scheduled += 1;
            let (op, born_ns) = self.payloads.get(pid);
            let ev = if self.links.is_some() {
                CrossEv::DownlinkIn {
                    leaf,
                    via,
                    meta,
                    op,
                    born_ns,
                }
            } else {
                CrossEv::SwitchIn {
                    leaf,
                    meta,
                    op,
                    born_ns,
                }
            };
            self.outbox[dst].push(CrossMsg { at, tie, ev });
        }
    }

    /// A packet reaches the head of downlink `via` into `leaf`: the
    /// destination rack offers it to the queue; a tail-drop ends it here,
    /// otherwise it reaches the leaf after serialization + propagation.
    fn on_downlink_in(&mut self, leaf: usize, via: usize, sp: SimPacket, now: u64) {
        let ls = self.links.as_mut().expect("downlink event requires links");
        match ls.down[leaf][via].offer(now, u32::from(sp.meta.wire_bytes)) {
            Verdict::Forward { depart_ns, .. } => {
                self.sched(depart_ns + self.inter_rack_ns, Ev::SwitchIn(leaf, sp));
            }
            Verdict::Drop => self.payloads.release(sp.pid),
        }
    }

    /// Source rack `r` emits its next background packet toward the
    /// victim rack and re-arms its Poisson clock. Background packets
    /// bypass the engines entirely: one uplink offer here, one downlink
    /// offer at the victim ([`Self::on_bg_down`]), fixed pass/propagation
    /// delay in between.
    fn on_bg_gen(&mut self, r: usize, now: u64) {
        if now >= self.end_ns {
            return; // background stops with the workload
        }
        let bg = self.bg.as_mut().expect("bg event requires background");
        let n = bg.sent[r];
        bg.sent[r] += 1;
        let (wire, victim) = (bg.wire, bg.victim);
        let h = bg_hash(r as u64, n);
        let via = (h % self.shape.n_uplinks() as u64) as usize;
        let ls = self.links.as_mut().expect("background requires links");
        if let Verdict::Forward { depart_ns, .. } =
            ls.up[r][via].offer(now + self.pass_ns, u32::from(wire))
        {
            // Upper-tier traversal: 1 switch (spine, or same-pod agg) or
            // 3 (agg → core → agg), each a pass + a propagation.
            let hops = match self.shape {
                FabricShape::LeafSpine => 1,
                FabricShape::FatTree { .. } => {
                    let lpp = self.shape.leaves_per_pod(self.racks);
                    if r / lpp == victim / lpp {
                        1
                    } else {
                        3
                    }
                }
            };
            let at = depart_ns + hops * (self.inter_rack_ns + self.pass_ns);
            let dst = self.shard_of_rack(victim);
            if dst == self.id {
                self.sched(
                    at,
                    Ev::BgDown {
                        leaf: victim,
                        via,
                        wire,
                    },
                );
            } else {
                let tie = self.next_tie();
                self.events_scheduled += 1;
                self.outbox[dst].push(CrossMsg {
                    at,
                    tie,
                    ev: CrossEv::BgDown {
                        leaf: victim,
                        via,
                        wire,
                    },
                });
            }
        }
        let bg = self.bg.as_mut().expect("bg event requires background");
        let rng = bg.rngs[r].as_mut().expect("bg stream of an owned rack");
        let gap = bg.arrivals.next_gap_ns(rng);
        self.sched(now + gap, Ev::BgGen(r));
    }

    /// A background packet reaches the victim's downlink: it takes queue
    /// space (delaying and dropping RPC traffic behind it) and vanishes.
    fn on_bg_down(&mut self, leaf: usize, via: usize, wire: u16, now: u64) {
        let ls = self.links.as_mut().expect("background requires links");
        let _ = ls.down[leaf][via].offer(now, u32::from(wire));
    }

    fn on_server_in(&mut self, idx: usize, sp: SimPacket, now: u64) {
        if !self.servers[idx].as_ref().expect("owned server").is_alive() {
            self.payloads.release(sp.pid);
            return; // a dead server swallows packets
        }
        let seen_at = now + calib::HOST_RX_STACK_NS;
        let app = self.app(&sp);
        match self.servers[idx]
            .as_mut()
            .expect("owned server")
            .on_request(app, seen_at)
        {
            Admission::Start { done_at } => {
                // The packet keeps its payload reference while in service.
                self.sched(
                    done_at,
                    Ev::ServerDone {
                        idx,
                        epoch: self.server_epoch[idx],
                        pkt: sp,
                    },
                );
            }
            Admission::Queued | Admission::CloneDropped => {
                // Queued packets live inside the server (full AppPacket);
                // dropped clones are gone. Either way this reference ends.
                self.payloads.release(sp.pid);
            }
        }
    }

    fn on_server_done(&mut self, idx: usize, epoch: u32, sp: SimPacket, now: u64) {
        let server = self.servers[idx].as_mut().expect("owned server");
        if epoch != self.server_epoch[idx] || !server.is_alive() {
            self.payloads.release(sp.pid);
            return; // the server died while this was in service
        }
        let completion = server.on_service_done(&sp.meta.nc, now);
        let sid = server.sid();
        let resp_meta =
            PacketMeta::netclone_response(Ipv4::server(sid), sp.meta.src_ip, completion.resp, 84);
        if self.lose_packet() {
            self.packets_lost += 1;
            self.payloads.release(sp.pid);
        } else if let Some(at) = self.edge_hop(EdgeLink::ServerUp(idx), now, resp_meta.wire_bytes) {
            // The response inherits the request's payload reference.
            self.sched(
                at,
                Ev::SwitchIn(
                    self.server_leaf[idx],
                    SimPacket {
                        meta: resp_meta,
                        pid: sp.pid,
                    },
                ),
            );
        } else {
            // Tail-dropped at the server's access link.
            self.payloads.release(sp.pid);
        }
        if let Some((next_pkt, next_done)) = completion.next {
            // A queued request leaves the server's internal queue and
            // re-enters the event system: intern its payload afresh.
            let pid = self.payloads.alloc(next_pkt.op, next_pkt.born_ns);
            self.sched(
                next_done,
                Ev::ServerDone {
                    idx,
                    epoch: self.server_epoch[idx],
                    pkt: SimPacket {
                        meta: next_pkt.meta,
                        pid,
                    },
                },
            );
        }
    }

    fn on_client_in(&mut self, cid: usize, sp: SimPacket, now: u64) {
        let app = self.app(&sp);
        let outcome = self.clients[cid]
            .as_mut()
            .expect("owned client")
            .on_response(&app, now);
        self.payloads.release(sp.pid);
        if outcome.latency_ns.is_some() && self.measure_start_ns > 0 {
            self.throughput.record(outcome.done_at);
            if outcome.done_at <= self.end_ns {
                self.completed_in_window += 1;
            }
        }
    }

    fn on_coord_in(&mut self, sp: SimPacket, now: u64) {
        let app = self.app(&sp);
        self.payloads.release(sp.pid);
        let coord = self.coordinator.as_mut().expect("coordinator scheme");
        let events = match app.meta.nc.msg_type {
            MsgType::Req => coord.on_request(app, now),
            MsgType::Resp => coord.on_response(app, now),
        };
        for e in events {
            if self.lose_packet() {
                self.packets_lost += 1;
                continue;
            }
            let Some(at) = self.edge_hop(EdgeLink::CoordUp, e.send_at, e.pkt.meta.wire_bytes)
            else {
                continue; // tail-dropped at the coordinator's access link
            };
            let pid = self.payloads.alloc(e.pkt.op, e.pkt.born_ns);
            self.sched(
                at,
                Ev::SwitchIn(
                    self.coord_leaf,
                    SimPacket {
                        meta: e.pkt.meta,
                        pid,
                    },
                ),
            );
        }
    }

    /// Installs one round's inbound cross-shard messages. The
    /// conservative lookahead guarantees none of them lands inside the
    /// window just executed; the mailbox's arrival order is irrelevant
    /// because the queue re-sorts by the sender-stamped keys (which are
    /// globally unique — domains are disjoint across shards).
    pub(crate) fn deliver(&mut self, window_end_ns: u64, inbound: Vec<CrossMsg>) {
        for m in inbound {
            debug_assert!(
                m.at >= window_end_ns,
                "cross-shard message due inside the executed window"
            );
            // The sender already counted this event; schedule without
            // touching `events_scheduled` or the local key counters.
            let ev = match m.ev {
                CrossEv::SwitchIn {
                    leaf,
                    meta,
                    op,
                    born_ns,
                } => {
                    let pid = self.payloads.alloc(op, born_ns);
                    Ev::SwitchIn(leaf, SimPacket { meta, pid })
                }
                CrossEv::DownlinkIn {
                    leaf,
                    via,
                    meta,
                    op,
                    born_ns,
                } => {
                    let pid = self.payloads.alloc(op, born_ns);
                    Ev::DownlinkIn {
                        leaf,
                        via,
                        pkt: SimPacket { meta, pid },
                    }
                }
                CrossEv::BgDown { leaf, via, wire } => Ev::BgDown { leaf, via, wire },
            };
            self.q.schedule_keyed(SimTime::from_ns(m.at), m.tie, ev);
        }
    }

    fn on_end_warmup(&mut self, now: u64) {
        self.measure_start_ns = now.max(1);
        for c in self.clients.iter_mut().flatten() {
            c.reset_measurements();
        }
        for (r, e) in self.engines.iter().enumerate() {
            if let Some(e) = e {
                self.switch_counters_at_warmup[r] = e.counters();
            }
        }
        for (i, u) in self.upper.iter().enumerate() {
            self.upper_counters_at_warmup[i] = u.counters();
        }
        for (i, s) in self.servers.iter().enumerate() {
            if let Some(s) = s {
                self.server_stats_at_warmup[i] = s.stats();
            }
        }
    }
}

/// One testbed simulation — the public entry points. State lives in
/// per-rack `Shard`s driven by `crate::shard::ShardCoordinator`.
pub struct Sim;

impl Sim {
    /// Runs to completion serially and returns the measured results.
    pub fn run(scenario: Scenario) -> RunResult {
        Self::run_with_shards(scenario, 1)
    }

    /// Runs with the event loop partitioned into up to `shards` per-rack
    /// shards (clamped to `[1, racks]`; `usize::MAX` = one per rack),
    /// synchronized conservatively on the inter-rack latency lookahead.
    ///
    /// The result is **bit-identical** to [`Sim::run`] for any shard
    /// count — sharding is an execution strategy, not a model change
    /// (asserted by `tests/harness_determinism.rs` and the sharding
    /// proptests).
    pub fn run_with_shards(scenario: Scenario, shards: usize) -> RunResult {
        ShardCoordinator::new(ScenarioBuilder::new(scenario), shards, false)
            .run()
            .0
    }

    /// [`Sim::run_with_shards`], also returning the `(time, tie-key)` of
    /// every executed event, merged across shards in key order — the
    /// hook the sharding-order proptests compare against the serial
    /// execution order.
    #[doc(hidden)]
    pub fn run_traced(scenario: Scenario, shards: usize) -> (RunResult, Vec<(u64, u64)>) {
        let (result, trace) =
            ShardCoordinator::new(ScenarioBuilder::new(scenario), shards, true).run();
        (result, trace.expect("tracing enabled"))
    }
}
