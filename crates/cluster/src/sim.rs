//! The event-driven testbed simulation.
//!
//! Topology: every host hangs off one ToR switch (the paper's single-rack
//! model; §3.7's multi-rack variant is exercised in the ablation tests).
//! Ports: servers at `10+sid`, coordinator at 99, clients at `100+cid`.
//!
//! Event flow for one RPC (NetClone scheme):
//!
//! ```text
//! Gen ─→ SwitchIn(req) ─→ ServerIn ─→ ServerDone ─→ SwitchIn(resp) ─→ ClientIn
//!            │ (clone)                                   │ (slower resp:
//!            └─→ ServerIn(clone) ─→ … ─┘                    filtered at switch)
//! ```

use netclone_asic::{DataPlane, PortId};
use netclone_core::{NetCloneConfig, NetCloneSwitch, Scheduling, SwitchCounters};
use netclone_des::{EventQueue, SeedFactory, SimTime};
use netclone_hosts::{Admission, AppPacket, ClientMode, ClientSim, ServerConfig, ServerSim};
use netclone_kvstore::ServiceCostModel;
use netclone_policies::{CoordinatorConfig, LaedgeCoordinator, PlainL3Switch};
use netclone_proto::{Ipv4, MsgType, NetCloneHdr, PacketMeta, RpcOp, ServerId};
use netclone_stats::{LatencyHistogram, TimeSeries};
use netclone_workloads::{KvMix, PoissonArrivals, ServiceShape, SyntheticWorkload, ZipfSampler};
use rand::rngs::StdRng;
use rand::Rng;

use crate::calib;
use crate::metrics::RunResult;
use crate::scenario::{Scenario, Workload};
use crate::scheme::Scheme;

const COORD_PORT: PortId = 99;

fn server_port(sid: ServerId) -> PortId {
    10 + sid
}

fn client_port(cid: u16) -> PortId {
    100 + cid
}

const COORD_IP: Ipv4 = Ipv4::new(10, 0, 3, 1);

/// Simulation events.
enum Ev {
    /// Client `cid` generates its next request.
    Gen(usize),
    /// A packet reaches the switch.
    SwitchIn(AppPacket),
    /// A packet reaches server `idx`'s NIC.
    ServerIn(usize, AppPacket),
    /// Server `idx` finishes serving `pkt` (valid only in `epoch`).
    ServerDone {
        idx: usize,
        epoch: u32,
        pkt: AppPacket,
    },
    /// A packet reaches client `cid`'s NIC.
    ClientIn(usize, AppPacket),
    /// A packet reaches the coordinator.
    CoordIn(AppPacket),
    /// Measurements start.
    EndWarmup,
    /// The switch stops forwarding (Fig. 16).
    SwitchFail,
    /// The operator reactivates the switch; bring-up begins.
    SwitchReactivate { bringup_ns: u64 },
    /// Bring-up complete: forwarding resumes with cleared soft state.
    SwitchUp,
    /// Server `idx` dies (§3.6).
    ServerKill(usize),
    /// The control plane removes a failed server from the switch tables.
    ServerRemove(ServerId),
}

enum SwitchKind {
    NetClone(Box<NetCloneSwitch>),
    Plain(Box<PlainL3Switch>),
}

impl SwitchKind {
    fn process(&mut self, pkt: PacketMeta, ingress: PortId, now: u64) -> Vec<netclone_asic::Emission> {
        match self {
            SwitchKind::NetClone(sw) => sw.process(pkt, ingress, now),
            SwitchKind::Plain(sw) => sw.process(pkt, ingress, now),
        }
    }

    fn reset_soft_state(&mut self) {
        match self {
            SwitchKind::NetClone(sw) => sw.reset_soft_state(),
            SwitchKind::Plain(sw) => sw.reset_soft_state(),
        }
    }

    fn counters(&self) -> SwitchCounters {
        match self {
            SwitchKind::NetClone(sw) => *sw.counters(),
            SwitchKind::Plain(_) => SwitchCounters::default(),
        }
    }
}

/// One testbed simulation.
pub struct Sim {
    scenario: Scenario,
    q: EventQueue<Ev>,
    clients: Vec<ClientSim>,
    servers: Vec<ServerSim>,
    server_epoch: Vec<u32>,
    switch: SwitchKind,
    switch_up: bool,
    coordinator: Option<LaedgeCoordinator>,
    arrivals: PoissonArrivals,
    arrival_rngs: Vec<StdRng>,
    workload_rngs: Vec<StdRng>,
    loss_rng: StdRng,
    synthetic: Option<SyntheticWorkload>,
    kvmix: Option<KvMix>,
    end_ns: u64,
    measure_start_ns: u64,
    throughput: TimeSeries,
    completed_in_window: u64,
    generated_in_window: u64,
    packets_lost: u64,
    switch_counters_at_warmup: SwitchCounters,
    server_stats_at_warmup: Vec<netclone_hosts::server::ServerStats>,
}

impl Sim {
    /// Builds the testbed for a scenario.
    pub fn new(scenario: Scenario) -> Self {
        let seeds = SeedFactory::new(scenario.seed);
        let n_servers = scenario.servers.len();
        assert!(n_servers >= 2, "NetClone requires at least two servers (§5.3.2)");

        // ---- switch -------------------------------------------------
        let mut switch = match scenario.scheme {
            Scheme::NetClone {
                racksched,
                filtering,
            } => {
                let mut cfg = NetCloneConfig::paper_prototype();
                cfg.scheduling = if racksched {
                    Scheduling::RackSched
                } else {
                    Scheduling::Random
                };
                cfg.filtering_enabled = filtering;
                cfg.num_filter_tables = scenario.n_filter_tables;
                cfg.filter_slots_log2 = scenario.filter_slots_log2;
                cfg.clone_condition = scenario.clone_condition;
                SwitchKind::NetClone(Box::new(NetCloneSwitch::new(cfg)))
            }
            Scheme::RackSchedOnly => SwitchKind::NetClone(Box::new(
                netclone_policies::racksched_switch(NetCloneConfig::paper_prototype()),
            )),
            Scheme::Baseline | Scheme::CClone | Scheme::Laedge => SwitchKind::Plain(Box::new(
                PlainL3Switch::new(netclone_asic::AsicSpec::tofino()),
            )),
        };
        for sid in 0..n_servers as u16 {
            match &mut switch {
                SwitchKind::NetClone(sw) => {
                    sw.add_server(sid, Ipv4::server(sid), server_port(sid))
                        .expect("server registration");
                }
                SwitchKind::Plain(sw) => sw.add_route(Ipv4::server(sid), server_port(sid)),
            }
        }
        for cid in 0..scenario.n_clients as u16 {
            match &mut switch {
                SwitchKind::NetClone(sw) => {
                    sw.add_client(Ipv4::client(cid), client_port(cid))
                        .expect("client registration");
                }
                SwitchKind::Plain(sw) => sw.add_route(Ipv4::client(cid), client_port(cid)),
            }
        }
        if scenario.scheme.uses_coordinator() {
            match &mut switch {
                SwitchKind::Plain(sw) => sw.add_route(COORD_IP, COORD_PORT),
                SwitchKind::NetClone(_) => unreachable!("LÆDGE runs on a plain switch"),
            }
        }
        if let (Some(groups), SwitchKind::NetClone(sw)) = (&scenario.custom_groups, &mut switch) {
            sw.install_custom_groups(groups).expect("custom groups");
        }

        // ---- workload -----------------------------------------------
        let (synthetic, kvmix, cost) = match &scenario.workload {
            Workload::Synthetic(wl) => (Some(*wl), None, ServiceCostModel::redis()),
            Workload::Kv {
                get_frac,
                scan_count,
                objects,
                zipf_theta,
                cost,
            } => {
                let keys = ZipfSampler::new(*objects, *zipf_theta);
                (
                    None,
                    Some(KvMix::read_mix(*get_frac, *scan_count, keys)),
                    *cost,
                )
            }
        };

        // ---- servers -------------------------------------------------
        let servers: Vec<ServerSim> = scenario
            .servers
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let mut cfg = ServerConfig {
                    sid: i as u16,
                    workers: spec.workers,
                    dispatch_ns: calib::DISPATCH_NS,
                    clone_drop_ns: calib::CLONE_DROP_NS,
                    shape: if synthetic.is_some() {
                        ServiceShape::Exponential
                    } else {
                        ServiceShape::Gamma4
                    },
                    jitter: scenario.jitter,
                    cost,
                    seed: seeds.seed_for("server", i as u64),
                };
                cfg.jitter = scenario.jitter;
                ServerSim::new(cfg)
            })
            .collect();

        // ---- coordinator ----------------------------------------------
        let coordinator = scenario.scheme.uses_coordinator().then(|| {
            let mut c = LaedgeCoordinator::new(CoordinatorConfig {
                ip: COORD_IP,
                per_packet_ns: calib::COORD_PKT_NS,
            });
            for (i, spec) in scenario.servers.iter().enumerate() {
                c.add_server(i as u16, Ipv4::server(i as u16), spec.workers);
            }
            c
        });

        // ---- clients ---------------------------------------------------
        let server_ips: Vec<Ipv4> = (0..n_servers as u16).map(Ipv4::server).collect();
        let num_groups = match &switch {
            SwitchKind::NetClone(sw) => sw.num_groups(),
            SwitchKind::Plain(_) => 0,
        };
        let clients: Vec<ClientSim> = (0..scenario.n_clients as u16)
            .map(|cid| {
                let mode = match scenario.scheme {
                    Scheme::Baseline => ClientMode::DirectRandom {
                        servers: server_ips.clone(),
                    },
                    Scheme::CClone => ClientMode::DirectDuplicate {
                        servers: server_ips.clone(),
                    },
                    Scheme::Laedge => ClientMode::Coordinator { ip: COORD_IP },
                    Scheme::NetClone { .. } | Scheme::RackSchedOnly => ClientMode::NetClone {
                        num_groups,
                        num_filter_tables: scenario.n_filter_tables as u8,
                    },
                };
                ClientSim::new(
                    cid,
                    mode,
                    calib::CLIENT_TX_NS,
                    calib::CLIENT_RX_NS,
                    seeds.seed_for("client", cid as u64),
                )
            })
            .collect();

        let end_ns = scenario.warmup_ns + scenario.measure_ns;
        let ts_buckets =
            (end_ns / scenario.timeseries_bucket_ns + 2).max(1) as usize;
        let n_clients = scenario.n_clients;
        Sim {
            arrivals: PoissonArrivals::new(scenario.offered_rps / n_clients as f64),
            arrival_rngs: (0..n_clients)
                .map(|i| seeds.rng_for("arrivals", i as u64))
                .collect(),
            workload_rngs: (0..n_clients)
                .map(|i| seeds.rng_for("workload", i as u64))
                .collect(),
            loss_rng: seeds.rng_for("loss", 0),
            server_epoch: vec![0; n_servers],
            server_stats_at_warmup: vec![Default::default(); n_servers],
            scenario,
            q: EventQueue::new(),
            clients,
            servers,
            switch,
            switch_up: true,
            coordinator,
            synthetic,
            kvmix,
            end_ns,
            measure_start_ns: 0,
            throughput: TimeSeries::new(1, 1), // replaced in prime()
            completed_in_window: 0,
            generated_in_window: 0,
            packets_lost: 0,
            switch_counters_at_warmup: SwitchCounters::default(),
        }
        .primed(ts_buckets)
    }

    fn primed(mut self, ts_buckets: usize) -> Self {
        self.throughput = TimeSeries::new(self.scenario.timeseries_bucket_ns, ts_buckets);
        for cid in 0..self.clients.len() {
            let gap = self.arrivals.next_gap_ns(&mut self.arrival_rngs[cid]);
            self.q.schedule(SimTime::from_ns(gap), Ev::Gen(cid));
        }
        self.q
            .schedule(SimTime::from_ns(self.scenario.warmup_ns), Ev::EndWarmup);
        if let Some(plan) = self.scenario.switch_failure {
            self.q
                .schedule(SimTime::from_ns(plan.fail_at_ns), Ev::SwitchFail);
            self.q.schedule(
                SimTime::from_ns(plan.reactivate_at_ns),
                Ev::SwitchReactivate {
                    bringup_ns: plan.bringup_ns,
                },
            );
        }
        if let Some(plan) = self.scenario.server_failure {
            self.q.schedule(
                SimTime::from_ns(plan.fail_at_ns),
                Ev::ServerKill(plan.sid as usize),
            );
            self.q.schedule(
                SimTime::from_ns(plan.removed_at_ns),
                Ev::ServerRemove(plan.sid),
            );
        }
        self
    }

    /// Runs to completion and returns the measured results.
    pub fn run(scenario: Scenario) -> RunResult {
        let mut sim = Sim::new(scenario);
        while let Some((t, ev)) = sim.q.pop() {
            sim.handle(t.as_ns(), ev);
        }
        sim.finish()
    }

    fn lose_packet(&mut self) -> bool {
        self.scenario.loss > 0.0 && self.loss_rng.random::<f64>() < self.scenario.loss
    }

    fn draw_op(&mut self, cid: usize) -> RpcOp {
        if let Some(wl) = self.synthetic {
            RpcOp::Echo {
                class_ns: wl.sample_class(&mut self.workload_rngs[cid]),
            }
        } else {
            self.kvmix
                .as_ref()
                .expect("kv workload")
                .sample(&mut self.workload_rngs[cid])
        }
    }

    fn handle(&mut self, now: u64, ev: Ev) {
        match ev {
            Ev::Gen(cid) => self.on_gen(cid, now),
            Ev::SwitchIn(pkt) => self.on_switch_in(pkt, now),
            Ev::ServerIn(idx, pkt) => self.on_server_in(idx, pkt, now),
            Ev::ServerDone { idx, epoch, pkt } => self.on_server_done(idx, epoch, pkt, now),
            Ev::ClientIn(cid, pkt) => self.on_client_in(cid, pkt, now),
            Ev::CoordIn(pkt) => self.on_coord_in(pkt, now),
            Ev::EndWarmup => self.on_end_warmup(now),
            Ev::SwitchFail => self.switch_up = false,
            Ev::SwitchReactivate { bringup_ns } => {
                self.q.schedule(SimTime::from_ns(now + bringup_ns), Ev::SwitchUp);
            }
            Ev::SwitchUp => {
                // §3.6: only soft state is lost; the control plane's table
                // entries are reinstalled during bring-up.
                self.switch.reset_soft_state();
                self.switch_up = true;
            }
            Ev::ServerKill(idx) => {
                self.servers[idx].kill();
                self.server_epoch[idx] += 1;
            }
            Ev::ServerRemove(sid) => {
                if let SwitchKind::NetClone(sw) = &mut self.switch {
                    let _ = sw.remove_server(sid);
                    let groups = sw.num_groups();
                    for c in &mut self.clients {
                        if let ClientMode::NetClone { num_groups, .. } = c.mode_mut() {
                            *num_groups = groups;
                        }
                    }
                }
                // Direct-addressing clients stop targeting the dead server.
                let dead_ip = Ipv4::server(sid);
                for c in &mut self.clients {
                    match c.mode_mut() {
                        ClientMode::DirectRandom { servers }
                        | ClientMode::DirectDuplicate { servers } => {
                            servers.retain(|ip| *ip != dead_ip);
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    fn on_gen(&mut self, cid: usize, now: u64) {
        if now >= self.end_ns {
            return; // generation stops; in-flight work drains
        }
        if now >= self.measure_start_ns && self.measure_start_ns > 0 {
            self.generated_in_window += 1;
        }
        let op = self.draw_op(cid);
        let pkts = self.clients[cid].generate(op, now);
        for (pkt, tx_done) in pkts {
            if self.lose_packet() {
                self.packets_lost += 1;
                continue;
            }
            self.q.schedule(
                SimTime::from_ns(tx_done + calib::LINK_ONE_WAY_NS),
                Ev::SwitchIn(pkt),
            );
        }
        let gap = self.arrivals.next_gap_ns(&mut self.arrival_rngs[cid]);
        self.q.schedule(SimTime::from_ns(now + gap), Ev::Gen(cid));
    }

    fn on_switch_in(&mut self, pkt: AppPacket, now: u64) {
        if !self.switch_up {
            self.packets_lost += 1;
            return;
        }
        let emissions = self.switch.process(pkt.meta, 0, now);
        for e in emissions {
            if self.lose_packet() {
                self.packets_lost += 1;
                continue;
            }
            let out = AppPacket {
                meta: e.pkt,
                op: pkt.op,
                born_ns: pkt.born_ns,
            };
            let at = SimTime::from_ns(now + e.latency_ns + calib::LINK_ONE_WAY_NS);
            if e.port == COORD_PORT {
                self.q.schedule(at, Ev::CoordIn(out));
            } else if e.port >= 100 {
                let cid = (e.port - 100) as usize;
                if cid < self.clients.len() {
                    self.q.schedule(at, Ev::ClientIn(cid, out));
                }
            } else if e.port >= 10 {
                let idx = (e.port - 10) as usize;
                if idx < self.servers.len() {
                    self.q.schedule(at, Ev::ServerIn(idx, out));
                }
            }
        }
    }

    fn on_server_in(&mut self, idx: usize, pkt: AppPacket, now: u64) {
        if !self.servers[idx].is_alive() {
            return; // a dead server swallows packets
        }
        let seen_at = now + calib::HOST_RX_STACK_NS;
        match self.servers[idx].on_request(pkt, seen_at) {
            Admission::Start { done_at } => {
                self.q.schedule(
                    SimTime::from_ns(done_at),
                    Ev::ServerDone {
                        idx,
                        epoch: self.server_epoch[idx],
                        pkt,
                    },
                );
            }
            Admission::Queued | Admission::CloneDropped => {}
        }
    }

    fn on_server_done(&mut self, idx: usize, epoch: u32, pkt: AppPacket, now: u64) {
        if epoch != self.server_epoch[idx] || !self.servers[idx].is_alive() {
            return; // the server died while this was in service
        }
        let completion = self.servers[idx].on_service_done(now);
        let sid = self.servers[idx].sid();
        let nc = NetCloneHdr::response_to(&pkt.meta.nc, sid, completion.state);
        let resp = AppPacket {
            meta: PacketMeta::netclone_response(Ipv4::server(sid), pkt.meta.src_ip, nc, 84),
            op: pkt.op,
            born_ns: pkt.born_ns,
        };
        if self.lose_packet() {
            self.packets_lost += 1;
        } else {
            self.q.schedule(
                SimTime::from_ns(now + calib::LINK_ONE_WAY_NS),
                Ev::SwitchIn(resp),
            );
        }
        if let Some((next_pkt, next_done)) = completion.next {
            self.q.schedule(
                SimTime::from_ns(next_done),
                Ev::ServerDone {
                    idx,
                    epoch: self.server_epoch[idx],
                    pkt: next_pkt,
                },
            );
        }
    }

    fn on_client_in(&mut self, cid: usize, pkt: AppPacket, now: u64) {
        let outcome = self.clients[cid].on_response(&pkt, now);
        if outcome.latency_ns.is_some() && self.measure_start_ns > 0 {
            self.throughput.record(outcome.done_at);
            if outcome.done_at <= self.end_ns {
                self.completed_in_window += 1;
            }
        }
    }

    fn on_coord_in(&mut self, pkt: AppPacket, now: u64) {
        let coord = self.coordinator.as_mut().expect("coordinator scheme");
        let events = match pkt.meta.nc.msg_type {
            MsgType::Req => coord.on_request(pkt, now),
            MsgType::Resp => coord.on_response(pkt, now),
        };
        for e in events {
            if self.lose_packet() {
                self.packets_lost += 1;
                continue;
            }
            self.q.schedule(
                SimTime::from_ns(e.send_at + calib::LINK_ONE_WAY_NS),
                Ev::SwitchIn(e.pkt),
            );
        }
    }

    fn on_end_warmup(&mut self, now: u64) {
        self.measure_start_ns = now.max(1);
        for c in &mut self.clients {
            c.reset_measurements();
        }
        self.switch_counters_at_warmup = self.switch.counters();
        for (i, s) in self.servers.iter().enumerate() {
            self.server_stats_at_warmup[i] = s.stats();
        }
    }

    fn finish(self) -> RunResult {
        let mut latency = LatencyHistogram::new();
        let mut generated = 0u64;
        let mut redundant = 0u64;
        for c in &self.clients {
            latency.merge(c.latencies());
            generated += c.stats().generated;
            redundant += c.stats().redundant;
        }
        let measure_secs = self.scenario.measure_ns as f64 / 1e9;
        let mut switch = self.switch.counters();
        let base = self.switch_counters_at_warmup;
        switch.requests -= base.requests;
        switch.cloned -= base.cloned;
        switch.clone_skipped_busy -= base.clone_skipped_busy;
        switch.responses -= base.responses;
        switch.responses_filtered -= base.responses_filtered;
        switch.filter_overwrites -= base.filter_overwrites;
        switch.recirculated -= base.recirculated;

        let mut clone_drops = 0;
        let mut idle_reports = 0;
        let mut responses = 0;
        let mut per_server_served = Vec::with_capacity(self.servers.len());
        for (i, s) in self.servers.iter().enumerate() {
            let st = s.stats();
            let b = self.server_stats_at_warmup[i];
            clone_drops += st.clones_dropped - b.clones_dropped;
            idle_reports += st.idle_reports - b.idle_reports;
            responses += st.responses - b.responses;
            per_server_served.push(st.served - b.served);
        }

        RunResult {
            scheme: self.scenario.scheme.label(),
            workload: self.scenario.workload.label(),
            offered_rps: self.scenario.offered_rps,
            achieved_rps: self.completed_in_window as f64 / measure_secs,
            latency,
            generated,
            completed: self.completed_in_window,
            client_redundant: redundant,
            switch,
            server_clone_drops: clone_drops,
            server_idle_reports: idle_reports,
            server_responses: responses,
            throughput_series: self.throughput,
            packets_lost: self.packets_lost,
            per_server_served,
        }
    }
}
