//! The event-driven testbed simulation: the event loop only.
//!
//! Everything about *assembling* a testbed (scheme → switch engines,
//! hosts, workload streams, priming events) lives in
//! [`crate::build::ScenarioBuilder`]; this module drains the event queue
//! and keeps the measurement windows. Every switch is a
//! [`Box<dyn SwitchEngine>`](netclone_core::SwitchEngine) — the same
//! trait object the real-socket soft switch drives — so the simulator has
//! no per-scheme dispatch at all.
//!
//! ## The allocation-free hot path
//!
//! The per-packet path performs no heap allocation in steady state:
//!
//! * switch programs write into the run's single reusable
//!   [`EmissionSink`] (see the contract in `netclone_asic::dataplane`),
//!   which `Sim::on_switch_in` drains in place;
//! * events carry a `SimPacket` — metadata plus a payload-slab id —
//!   instead of a full `AppPacket`, so the immutable `(op, born_ns)`
//!   pair is interned once per packet rather than copied through every
//!   hop (see the `payload` module for the reference-counting
//!   discipline);
//! * the event queue itself is `netclone-des`'s indexed 4-ary heap over
//!   a flat `Vec`.
//!
//! Topology: a [`Fabric`] built from the
//! scenario's [`Topology`](crate::topology::Topology). The default single
//! rack (the paper's testbed) is one ToR switch with every host attached;
//! multi-rack shapes (§3.7) add per-rack leaves and an aggregation spine,
//! with `Ev::SwitchIn` carrying the switch index and
//! [`Fabric::hop`](crate::topology::Fabric::hop) walking emissions
//! between switches (each leaf↔spine traversal costs the topology's
//! inter-rack latency). The full fabric path — cloning at the client-side
//! ToR only, `SWITCH_ID`-gated pass-through elsewhere — is covered by
//! `tests/multirack.rs` and the topology proptests.
//! Ports: servers at `10+sid`, coordinator at 99, clients at `100+cid`,
//! uplinks per [`crate::topology`].
//!
//! Event flow for one RPC (NetClone scheme):
//!
//! ```text
//! Gen ─→ SwitchIn(req) ─→ ServerIn ─→ ServerDone ─→ SwitchIn(resp) ─→ ClientIn
//!            │ (clone)                                   │ (slower resp:
//!            └─→ ServerIn(clone) ─→ … ─┘                    filtered at switch)
//! ```

use netclone_asic::EmissionSink;
use netclone_core::SwitchCounters;
use netclone_des::{EventQueue, SimTime};
use netclone_hosts::{Admission, AppPacket, ClientMode, ClientSim, ServerSim};
use netclone_policies::LaedgeCoordinator;
use netclone_proto::{Ipv4, MsgType, PacketMeta, RpcOp, ServerId};
use netclone_stats::{LatencyHistogram, TimeSeries};
use netclone_workloads::{KvMix, PoissonArrivals, SyntheticWorkload};
use rand::rngs::StdRng;
use rand::Rng;

use crate::build::{ScenarioBuilder, COORD_PORT};
use crate::calib;
use crate::metrics::RunResult;
use crate::payload::{PayloadSlab, SimPacket};
use crate::scenario::Scenario;
use crate::topology::{Fabric, Hop};

/// Simulation events.
///
/// Packet-bearing variants carry a [`SimPacket`] (metadata + interned
/// payload id), not a full `AppPacket` — see the module docs.
pub(crate) enum Ev {
    /// Client `cid` generates its next request.
    Gen(usize),
    /// A packet reaches switch `idx` of the fabric.
    SwitchIn(usize, SimPacket),
    /// A packet reaches server `idx`'s NIC.
    ServerIn(usize, SimPacket),
    /// Server `idx` finishes serving `pkt` (valid only in `epoch`).
    ServerDone {
        idx: usize,
        epoch: u32,
        pkt: SimPacket,
    },
    /// A packet reaches client `cid`'s NIC.
    ClientIn(usize, SimPacket),
    /// A packet reaches the coordinator.
    CoordIn(SimPacket),
    /// Measurements start.
    EndWarmup,
    /// The fabric stops forwarding (Fig. 16; see
    /// [`crate::scenario::SwitchFailurePlan`] for multi-rack semantics).
    SwitchFail,
    /// The operator reactivates the fabric; bring-up begins.
    SwitchReactivate { bringup_ns: u64 },
    /// Bring-up complete: forwarding resumes with cleared soft state on
    /// every switch.
    SwitchUp,
    /// Server `idx` dies (§3.6).
    ServerKill(usize),
    /// The control plane removes a failed server from the switch tables.
    ServerRemove(ServerId),
}

/// The link-loss model, materialised only for lossy scenarios: the
/// zero-loss fast path (`scenario.loss == 0.0`, known at build time)
/// holds no RNG and never draws. The loss stream is seeded independently
/// (`SeedFactory` fan-out), so its presence or absence cannot shift any
/// other stream — pinned by `tests/loss_determinism.rs` on both sides.
pub(crate) struct LossModel {
    /// Per-link-traversal loss probability (`scenario.loss`).
    pub prob: f64,
    /// The dedicated loss stream.
    pub rng: StdRng,
}

/// One testbed simulation.
pub struct Sim {
    pub(crate) scenario: Scenario,
    pub(crate) q: EventQueue<Ev>,
    pub(crate) clients: Vec<ClientSim>,
    pub(crate) servers: Vec<ServerSim>,
    pub(crate) server_epoch: Vec<u32>,
    /// The switch fabric — one engine per switch, assembled by
    /// [`crate::build::build_fabric`].
    pub(crate) fabric: Fabric,
    pub(crate) switch_up: bool,
    pub(crate) coordinator: Option<LaedgeCoordinator>,
    pub(crate) arrivals: PoissonArrivals,
    pub(crate) arrival_rngs: Vec<StdRng>,
    pub(crate) workload_rngs: Vec<StdRng>,
    pub(crate) loss: Option<LossModel>,
    pub(crate) synthetic: Option<SyntheticWorkload>,
    pub(crate) kvmix: Option<KvMix>,
    /// The run's single reusable emission buffer (`on_switch_in` drains
    /// it in place; see the `EmissionSink` contract).
    pub(crate) sink: EmissionSink,
    /// Interned `(op, born_ns)` payloads for in-flight packets.
    pub(crate) payloads: PayloadSlab,
    pub(crate) end_ns: u64,
    pub(crate) measure_start_ns: u64,
    pub(crate) throughput: TimeSeries,
    pub(crate) completed_in_window: u64,
    pub(crate) generated_in_window: u64,
    pub(crate) packets_lost: u64,
    pub(crate) switch_counters_at_warmup: Vec<SwitchCounters>,
    pub(crate) server_stats_at_warmup: Vec<netclone_hosts::server::ServerStats>,
}

impl Sim {
    /// Builds the testbed for a scenario (see [`ScenarioBuilder`]).
    pub fn new(scenario: Scenario) -> Self {
        ScenarioBuilder::new(scenario).build()
    }

    /// Runs to completion and returns the measured results.
    pub fn run(scenario: Scenario) -> RunResult {
        let mut sim = Sim::new(scenario);
        while let Some((t, ev)) = sim.q.pop() {
            sim.handle(t.as_ns(), ev);
        }
        sim.finish()
    }

    #[inline]
    fn lose_packet(&mut self) -> bool {
        match &mut self.loss {
            None => false,
            Some(m) => m.rng.random::<f64>() < m.prob,
        }
    }

    fn draw_op(&mut self, cid: usize) -> RpcOp {
        if let Some(wl) = &self.synthetic {
            RpcOp::Echo {
                class_ns: wl.sample_class(&mut self.workload_rngs[cid]),
            }
        } else {
            self.kvmix
                .as_ref()
                .expect("kv workload")
                .sample(&mut self.workload_rngs[cid])
        }
    }

    /// Reconstitutes the host-layer view of an in-flight packet.
    #[inline]
    fn app(&self, sp: &SimPacket) -> AppPacket {
        let (op, born_ns) = self.payloads.get(sp.pid);
        AppPacket {
            meta: sp.meta,
            op,
            born_ns,
        }
    }

    fn handle(&mut self, now: u64, ev: Ev) {
        match ev {
            Ev::Gen(cid) => self.on_gen(cid, now),
            Ev::SwitchIn(sw, pkt) => self.on_switch_in(sw, pkt, now),
            Ev::ServerIn(idx, pkt) => self.on_server_in(idx, pkt, now),
            Ev::ServerDone { idx, epoch, pkt } => self.on_server_done(idx, epoch, pkt, now),
            Ev::ClientIn(cid, pkt) => self.on_client_in(cid, pkt, now),
            Ev::CoordIn(pkt) => self.on_coord_in(pkt, now),
            Ev::EndWarmup => self.on_end_warmup(now),
            Ev::SwitchFail => self.switch_up = false,
            Ev::SwitchReactivate { bringup_ns } => {
                self.q
                    .schedule(SimTime::from_ns(now + bringup_ns), Ev::SwitchUp);
            }
            Ev::SwitchUp => {
                // §3.6: only soft state is lost; the control plane's table
                // entries are reinstalled during bring-up.
                for e in &mut self.fabric.engines {
                    e.reset_soft_state();
                }
                self.switch_up = true;
            }
            Ev::ServerKill(idx) => {
                self.servers[idx].kill();
                self.server_epoch[idx] += 1;
            }
            Ev::ServerRemove(sid) => self.on_server_remove(sid),
        }
    }

    /// §3.6 "Server failures": every engine holding the server in its
    /// tables drops it (engines without server tables decline, which is
    /// fine — their clients handle failure below), and every client stops
    /// addressing it. Each client refreshes its group count from its own
    /// ToR, the engine its requests traverse.
    fn on_server_remove(&mut self, sid: ServerId) {
        let mut any_deregistered = false;
        for e in &mut self.fabric.engines {
            any_deregistered |= e.deregister_server(sid).is_ok();
        }
        if any_deregistered {
            for (cid, c) in self.clients.iter_mut().enumerate() {
                if let ClientMode::NetClone { num_groups, .. } = c.mode_mut() {
                    *num_groups = self.fabric.engines[self.fabric.client_leaf(cid)].num_groups();
                }
            }
        }
        let dead_ip = Ipv4::server(sid);
        for c in &mut self.clients {
            match c.mode_mut() {
                ClientMode::DirectRandom { servers } | ClientMode::DirectDuplicate { servers } => {
                    servers.retain(|ip| *ip != dead_ip);
                }
                _ => {}
            }
        }
    }

    fn on_gen(&mut self, cid: usize, now: u64) {
        if now >= self.end_ns {
            return; // generation stops; in-flight work drains
        }
        if now >= self.measure_start_ns && self.measure_start_ns > 0 {
            self.generated_in_window += 1;
        }
        let op = self.draw_op(cid);
        let tor = self.fabric.client_leaf(cid);
        let pkts = self.clients[cid].generate(op, now);
        for (pkt, tx_done) in pkts {
            if self.lose_packet() {
                self.packets_lost += 1;
                continue;
            }
            let pid = self.payloads.alloc(pkt.op, pkt.born_ns);
            self.q.schedule(
                SimTime::from_ns(tx_done + calib::LINK_ONE_WAY_NS),
                Ev::SwitchIn(
                    tor,
                    SimPacket {
                        meta: pkt.meta,
                        pid,
                    },
                ),
            );
        }
        let gap = self.arrivals.next_gap_ns(&mut self.arrival_rngs[cid]);
        self.q.schedule(SimTime::from_ns(now + gap), Ev::Gen(cid));
    }

    fn on_switch_in(&mut self, sw: usize, sp: SimPacket, now: u64) {
        if !self.switch_up {
            self.packets_lost += 1;
            self.payloads.release(sp.pid);
            return;
        }
        // The sink moves out for the drain so scheduling below can borrow
        // `self` freely; `mem::take` swaps in an (unallocated) empty one.
        let mut sink = std::mem::take(&mut self.sink);
        self.fabric.engines[sw].process(sp.meta, 0, now, &mut sink);
        for e in sink.drain() {
            if self.lose_packet() {
                self.packets_lost += 1;
                continue;
            }
            match self.fabric.hop(sw, e.port) {
                Hop::Switch(next) => {
                    // A leaf↔spine traversal: no host NIC on this hop,
                    // the fabric link latency applies instead.
                    let at = SimTime::from_ns(now + e.latency_ns + self.fabric.inter_rack_ns());
                    self.payloads.retain(sp.pid);
                    self.q.schedule(
                        at,
                        Ev::SwitchIn(
                            next,
                            SimPacket {
                                meta: e.pkt,
                                pid: sp.pid,
                            },
                        ),
                    );
                }
                Hop::Local(port) => {
                    let at = SimTime::from_ns(now + e.latency_ns + calib::LINK_ONE_WAY_NS);
                    let out = SimPacket {
                        meta: e.pkt,
                        pid: sp.pid,
                    };
                    if port == COORD_PORT {
                        self.payloads.retain(sp.pid);
                        self.q.schedule(at, Ev::CoordIn(out));
                    } else if port >= 100 {
                        let cid = (port - 100) as usize;
                        if cid < self.clients.len() {
                            self.payloads.retain(sp.pid);
                            self.q.schedule(at, Ev::ClientIn(cid, out));
                        }
                    } else if port >= 10 {
                        let idx = (port - 10) as usize;
                        if idx < self.servers.len() {
                            self.payloads.retain(sp.pid);
                            self.q.schedule(at, Ev::ServerIn(idx, out));
                        }
                    }
                }
            }
        }
        self.sink = sink;
        // The consumed ingress packet's reference, released last so the
        // payload stayed alive while emissions were scheduled.
        self.payloads.release(sp.pid);
    }

    fn on_server_in(&mut self, idx: usize, sp: SimPacket, now: u64) {
        if !self.servers[idx].is_alive() {
            self.payloads.release(sp.pid);
            return; // a dead server swallows packets
        }
        let seen_at = now + calib::HOST_RX_STACK_NS;
        let app = self.app(&sp);
        match self.servers[idx].on_request(app, seen_at) {
            Admission::Start { done_at } => {
                // The packet keeps its payload reference while in service.
                self.q.schedule(
                    SimTime::from_ns(done_at),
                    Ev::ServerDone {
                        idx,
                        epoch: self.server_epoch[idx],
                        pkt: sp,
                    },
                );
            }
            Admission::Queued | Admission::CloneDropped => {
                // Queued packets live inside the server (full AppPacket);
                // dropped clones are gone. Either way this reference ends.
                self.payloads.release(sp.pid);
            }
        }
    }

    fn on_server_done(&mut self, idx: usize, epoch: u32, sp: SimPacket, now: u64) {
        if epoch != self.server_epoch[idx] || !self.servers[idx].is_alive() {
            self.payloads.release(sp.pid);
            return; // the server died while this was in service
        }
        let completion = self.servers[idx].on_service_done(&sp.meta.nc, now);
        let sid = self.servers[idx].sid();
        let resp_meta =
            PacketMeta::netclone_response(Ipv4::server(sid), sp.meta.src_ip, completion.resp, 84);
        if self.lose_packet() {
            self.packets_lost += 1;
            self.payloads.release(sp.pid);
        } else {
            // The response inherits the request's payload reference.
            self.q.schedule(
                SimTime::from_ns(now + calib::LINK_ONE_WAY_NS),
                Ev::SwitchIn(
                    self.fabric.server_leaf(idx),
                    SimPacket {
                        meta: resp_meta,
                        pid: sp.pid,
                    },
                ),
            );
        }
        if let Some((next_pkt, next_done)) = completion.next {
            // A queued request leaves the server's internal queue and
            // re-enters the event system: intern its payload afresh.
            let pid = self.payloads.alloc(next_pkt.op, next_pkt.born_ns);
            self.q.schedule(
                SimTime::from_ns(next_done),
                Ev::ServerDone {
                    idx,
                    epoch: self.server_epoch[idx],
                    pkt: SimPacket {
                        meta: next_pkt.meta,
                        pid,
                    },
                },
            );
        }
    }

    fn on_client_in(&mut self, cid: usize, sp: SimPacket, now: u64) {
        let app = self.app(&sp);
        let outcome = self.clients[cid].on_response(&app, now);
        self.payloads.release(sp.pid);
        if outcome.latency_ns.is_some() && self.measure_start_ns > 0 {
            self.throughput.record(outcome.done_at);
            if outcome.done_at <= self.end_ns {
                self.completed_in_window += 1;
            }
        }
    }

    fn on_coord_in(&mut self, sp: SimPacket, now: u64) {
        let app = self.app(&sp);
        self.payloads.release(sp.pid);
        let coord = self.coordinator.as_mut().expect("coordinator scheme");
        let events = match app.meta.nc.msg_type {
            MsgType::Req => coord.on_request(app, now),
            MsgType::Resp => coord.on_response(app, now),
        };
        for e in events {
            if self.lose_packet() {
                self.packets_lost += 1;
                continue;
            }
            let pid = self.payloads.alloc(e.pkt.op, e.pkt.born_ns);
            self.q.schedule(
                SimTime::from_ns(e.send_at + calib::LINK_ONE_WAY_NS),
                Ev::SwitchIn(
                    self.fabric.coord_leaf(),
                    SimPacket {
                        meta: e.pkt.meta,
                        pid,
                    },
                ),
            );
        }
    }

    fn on_end_warmup(&mut self, now: u64) {
        self.measure_start_ns = now.max(1);
        for c in &mut self.clients {
            c.reset_measurements();
        }
        self.switch_counters_at_warmup = self.fabric.counters();
        for (i, s) in self.servers.iter().enumerate() {
            self.server_stats_at_warmup[i] = s.stats();
        }
    }

    fn finish(self) -> RunResult {
        // Every reference-counting path in the handlers above must
        // balance: a fully drained run leaves no live payloads.
        debug_assert_eq!(
            self.payloads.live(),
            0,
            "payload slab leaked {} entries",
            self.payloads.live()
        );
        let mut latency = LatencyHistogram::new();
        let mut generated = 0u64;
        let mut redundant = 0u64;
        let mut clone_wins = 0u64;
        for c in &self.clients {
            latency.merge(c.latencies());
            generated += c.stats().generated;
            redundant += c.stats().redundant;
            clone_wins += c.stats().clone_wins;
        }
        let measure_secs = self.scenario.measure_ns as f64 / 1e9;
        // Every counter field is windowed, so plain-fabric counts
        // (routed_plain, dropped_unroutable) and the rarer NetClone
        // counters stay comparable with the windowed requests/responses.
        // Per-switch deltas first, then the fabric-wide merge.
        let per_switch: Vec<SwitchCounters> = self
            .fabric
            .counters()
            .iter()
            .zip(&self.switch_counters_at_warmup)
            .map(|(now, base)| now.since(base))
            .collect();
        let switch: SwitchCounters = per_switch.iter().sum();

        let mut clone_drops = 0;
        let mut idle_reports = 0;
        let mut responses = 0;
        let mut per_server_served = Vec::with_capacity(self.servers.len());
        for (i, s) in self.servers.iter().enumerate() {
            let st = s.stats();
            let b = self.server_stats_at_warmup[i];
            clone_drops += st.clones_dropped - b.clones_dropped;
            idle_reports += st.idle_reports - b.idle_reports;
            responses += st.responses - b.responses;
            per_server_served.push(st.served - b.served);
        }

        RunResult {
            scheme: self.scenario.scheme.label(),
            workload: self.scenario.workload.label(),
            offered_rps: self.scenario.offered_rps,
            achieved_rps: self.completed_in_window as f64 / measure_secs,
            latency,
            generated,
            completed: self.completed_in_window,
            client_redundant: redundant,
            client_clone_wins: clone_wins,
            switch,
            server_clone_drops: clone_drops,
            server_idle_reports: idle_reports,
            server_responses: responses,
            throughput_series: self.throughput,
            packets_lost: self.packets_lost,
            per_server_served,
            per_switch,
            events: self.q.scheduled_total(),
        }
    }
}
