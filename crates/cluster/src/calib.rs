//! Calibration constants for the simulated testbed.
//!
//! One set of constants drives **every** experiment — nothing is tuned
//! per-figure. Values are chosen to match the paper's testbed class
//! (100 GbE, VMA kernel bypass, i5-12600K hosts, Tofino ToR):
//!
//! * Switch pass/recirculation latency comes from [`netclone_asic::AsicSpec`]
//!   ("hundreds of nanoseconds", §2.3).
//! * One-way link+NIC latency ≈ 1 μs: wire + serialisation + PCIe/NIC for
//!   a ~100 B frame on 100 GbE with kernel bypass.
//! * Host RX stack ≈ 1 μs before the dispatcher sees a request (VMA
//!   userspace delivery).
//! * Client per-packet sender/receiver CPU ≈ 350/500 ns: VMA-class packet
//!   handling plus app bookkeeping; the receiver is the pricier side
//!   (latency recording, dedup). These give a per-client RX ceiling of
//!   2 Mpps, which is what lets redundant responses hurt at high load
//!   (Fig. 15) while leaving the baseline unconstrained (§2.2).
//! * Dispatcher enqueue ≈ 300 ns and clone-drop ≈ 200 ns per packet
//!   (§5.3.2's "processing cost" of dropped clones).
//! * LÆDGE coordinator ≈ 800 ns CPU per packet: an optimised kernel-bypass
//!   relay still handles ~1.25 Mpps, and every RPC costs it ≥ 2 packets
//!   (request + response) plus clone copies — capping it near 0.4–0.5 MRPS
//!   as in Fig. 8.
//! * Worker threads: 15 + 1 dispatcher for synthetic workloads, 8 for KV
//!   (§5.4, §5.5).

/// One-way link + NIC traversal for one hop (host↔switch), ns.
pub const LINK_ONE_WAY_NS: u64 = 1_000;

/// One-way traversal of a leaf↔spine fabric link (§3.7 multi-rack), ns.
/// No NIC/PCIe on a switch-to-switch hop, but the runs are longer and
/// optics add serialisation — 500 ns is a typical intra-DC leaf/spine
/// figure at 100 GbE. Cross-rack RPCs therefore pay 2 × 2 × 500 ns extra
/// round trip versus rack-local ones.
pub const INTER_RACK_ONE_WAY_NS: u64 = 500;

/// Userspace RX delivery inside a server before the dispatcher, ns.
pub const HOST_RX_STACK_NS: u64 = 1_000;

/// Client sender-thread CPU per packet, ns.
pub const CLIENT_TX_NS: u64 = 350;

/// Client receiver-thread CPU per packet, ns.
///
/// This sets the fleet's receive ceiling at 2 clients × 1.49 Mpps ≈
/// 2.99 MRPS of responses — just below the workers' ≈ 3.16 MRPS
/// saturation. That relationship is what reproduces three observations at
/// once: the baseline's tail kicks up at its very last load point
/// (Fig. 7), C-Clone's achieved throughput ceilings out near ≈ 1.4 MRPS
/// (its duplicate responses hit the same ceiling at half the goodput,
/// Fig. 7/8), and unfiltered redundant responses push the receivers past
/// saturation at high load (Fig. 15).
pub const CLIENT_RX_NS: u64 = 670;

/// Server dispatcher enqueue cost per request, ns.
pub const DISPATCH_NS: u64 = 300;

/// Server dispatcher cost to drop a cloned request, ns.
pub const CLONE_DROP_NS: u64 = 200;

/// LÆDGE coordinator CPU per received/sent packet, ns.
pub const COORD_PKT_NS: u64 = 800;

/// Worker threads per server for synthetic workloads (15 workers + 1
/// dispatcher on a 16-hyperthread CPU, §5.4).
pub const SYNTHETIC_WORKERS: usize = 15;

/// Worker threads per server for the KV experiments (§5.5).
pub const KV_WORKERS: usize = 8;

/// Switch pipeline bring-up time after a power cycle, ns (Fig. 16: stopped
/// at 5 s, reactivated at 7 s, traffic recovers ≈ 10 s — "the downtime …
/// depends on the switch architecture").
pub const SWITCH_BRINGUP_NS: u64 = 3_000_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_rx_ceiling_sits_at_the_server_saturation_point() {
        // The fleet's receive ceiling must sit just below the workers'
        // ≈ 3.16 MRPS saturation: redundant responses then tip the
        // receivers over (Fig. 15) while the baseline only grazes it.
        let fleet_rx_pps = 2.0 * 1e9 / CLIENT_RX_NS as f64;
        assert!(fleet_rx_pps > 2.8e6);
        assert!(fleet_rx_pps < 3.16e6);
    }

    #[test]
    fn coordinator_cap_is_below_half_mrps() {
        // Each RPC costs the coordinator ≥ 2 packet times even without
        // cloning (§2.2). This must cap it below C-Clone's knee.
        let cap_rps = 1e9 / (2.0 * COORD_PKT_NS as f64);
        assert!(cap_rps < 700_000.0);
        assert!(cap_rps > 300_000.0);
    }

    #[test]
    fn end_to_end_floor_is_tens_of_microseconds() {
        // request: TX + link + switch + link + stack + dispatch, response
        // symmetric — the floor before service must stay well under the
        // 25 μs service time.
        let floor = CLIENT_TX_NS
            + 2 * LINK_ONE_WAY_NS
            + 600
            + HOST_RX_STACK_NS
            + DISPATCH_NS
            + 2 * LINK_ONE_WAY_NS
            + 600
            + CLIENT_RX_NS;
        assert!(floor < 10_000, "network floor {floor} ns");
    }
}
