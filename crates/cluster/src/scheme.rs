//! The compared schemes (paper §5.1.3).

/// Which request-distribution scheme a scenario runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scheme {
    /// Random server selection, no cloning (the paper's "Baseline").
    Baseline,
    /// Client-based static cloning to two random servers (§2.2).
    CClone,
    /// Coordinator-based dynamic cloning (LÆDGE, §2.2). One host is
    /// dedicated to the coordinator.
    Laedge,
    /// In-network dynamic cloning (this paper).
    NetClone {
        /// RackSched integration (§3.7): JSQ fallback when not cloning.
        racksched: bool,
        /// Redundant-response filtering (§3.5); `false` only for the
        /// Fig. 15 ablation.
        filtering: bool,
    },
    /// Standalone in-network JSQ scheduler, no cloning (RackSched alone,
    /// for ablations).
    RackSchedOnly,
}

impl Scheme {
    /// The canonical NetClone configuration.
    pub const NETCLONE: Scheme = Scheme::NetClone {
        racksched: false,
        filtering: true,
    };

    /// NetClone with the RackSched fallback (Fig. 10).
    pub const NETCLONE_RS: Scheme = Scheme::NetClone {
        racksched: true,
        filtering: true,
    };

    /// NetClone without response filtering (Fig. 15).
    pub const NETCLONE_NOFILTER: Scheme = Scheme::NetClone {
        racksched: false,
        filtering: false,
    };

    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Baseline => "Baseline",
            Scheme::CClone => "C-Clone",
            Scheme::Laedge => "LAEDGE",
            Scheme::NetClone {
                racksched: false,
                filtering: true,
            } => "NetClone",
            Scheme::NetClone {
                racksched: true, ..
            } => "NetClone w/ RackSched",
            Scheme::NetClone {
                filtering: false, ..
            } => "NetClone w/o Filtering",
            Scheme::RackSchedOnly => "RackSched",
        }
    }

    /// Whether the scheme needs a coordinator host.
    pub fn uses_coordinator(&self) -> bool {
        matches!(self, Scheme::Laedge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(Scheme::Baseline.label(), "Baseline");
        assert_eq!(Scheme::CClone.label(), "C-Clone");
        assert_eq!(Scheme::NETCLONE.label(), "NetClone");
        assert_eq!(Scheme::NETCLONE_RS.label(), "NetClone w/ RackSched");
        assert_eq!(Scheme::NETCLONE_NOFILTER.label(), "NetClone w/o Filtering");
        assert_eq!(Scheme::Laedge.label(), "LAEDGE");
    }

    #[test]
    fn only_laedge_uses_a_coordinator() {
        assert!(Scheme::Laedge.uses_coordinator());
        assert!(!Scheme::NETCLONE.uses_coordinator());
        assert!(!Scheme::Baseline.uses_coordinator());
    }
}
