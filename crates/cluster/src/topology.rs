//! Cluster topology as a first-class scenario dimension.
//!
//! The paper's evaluation runs a single rack: every host hangs off one
//! ToR switch. §3.7 "Multi-rack deployment" extends the design to a
//! two-tier leaf/spine fabric: NetClone logic runs only at the
//! *client-side* ToR (gated by the `SWITCH_ID` header field); every other
//! switch — server-side ToRs and the aggregation spine — forwards with
//! plain L3 routing.
//!
//! [`Topology`] describes the fabric shape: how many racks, where servers
//! and clients sit, and the extra per-link latency of the leaf↔spine
//! hops. [`Fabric`] is the built artifact — one
//! [`SwitchEngine`] per switch plus the
//! routing metadata ([`Fabric::hop`]) the event loop uses to walk
//! emissions between switches. Assembly (which engine runs on which
//! leaf, what gets registered where) lives in
//! [`crate::build::build_fabric`].
//!
//! ## Switch indexing and ports
//!
//! | index | switch |
//! |-------|--------|
//! | `0..racks` | leaf (ToR) of rack *r* |
//! | `racks` | the spine (only when `racks > 1`) |
//!
//! On a leaf, port [`UPLINK_PORT`] faces the spine; servers keep their
//! single-rack ports (`10 + sid`), clients theirs (`100 + cid`), the
//! coordinator its own (99). On the spine, [`spine_port`]`(r)` faces
//! leaf *r*. A single-rack topology has no spine and no uplink — the
//! fabric degenerates to exactly the pre-topology simulator.

use netclone_asic::PortId;
use netclone_core::{SwitchCounters, SwitchEngine};

/// Leaf port facing the spine. Servers sit at `10+`, clients at `100+`,
/// the coordinator at 99, so 1 is free on every leaf.
pub const UPLINK_PORT: PortId = 1;

/// Spine port facing leaf `rack`.
pub const fn spine_port(rack: usize) -> PortId {
    2 + rack as PortId
}

/// Where the hosts of one kind sit across the racks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Host `i` sits in rack `i % racks` (the default: balanced).
    RoundRobin,
    /// Host `i` sits in rack `racks[i]` (arbitrary, e.g. all servers in
    /// one rack with the clients in another).
    Explicit(Vec<usize>),
}

impl Placement {
    /// Rack of host `i` under this placement.
    pub fn rack_of(&self, i: usize, racks: usize) -> usize {
        match self {
            Placement::RoundRobin => i % racks,
            Placement::Explicit(v) => v[i],
        }
    }
}

/// The fabric shape: racks, host placement, inter-rack link latency.
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    /// Number of racks (leaf switches). 1 = the paper's testbed.
    pub racks: usize,
    /// One-way latency of each leaf↔spine link, ns (on top of the
    /// switch pass latency; unused when `racks == 1`).
    pub inter_rack_ns: u64,
    /// Which rack each server sits in.
    pub server_placement: Placement,
    /// Which rack each client sits in.
    pub client_placement: Placement,
}

impl Topology {
    /// The paper's single-rack testbed (the default everywhere).
    pub fn single_rack() -> Self {
        Topology {
            racks: 1,
            inter_rack_ns: crate::calib::INTER_RACK_ONE_WAY_NS,
            server_placement: Placement::RoundRobin,
            client_placement: Placement::RoundRobin,
        }
    }

    /// A balanced multi-rack fabric: servers and clients round-robin
    /// across `racks` racks, default inter-rack link latency.
    pub fn uniform(racks: usize) -> Self {
        Topology {
            racks,
            ..Topology::single_rack()
        }
    }

    /// Overrides the leaf↔spine link latency.
    pub fn with_inter_rack_ns(mut self, ns: u64) -> Self {
        self.inter_rack_ns = ns;
        self
    }

    /// Places server `sid` explicitly (see [`Placement::Explicit`]).
    pub fn with_server_racks(mut self, racks: Vec<usize>) -> Self {
        self.server_placement = Placement::Explicit(racks);
        self
    }

    /// Places client `cid` explicitly (see [`Placement::Explicit`]).
    pub fn with_client_racks(mut self, racks: Vec<usize>) -> Self {
        self.client_placement = Placement::Explicit(racks);
        self
    }

    /// Rack of server `sid`.
    pub fn server_rack(&self, sid: usize) -> usize {
        self.server_placement.rack_of(sid, self.racks)
    }

    /// Rack of client `cid`.
    pub fn client_rack(&self, cid: usize) -> usize {
        self.client_placement.rack_of(cid, self.racks)
    }

    /// Number of switches in the fabric: the leaves plus, for multi-rack
    /// shapes, one aggregation spine.
    pub fn num_switches(&self) -> usize {
        if self.racks > 1 {
            self.racks + 1
        } else {
            1
        }
    }

    /// Index of the spine switch (`None` for a single rack).
    pub fn spine(&self) -> Option<usize> {
        (self.racks > 1).then_some(self.racks)
    }

    /// Checks the shape against a host fleet. Explicit placements must
    /// cover every host and name only existing racks.
    pub fn validate(&self, n_servers: usize, n_clients: usize) -> Result<(), String> {
        if self.racks == 0 {
            return Err("a topology needs at least one rack".into());
        }
        let check = |kind: &str, placement: &Placement, n: usize| match placement {
            Placement::RoundRobin => Ok(()),
            Placement::Explicit(v) => {
                if v.len() != n {
                    return Err(format!("{kind} placement covers {} of {n} hosts", v.len()));
                }
                match v.iter().find(|&&r| r >= self.racks) {
                    Some(r) => Err(format!("{kind} placed in rack {r} of {}", self.racks)),
                    None => Ok(()),
                }
            }
        };
        check("server", &self.server_placement, n_servers)?;
        check("client", &self.client_placement, n_clients)
    }
}

/// One step of a packet's walk through the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hop {
    /// The port is a host port on this leaf — deliver locally.
    Local(PortId),
    /// The port is an inter-switch link — forward to that switch.
    Switch(usize),
}

/// A built two-tier fabric: one programmed engine per switch plus the
/// routing metadata to walk emissions between them.
///
/// Index layout matches [`Topology`]: leaves `0..racks`, then the spine.
/// Built by [`crate::build::build_fabric`]; driven by the event loop
/// ([`crate::sim::Sim`]) and directly by the topology tests.
pub struct Fabric {
    /// The per-switch engines.
    pub engines: Vec<Box<dyn SwitchEngine>>,
    pub(crate) racks: usize,
    pub(crate) inter_rack_ns: u64,
    /// Leaf index of each server (by sim index == sid).
    pub(crate) server_leaf: Vec<usize>,
    /// Leaf index of each client (by cid).
    pub(crate) client_leaf: Vec<usize>,
    /// Leaf the LÆDGE coordinator hangs off (rack 0 by convention).
    pub(crate) coord_leaf: usize,
}

impl Fabric {
    /// Number of switches.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// True for an engine-less fabric (never produced by the builder).
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// Index of the spine switch (`None` for a single rack).
    pub fn spine(&self) -> Option<usize> {
        (self.racks > 1).then_some(self.racks)
    }

    /// Leaf switch of server `idx`.
    pub fn server_leaf(&self, idx: usize) -> usize {
        self.server_leaf[idx]
    }

    /// Leaf switch of client `cid`.
    pub fn client_leaf(&self, cid: usize) -> usize {
        self.client_leaf[cid]
    }

    /// Leaf switch of the coordinator host.
    pub fn coord_leaf(&self) -> usize {
        self.coord_leaf
    }

    /// One-way latency of a leaf↔spine link, ns.
    pub fn inter_rack_ns(&self) -> u64 {
        self.inter_rack_ns
    }

    /// Resolves an emission from switch `sw` out of `port`: either a
    /// local host port or the next switch. Pure arithmetic — the hot
    /// path allocates nothing.
    #[inline]
    pub fn hop(&self, sw: usize, port: PortId) -> Hop {
        if Some(sw) == self.spine() {
            Hop::Switch((port - spine_port(0)) as usize)
        } else if port == UPLINK_PORT && self.racks > 1 {
            Hop::Switch(self.racks)
        } else {
            Hop::Local(port)
        }
    }

    /// Per-switch counter snapshots, in switch-index order.
    pub fn counters(&self) -> Vec<SwitchCounters> {
        self.engines.iter().map(|e| e.counters()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rack_is_the_default_shape() {
        let t = Topology::single_rack();
        assert_eq!(t.racks, 1);
        assert_eq!(t.num_switches(), 1);
        assert_eq!(t.spine(), None);
        assert_eq!(t.server_rack(5), 0);
        assert_eq!(t.client_rack(1), 0);
        assert!(t.validate(6, 2).is_ok());
    }

    #[test]
    fn uniform_round_robins_hosts() {
        let t = Topology::uniform(3);
        assert_eq!(t.num_switches(), 4);
        assert_eq!(t.spine(), Some(3));
        assert_eq!(
            (0..6).map(|s| t.server_rack(s)).collect::<Vec<_>>(),
            vec![0, 1, 2, 0, 1, 2]
        );
        assert_eq!(t.client_rack(1), 1);
    }

    #[test]
    fn explicit_placement_and_validation() {
        let t = Topology::uniform(2)
            .with_server_racks(vec![1, 1, 1])
            .with_client_racks(vec![0]);
        assert_eq!(t.server_rack(2), 1);
        assert_eq!(t.client_rack(0), 0);
        assert!(t.validate(3, 1).is_ok());
        assert!(t.validate(4, 1).is_err(), "placement must cover all hosts");
        let bad = Topology::uniform(2).with_client_racks(vec![2]);
        assert!(bad.validate(2, 1).is_err(), "rack index out of range");
    }

    #[test]
    fn zero_racks_rejected() {
        let t = Topology {
            racks: 0,
            ..Topology::single_rack()
        };
        assert!(t.validate(2, 1).is_err());
    }
}
