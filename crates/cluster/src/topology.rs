//! Cluster topology as a first-class scenario dimension.
//!
//! The paper's evaluation runs a single rack: every host hangs off one
//! ToR switch. §3.7 "Multi-rack deployment" extends the design to a
//! two-tier leaf/spine fabric: NetClone logic runs only at the
//! *client-side* ToR (gated by the `SWITCH_ID` header field); every other
//! switch — server-side ToRs and the aggregation spine — forwards with
//! plain L3 routing.
//!
//! [`Topology`] describes the fabric shape: how many racks, where servers
//! and clients sit, and the extra per-link latency of the leaf↔spine
//! hops. [`Fabric`] is the built artifact — one
//! [`SwitchEngine`] per switch plus the
//! routing metadata ([`Fabric::hop`]/[`Fabric::route`]) the event loop
//! uses to walk emissions between switches. Assembly (which engine runs
//! on which leaf, what gets registered where) lives in
//! [`crate::build::build_fabric`].
//!
//! ## Shapes
//!
//! [`FabricShape::LeafSpine`] is the two-tier fabric of §3.7: every leaf
//! has one uplink to a single spine. [`FabricShape::FatTree`] is the
//! parameterized k-ary three-tier fabric (ROADMAP item 1): `pods` pods
//! of `racks/pods` leaves, `aggs_per_pod` aggregation switches per pod,
//! and `aggs_per_pod × cores_per_group` core switches — core group *j*
//! connects to aggregation switch *j* of every pod, the classic wiring
//! that keeps ECMP loop-free. Uplink choice hashes each flow with
//! [`flow_hash`] so a flow pins one path ("per-flow path stability")
//! while distinct flows spread across the fabric.
//!
//! ## Switch indexing and ports
//!
//! | index | switch |
//! |-------|--------|
//! | `0..racks` | leaf (ToR) of rack *r* |
//! | `racks` | the spine (leaf/spine, only when `racks > 1`) |
//! | `racks + pod·A + j` | fat-tree aggregation *j* of pod *pod* (A = `aggs_per_pod`) |
//! | `racks + pods·A + c` | fat-tree core *c* (group `c / cores_per_group`) |
//!
//! On a leaf, port [`UPLINK_PORT`] faces the upper tier — which *physical*
//! uplink carries the packet is the simulator's ECMP choice, invisible to
//! the engine; servers keep their single-rack ports (`10 + sid`), clients
//! theirs (`100 + cid`), the coordinator its own (99). On the spine,
//! [`spine_port`]`(r)` faces leaf *r*. On an aggregation switch,
//! [`agg_down_port`]`(i)` faces leaf *i* of its pod and [`UPLINK_PORT`]
//! faces its core group. On a core, [`core_port`]`(p)` faces pod *p*. A
//! single-rack topology has no upper tier and no uplink — the fabric
//! degenerates to exactly the pre-topology simulator.

use netclone_asic::PortId;
use netclone_core::{SwitchCounters, SwitchEngine};
use netclone_proto::Ipv4;

/// Leaf port facing the spine. Servers sit at `10+`, clients at `100+`,
/// the coordinator at 99, so 1 is free on every leaf.
pub const UPLINK_PORT: PortId = 1;

/// Spine port facing leaf `rack`.
pub const fn spine_port(rack: usize) -> PortId {
    2 + rack as PortId
}

/// Aggregation-switch port facing leaf `leaf_in_pod` of its pod.
pub const fn agg_down_port(leaf_in_pod: usize) -> PortId {
    2 + leaf_in_pod as PortId
}

/// Core-switch port facing pod `pod`.
pub const fn core_port(pod: usize) -> PortId {
    2 + pod as PortId
}

/// Seeded FNV-1a over the flow's (src, dst) address pair: the ECMP hash.
///
/// A fixed `seed` makes every flow's path a pure function of its
/// endpoints — the per-flow path-stability property the proptests pin —
/// while different seeds re-shuffle flows across uplinks.
#[inline]
pub fn flow_hash(src: Ipv4, dst: Ipv4, seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for b in src.0.to_be_bytes().into_iter().chain(dst.0.to_be_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The upper-fabric wiring above the leaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FabricShape {
    /// §3.7's two-tier fabric: one spine, one uplink per leaf.
    LeafSpine,
    /// A k-ary three-tier fat-tree: `pods` pods of `racks/pods` leaves,
    /// `aggs_per_pod` aggregation switches per pod, and
    /// `aggs_per_pod × cores_per_group` cores (core group *j* connects
    /// to aggregation *j* of every pod).
    FatTree {
        /// Number of pods.
        pods: usize,
        /// Aggregation switches per pod == uplinks per leaf.
        aggs_per_pod: usize,
        /// Cores per aggregation group == uplinks per aggregation switch.
        cores_per_group: usize,
    },
}

impl FabricShape {
    /// ECMP width: distinct uplinks out of one leaf.
    #[inline]
    pub fn n_uplinks(&self) -> usize {
        match *self {
            FabricShape::LeafSpine => 1,
            FabricShape::FatTree { aggs_per_pod, .. } => aggs_per_pod,
        }
    }

    /// Leaves per pod of a `racks`-leaf fabric (leaf/spine: one pod).
    #[inline]
    pub fn leaves_per_pod(&self, racks: usize) -> usize {
        match *self {
            FabricShape::LeafSpine => racks,
            FabricShape::FatTree { pods, .. } => racks / pods,
        }
    }

    /// Switches above the leaf tier (0 for a single rack).
    #[inline]
    pub fn upper_count(&self, racks: usize) -> usize {
        if racks <= 1 {
            return 0;
        }
        match *self {
            FabricShape::LeafSpine => 1,
            FabricShape::FatTree {
                pods,
                aggs_per_pod,
                cores_per_group,
            } => pods * aggs_per_pod + aggs_per_pod * cores_per_group,
        }
    }

    /// Pod of leaf `leaf`.
    #[inline]
    pub fn pod_of_leaf(&self, racks: usize, leaf: usize) -> usize {
        leaf / self.leaves_per_pod(racks)
    }

    /// Global switch index of aggregation `j` in pod `pod` (pod-major).
    #[inline]
    pub fn agg_index(&self, racks: usize, pod: usize, j: usize) -> usize {
        match *self {
            FabricShape::LeafSpine => racks,
            FabricShape::FatTree { aggs_per_pod, .. } => racks + pod * aggs_per_pod + j,
        }
    }

    /// Global switch index of core `c` in group `j` (cores sit after all
    /// aggregation switches; group-major).
    #[inline]
    pub fn core_index(&self, racks: usize, j: usize, c: usize) -> usize {
        match *self {
            FabricShape::LeafSpine => racks,
            FabricShape::FatTree {
                pods,
                aggs_per_pod,
                cores_per_group,
            } => racks + pods * aggs_per_pod + j * cores_per_group + c,
        }
    }
}

/// Where the hosts of one kind sit across the racks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Host `i` sits in rack `i % racks` (the default: balanced).
    RoundRobin,
    /// Host `i` sits in rack `racks[i]` (arbitrary, e.g. all servers in
    /// one rack with the clients in another).
    Explicit(Vec<usize>),
}

impl Placement {
    /// Rack of host `i` under this placement.
    pub fn rack_of(&self, i: usize, racks: usize) -> usize {
        match self {
            Placement::RoundRobin => i % racks,
            Placement::Explicit(v) => v[i],
        }
    }
}

/// The fabric shape: racks, host placement, inter-rack link latency.
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    /// Number of racks (leaf switches). 1 = the paper's testbed.
    pub racks: usize,
    /// One-way latency of each leaf↔spine link, ns (on top of the
    /// switch pass latency; unused when `racks == 1`).
    pub inter_rack_ns: u64,
    /// Which rack each server sits in.
    pub server_placement: Placement,
    /// Which rack each client sits in.
    pub client_placement: Placement,
    /// The upper-fabric wiring above the leaves.
    pub shape: FabricShape,
    /// Seed of the ECMP [`flow_hash`] (only meaningful with multiple
    /// uplinks, i.e. fat-tree shapes).
    pub ecmp_seed: u64,
}

impl Topology {
    /// The paper's single-rack testbed (the default everywhere).
    pub fn single_rack() -> Self {
        Topology {
            racks: 1,
            inter_rack_ns: crate::calib::INTER_RACK_ONE_WAY_NS,
            server_placement: Placement::RoundRobin,
            client_placement: Placement::RoundRobin,
            shape: FabricShape::LeafSpine,
            ecmp_seed: 0,
        }
    }

    /// A balanced multi-rack fabric: servers and clients round-robin
    /// across `racks` racks, default inter-rack link latency.
    pub fn uniform(racks: usize) -> Self {
        Topology {
            racks,
            ..Topology::single_rack()
        }
    }

    /// The canonical k-ary fat-tree (`k` even, ≥ 2): `k` pods of `k/2`
    /// leaves, `k/2` aggregation switches per pod, `(k/2)²` cores —
    /// `k²/2` racks total. Hosts round-robin unless placed explicitly.
    pub fn fat_tree(k: usize) -> Self {
        assert!(k >= 2 && k % 2 == 0, "a fat-tree needs an even k >= 2");
        Topology {
            racks: k * k / 2,
            shape: FabricShape::FatTree {
                pods: k,
                aggs_per_pod: k / 2,
                cores_per_group: k / 2,
            },
            ..Topology::single_rack()
        }
    }

    /// Overrides the leaf↔spine link latency.
    pub fn with_inter_rack_ns(mut self, ns: u64) -> Self {
        self.inter_rack_ns = ns;
        self
    }

    /// Overrides the ECMP hash seed.
    pub fn with_ecmp_seed(mut self, seed: u64) -> Self {
        self.ecmp_seed = seed;
        self
    }

    /// Places server `sid` explicitly (see [`Placement::Explicit`]).
    pub fn with_server_racks(mut self, racks: Vec<usize>) -> Self {
        self.server_placement = Placement::Explicit(racks);
        self
    }

    /// Places client `cid` explicitly (see [`Placement::Explicit`]).
    pub fn with_client_racks(mut self, racks: Vec<usize>) -> Self {
        self.client_placement = Placement::Explicit(racks);
        self
    }

    /// Rack of server `sid`.
    pub fn server_rack(&self, sid: usize) -> usize {
        self.server_placement.rack_of(sid, self.racks)
    }

    /// Rack of client `cid`.
    pub fn client_rack(&self, cid: usize) -> usize {
        self.client_placement.rack_of(cid, self.racks)
    }

    /// Leaves per pod (`racks` for leaf/spine: one pod).
    pub fn leaves_per_pod(&self) -> usize {
        self.shape.leaves_per_pod(self.racks)
    }

    /// ECMP width: distinct uplinks out of one leaf.
    pub fn n_uplinks(&self) -> usize {
        self.shape.n_uplinks()
    }

    /// Switches above the leaf tier (0 for a single rack).
    pub fn upper_count(&self) -> usize {
        self.shape.upper_count(self.racks)
    }

    /// Number of switches in the fabric: the leaves plus the upper tier.
    pub fn num_switches(&self) -> usize {
        (self.racks + self.upper_count()).max(1)
    }

    /// Index of the spine switch (`None` for a single rack or a
    /// fat-tree, which has no single spine).
    pub fn spine(&self) -> Option<usize> {
        (self.racks > 1 && self.shape == FabricShape::LeafSpine).then_some(self.racks)
    }

    /// Checks the shape against a host fleet. Explicit placements must
    /// cover every host and name only existing racks.
    pub fn validate(&self, n_servers: usize, n_clients: usize) -> Result<(), String> {
        if self.racks == 0 {
            return Err("a topology needs at least one rack".into());
        }
        if let FabricShape::FatTree {
            pods,
            aggs_per_pod,
            cores_per_group,
        } = self.shape
        {
            if self.racks < 2 {
                return Err("a fat-tree needs at least two racks".into());
            }
            if pods == 0 || aggs_per_pod == 0 || cores_per_group == 0 {
                return Err("a fat-tree needs pods, aggs and cores >= 1".into());
            }
            if self.racks % pods != 0 {
                return Err(format!(
                    "{} racks do not split into {pods} pods",
                    self.racks
                ));
            }
        }
        let check = |kind: &str, placement: &Placement, n: usize| match placement {
            Placement::RoundRobin => Ok(()),
            Placement::Explicit(v) => {
                if v.len() != n {
                    return Err(format!("{kind} placement covers {} of {n} hosts", v.len()));
                }
                match v.iter().find(|&&r| r >= self.racks) {
                    Some(r) => Err(format!("{kind} placed in rack {r} of {}", self.racks)),
                    None => Ok(()),
                }
            }
        };
        check("server", &self.server_placement, n_servers)?;
        check("client", &self.client_placement, n_clients)
    }
}

/// One step of a packet's walk through the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hop {
    /// The port is a host port on this leaf — deliver locally.
    Local(PortId),
    /// The port is an inter-switch link — forward to that switch.
    Switch(usize),
}

/// A built two-tier fabric: one programmed engine per switch plus the
/// routing metadata to walk emissions between them.
///
/// Index layout matches [`Topology`]: leaves `0..racks`, then the spine.
/// Built by [`crate::build::build_fabric`]; driven by the event loop
/// ([`crate::sim::Sim`]) and directly by the topology tests.
pub struct Fabric {
    /// The per-switch engines.
    pub engines: Vec<Box<dyn SwitchEngine>>,
    pub(crate) racks: usize,
    pub(crate) inter_rack_ns: u64,
    /// Leaf index of each server (by sim index == sid).
    pub(crate) server_leaf: Vec<usize>,
    /// Leaf index of each client (by cid).
    pub(crate) client_leaf: Vec<usize>,
    /// Leaf the LÆDGE coordinator hangs off (rack 0 by convention).
    pub(crate) coord_leaf: usize,
    /// The upper-fabric wiring above the leaves.
    pub(crate) shape: FabricShape,
    /// Seed of the ECMP [`flow_hash`].
    pub(crate) ecmp_seed: u64,
}

impl Fabric {
    /// Number of switches.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// True for an engine-less fabric (never produced by the builder).
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// Index of the spine switch (`None` for a single rack or fat-tree).
    pub fn spine(&self) -> Option<usize> {
        (self.racks > 1 && self.shape == FabricShape::LeafSpine).then_some(self.racks)
    }

    /// The upper-fabric wiring.
    pub fn shape(&self) -> FabricShape {
        self.shape
    }

    /// Seed of the ECMP [`flow_hash`].
    pub fn ecmp_seed(&self) -> u64 {
        self.ecmp_seed
    }

    /// Leaf switch of server `idx`.
    pub fn server_leaf(&self, idx: usize) -> usize {
        self.server_leaf[idx]
    }

    /// Leaf switch of client `cid`.
    pub fn client_leaf(&self, cid: usize) -> usize {
        self.client_leaf[cid]
    }

    /// Leaf switch of the coordinator host.
    pub fn coord_leaf(&self) -> usize {
        self.coord_leaf
    }

    /// One-way latency of a leaf↔spine link, ns.
    pub fn inter_rack_ns(&self) -> u64 {
        self.inter_rack_ns
    }

    /// Resolves an emission from switch `sw` out of `port` for a flow
    /// hashing to `h`: either a local host port or the next switch. Pure
    /// arithmetic — the hot path allocates nothing.
    ///
    /// The upper-tier walk is loop-free by construction: a packet goes
    /// up (leaf → agg → core) only while `port == UPLINK_PORT`, and the
    /// hash decides *which* same-tier switch, never whether to go back
    /// down the tier it came from. Core group `j` reaches aggregation
    /// `j` of every pod, so the down path retraces the group the up
    /// path chose.
    #[inline]
    pub fn route(&self, sw: usize, port: PortId, h: u64) -> Hop {
        if sw < self.racks {
            // Leaf: the only inter-switch port is the uplink.
            if port == UPLINK_PORT && self.racks > 1 {
                match self.shape {
                    FabricShape::LeafSpine => Hop::Switch(self.racks),
                    FabricShape::FatTree { aggs_per_pod, .. } => {
                        let pod = self.shape.pod_of_leaf(self.racks, sw);
                        let j = (h % aggs_per_pod as u64) as usize;
                        Hop::Switch(self.shape.agg_index(self.racks, pod, j))
                    }
                }
            } else {
                Hop::Local(port)
            }
        } else {
            match self.shape {
                FabricShape::LeafSpine => Hop::Switch((port - spine_port(0)) as usize),
                FabricShape::FatTree {
                    pods,
                    aggs_per_pod,
                    cores_per_group,
                } => {
                    let u = sw - self.racks;
                    if u < pods * aggs_per_pod {
                        // Aggregation switch `j` of pod `pod`.
                        let (pod, j) = (u / aggs_per_pod, u % aggs_per_pod);
                        if port == UPLINK_PORT {
                            let c = ((h / aggs_per_pod as u64) % cores_per_group as u64) as usize;
                            Hop::Switch(self.shape.core_index(self.racks, j, c))
                        } else {
                            let leaf_in_pod = (port - agg_down_port(0)) as usize;
                            Hop::Switch(pod * self.shape.leaves_per_pod(self.racks) + leaf_in_pod)
                        }
                    } else {
                        // Core of group `j`: every port faces one pod's
                        // aggregation `j`.
                        let j = (u - pods * aggs_per_pod) / cores_per_group;
                        let pod = (port - core_port(0)) as usize;
                        Hop::Switch(self.shape.agg_index(self.racks, pod, j))
                    }
                }
            }
        }
    }

    /// [`Fabric::route`] for single-path shapes (hash 0); the historical
    /// two-tier entry point.
    #[inline]
    pub fn hop(&self, sw: usize, port: PortId) -> Hop {
        self.route(sw, port, 0)
    }

    /// Per-switch counter snapshots, in switch-index order.
    pub fn counters(&self) -> Vec<SwitchCounters> {
        self.engines.iter().map(|e| e.counters()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rack_is_the_default_shape() {
        let t = Topology::single_rack();
        assert_eq!(t.racks, 1);
        assert_eq!(t.num_switches(), 1);
        assert_eq!(t.spine(), None);
        assert_eq!(t.server_rack(5), 0);
        assert_eq!(t.client_rack(1), 0);
        assert!(t.validate(6, 2).is_ok());
    }

    #[test]
    fn uniform_round_robins_hosts() {
        let t = Topology::uniform(3);
        assert_eq!(t.num_switches(), 4);
        assert_eq!(t.spine(), Some(3));
        assert_eq!(
            (0..6).map(|s| t.server_rack(s)).collect::<Vec<_>>(),
            vec![0, 1, 2, 0, 1, 2]
        );
        assert_eq!(t.client_rack(1), 1);
    }

    #[test]
    fn explicit_placement_and_validation() {
        let t = Topology::uniform(2)
            .with_server_racks(vec![1, 1, 1])
            .with_client_racks(vec![0]);
        assert_eq!(t.server_rack(2), 1);
        assert_eq!(t.client_rack(0), 0);
        assert!(t.validate(3, 1).is_ok());
        assert!(t.validate(4, 1).is_err(), "placement must cover all hosts");
        let bad = Topology::uniform(2).with_client_racks(vec![2]);
        assert!(bad.validate(2, 1).is_err(), "rack index out of range");
    }

    #[test]
    fn zero_racks_rejected() {
        let t = Topology {
            racks: 0,
            ..Topology::single_rack()
        };
        assert!(t.validate(2, 1).is_err());
    }

    /// An engine-less fabric: `route` is pure arithmetic over the shape.
    fn fat_tree_fabric(k: usize) -> Fabric {
        let t = Topology::fat_tree(k);
        Fabric {
            engines: Vec::new(),
            racks: t.racks,
            inter_rack_ns: t.inter_rack_ns,
            server_leaf: Vec::new(),
            client_leaf: Vec::new(),
            coord_leaf: 0,
            shape: t.shape,
            ecmp_seed: 0,
        }
    }

    #[test]
    fn fat_tree_shape_arithmetic() {
        let t = Topology::fat_tree(4);
        assert_eq!(t.racks, 8);
        assert_eq!(t.leaves_per_pod(), 2);
        assert_eq!(t.n_uplinks(), 2);
        assert_eq!(t.upper_count(), 4 * 2 + 2 * 2);
        assert_eq!(t.num_switches(), 8 + 12);
        assert_eq!(t.spine(), None, "a fat-tree has no single spine");
        assert!(t.validate(8, 4).is_ok());
        let t = Topology::fat_tree(6);
        assert_eq!(t.racks, 18);
        assert_eq!(t.n_uplinks(), 3);
        assert_eq!(t.upper_count(), 6 * 3 + 3 * 3);
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn fat_tree_rejects_odd_k() {
        let _ = Topology::fat_tree(3);
    }

    #[test]
    fn fat_tree_route_transitions() {
        let f = fat_tree_fabric(4);
        let (pods, a, c) = (4usize, 2usize, 2usize);
        let (racks, lpp) = (8usize, 2usize);
        for leaf in 0..racks {
            for h in [0u64, 1, 5, 0xdead_beef] {
                let pod = leaf / lpp;
                let j = (h % a as u64) as usize;
                let agg = racks + pod * a + j;
                assert_eq!(f.route(leaf, UPLINK_PORT, h), Hop::Switch(agg));
                // Aggregation uplink: a core of group `j` (higher hash
                // bits pick which one).
                let cc = ((h / a as u64) % c as u64) as usize;
                let core = racks + pods * a + j * c + cc;
                assert_eq!(f.route(agg, UPLINK_PORT, h), Hop::Switch(core));
                // Core group `j` reaches aggregation `j` of every pod —
                // the down path retraces the group the up path chose.
                for p in 0..pods {
                    assert_eq!(
                        f.route(core, core_port(p), h),
                        Hop::Switch(racks + p * a + j)
                    );
                }
                for i in 0..lpp {
                    assert_eq!(
                        f.route(agg, agg_down_port(i), h),
                        Hop::Switch(pod * lpp + i)
                    );
                }
                // Host ports on a leaf stay local.
                assert_eq!(f.route(leaf, 10, h), Hop::Local(10));
            }
        }
    }

    #[test]
    fn fat_tree_walks_terminate_loop_free() {
        // From any leaf, following UPLINK_PORT transitions and then the
        // down-ports reaches any destination leaf in ≤ 4 switch-to-switch
        // hops without revisiting a tier.
        let f = fat_tree_fabric(6);
        let shape = f.shape();
        let (racks, lpp) = (18usize, 3usize);
        for src in 0..racks {
            for dst in 0..racks {
                for h in [3u64, 0x9e37_79b9] {
                    // Up as far as needed: same pod stops at the agg.
                    let Hop::Switch(agg) = f.route(src, UPLINK_PORT, h) else {
                        panic!("uplink must reach a switch");
                    };
                    let down_from = if src / lpp == dst / lpp {
                        agg
                    } else {
                        let Hop::Switch(core) = f.route(agg, UPLINK_PORT, h) else {
                            panic!("agg uplink must reach a core");
                        };
                        let Hop::Switch(agg2) = f.route(core, core_port(dst / lpp), h) else {
                            panic!("core must reach the destination pod");
                        };
                        assert_eq!(
                            shape.pod_of_leaf(racks, (agg2 - racks) / shape.n_uplinks() * lpp),
                            dst / lpp
                        );
                        agg2
                    };
                    assert_eq!(
                        f.route(down_from, agg_down_port(dst % lpp), h),
                        Hop::Switch(dst)
                    );
                }
            }
        }
    }

    #[test]
    fn flow_hash_is_stable_and_seed_sensitive() {
        let a = Ipv4::client(0);
        let b = Ipv4::server(3);
        assert_eq!(flow_hash(a, b, 7), flow_hash(a, b, 7));
        assert_ne!(flow_hash(a, b, 7), flow_hash(a, b, 8));
        assert_ne!(flow_hash(a, b, 7), flow_hash(b, a, 7));
    }

    #[test]
    fn fat_tree_validation() {
        assert!(Topology::fat_tree(4).validate(8, 2).is_ok());
        let bad = Topology {
            racks: 7,
            shape: FabricShape::FatTree {
                pods: 4,
                aggs_per_pod: 2,
                cores_per_group: 2,
            },
            ..Topology::single_rack()
        };
        assert!(bad.validate(2, 1).is_err(), "racks must split into pods");
        let bad = Topology {
            racks: 4,
            shape: FabricShape::FatTree {
                pods: 4,
                aggs_per_pod: 0,
                cores_per_group: 2,
            },
            ..Topology::single_rack()
        };
        assert!(bad.validate(2, 1).is_err(), "zero aggs rejected");
    }
}
