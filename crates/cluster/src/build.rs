//! Scenario → testbed assembly.
//!
//! [`ScenarioBuilder`] turns a [`Scenario`] into runnable per-rack
//! shards: it picks and programs the switch engine for the scheme,
//! spawns the server and client models, wires the optional coordinator,
//! scatters everything to its owning shard, and schedules the priming
//! events under the shared control-domain key counter. The simulator
//! itself ([`Sim`][crate::sim::Sim]) is only the event loop.
//!
//! [`build_engine`] / [`build_fabric`] are the single place a scheme
//! becomes a switch program. Every frontend (this DES testbed,
//! `netclone-net`'s soft switch, tests) drives the result through
//! [`netclone_core::SwitchEngine`], so there is exactly one
//! implementation of each data plane and no per-scheme dispatch anywhere
//! else. A single-rack topology yields a one-engine [`Fabric`] programmed
//! exactly like [`build_engine`]'s; multi-rack topologies get one engine
//! per leaf plus a plain-L3 spine, wired per §3.7 (NetClone logic only
//! where clients attach, `SWITCH_ID`-gated pass-through everywhere else).

use std::sync::Arc;

use netclone_asic::PortId;
use netclone_core::{NetCloneConfig, NetCloneSwitch, Scheduling, SwitchEngine};
use netclone_des::sync::tie_key;
use netclone_des::{EventQueue, SeedFactory, SimTime};
use netclone_hosts::{ClientMode, ClientSim, ServerConfig, ServerSim};
use netclone_kvstore::ServiceCostModel;
use netclone_policies::{CoordinatorConfig, LaedgeCoordinator, PlainL3Switch};
use netclone_proto::{Ipv4, ServerId, SwitchId};
use netclone_stats::TimeSeries;
use netclone_workloads::{KvMix, ServiceShape, ZipfSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::calib;
use crate::payload::PayloadSlab;
use crate::scenario::{Fault, Scenario, Workload};
use crate::scheme::Scheme;
use crate::sim::{BgState, Ev, LinkState, LossModel, Shard, CONTROL_SRC};
use crate::topology::{agg_down_port, core_port, spine_port, Fabric, FabricShape, UPLINK_PORT};

/// Switch port of the LÆDGE coordinator host.
pub(crate) const COORD_PORT: PortId = 99;

/// Virtual address of the LÆDGE coordinator host.
pub(crate) const COORD_IP: Ipv4 = Ipv4::new(10, 0, 3, 1);

/// Switch port of server `sid` (servers hang off ports 10+).
pub(crate) fn server_port(sid: ServerId) -> PortId {
    10 + sid
}

/// Switch port of client `cid` (clients hang off ports 100+).
pub(crate) fn client_port(cid: u16) -> PortId {
    100 + cid
}

/// True when the scheme programs in-switch logic (the NetClone family);
/// the client-driven schemes (Baseline, C-Clone, LÆDGE) run over a plain
/// L3 fabric.
fn scheme_has_engine(scheme: Scheme) -> bool {
    matches!(scheme, Scheme::NetClone { .. } | Scheme::RackSchedOnly)
}

/// Builds the *unprogrammed* engine for a scenario's scheme, stamping the
/// given multi-rack identity (§3.7; single-rack deployments use 1).
fn scheme_engine(scenario: &Scenario, switch_id: SwitchId) -> Box<dyn SwitchEngine> {
    match scenario.scheme {
        Scheme::NetClone {
            racksched,
            filtering,
        } => {
            let mut cfg = NetCloneConfig::paper_prototype();
            cfg.scheduling = if racksched {
                Scheduling::RackSched
            } else {
                Scheduling::Random
            };
            cfg.filtering_enabled = filtering;
            cfg.num_filter_tables = scenario.n_filter_tables;
            cfg.filter_slots_log2 = scenario.filter_slots_log2;
            cfg.clone_condition = scenario.clone_condition;
            cfg.switch_id = switch_id;
            Box::new(NetCloneSwitch::new(cfg))
        }
        Scheme::RackSchedOnly => {
            let mut cfg = NetCloneConfig::paper_prototype();
            cfg.switch_id = switch_id;
            Box::new(netclone_policies::racksched_switch(cfg))
        }
        Scheme::Baseline | Scheme::CClone | Scheme::Laedge => {
            Box::new(PlainL3Switch::new(netclone_asic::AsicSpec::tofino()))
        }
    }
}

/// Builds and programs the single-rack switch engine for a scenario.
///
/// Together with the internal per-leaf engine factory this is the only
/// place in the workspace where a [`Scheme`] is mapped to a switch
/// program; everything
/// downstream sees `dyn SwitchEngine`. The real-socket soft switch and
/// the equivalence tests program from here too.
pub fn build_engine(scenario: &Scenario) -> Box<dyn SwitchEngine> {
    let mut engine = scheme_engine(scenario, 1);
    for sid in 0..scenario.servers.len() as u16 {
        engine
            .register_server(sid, Ipv4::server(sid), server_port(sid))
            .expect("server registration");
    }
    for cid in 0..scenario.n_clients as u16 {
        engine
            .register_client(Ipv4::client(cid), client_port(cid))
            .expect("client registration");
    }
    if scenario.scheme.uses_coordinator() {
        engine
            .register_route(COORD_IP, COORD_PORT)
            .expect("coordinator route");
    }
    if let Some(groups) = &scenario.custom_groups {
        engine.install_custom_groups(groups).expect("custom groups");
    }
    engine
}

/// Builds and programs the whole fabric for a scenario's topology.
///
/// Single rack: one engine, programmed exactly as [`build_engine`] does —
/// the pre-topology simulator, bit for bit. Multi-rack (§3.7):
///
/// * every **client-bearing leaf** runs the scheme's engine (switch_id =
///   rack + 1) with the full server table — local servers on their access
///   ports, remote ones via the uplink — so cloning happens only where
///   clients attach;
/// * every **other leaf** of an in-switch scheme runs the same engine type
///   but only has routes (the `SWITCH_ID` gate bounces foreign-stamped
///   packets to plain forwarding, and nothing ever enters it unstamped);
/// * the **spine** and all leaves of the client-driven schemes are plain
///   L3 switches routing each endpoint toward its rack.
pub fn build_fabric(scenario: &Scenario) -> Fabric {
    let topo = &scenario.topology;
    let n_servers = scenario.servers.len();
    topo.validate(n_servers, scenario.n_clients)
        .expect("invalid topology");
    let server_leaf: Vec<usize> = (0..n_servers).map(|s| topo.server_rack(s)).collect();
    let client_leaf: Vec<usize> = (0..scenario.n_clients)
        .map(|c| topo.client_rack(c))
        .collect();
    // The LÆDGE coordinator hangs off rack 0's leaf by convention.
    let coord_leaf = 0usize;

    let mut fabric = Fabric {
        engines: Vec::with_capacity(topo.num_switches()),
        racks: topo.racks,
        inter_rack_ns: topo.inter_rack_ns,
        shape: topo.shape,
        ecmp_seed: topo.ecmp_seed,
        server_leaf,
        client_leaf,
        coord_leaf,
    };
    if topo.racks == 1 {
        fabric.engines.push(build_engine(scenario));
        return fabric;
    }

    for r in 0..topo.racks {
        let has_clients = fabric.client_leaf.contains(&r);
        let mut e = scheme_engine(scenario, (r + 1) as SwitchId);
        if scheme_has_engine(scenario.scheme) && has_clients {
            // Client-side ToR: the full NetClone control plane. AddrT
            // resolves every server — rack-local ones to their access
            // port, remote ones to the uplink (the paper's Fig. 5 setup
            // generalised).
            for sid in 0..n_servers as u16 {
                let port = if fabric.server_leaf[sid as usize] == r {
                    server_port(sid)
                } else {
                    UPLINK_PORT
                };
                e.register_server(sid, Ipv4::server(sid), port)
                    .expect("server registration");
            }
            for cid in 0..scenario.n_clients as u16 {
                if fabric.client_leaf[cid as usize] == r {
                    e.register_client(Ipv4::client(cid), client_port(cid))
                        .expect("client registration");
                } else {
                    e.register_route(Ipv4::client(cid), UPLINK_PORT)
                        .expect("remote client route");
                }
            }
            if let Some(groups) = &scenario.custom_groups {
                e.install_custom_groups(groups).expect("custom groups");
            }
        } else {
            // Routing-only leaf: local endpoints on their access ports,
            // everything else via the uplink.
            for sid in 0..n_servers as u16 {
                let port = if fabric.server_leaf[sid as usize] == r {
                    server_port(sid)
                } else {
                    UPLINK_PORT
                };
                e.register_route(Ipv4::server(sid), port)
                    .expect("server route");
            }
            for cid in 0..scenario.n_clients as u16 {
                let port = if fabric.client_leaf[cid as usize] == r {
                    client_port(cid)
                } else {
                    UPLINK_PORT
                };
                e.register_route(Ipv4::client(cid), port)
                    .expect("client route");
            }
        }
        if scenario.scheme.uses_coordinator() {
            let port = if coord_leaf == r {
                COORD_PORT
            } else {
                UPLINK_PORT
            };
            e.register_route(COORD_IP, port).expect("coordinator route");
        }
        fabric.engines.push(e);
    }

    let upper = build_upper(
        scenario,
        topo.shape,
        topo.racks,
        &fabric.server_leaf,
        &fabric.client_leaf,
        coord_leaf,
    );
    fabric.engines.extend(upper);
    fabric
}

/// Builds and programs the upper tier of a multi-rack fabric: the
/// leaf/spine spine, or a fat-tree's aggregation then core switches
/// ([`crate::topology`]'s global index order, minus the leaves). All
/// plain L3. Factored out of [`build_fabric`] because sharded runs
/// program one *replica set* per shard — the upper tier is stateless, so
/// each shard forwards through its own copies and only the counters need
/// merging.
fn build_upper(
    scenario: &Scenario,
    shape: FabricShape,
    racks: usize,
    server_leaf: &[usize],
    client_leaf: &[usize],
    coord_leaf: usize,
) -> Vec<Box<dyn SwitchEngine>> {
    match shape {
        FabricShape::LeafSpine => {
            vec![build_spine(scenario, server_leaf, client_leaf, coord_leaf)]
        }
        FabricShape::FatTree {
            pods,
            aggs_per_pod,
            cores_per_group,
        } => {
            let lpp = shape.leaves_per_pod(racks);
            let mut out: Vec<Box<dyn SwitchEngine>> =
                Vec::with_capacity(pods * aggs_per_pod + aggs_per_pod * cores_per_group);
            // Aggregation switches, pod-major: in-pod endpoints on the
            // down-port of their leaf, everything else up to the cores.
            for p in 0..pods {
                for _j in 0..aggs_per_pod {
                    let mut agg = PlainL3Switch::new(netclone_asic::AsicSpec::tofino());
                    for sid in 0..server_leaf.len() as u16 {
                        let leaf = server_leaf[sid as usize];
                        let port = if leaf / lpp == p {
                            agg_down_port(leaf % lpp)
                        } else {
                            UPLINK_PORT
                        };
                        agg.add_route(Ipv4::server(sid), port);
                    }
                    for cid in 0..client_leaf.len() as u16 {
                        let leaf = client_leaf[cid as usize];
                        let port = if leaf / lpp == p {
                            agg_down_port(leaf % lpp)
                        } else {
                            UPLINK_PORT
                        };
                        agg.add_route(Ipv4::client(cid), port);
                    }
                    if scenario.scheme.uses_coordinator() {
                        let port = if coord_leaf / lpp == p {
                            agg_down_port(coord_leaf % lpp)
                        } else {
                            UPLINK_PORT
                        };
                        agg.add_route(COORD_IP, port);
                    }
                    out.push(Box::new(agg));
                }
            }
            // Core switches, group-major (group `j` serves agg `j` of
            // every pod): each routes every endpoint down to its pod.
            for _j in 0..aggs_per_pod {
                for _c in 0..cores_per_group {
                    let mut core = PlainL3Switch::new(netclone_asic::AsicSpec::tofino());
                    for sid in 0..server_leaf.len() as u16 {
                        core.add_route(
                            Ipv4::server(sid),
                            core_port(server_leaf[sid as usize] / lpp),
                        );
                    }
                    for cid in 0..client_leaf.len() as u16 {
                        core.add_route(
                            Ipv4::client(cid),
                            core_port(client_leaf[cid as usize] / lpp),
                        );
                    }
                    if scenario.scheme.uses_coordinator() {
                        core.add_route(COORD_IP, core_port(coord_leaf / lpp));
                    }
                    out.push(Box::new(core));
                }
            }
            out
        }
    }
}

/// Builds and programs the aggregation spine: plain L3, one route per
/// endpoint toward its rack's leaf. Factored out of [`build_fabric`]
/// because sharded runs program one *replica* per shard — the spine is
/// stateless, so each shard forwards through its own copy and only the
/// counters need merging.
fn build_spine(
    scenario: &Scenario,
    server_leaf: &[usize],
    client_leaf: &[usize],
    coord_leaf: usize,
) -> Box<dyn SwitchEngine> {
    let mut spine = PlainL3Switch::new(netclone_asic::AsicSpec::tofino());
    for sid in 0..server_leaf.len() as u16 {
        spine.add_route(Ipv4::server(sid), spine_port(server_leaf[sid as usize]));
    }
    for cid in 0..client_leaf.len() as u16 {
        spine.add_route(Ipv4::client(cid), spine_port(client_leaf[cid as usize]));
    }
    if scenario.scheme.uses_coordinator() {
        spine.add_route(COORD_IP, spine_port(coord_leaf));
    }
    Box::new(spine)
}

/// Assembles the sharded testbed of a [`Scenario`] (see
/// [`Sim`][crate::sim::Sim] for the run entry points).
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Starts a build for the given scenario.
    pub fn new(scenario: Scenario) -> Self {
        ScenarioBuilder { scenario }
    }

    /// Builds the testbed partitioned into `min(shards, racks)` per-rack
    /// shards (racks are assigned round-robin, rack *r* → shard
    /// `r % n`): switch engines, hosts, workload streams, and the
    /// priming events (first arrivals, warm-up end, failure injections).
    /// Returns the shards plus the conservative lookahead — the minimum
    /// simulated delay of any cross-shard interaction.
    ///
    /// The partitioning is *count-clamped to the topology, never to the
    /// machine*: the shard layout (and therefore every event key) is a
    /// pure function of the scenario, so results cannot depend on where
    /// the run executes.
    pub(crate) fn build_shards(self, shards: usize, traced: bool) -> (Vec<Shard>, u64) {
        let scenario = Arc::new(self.scenario);
        let seeds = SeedFactory::new(scenario.seed);
        let n_servers = scenario.servers.len();
        assert!(
            n_servers >= 2,
            "NetClone requires at least two servers (§5.3.2)"
        );
        if let Err(e) = scenario.validate() {
            panic!("invalid scenario: {e}");
        }

        let fabric = build_fabric(&scenario);

        // ---- workload -----------------------------------------------
        let (synthetic, kvmix, cost) = match &scenario.workload {
            Workload::Synthetic(wl) => (Some(*wl), None, ServiceCostModel::redis()),
            Workload::Kv {
                get_frac,
                scan_count,
                objects,
                zipf_theta,
                cost,
            } => {
                let keys = ZipfSampler::new(*objects, *zipf_theta);
                (
                    None,
                    Some(Arc::new(KvMix::read_mix(*get_frac, *scan_count, keys))),
                    *cost,
                )
            }
        };

        // ---- servers -------------------------------------------------
        let servers: Vec<ServerSim> = scenario
            .servers
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                ServerSim::new(ServerConfig {
                    sid: i as u16,
                    workers: spec.workers,
                    dispatch_ns: calib::DISPATCH_NS,
                    clone_drop_ns: calib::CLONE_DROP_NS,
                    // The service-model seam: an explicit shape override
                    // wins; otherwise the workload's own model applies.
                    shape: scenario
                        .service_model
                        .shape
                        .unwrap_or(if synthetic.is_some() {
                            ServiceShape::Exponential
                        } else {
                            ServiceShape::Gamma4
                        }),
                    jitter: scenario.jitter,
                    cost,
                    hot_key: scenario.service_model.hot_key,
                    seed: seeds.seed_for("server", i as u64),
                })
            })
            .collect();

        // ---- coordinator ---------------------------------------------
        let coordinator = scenario.scheme.uses_coordinator().then(|| {
            let mut c = LaedgeCoordinator::new(CoordinatorConfig {
                ip: COORD_IP,
                per_packet_ns: calib::COORD_PKT_NS,
            });
            for (i, spec) in scenario.servers.iter().enumerate() {
                c.add_server(i as u16, Ipv4::server(i as u16), spec.workers);
            }
            c
        });

        // ---- clients --------------------------------------------------
        let server_ips: Vec<Ipv4> = (0..n_servers as u16).map(Ipv4::server).collect();
        let clients: Vec<ClientSim> = (0..scenario.n_clients as u16)
            .map(|cid| {
                let mode = match scenario.scheme {
                    Scheme::Baseline => ClientMode::DirectRandom {
                        servers: server_ips.clone(),
                    },
                    Scheme::CClone => ClientMode::DirectDuplicate {
                        servers: server_ips.clone(),
                    },
                    Scheme::Laedge => ClientMode::Coordinator { ip: COORD_IP },
                    Scheme::NetClone { .. } | Scheme::RackSchedOnly => ClientMode::NetClone {
                        // Groups come from the client's own ToR: that is
                        // the engine its requests traverse (§3.7).
                        num_groups: fabric.engines[fabric.client_leaf(cid as usize)].num_groups(),
                        num_filter_tables: scenario.n_filter_tables as u8,
                    },
                };
                let mut c = ClientSim::new(
                    cid,
                    mode,
                    calib::CLIENT_TX_NS,
                    calib::CLIENT_RX_NS,
                    seeds.seed_for("client", cid as u64),
                );
                if let Some(policy) = scenario.retry {
                    c = c.with_retry(policy);
                }
                c
            })
            .collect();

        // ---- arrivals -------------------------------------------------
        // The first inter-arrival gaps are drawn here, dense and in cid
        // order, *before* the streams are scattered to their shards — the
        // exact draw order of the pre-sharding prime loop.
        let n_clients = scenario.n_clients;
        let arrivals =
            netclone_workloads::PoissonArrivals::new(scenario.offered_rps / n_clients as f64);
        let mut arrival_rngs: Vec<StdRng> = (0..n_clients)
            .map(|i| seeds.rng_for("arrivals", i as u64))
            .collect();
        let first_gaps: Vec<u64> = arrival_rngs
            .iter_mut()
            .map(|rng| arrivals.next_gap_ns(rng))
            .collect();

        // ---- partitioning --------------------------------------------
        let Fabric {
            engines,
            racks,
            inter_rack_ns,
            shape,
            ecmp_seed,
            server_leaf,
            client_leaf,
            coord_leaf,
        } = fabric;
        let nshards = shards.clamp(1, racks);
        let shard_of = |rack: usize| rack % nshards;

        let mut engines = engines;
        // Multi-rack fabrics carry the upper tier (spine, or fat-tree
        // aggs then cores) after the leaves; shard 0 inherits the
        // originals and every other shard programs identical replicas.
        let upper0 = engines.split_off(racks.min(engines.len()));
        let upper_count = upper0.len();

        // ---- background incast ----------------------------------------
        // Mirrors the arrivals discipline: the per-source-rack streams
        // are created and their first gaps drawn dense, in rack order,
        // before anything is scattered — the draw order is a pure
        // function of the scenario.
        let mut bg_setup = scenario.background.map(|b| {
            assert!(
                scenario.links.is_some(),
                "background traffic requires congestion-aware links"
            );
            assert!(
                racks > 1,
                "background traffic requires a multi-rack topology"
            );
            assert!(b.victim_rack < racks, "victim rack out of range");
            let arrivals = netclone_workloads::PoissonArrivals::new(b.rps / (racks - 1) as f64);
            let mut rngs: Vec<Option<StdRng>> = (0..racks)
                .map(|r| (r != b.victim_rack).then(|| seeds.rng_for("bg", r as u64)))
                .collect();
            let first_gaps: Vec<Option<u64>> = rngs
                .iter_mut()
                .map(|o| o.as_mut().map(|rng| arrivals.next_gap_ns(rng)))
                .collect();
            (arrivals, rngs, first_gaps, b)
        });
        let bg_first_gaps: Vec<Option<u64>> = bg_setup
            .as_ref()
            .map(|(_, _, gaps, _)| gaps.clone())
            .unwrap_or_default();

        let end_ns = scenario.warmup_ns + scenario.measure_ns;
        let ts_buckets = (end_ns / scenario.timeseries_bucket_ns + 2).max(1) as usize;
        // Single-rack runs collapse every domain onto the control domain
        // (one counter == the old global sequence); multi-rack runs get
        // one domain per rack above it.
        let n_domains = if racks == 1 { 1 } else { racks + 1 };

        let mut out: Vec<Shard> = (0..nshards)
            .map(|k| Shard {
                id: k,
                nshards,
                scenario: Arc::clone(&scenario),
                q: EventQueue::new(),
                clients: (0..n_clients).map(|_| None).collect(),
                servers: (0..n_servers).map(|_| None).collect(),
                server_epoch: vec![0; n_servers],
                engines: (0..racks).map(|_| None).collect(),
                upper: Vec::new(),
                racks,
                inter_rack_ns,
                shape,
                ecmp_seed,
                pass_ns: netclone_asic::AsicSpec::tofino().pass_latency_ns,
                server_leaf: server_leaf.clone(),
                client_leaf: client_leaf.clone(),
                coord_leaf,
                // Congestion-aware links: every shard materialises only
                // the links its racks own (access links by host, leaf
                // uplinks/downlinks by rack) — link state is touched only
                // by the owning rack's event domain.
                links: scenario.links.as_ref().map(|spec| {
                    let n_up = shape.n_uplinks();
                    LinkState {
                        client_up: (0..n_clients)
                            .map(|c| (shard_of(client_leaf[c]) == k).then(|| spec.edge_link()))
                            .collect(),
                        client_down: (0..n_clients)
                            .map(|c| (shard_of(client_leaf[c]) == k).then(|| spec.edge_link()))
                            .collect(),
                        server_up: (0..n_servers)
                            .map(|i| (shard_of(server_leaf[i]) == k).then(|| spec.edge_link()))
                            .collect(),
                        server_down: (0..n_servers)
                            .map(|i| (shard_of(server_leaf[i]) == k).then(|| spec.edge_link()))
                            .collect(),
                        coord_up: (shard_of(coord_leaf) == k).then(|| spec.edge_link()),
                        coord_down: (shard_of(coord_leaf) == k).then(|| spec.edge_link()),
                        up: (0..racks)
                            .map(|r| {
                                if racks > 1 && shard_of(r) == k {
                                    (0..n_up).map(|_| spec.fabric_link()).collect()
                                } else {
                                    Vec::new()
                                }
                            })
                            .collect(),
                        down: (0..racks)
                            .map(|r| {
                                if racks > 1 && shard_of(r) == k {
                                    (0..n_up).map(|_| spec.fabric_link()).collect()
                                } else {
                                    Vec::new()
                                }
                            })
                            .collect(),
                    }
                }),
                bg: bg_setup.as_ref().map(|(arrivals, _, _, b)| BgState {
                    arrivals: *arrivals,
                    rngs: (0..racks).map(|_| None).collect(),
                    wire: b.wire_bytes,
                    victim: b.victim_rack,
                    sent: vec![0; racks],
                }),
                switch_up: true,
                leaf_up: vec![true; racks],
                coordinator: None,
                arrivals,
                arrival_rngs: (0..n_clients).map(|_| None).collect(),
                workload_rngs: (0..n_clients).map(|_| None).collect(),
                // The loss model (and its RNGs) exists only for lossy
                // scenarios; the zero-loss fast path never draws. Each
                // rack's stream is an independent SeedFactory fan-out, so
                // the draws of one rack cannot shift another's — nor any
                // non-loss stream (`tests/loss_determinism.rs`).
                loss: (scenario.loss > 0.0).then(|| LossModel {
                    prob: scenario.loss,
                    rngs: (0..racks)
                        .map(|r| (shard_of(r) == k).then(|| seeds.rng_for("loss", r as u64)))
                        .collect(),
                }),
                synthetic,
                kvmix: kvmix.clone(),
                sink: netclone_asic::EmissionSink::new(),
                upper_sink: netclone_asic::EmissionSink::new(),
                payloads: PayloadSlab::new(),
                end_ns,
                measure_start_ns: 0,
                throughput: TimeSeries::new(scenario.timeseries_bucket_ns, ts_buckets),
                completed_in_window: 0,
                generated_in_window: 0,
                packets_lost: 0,
                switch_counters_at_warmup: vec![Default::default(); racks],
                upper_counters_at_warmup: vec![Default::default(); upper_count],
                server_stats_at_warmup: vec![Default::default(); n_servers],
                seq: vec![0; n_domains],
                cur_src: CONTROL_SRC,
                cur_rack: usize::MAX,
                events_scheduled: 0,
                outbox: (0..nshards).map(|_| Vec::new()).collect(),
                trace: traced.then(Vec::new),
            })
            .collect();

        for (r, e) in engines.into_iter().enumerate() {
            out[shard_of(r)].engines[r] = Some(e);
        }
        if !upper0.is_empty() {
            for sh in out.iter_mut().skip(1) {
                sh.upper = build_upper(
                    &scenario,
                    shape,
                    racks,
                    &server_leaf,
                    &client_leaf,
                    coord_leaf,
                );
            }
            out[0].upper = upper0;
        }
        if let Some((_, rngs, _, _)) = &mut bg_setup {
            for (r, rng) in rngs.iter_mut().enumerate() {
                if let Some(rng) = rng.take() {
                    out[shard_of(r)].bg.as_mut().expect("bg state").rngs[r] = Some(rng);
                }
            }
        }
        for (i, s) in servers.into_iter().enumerate() {
            out[shard_of(server_leaf[i])].servers[i] = Some(s);
        }
        for (cid, c) in clients.into_iter().enumerate() {
            let k = shard_of(client_leaf[cid]);
            out[k].clients[cid] = Some(c);
            out[k].arrival_rngs[cid] = Some(std::mem::replace(
                &mut arrival_rngs[cid],
                StdRng::seed_from_u64(0),
            ));
            out[k].workload_rngs[cid] = Some(seeds.rng_for("workload", cid as u64));
        }
        out[shard_of(coord_leaf)].coordinator = coordinator;

        Self::prime(
            &mut out,
            &scenario,
            &first_gaps,
            &bg_first_gaps,
            &client_leaf,
            &server_leaf,
        );
        // The conservative lookahead: the minimum simulated delay of any
        // cross-shard interaction. Without links a packet pays two switch
        // passes and both inter-rack propagations before reaching a
        // foreign leaf; with links it is parked at the foreign downlink
        // *before* the second propagation (queueing only adds delay), so
        // the bound tightens to one propagation.
        let pass = netclone_asic::AsicSpec::tofino().pass_latency_ns;
        let lookahead = if scenario.links.is_some() {
            2 * pass + inter_rack_ns
        } else {
            2 * (pass + inter_rack_ns)
        };
        (out, lookahead)
    }

    /// Schedules the events that start the run: one arrival per client,
    /// the warm-up end, and any configured failure injections.
    ///
    /// Control events share one key counter regardless of the shard
    /// count, assigned in a fixed order. Events with a single owner
    /// (arrivals, a server kill) land only on the owner's queue;
    /// fabric-wide events (warm-up end, switch failure, server removal)
    /// are replicated onto *every* queue under the *same* key, and every
    /// shard leaves priming with the same control counter — so any
    /// control key a shard assigns later is assigned identically by all.
    /// Logical events are counted once (on the owner, or shard 0 for
    /// broadcasts), keeping `RunResult::events` shard-count-invariant.
    fn prime(
        shards: &mut [Shard],
        scenario: &Scenario,
        first_gaps: &[u64],
        bg_first_gaps: &[Option<u64>],
        client_leaf: &[usize],
        server_leaf: &[usize],
    ) {
        let nshards = shards.len();
        let mut ctl = 0u64;
        let prime_one = |shards: &mut [Shard], ctl: &mut u64, owner: usize, at: u64, ev: Ev| {
            let tie = tie_key(CONTROL_SRC, *ctl);
            *ctl += 1;
            shards[owner].events_scheduled += 1;
            shards[owner]
                .q
                .schedule_keyed(SimTime::from_ns(at), tie, ev);
        };
        let broadcast = |shards: &mut [Shard], ctl: &mut u64, at: u64, mk: &dyn Fn() -> Ev| {
            let tie = tie_key(CONTROL_SRC, *ctl);
            *ctl += 1;
            shards[0].events_scheduled += 1;
            for sh in shards.iter_mut() {
                sh.q.schedule_keyed(SimTime::from_ns(at), tie, mk());
            }
        };

        for (cid, gap) in first_gaps.iter().enumerate() {
            prime_one(
                shards,
                &mut ctl,
                client_leaf[cid] % nshards,
                *gap,
                Ev::Gen(cid),
            );
        }
        broadcast(shards, &mut ctl, scenario.warmup_ns, &|| Ev::EndWarmup);
        if let Some(plan) = scenario.switch_failure {
            broadcast(shards, &mut ctl, plan.fail_at_ns, &|| Ev::SwitchFail);
            broadcast(shards, &mut ctl, plan.reactivate_at_ns, &|| {
                Ev::SwitchReactivate {
                    bringup_ns: plan.bringup_ns,
                }
            });
        }
        if let Some(plan) = scenario.server_failure {
            prime_one(
                shards,
                &mut ctl,
                server_leaf[plan.sid as usize] % nshards,
                plan.fail_at_ns,
                Ev::ServerKill(plan.sid as usize),
            );
            broadcast(shards, &mut ctl, plan.removed_at_ns, &|| {
                Ev::ServerRemove(plan.sid)
            });
        }
        // Fault edges ride the control domain too. Faults whose state has
        // a single consumer (a server's slow factor, a leaf's forwarding
        // flag, a rack's link rates) prime both edges on the owner alone;
        // fabric-wide faults (a switch reboot) broadcast under shared
        // keys like the legacy `switch_failure` plan. `all_faults()`
        // yields the legacy degradation plans first and the timeline
        // after, in declaration order — an empty timeline schedules
        // exactly the legacy events, so pre-existing scenarios stay
        // seed-pinned.
        for fault in scenario.all_faults() {
            match fault {
                Fault::Slowdown(plan) => {
                    let owner = server_leaf[plan.sid as usize] % nshards;
                    let idx = plan.sid as usize;
                    prime_one(
                        shards,
                        &mut ctl,
                        owner,
                        plan.start_ns,
                        Ev::ServerSlow {
                            idx,
                            factor: plan.factor,
                        },
                    );
                    prime_one(
                        shards,
                        &mut ctl,
                        owner,
                        plan.end_ns,
                        Ev::ServerSlow { idx, factor: 1.0 },
                    );
                }
                Fault::Drain(plan) => {
                    let owner = plan.rack % nshards;
                    prime_one(
                        shards,
                        &mut ctl,
                        owner,
                        plan.drain_at_ns,
                        Ev::LeafDrain(plan.rack),
                    );
                    prime_one(
                        shards,
                        &mut ctl,
                        owner,
                        plan.restore_at_ns,
                        Ev::LeafRestore(plan.rack),
                    );
                }
                Fault::LinkFlap(plan) => {
                    let owner = plan.rack % nshards;
                    prime_one(
                        shards,
                        &mut ctl,
                        owner,
                        plan.start_ns,
                        Ev::LinkFlap {
                            rack: plan.rack,
                            factor: plan.factor,
                        },
                    );
                    prime_one(
                        shards,
                        &mut ctl,
                        owner,
                        plan.end_ns,
                        Ev::LinkFlap {
                            rack: plan.rack,
                            factor: 1,
                        },
                    );
                }
                Fault::Reboot(plan) => {
                    broadcast(shards, &mut ctl, plan.fail_at_ns, &|| Ev::SwitchFail);
                    broadcast(shards, &mut ctl, plan.reactivate_at_ns, &|| {
                        Ev::SwitchReactivate {
                            bringup_ns: plan.bringup_ns,
                        }
                    });
                }
            }
        }
        // The retry clock: one self-rescheduling tick per client, owned by
        // the client's shard. Absent a retry policy no tick is ever
        // scheduled (and the legacy scenarios stay seed-pinned).
        if let Some(policy) = scenario.retry {
            for (cid, leaf) in client_leaf.iter().enumerate().take(scenario.n_clients) {
                prime_one(
                    shards,
                    &mut ctl,
                    leaf % nshards,
                    policy.tick_ns(),
                    Ev::ClientTick(cid),
                );
            }
        }
        // Background incast: one first arrival per source rack, owned by
        // the rack's shard (the victim rack has no stream).
        for (r, gap) in bg_first_gaps.iter().enumerate() {
            if let Some(gap) = gap {
                prime_one(shards, &mut ctl, r % nshards, *gap, Ev::BgGen(r));
            }
        }
        for sh in shards.iter_mut() {
            sh.seq[usize::from(CONTROL_SRC)] = ctl;
        }
    }
}
