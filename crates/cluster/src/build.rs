//! Scenario → testbed assembly.
//!
//! [`ScenarioBuilder`] turns a [`Scenario`] into a runnable [`Sim`]: it
//! picks and programs the switch engine for the scheme, spawns the server
//! and client models, wires the optional coordinator, and schedules the
//! priming events. The simulator itself ([`Sim`]) is only the event loop.
//!
//! [`build_engine`] / [`build_fabric`] are the single place a scheme
//! becomes a switch program. Every frontend (this DES testbed,
//! `netclone-net`'s soft switch, tests) drives the result through
//! [`netclone_core::SwitchEngine`], so there is exactly one
//! implementation of each data plane and no per-scheme dispatch anywhere
//! else. A single-rack topology yields a one-engine [`Fabric`] programmed
//! exactly like [`build_engine`]'s; multi-rack topologies get one engine
//! per leaf plus a plain-L3 spine, wired per §3.7 (NetClone logic only
//! where clients attach, `SWITCH_ID`-gated pass-through everywhere else).

use netclone_asic::PortId;
use netclone_core::{NetCloneConfig, NetCloneSwitch, Scheduling, SwitchEngine};
use netclone_des::{EventQueue, SeedFactory, SimTime};
use netclone_hosts::{ClientMode, ClientSim, ServerConfig, ServerSim};
use netclone_kvstore::ServiceCostModel;
use netclone_policies::{CoordinatorConfig, LaedgeCoordinator, PlainL3Switch};
use netclone_proto::{Ipv4, ServerId, SwitchId};
use netclone_stats::TimeSeries;
use netclone_workloads::{KvMix, ServiceShape, ZipfSampler};

use crate::calib;
use crate::payload::PayloadSlab;
use crate::scenario::{Scenario, Workload};
use crate::scheme::Scheme;
use crate::sim::{Ev, LossModel, Sim};
use crate::topology::{spine_port, Fabric, UPLINK_PORT};

/// Switch port of the LÆDGE coordinator host.
pub(crate) const COORD_PORT: PortId = 99;

/// Virtual address of the LÆDGE coordinator host.
pub(crate) const COORD_IP: Ipv4 = Ipv4::new(10, 0, 3, 1);

/// Switch port of server `sid` (servers hang off ports 10+).
pub(crate) fn server_port(sid: ServerId) -> PortId {
    10 + sid
}

/// Switch port of client `cid` (clients hang off ports 100+).
pub(crate) fn client_port(cid: u16) -> PortId {
    100 + cid
}

/// True when the scheme programs in-switch logic (the NetClone family);
/// the client-driven schemes (Baseline, C-Clone, LÆDGE) run over a plain
/// L3 fabric.
fn scheme_has_engine(scheme: Scheme) -> bool {
    matches!(scheme, Scheme::NetClone { .. } | Scheme::RackSchedOnly)
}

/// Builds the *unprogrammed* engine for a scenario's scheme, stamping the
/// given multi-rack identity (§3.7; single-rack deployments use 1).
fn scheme_engine(scenario: &Scenario, switch_id: SwitchId) -> Box<dyn SwitchEngine> {
    match scenario.scheme {
        Scheme::NetClone {
            racksched,
            filtering,
        } => {
            let mut cfg = NetCloneConfig::paper_prototype();
            cfg.scheduling = if racksched {
                Scheduling::RackSched
            } else {
                Scheduling::Random
            };
            cfg.filtering_enabled = filtering;
            cfg.num_filter_tables = scenario.n_filter_tables;
            cfg.filter_slots_log2 = scenario.filter_slots_log2;
            cfg.clone_condition = scenario.clone_condition;
            cfg.switch_id = switch_id;
            Box::new(NetCloneSwitch::new(cfg))
        }
        Scheme::RackSchedOnly => {
            let mut cfg = NetCloneConfig::paper_prototype();
            cfg.switch_id = switch_id;
            Box::new(netclone_policies::racksched_switch(cfg))
        }
        Scheme::Baseline | Scheme::CClone | Scheme::Laedge => {
            Box::new(PlainL3Switch::new(netclone_asic::AsicSpec::tofino()))
        }
    }
}

/// Builds and programs the single-rack switch engine for a scenario.
///
/// Together with the internal per-leaf engine factory this is the only
/// place in the workspace where a [`Scheme`] is mapped to a switch
/// program; everything
/// downstream sees `dyn SwitchEngine`. The real-socket soft switch and
/// the equivalence tests program from here too.
pub fn build_engine(scenario: &Scenario) -> Box<dyn SwitchEngine> {
    let mut engine = scheme_engine(scenario, 1);
    for sid in 0..scenario.servers.len() as u16 {
        engine
            .register_server(sid, Ipv4::server(sid), server_port(sid))
            .expect("server registration");
    }
    for cid in 0..scenario.n_clients as u16 {
        engine
            .register_client(Ipv4::client(cid), client_port(cid))
            .expect("client registration");
    }
    if scenario.scheme.uses_coordinator() {
        engine
            .register_route(COORD_IP, COORD_PORT)
            .expect("coordinator route");
    }
    if let Some(groups) = &scenario.custom_groups {
        engine.install_custom_groups(groups).expect("custom groups");
    }
    engine
}

/// Builds and programs the whole fabric for a scenario's topology.
///
/// Single rack: one engine, programmed exactly as [`build_engine`] does —
/// the pre-topology simulator, bit for bit. Multi-rack (§3.7):
///
/// * every **client-bearing leaf** runs the scheme's engine (switch_id =
///   rack + 1) with the full server table — local servers on their access
///   ports, remote ones via the uplink — so cloning happens only where
///   clients attach;
/// * every **other leaf** of an in-switch scheme runs the same engine type
///   but only has routes (the `SWITCH_ID` gate bounces foreign-stamped
///   packets to plain forwarding, and nothing ever enters it unstamped);
/// * the **spine** and all leaves of the client-driven schemes are plain
///   L3 switches routing each endpoint toward its rack.
pub fn build_fabric(scenario: &Scenario) -> Fabric {
    let topo = &scenario.topology;
    let n_servers = scenario.servers.len();
    topo.validate(n_servers, scenario.n_clients)
        .expect("invalid topology");
    let server_leaf: Vec<usize> = (0..n_servers).map(|s| topo.server_rack(s)).collect();
    let client_leaf: Vec<usize> = (0..scenario.n_clients)
        .map(|c| topo.client_rack(c))
        .collect();
    // The LÆDGE coordinator hangs off rack 0's leaf by convention.
    let coord_leaf = 0usize;

    let mut fabric = Fabric {
        engines: Vec::with_capacity(topo.num_switches()),
        racks: topo.racks,
        inter_rack_ns: topo.inter_rack_ns,
        server_leaf,
        client_leaf,
        coord_leaf,
    };
    if topo.racks == 1 {
        fabric.engines.push(build_engine(scenario));
        return fabric;
    }

    for r in 0..topo.racks {
        let has_clients = fabric.client_leaf.contains(&r);
        let mut e = scheme_engine(scenario, (r + 1) as SwitchId);
        if scheme_has_engine(scenario.scheme) && has_clients {
            // Client-side ToR: the full NetClone control plane. AddrT
            // resolves every server — rack-local ones to their access
            // port, remote ones to the uplink (the paper's Fig. 5 setup
            // generalised).
            for sid in 0..n_servers as u16 {
                let port = if fabric.server_leaf[sid as usize] == r {
                    server_port(sid)
                } else {
                    UPLINK_PORT
                };
                e.register_server(sid, Ipv4::server(sid), port)
                    .expect("server registration");
            }
            for cid in 0..scenario.n_clients as u16 {
                if fabric.client_leaf[cid as usize] == r {
                    e.register_client(Ipv4::client(cid), client_port(cid))
                        .expect("client registration");
                } else {
                    e.register_route(Ipv4::client(cid), UPLINK_PORT)
                        .expect("remote client route");
                }
            }
            if let Some(groups) = &scenario.custom_groups {
                e.install_custom_groups(groups).expect("custom groups");
            }
        } else {
            // Routing-only leaf: local endpoints on their access ports,
            // everything else via the uplink.
            for sid in 0..n_servers as u16 {
                let port = if fabric.server_leaf[sid as usize] == r {
                    server_port(sid)
                } else {
                    UPLINK_PORT
                };
                e.register_route(Ipv4::server(sid), port)
                    .expect("server route");
            }
            for cid in 0..scenario.n_clients as u16 {
                let port = if fabric.client_leaf[cid as usize] == r {
                    client_port(cid)
                } else {
                    UPLINK_PORT
                };
                e.register_route(Ipv4::client(cid), port)
                    .expect("client route");
            }
        }
        if scenario.scheme.uses_coordinator() {
            let port = if coord_leaf == r {
                COORD_PORT
            } else {
                UPLINK_PORT
            };
            e.register_route(COORD_IP, port).expect("coordinator route");
        }
        fabric.engines.push(e);
    }

    // The aggregation spine: plain L3, one route per endpoint toward its
    // rack's leaf.
    let mut spine = PlainL3Switch::new(netclone_asic::AsicSpec::tofino());
    for sid in 0..n_servers as u16 {
        spine.add_route(
            Ipv4::server(sid),
            spine_port(fabric.server_leaf[sid as usize]),
        );
    }
    for cid in 0..scenario.n_clients as u16 {
        spine.add_route(
            Ipv4::client(cid),
            spine_port(fabric.client_leaf[cid as usize]),
        );
    }
    if scenario.scheme.uses_coordinator() {
        spine.add_route(COORD_IP, spine_port(coord_leaf));
    }
    fabric.engines.push(Box::new(spine));
    fabric
}

/// Assembles a [`Sim`] from a [`Scenario`].
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Starts a build for the given scenario.
    pub fn new(scenario: Scenario) -> Self {
        ScenarioBuilder { scenario }
    }

    /// Builds the testbed: switch engine, hosts, workload streams, and the
    /// priming events (first arrivals, warm-up end, failure injections).
    pub fn build(self) -> Sim {
        let scenario = self.scenario;
        let seeds = SeedFactory::new(scenario.seed);
        let n_servers = scenario.servers.len();
        assert!(
            n_servers >= 2,
            "NetClone requires at least two servers (§5.3.2)"
        );

        let fabric = build_fabric(&scenario);

        // ---- workload -----------------------------------------------
        let (synthetic, kvmix, cost) = match &scenario.workload {
            Workload::Synthetic(wl) => (Some(*wl), None, ServiceCostModel::redis()),
            Workload::Kv {
                get_frac,
                scan_count,
                objects,
                zipf_theta,
                cost,
            } => {
                let keys = ZipfSampler::new(*objects, *zipf_theta);
                (
                    None,
                    Some(KvMix::read_mix(*get_frac, *scan_count, keys)),
                    *cost,
                )
            }
        };

        // ---- servers -------------------------------------------------
        let servers: Vec<ServerSim> = scenario
            .servers
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                ServerSim::new(ServerConfig {
                    sid: i as u16,
                    workers: spec.workers,
                    dispatch_ns: calib::DISPATCH_NS,
                    clone_drop_ns: calib::CLONE_DROP_NS,
                    shape: if synthetic.is_some() {
                        ServiceShape::Exponential
                    } else {
                        ServiceShape::Gamma4
                    },
                    jitter: scenario.jitter,
                    cost,
                    seed: seeds.seed_for("server", i as u64),
                })
            })
            .collect();

        // ---- coordinator ---------------------------------------------
        let coordinator = scenario.scheme.uses_coordinator().then(|| {
            let mut c = LaedgeCoordinator::new(CoordinatorConfig {
                ip: COORD_IP,
                per_packet_ns: calib::COORD_PKT_NS,
            });
            for (i, spec) in scenario.servers.iter().enumerate() {
                c.add_server(i as u16, Ipv4::server(i as u16), spec.workers);
            }
            c
        });

        // ---- clients --------------------------------------------------
        let server_ips: Vec<Ipv4> = (0..n_servers as u16).map(Ipv4::server).collect();
        let clients: Vec<ClientSim> = (0..scenario.n_clients as u16)
            .map(|cid| {
                let mode = match scenario.scheme {
                    Scheme::Baseline => ClientMode::DirectRandom {
                        servers: server_ips.clone(),
                    },
                    Scheme::CClone => ClientMode::DirectDuplicate {
                        servers: server_ips.clone(),
                    },
                    Scheme::Laedge => ClientMode::Coordinator { ip: COORD_IP },
                    Scheme::NetClone { .. } | Scheme::RackSchedOnly => ClientMode::NetClone {
                        // Groups come from the client's own ToR: that is
                        // the engine its requests traverse (§3.7).
                        num_groups: fabric.engines[fabric.client_leaf(cid as usize)].num_groups(),
                        num_filter_tables: scenario.n_filter_tables as u8,
                    },
                };
                ClientSim::new(
                    cid,
                    mode,
                    calib::CLIENT_TX_NS,
                    calib::CLIENT_RX_NS,
                    seeds.seed_for("client", cid as u64),
                )
            })
            .collect();

        // ---- assembly + priming --------------------------------------
        let end_ns = scenario.warmup_ns + scenario.measure_ns;
        let ts_buckets = (end_ns / scenario.timeseries_bucket_ns + 2).max(1) as usize;
        let n_clients = scenario.n_clients;
        let n_switches = fabric.len();
        let mut sim = Sim {
            arrivals: netclone_workloads::PoissonArrivals::new(
                scenario.offered_rps / n_clients as f64,
            ),
            arrival_rngs: (0..n_clients)
                .map(|i| seeds.rng_for("arrivals", i as u64))
                .collect(),
            workload_rngs: (0..n_clients)
                .map(|i| seeds.rng_for("workload", i as u64))
                .collect(),
            // The loss model (and its RNG) exists only for lossy
            // scenarios; the zero-loss fast path never draws. The stream
            // is an independent SeedFactory fan-out, so skipping it
            // cannot shift any other stream (`tests/loss_determinism.rs`).
            loss: (scenario.loss > 0.0).then(|| LossModel {
                prob: scenario.loss,
                rng: seeds.rng_for("loss", 0),
            }),
            server_epoch: vec![0; n_servers],
            server_stats_at_warmup: vec![Default::default(); n_servers],
            throughput: TimeSeries::new(scenario.timeseries_bucket_ns, ts_buckets),
            scenario,
            q: EventQueue::new(),
            clients,
            servers,
            fabric,
            switch_up: true,
            coordinator,
            synthetic,
            kvmix,
            sink: netclone_asic::EmissionSink::new(),
            payloads: PayloadSlab::new(),
            end_ns,
            measure_start_ns: 0,
            completed_in_window: 0,
            generated_in_window: 0,
            packets_lost: 0,
            switch_counters_at_warmup: vec![Default::default(); n_switches],
        };
        Self::prime(&mut sim);
        sim
    }

    /// Schedules the events that start the run: one arrival per client,
    /// the warm-up end, and any configured failure injections.
    fn prime(sim: &mut Sim) {
        for cid in 0..sim.clients.len() {
            let gap = sim.arrivals.next_gap_ns(&mut sim.arrival_rngs[cid]);
            sim.q.schedule(SimTime::from_ns(gap), Ev::Gen(cid));
        }
        sim.q
            .schedule(SimTime::from_ns(sim.scenario.warmup_ns), Ev::EndWarmup);
        if let Some(plan) = sim.scenario.switch_failure {
            sim.q
                .schedule(SimTime::from_ns(plan.fail_at_ns), Ev::SwitchFail);
            sim.q.schedule(
                SimTime::from_ns(plan.reactivate_at_ns),
                Ev::SwitchReactivate {
                    bringup_ns: plan.bringup_ns,
                },
            );
        }
        if let Some(plan) = sim.scenario.server_failure {
            sim.q.schedule(
                SimTime::from_ns(plan.fail_at_ns),
                Ev::ServerKill(plan.sid as usize),
            );
            sim.q.schedule(
                SimTime::from_ns(plan.removed_at_ns),
                Ev::ServerRemove(plan.sid),
            );
        }
    }
}
