//! Results of one simulation run.

use netclone_core::SwitchCounters;
use netclone_linksim::LinkCounters;
use netclone_stats::{LatencyHistogram, TimeSeries};

/// One congested link's counter window (only links that dropped or
/// ECN-marked at least one packet are reported — a healthy fabric has
/// thousands of boring links).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkStat {
    /// Deterministic link name: `client3.up`, `server0.down`, `coord.up`,
    /// `leaf2.up1`, `leaf0.down3`, …
    pub link: String,
    /// Packets the link accepted.
    pub forwarded: u64,
    /// Packets tail-dropped at the bounded queue.
    pub dropped: u64,
    /// Forwarded packets ECN-marked at enqueue.
    pub ecn_marked: u64,
}

/// Fabric-wide link counter totals by tier, for conservation checks
/// (every packet offered to a tier is forwarded or dropped there) and
/// congestion summaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkTotals {
    /// All host access links (client/server/coordinator NIC↔leaf), both
    /// directions.
    pub edge: LinkCounters,
    /// All leaf→upper fabric links.
    pub up: LinkCounters,
    /// All upper→leaf fabric links.
    pub down: LinkCounters,
}

/// Everything measured in one run's measurement window.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Scheme label.
    pub scheme: &'static str,
    /// Workload label.
    pub workload: String,
    /// Offered load, requests/second.
    pub offered_rps: f64,
    /// Achieved goodput: completed requests ÷ measurement window.
    pub achieved_rps: f64,
    /// End-to-end latency histogram (merged over clients).
    pub latency: LatencyHistogram,
    /// Requests generated in the window.
    pub generated: u64,
    /// Requests completed in the window.
    pub completed: u64,
    /// Redundant responses processed by clients.
    pub client_redundant: u64,
    /// Completed requests whose winning response came from the clone
    /// (`CLO=2`) — tracked by the shared host core in every frontend.
    pub client_clone_wins: u64,
    /// Requests evicted as lost by the clients (timeout budget spent, or
    /// no retry policy and the deadline passed).
    pub client_lost: u64,
    /// Retransmissions sent by the clients under their retry policy.
    pub client_retried: u64,
    /// Completions whose winning response arrived after at least one
    /// retransmission of the request.
    pub client_retry_wins: u64,
    /// Evictions forced by an exhausted per-client retry budget while
    /// per-request tries remained.
    pub client_budget_exhausted: u64,
    /// Whole-run conservation counters summed over clients (never reset
    /// at warm-up, unlike the windowed counters above): `generated ==
    /// completed + lost + client_outstanding` holds at run end, retries
    /// included.
    pub lifetime: netclone_hosts::LifetimeCounters,
    /// Requests still outstanding (un-answered, un-evicted) at run end,
    /// summed over clients — the third term of the conservation identity.
    pub client_outstanding: u64,
    /// Fabric-wide switch counters: the merge of every per-switch window
    /// (NetClone/RackSched engines count cloning/filtering; plain-L3
    /// switches only routed/dropped).
    pub switch: SwitchCounters,
    /// Per-switch counter windows, in fabric index order (leaves
    /// `0..racks`, then the spine for multi-rack runs). Single-rack runs
    /// have exactly one entry, equal to [`RunResult::switch`].
    pub per_switch: Vec<SwitchCounters>,
    /// Cloned requests dropped at servers (tracked-vs-actual state gap).
    pub server_clone_drops: u64,
    /// Responses reporting an empty queue (Fig. 13a numerator).
    pub server_idle_reports: u64,
    /// Total responses sent by servers (Fig. 13a denominator).
    pub server_responses: u64,
    /// Completions over time (Fig. 16).
    pub throughput_series: TimeSeries,
    /// Packets lost to injected link loss.
    pub packets_lost: u64,
    /// Requests served per server (load-balance diagnostics, ablations).
    pub per_server_served: Vec<u64>,
    /// Total simulation events processed (scheduled and drained) over the
    /// whole run, warm-up included — the numerator of the events/sec
    /// throughput report (`sim_throughput`).
    pub events: u64,
    /// Per-link windows of every link that dropped or ECN-marked a
    /// packet, in deterministic fabric order (empty without
    /// [`Scenario::links`](crate::scenario::Scenario::links)).
    pub link_stats: Vec<LinkStat>,
    /// Fabric-wide link totals by tier (`None` without congestion-aware
    /// links).
    pub link_totals: Option<LinkTotals>,
}

impl RunResult {
    /// 50th/99th/99.9th percentile latency, μs.
    pub fn percentiles_us(&self) -> (f64, f64, f64) {
        let (p50, p99, p999) = self.latency.p50_p99_p999();
        (
            p50 as f64 / 1_000.0,
            p99 as f64 / 1_000.0,
            p999 as f64 / 1_000.0,
        )
    }

    /// p99 latency in μs (the paper's headline metric).
    pub fn p99_us(&self) -> f64 {
        self.latency.quantile(0.99) as f64 / 1_000.0
    }

    /// Mean latency in μs.
    pub fn mean_us(&self) -> f64 {
        self.latency.mean() / 1_000.0
    }

    /// Achieved throughput in MRPS.
    pub fn achieved_mrps(&self) -> f64 {
        self.achieved_rps / 1e6
    }

    /// Fraction of completed requests won by the switch-generated clone —
    /// how often cloning actually beat the original (§5.3).
    pub fn clone_win_ratio(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.client_clone_wins as f64 / self.completed as f64
        }
    }

    /// Fraction of server responses that reported an empty queue
    /// (Fig. 13a).
    pub fn empty_queue_fraction(&self) -> f64 {
        if self.server_responses == 0 {
            0.0
        } else {
            self.server_idle_reports as f64 / self.server_responses as f64
        }
    }

    /// Packets tail-dropped across every congestion-aware link (0 when
    /// links are disabled).
    pub fn link_drops(&self) -> u64 {
        self.link_totals
            .map_or(0, |t| t.edge.dropped + t.up.dropped + t.down.dropped)
    }

    /// Packets ECN-marked across every congestion-aware link.
    pub fn link_ecn_marks(&self) -> u64 {
        self.link_totals.map_or(0, |t| {
            t.edge.ecn_marked + t.up.ecn_marked + t.down.ecn_marked
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut latency = LatencyHistogram::new();
        for v in [10_000u64, 20_000, 900_000] {
            latency.record(v);
        }
        let r = RunResult {
            scheme: "NetClone",
            workload: "Exp(25)".into(),
            offered_rps: 1e6,
            achieved_rps: 9.9e5,
            latency,
            generated: 100,
            completed: 99,
            client_redundant: 1,
            client_clone_wins: 33,
            client_lost: 0,
            client_retried: 0,
            client_retry_wins: 0,
            client_budget_exhausted: 0,
            lifetime: Default::default(),
            client_outstanding: 0,
            switch: SwitchCounters::default(),
            per_switch: vec![SwitchCounters::default()],
            server_clone_drops: 0,
            server_idle_reports: 60,
            server_responses: 100,
            throughput_series: TimeSeries::new(1_000_000_000, 1),
            packets_lost: 0,
            per_server_served: vec![50, 50],
            events: 0,
            link_stats: Vec::new(),
            link_totals: None,
        };
        assert!((r.achieved_mrps() - 0.99).abs() < 1e-9);
        assert!((r.empty_queue_fraction() - 0.6).abs() < 1e-9);
        assert_eq!(r.link_drops(), 0);
        assert_eq!(r.link_ecn_marks(), 0);
        assert!((r.clone_win_ratio() - 33.0 / 99.0).abs() < 1e-9);
        assert!(r.p99_us() >= 890.0);
        let (p50, p99, p999) = r.percentiles_us();
        assert!(p50 <= p99 && p99 <= p999);
    }
}
