//! Scenario descriptions: everything one simulation run needs.

pub use netclone_hosts::RetryPolicy;
use netclone_kvstore::{HotKeyCost, ServiceCostModel};
use netclone_linksim::LinkSpec;
use netclone_workloads::{Jitter, ServiceShape, SyntheticWorkload};

use crate::calib;
use crate::scheme::Scheme;
use crate::topology::Topology;

/// One worker server's shape.
#[derive(Clone, Copy, Debug)]
pub struct ServerSpec {
    /// Worker threads (15 synthetic / 8 KV; heterogeneous setups mix 15
    /// and 8, §5.4).
    pub workers: usize,
}

/// The workload a scenario offers.
#[derive(Clone, Debug)]
pub enum Workload {
    /// Synthetic dummy RPCs (§5.1.2).
    Synthetic(SyntheticWorkload),
    /// KV read mix over a Zipf population (§5.5).
    Kv {
        /// Fraction of GETs (the remainder are SCANs).
        get_frac: f64,
        /// Objects per SCAN (the paper uses 100).
        scan_count: u16,
        /// Key population size (the paper uses 1 M).
        objects: usize,
        /// Zipf skew (the paper uses 0.99).
        zipf_theta: f64,
        /// Service-cost model (Redis or Memcached).
        cost: ServiceCostModel,
    },
}

impl Workload {
    /// The paper's Redis workload at the given GET fraction.
    pub fn redis(get_frac: f64) -> Self {
        Workload::Kv {
            get_frac,
            scan_count: 100,
            objects: 1_000_000,
            zipf_theta: 0.99,
            cost: ServiceCostModel::redis(),
        }
    }

    /// The paper's Memcached workload at the given GET fraction.
    pub fn memcached(get_frac: f64) -> Self {
        Workload::Kv {
            get_frac,
            scan_count: 100,
            objects: 1_000_000,
            zipf_theta: 0.99,
            cost: ServiceCostModel::memcached(),
        }
    }

    /// Mean service time per request, ns (for capacity estimates).
    pub fn mean_service_ns(&self) -> f64 {
        match self {
            Workload::Synthetic(wl) => wl.mean_class_ns(),
            Workload::Kv {
                get_frac,
                scan_count,
                cost,
                ..
            } => cost.mix_mean_ns(*get_frac, *scan_count),
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            Workload::Synthetic(wl) => wl.label(),
            Workload::Kv {
                get_frac,
                scan_count,
                ..
            } => format!(
                "{}%-GET,{}%-SCAN({})",
                (get_frac * 100.0).round() as u32,
                ((1.0 - get_frac) * 100.0).round() as u32,
                scan_count
            ),
        }
    }
}

/// Switch failure injection (Fig. 16).
///
/// The plan gates forwarding for the *whole* fabric: in the paper's
/// single-rack testbed that is exactly the one ToR power-cycling; under a
/// multi-rack [`Topology`] it models a fabric-wide outage (every leaf and
/// the spine stop forwarding, and bring-up clears soft state on all of
/// them). Per-switch failure injection is not modeled yet.
#[derive(Clone, Copy, Debug)]
pub struct SwitchFailurePlan {
    /// When the switch stops forwarding, ns.
    pub fail_at_ns: u64,
    /// When the operator reactivates it, ns (forwarding resumes after the
    /// pipeline bring-up time, with soft state cleared).
    pub reactivate_at_ns: u64,
    /// Pipeline bring-up duration, ns.
    pub bringup_ns: u64,
}

/// Background incast traffic: bulk flows from every other rack converging
/// on one victim rack's downlinks, contending with the RPC traffic for
/// queue space (requires [`Scenario::links`] and a multi-rack topology).
///
/// Background packets are *load*, not workload: they traverse the
/// congestion-aware links (filling queues, taking drops) but never touch
/// a switch engine, server, or client, so they leave every RPC-layer
/// counter untouched except through queueing delay and drops.
#[derive(Clone, Copy, Debug)]
pub struct Background {
    /// Aggregate background packet rate, packets/second across all
    /// source racks.
    pub rps: f64,
    /// On-wire size of one background packet, bytes (bulk flows: jumbo).
    pub wire_bytes: u16,
    /// The rack whose downlinks the flows converge on.
    pub victim_rack: usize,
}

/// A server failure injection (§3.6) — **fail-stop**: the server silently
/// drops everything from `fail_at_ns` until the control plane removes it.
///
/// This is the crash model. For the *gray* failure where a server keeps
/// answering but slower (thermal throttling, a noisy neighbour, a
/// background compaction), use [`SlowdownPlan`] — the two are distinct
/// knobs, and [`Scenario::validate`] rejects a configuration that
/// schedules both on the same server at overlapping times (a server
/// cannot be simultaneously dead and slow; pick the failure mode).
#[derive(Clone, Copy, Debug)]
pub struct ServerFailurePlan {
    /// Which server dies.
    pub sid: u16,
    /// When it dies, ns.
    pub fail_at_ns: u64,
    /// When the switch control plane removes it from the tables, ns
    /// (detection delay after the failure).
    pub removed_at_ns: u64,
}

/// A mid-run server **slowdown** — the gray-failure counterpart of the
/// fail-stop [`ServerFailurePlan`]: from `start_ns` to `end_ns` every
/// service time the server *draws* is multiplied by `factor` (in-flight
/// requests keep their completion times). The server keeps accepting,
/// queueing, and answering throughout, so the switch never removes it —
/// exactly the scenario where cloning (racing a second server) should
/// shine and where fail-stop handling does nothing.
///
/// Both edges are fabric-domain-0 control events, so serial and sharded
/// runs stay byte-identical; see "Degradation events" in
/// `docs/ARCHITECTURE.md`.
#[derive(Clone, Copy, Debug)]
pub struct SlowdownPlan {
    /// Which server degrades.
    pub sid: u16,
    /// When the degradation starts, ns.
    pub start_ns: u64,
    /// When the server recovers to full speed, ns.
    pub end_ns: u64,
    /// Multiplicative service-time factor while degraded (> 1 slows the
    /// server; must be > 0).
    pub factor: f64,
}

/// A mid-run **leaf drain** in a multi-rack fabric: from `drain_at_ns`
/// the victim rack's leaf switch stops forwarding (maintenance drain /
/// unplanned leaf outage — packets to and from that rack are lost), and
/// at `restore_at_ns` it comes back with its soft state cleared, exactly
/// like a post-power-cycle switch (Fig. 16, but scoped to one leaf
/// instead of the whole fabric).
#[derive(Clone, Copy, Debug)]
pub struct DrainPlan {
    /// Which rack's leaf drains (must exist and the topology must have
    /// more than one rack — draining the only leaf is just Fig. 16).
    pub rack: usize,
    /// When forwarding stops, ns.
    pub drain_at_ns: u64,
    /// When forwarding resumes (soft state cleared), ns.
    pub restore_at_ns: u64,
}

/// Mid-run degradation injections (the adversarial suite). `Default` is
/// no degradation; absent plans add no events, so pre-existing scenarios
/// stay seed-pinned bit for bit.
///
/// This is the single-plan knob PR 8.5 introduced; for more than one
/// concurrent fault (or link flaps / switch reboots) compose a
/// [`FaultTimeline`] in [`Scenario::faults`] — the two layer cleanly, and
/// [`Scenario::all_faults`] is the canonical merged view.
#[derive(Clone, Copy, Debug, Default)]
pub struct DegradationPlan {
    /// Optional mid-run server slowdown (gray failure).
    pub slowdown: Option<SlowdownPlan>,
    /// Optional leaf drain (multi-rack fabrics only).
    pub drain: Option<DrainPlan>,
}

impl DegradationPlan {
    /// True when no degradation is scheduled.
    pub fn is_empty(&self) -> bool {
        self.slowdown.is_none() && self.drain.is_none()
    }
}

/// A mid-run **link flap** in a congestion-aware multi-rack fabric: from
/// `start_ns` to `end_ns` every rack-adjacent link of the victim rack
/// (host access links and leaf↔upper-tier uplinks/downlinks) collapses to
/// `1/factor` of its nominal rate — an auto-negotiation downshift or a
/// flapping optic, the gray failure of the *network* the way
/// [`SlowdownPlan`] is the gray failure of a server. Queued packets keep
/// their departure schedule; packets offered inside the window pay the
/// degraded serialization cost. The multiplier is an integer, so the flap
/// inherits the link model's determinism.
///
/// Requires [`Scenario::links`] and a multi-rack [`Topology`] (stateful
/// links are only materialized per owned rack there).
#[derive(Clone, Copy, Debug)]
pub struct LinkFlapPlan {
    /// The rack whose adjacent links degrade.
    pub rack: usize,
    /// When the rate collapses, ns.
    pub start_ns: u64,
    /// When the nominal rate is restored, ns.
    pub end_ns: u64,
    /// Rate-collapse divisor while flapped (≥ 2; 1 is a healthy link).
    pub factor: u64,
}

/// One timed fault edge pair in a [`FaultTimeline`].
#[derive(Clone, Copy, Debug)]
pub enum Fault {
    /// Gray server: service times multiplied inside the window.
    Slowdown(SlowdownPlan),
    /// Leaf drain: one rack's leaf stops forwarding, then recovers with
    /// soft state cleared.
    Drain(DrainPlan),
    /// Link flap: rack-adjacent links collapse to a fraction of nominal
    /// rate, then recover.
    LinkFlap(LinkFlapPlan),
    /// Fabric-wide switch reboot (the Fig. 16 power-cycle as a timeline
    /// member): forwarding stops at `fail_at_ns`, resumes `bringup_ns`
    /// after `reactivate_at_ns` with soft state cleared and the
    /// hard counters preserved.
    Reboot(SwitchFailurePlan),
}

/// An ordered, validated set of timed fault edges — the composable
/// generalization of [`DegradationPlan`]: concurrent gray servers,
/// rolling drains, link flaps, and switch reboots in one scenario.
///
/// Every edge is delivered as a fabric-domain-0 control event primed at
/// build time in declaration order, so serial and sharded runs stay
/// byte-identical for any timeline (see "Fault timelines & recovery" in
/// `docs/ARCHITECTURE.md`). `Default` is empty and primes nothing:
/// pre-existing scenarios keep their seed pins bit for bit.
#[derive(Clone, Debug, Default)]
pub struct FaultTimeline {
    /// The fault edges, primed in declaration order.
    pub faults: Vec<Fault>,
}

impl FaultTimeline {
    /// True when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Cascade preset: a maintenance wave draining `racks` one after
    /// another — rack *i* drains at `start_ns + i·stagger_ns` and
    /// restores `hold_ns` later. With `stagger_ns < hold_ns` the windows
    /// overlap (an aggressive rollout); with `stagger_ns ≥ hold_ns` each
    /// rack is back before the next goes down.
    pub fn rolling_drain(racks: &[usize], start_ns: u64, hold_ns: u64, stagger_ns: u64) -> Self {
        let faults = racks
            .iter()
            .enumerate()
            .map(|(i, &rack)| {
                let drain_at_ns = start_ns + i as u64 * stagger_ns;
                Fault::Drain(DrainPlan {
                    rack,
                    drain_at_ns,
                    restore_at_ns: drain_at_ns + hold_ns,
                })
            })
            .collect();
        FaultTimeline { faults }
    }

    /// Cascade preset: a correlated gray failure — every server in
    /// `servers` slows down by `factor` over the *same* window (a shared
    /// power cap, a bad kernel rollout, one overloaded backing store).
    pub fn correlated_gray(servers: &[u16], start_ns: u64, end_ns: u64, factor: f64) -> Self {
        let faults = servers
            .iter()
            .map(|&sid| {
                Fault::Slowdown(SlowdownPlan {
                    sid,
                    start_ns,
                    end_ns,
                    factor,
                })
            })
            .collect();
        FaultTimeline { faults }
    }
}

/// Composable service-model overrides layered over the workload — the
/// adversarial suite's seam. `Default` means "the workload's own model"
/// (synthetic → exponential execution around the class, KV → Gamma(4)
/// over the flat cost model), which keeps every pre-existing scenario
/// seed-pinned.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceModel {
    /// Override the per-server execution-time shape (e.g.
    /// [`ServiceShape::Gamma4`] for a synthetic workload, or
    /// [`ServiceShape::Deterministic`] to expose the class distribution
    /// directly).
    pub shape: Option<ServiceShape>,
    /// Cache-aware hot/cold cost split for KV workloads: keys in the hot
    /// set are cheap hits, the Zipf tail pays the expensive miss path.
    /// Replaces the workload's flat [`ServiceCostModel`] at the servers.
    pub hot_key: Option<HotKeyCost>,
}

/// Everything one simulation run needs.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The scheme under test.
    pub scheme: Scheme,
    /// Number of client hosts (the paper uses 2).
    pub n_clients: usize,
    /// The worker servers.
    pub servers: Vec<ServerSpec>,
    /// The offered workload.
    pub workload: Workload,
    /// Service-time variability (±15, p ∈ {0.01, 0.001}).
    pub jitter: Jitter,
    /// Total offered load, requests/second across all clients.
    pub offered_rps: f64,
    /// Warm-up duration (measurements discarded), ns.
    pub warmup_ns: u64,
    /// Measurement window, ns.
    pub measure_ns: u64,
    /// Uniform packet-loss probability per link traversal.
    pub loss: f64,
    /// Master seed.
    pub seed: u64,
    /// Optional switch failure (Fig. 16).
    pub switch_failure: Option<SwitchFailurePlan>,
    /// Optional **fail-stop** server failure (§3.6). For the gray-failure
    /// slowdown, use [`Scenario::degradation`] — see [`SlowdownPlan`].
    pub server_failure: Option<ServerFailurePlan>,
    /// Service-model overrides (shape, hot-key cost); default = the
    /// workload's own model.
    pub service_model: ServiceModel,
    /// Mid-run degradation injections (slowdown, leaf drain); default =
    /// none.
    pub degradation: DegradationPlan,
    /// Composable fault-injection timeline (concurrent gray servers,
    /// rolling drains, link flaps, switch reboots), layered after
    /// `degradation`; default = empty.
    pub faults: FaultTimeline,
    /// Client-side retry-on-timeout recovery ([`RetryPolicy`]): expired
    /// requests are retransmitted with capped exponential backoff under a
    /// per-client budget. `None` (the default) keeps requests outstanding
    /// until answered — the pre-recovery simulator, bit for bit.
    pub retry: Option<RetryPolicy>,
    /// Throughput-timeseries bucket width, ns (Fig. 16 uses 1 s).
    pub timeseries_bucket_ns: u64,
    /// Filter tables on the switch (paper default 2; ablations vary it).
    pub n_filter_tables: usize,
    /// log2 of slots per filter table (paper default 17; the ablation
    /// shrinks it to make hash collisions observable).
    pub filter_slots_log2: u8,
    /// Override the group table (ablations: e.g. unordered C(n,2) pairs).
    pub custom_groups: Option<Vec<(u16, u16)>>,
    /// Cloning condition (paper: both idle; the §3.4 threshold alternative
    /// is available for the ablation).
    pub clone_condition: netclone_core::CloneCondition,
    /// Fabric shape: racks, host placement, inter-rack latency (§3.7).
    /// [`Topology::single_rack`] reproduces the paper's testbed exactly.
    pub topology: Topology,
    /// Congestion-aware links (`netclone-linksim`): bandwidth, bounded
    /// queues, tail-drop, ECN counters. `None` (the default) keeps every
    /// hop a fixed latency — the pre-linksim simulator, bit for bit.
    pub links: Option<LinkSpec>,
    /// Background incast traffic over the links (`None` = quiet fabric;
    /// requires `links` and a multi-rack topology).
    pub background: Option<Background>,
}

impl Scenario {
    /// The paper's default testbed: 2 clients, 6 homogeneous synthetic
    /// workers, Exp(25), high variability.
    pub fn synthetic_default(scheme: Scheme, wl: SyntheticWorkload, offered_rps: f64) -> Self {
        Scenario {
            scheme,
            n_clients: 2,
            servers: vec![
                ServerSpec {
                    workers: calib::SYNTHETIC_WORKERS
                };
                6
            ],
            workload: Workload::Synthetic(wl),
            jitter: Jitter::HIGH,
            offered_rps,
            warmup_ns: 30_000_000,   // 30 ms
            measure_ns: 250_000_000, // 250 ms
            loss: 0.0,
            seed: 42,
            switch_failure: None,
            server_failure: None,
            service_model: ServiceModel::default(),
            degradation: DegradationPlan::default(),
            faults: FaultTimeline::default(),
            retry: None,
            timeseries_bucket_ns: 100_000_000,
            n_filter_tables: 2,
            filter_slots_log2: 17,
            custom_groups: None,
            clone_condition: netclone_core::CloneCondition::BothIdle,
            topology: Topology::single_rack(),
            links: None,
            background: None,
        }
    }

    /// The paper's KV testbed: 2 clients, 6 workers × 8 threads.
    pub fn kv_default(scheme: Scheme, workload: Workload, offered_rps: f64) -> Self {
        Scenario {
            scheme,
            n_clients: 2,
            servers: vec![
                ServerSpec {
                    workers: calib::KV_WORKERS
                };
                6
            ],
            workload,
            jitter: Jitter::HIGH,
            offered_rps,
            warmup_ns: 50_000_000,
            measure_ns: 400_000_000,
            loss: 0.0,
            seed: 42,
            switch_failure: None,
            server_failure: None,
            service_model: ServiceModel::default(),
            degradation: DegradationPlan::default(),
            faults: FaultTimeline::default(),
            retry: None,
            timeseries_bucket_ns: 100_000_000,
            n_filter_tables: 2,
            filter_slots_log2: 17,
            custom_groups: None,
            clone_condition: netclone_core::CloneCondition::BothIdle,
            topology: Topology::single_rack(),
            links: None,
            background: None,
        }
    }

    /// Aggregate worker-thread capacity in requests/second (the knee of
    /// the throughput axis; sweeps size their rates from this). Accounts
    /// for a hot-key service model: the mean blends hit and miss costs
    /// by the Zipf mass on the hot set.
    pub fn capacity_rps(&self) -> f64 {
        let threads: usize = self.servers.iter().map(|s| s.workers).sum();
        let base_mean = match (&self.workload, &self.service_model.hot_key) {
            (
                Workload::Kv {
                    get_frac,
                    scan_count,
                    objects,
                    zipf_theta,
                    ..
                },
                Some(hk),
            ) => hk.zipf_mix_mean_ns(*get_frac, *scan_count, *objects as u64, *zipf_theta),
            _ => self.workload.mean_service_ns(),
        };
        let mean_ns = base_mean * (1.0 + self.jitter.p * (self.jitter.factor as f64 - 1.0));
        threads as f64 / (mean_ns / 1e9)
    }

    /// The canonical merged fault list: the legacy single-plan
    /// [`Scenario::degradation`] knob first (slowdown, then drain —
    /// exactly the pre-timeline priming order, so pre-existing seed pins
    /// survive), then the [`FaultTimeline`] in declaration order. The
    /// builder primes control events by iterating this.
    pub fn all_faults(&self) -> Vec<Fault> {
        let mut v = Vec::with_capacity(2 + self.faults.faults.len());
        if let Some(sl) = self.degradation.slowdown {
            v.push(Fault::Slowdown(sl));
        }
        if let Some(d) = self.degradation.drain {
            v.push(Fault::Drain(d));
        }
        v.extend(self.faults.faults.iter().copied());
        v
    }

    /// Checks the fault plans against the rest of the scenario. Called by
    /// the builder before any event is primed; the error message names
    /// the conflicting knobs.
    pub fn validate(&self) -> Result<(), String> {
        let faults = self.all_faults();
        for fault in &faults {
            self.validate_fault(fault)?;
        }
        // Overlapping/duplicate windows on the same target are a
        // contradiction (which edge wins at the overlap is unanswerable),
        // not a cascade — reject them instead of guessing.
        let window = |f: &Fault| match *f {
            Fault::Slowdown(s) => (s.start_ns, s.end_ns),
            Fault::Drain(d) => (d.drain_at_ns, d.restore_at_ns),
            Fault::LinkFlap(lf) => (lf.start_ns, lf.end_ns),
            Fault::Reboot(r) => (r.fail_at_ns, r.reactivate_at_ns + r.bringup_ns),
        };
        let overlaps = |a: &Fault, b: &Fault| {
            let (a0, a1) = window(a);
            let (b0, b1) = window(b);
            !(a1 <= b0 || b1 <= a0)
        };
        for (i, a) in faults.iter().enumerate() {
            for b in &faults[i + 1..] {
                let clash = match (a, b) {
                    (Fault::Slowdown(x), Fault::Slowdown(y)) if x.sid == y.sid => {
                        Some(format!("slowdown windows on server {}", x.sid))
                    }
                    (Fault::Drain(x), Fault::Drain(y)) if x.rack == y.rack => {
                        Some(format!("drain windows on rack {}", x.rack))
                    }
                    (Fault::LinkFlap(x), Fault::LinkFlap(y)) if x.rack == y.rack => {
                        Some(format!("link-flap windows on rack {}", x.rack))
                    }
                    (Fault::Reboot(_), Fault::Reboot(_)) => {
                        Some("switch reboot windows".to_string())
                    }
                    _ => None,
                };
                if let Some(what) = clash {
                    if overlaps(a, b) {
                        let (a0, a1) = window(a);
                        let (b0, b1) = window(b);
                        return Err(format!(
                            "overlapping {what}: {a0}..{a1} ns and {b0}..{b1} ns — \
                             merge them into one window or separate them"
                        ));
                    }
                }
            }
        }
        // A timeline reboot against the legacy Fig. 16 plan is the same
        // contradiction.
        if let Some(sf) = &self.switch_failure {
            let legacy = Fault::Reboot(*sf);
            for f in &faults {
                if matches!(f, Fault::Reboot(_)) && overlaps(f, &legacy) {
                    let (a0, a1) = window(f);
                    return Err(format!(
                        "overlapping switch reboot windows: the timeline reboot \
                         {a0}..{a1} ns collides with the switch_failure plan \
                         {}..{} ns",
                        sf.fail_at_ns,
                        sf.reactivate_at_ns + sf.bringup_ns
                    ));
                }
            }
        }
        Ok(())
    }

    /// Per-fault shape checks (bounds, non-empty windows, required
    /// topology features).
    fn validate_fault(&self, fault: &Fault) -> Result<(), String> {
        match fault {
            Fault::Slowdown(sl) => {
                if sl.factor <= 0.0 || sl.factor.is_nan() {
                    return Err(format!("slowdown factor must be > 0, got {}", sl.factor));
                }
                if sl.start_ns >= sl.end_ns {
                    return Err(format!(
                        "slowdown window is empty: start_ns {} >= end_ns {}",
                        sl.start_ns, sl.end_ns
                    ));
                }
                if sl.sid as usize >= self.servers.len() {
                    return Err(format!(
                        "slowdown targets server {} but the scenario has {}",
                        sl.sid,
                        self.servers.len()
                    ));
                }
                if let Some(f) = &self.server_failure {
                    // Overlap unless one window ends before the other
                    // starts.
                    let disjoint = sl.end_ns <= f.fail_at_ns || f.removed_at_ns <= sl.start_ns;
                    if f.sid == sl.sid && !disjoint {
                        return Err(format!(
                            "server {} has a fail-stop plan ({}..{} ns) overlapping its \
                             slowdown plan ({}..{} ns); a server cannot be dead and slow \
                             at once — separate the windows or pick one failure mode",
                            sl.sid, f.fail_at_ns, f.removed_at_ns, sl.start_ns, sl.end_ns
                        ));
                    }
                }
            }
            Fault::Drain(d) => {
                let racks = self.topology.racks;
                if racks < 2 {
                    return Err("leaf drain needs a multi-rack topology (draining the only \
                         leaf is the Fig. 16 switch_failure plan)"
                        .to_string());
                }
                if d.rack >= racks {
                    return Err(format!(
                        "drain targets rack {} but the topology has {racks}",
                        d.rack
                    ));
                }
                if d.drain_at_ns >= d.restore_at_ns {
                    return Err(format!(
                        "drain window is empty: drain_at_ns {} >= restore_at_ns {}",
                        d.drain_at_ns, d.restore_at_ns
                    ));
                }
            }
            Fault::LinkFlap(lf) => {
                if self.links.is_none() {
                    return Err("link flap needs congestion-aware links (Scenario::links); \
                         without them every hop is a fixed latency with no rate to \
                         collapse"
                        .to_string());
                }
                let racks = self.topology.racks;
                if racks < 2 {
                    return Err("link flap needs a multi-rack topology (stateful \
                         rack-adjacent links exist only there)"
                        .to_string());
                }
                if lf.rack >= racks {
                    return Err(format!(
                        "link flap targets rack {} but the topology has {racks}",
                        lf.rack
                    ));
                }
                if lf.start_ns >= lf.end_ns {
                    return Err(format!(
                        "link-flap window is empty: start_ns {} >= end_ns {}",
                        lf.start_ns, lf.end_ns
                    ));
                }
                if lf.factor < 2 {
                    return Err(format!(
                        "link-flap factor must be ≥ 2 (1 is a healthy link), got {}",
                        lf.factor
                    ));
                }
            }
            Fault::Reboot(r) => {
                if r.fail_at_ns >= r.reactivate_at_ns {
                    return Err(format!(
                        "switch reboot window is empty: fail_at_ns {} >= reactivate_at_ns {}",
                        r.fail_at_ns, r.reactivate_at_ns
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclone_workloads::exp25;

    #[test]
    fn default_testbed_matches_paper() {
        let s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1e6);
        assert_eq!(s.n_clients, 2);
        assert_eq!(s.servers.len(), 6);
        assert_eq!(s.servers[0].workers, 15);
        assert_eq!(s.jitter, Jitter::HIGH);
    }

    #[test]
    fn capacity_is_in_the_fig7_region() {
        // 6 × 15 threads at Exp(25)+jitter: ≈ 3.1–3.2 MRPS, the Fig. 7
        // saturation region.
        let s = Scenario::synthetic_default(Scheme::Baseline, exp25(), 1e6);
        let cap = s.capacity_rps();
        assert!((2.8e6..3.6e6).contains(&cap), "capacity {cap}");
    }

    #[test]
    fn kv_capacity_is_in_the_fig11_region() {
        let s = Scenario::kv_default(Scheme::Baseline, Workload::redis(0.99), 1e5);
        let cap = s.capacity_rps();
        assert!((4.5e5..7.0e5).contains(&cap), "capacity {cap}");
        let s = Scenario::kv_default(Scheme::Baseline, Workload::redis(0.90), 1e5);
        let cap = s.capacity_rps();
        assert!((1.4e5..2.2e5).contains(&cap), "capacity {cap}");
    }

    #[test]
    fn workload_labels() {
        assert_eq!(Workload::Synthetic(exp25()).label(), "Exp(25)");
        assert_eq!(Workload::redis(0.99).label(), "99%-GET,1%-SCAN(100)");
    }

    #[test]
    fn overlapping_fail_stop_and_slowdown_on_one_server_is_rejected() {
        let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1e6);
        s.server_failure = Some(ServerFailurePlan {
            sid: 1,
            fail_at_ns: 3_000_000,
            removed_at_ns: 5_000_000,
        });
        s.degradation.slowdown = Some(SlowdownPlan {
            sid: 1,
            start_ns: 4_000_000,
            end_ns: 8_000_000,
            factor: 4.0,
        });
        let err = s.validate().unwrap_err();
        assert!(err.contains("dead and slow"), "unhelpful error: {err}");
        // Disjoint windows on the same server are fine…
        s.degradation.slowdown.as_mut().unwrap().start_ns = 5_000_000;
        assert!(s.validate().is_ok());
        // …and so are overlapping windows on different servers.
        s.degradation.slowdown = Some(SlowdownPlan {
            sid: 2,
            start_ns: 2_000_000,
            end_ns: 8_000_000,
            factor: 4.0,
        });
        assert!(s.validate().is_ok());
    }

    #[test]
    fn degenerate_degradation_plans_are_rejected() {
        let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1e6);
        s.degradation.slowdown = Some(SlowdownPlan {
            sid: 0,
            start_ns: 2_000_000,
            end_ns: 1_000_000,
            factor: 4.0,
        });
        assert!(s.validate().unwrap_err().contains("empty"));
        s.degradation.slowdown = Some(SlowdownPlan {
            sid: 0,
            start_ns: 1_000_000,
            end_ns: 2_000_000,
            factor: 0.0,
        });
        assert!(s.validate().unwrap_err().contains("factor"));
        s.degradation.slowdown = None;
        // Draining the only rack is the switch_failure plan's job.
        s.degradation.drain = Some(DrainPlan {
            rack: 0,
            drain_at_ns: 1_000_000,
            restore_at_ns: 2_000_000,
        });
        assert!(s.validate().unwrap_err().contains("multi-rack"));
        s.topology = Topology::uniform(4);
        assert!(s.validate().is_ok());
        s.degradation.drain.as_mut().unwrap().rack = 4;
        assert!(s.validate().unwrap_err().contains("rack 4"));
    }

    #[test]
    fn overlapping_slowdown_windows_on_one_server_are_rejected() {
        let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1e6);
        s.degradation.slowdown = Some(SlowdownPlan {
            sid: 1,
            start_ns: 1_000_000,
            end_ns: 5_000_000,
            factor: 4.0,
        });
        s.faults.faults.push(Fault::Slowdown(SlowdownPlan {
            sid: 1,
            start_ns: 4_000_000,
            end_ns: 8_000_000,
            factor: 2.0,
        }));
        let err = s.validate().unwrap_err();
        assert!(
            err.contains("overlapping slowdown windows on server 1"),
            "unhelpful error: {err}"
        );
        // The same overlap on a different server is a valid correlated
        // gray failure…
        match s.faults.faults.last_mut().unwrap() {
            Fault::Slowdown(sl) => sl.sid = 2,
            _ => unreachable!(),
        }
        assert!(s.validate().is_ok());
        // …and back-to-back windows on the same server are a cascade,
        // not a contradiction.
        s.faults.faults = vec![Fault::Slowdown(SlowdownPlan {
            sid: 1,
            start_ns: 5_000_000,
            end_ns: 8_000_000,
            factor: 2.0,
        })];
        assert!(s.validate().is_ok());
    }

    #[test]
    fn duplicate_drain_windows_on_one_rack_are_rejected() {
        let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1e6);
        s.topology = Topology::uniform(4);
        let d = DrainPlan {
            rack: 2,
            drain_at_ns: 1_000_000,
            restore_at_ns: 2_000_000,
        };
        s.faults.faults = vec![Fault::Drain(d), Fault::Drain(d)];
        let err = s.validate().unwrap_err();
        assert!(
            err.contains("overlapping drain windows on rack 2"),
            "unhelpful error: {err}"
        );
        // A rolling drain across *different* racks may overlap freely.
        s.faults = FaultTimeline::rolling_drain(&[0, 1, 2], 1_000_000, 2_000_000, 500_000);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn link_flap_prerequisites_are_enforced() {
        let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1e6);
        let flap = |rack, start_ns, end_ns, factor| {
            Fault::LinkFlap(LinkFlapPlan {
                rack,
                start_ns,
                end_ns,
                factor,
            })
        };
        s.faults.faults = vec![flap(0, 1_000_000, 2_000_000, 10)];
        assert!(s.validate().unwrap_err().contains("links"));
        s.links = Some(netclone_linksim::LinkSpec::flat(10.0, 150_000));
        assert!(s.validate().unwrap_err().contains("multi-rack"));
        s.topology = Topology::uniform(4);
        assert!(s.validate().is_ok());
        s.faults.faults = vec![flap(4, 1_000_000, 2_000_000, 10)];
        assert!(s.validate().unwrap_err().contains("rack 4"));
        s.faults.faults = vec![flap(0, 2_000_000, 1_000_000, 10)];
        assert!(s.validate().unwrap_err().contains("empty"));
        s.faults.faults = vec![flap(0, 1_000_000, 2_000_000, 1)];
        assert!(s.validate().unwrap_err().contains("factor"));
        // Overlapping flaps on one rack contradict; distinct racks don't.
        s.faults.faults = vec![
            flap(0, 1_000_000, 3_000_000, 10),
            flap(0, 2_000_000, 4_000_000, 10),
        ];
        assert!(s
            .validate()
            .unwrap_err()
            .contains("overlapping link-flap windows on rack 0"));
        s.faults.faults = vec![
            flap(0, 1_000_000, 3_000_000, 10),
            flap(1, 2_000_000, 4_000_000, 10),
        ];
        assert!(s.validate().is_ok());
    }

    #[test]
    fn overlapping_switch_reboots_are_rejected() {
        let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1e6);
        let reboot = |fail_at_ns, reactivate_at_ns| {
            Fault::Reboot(SwitchFailurePlan {
                fail_at_ns,
                reactivate_at_ns,
                bringup_ns: 100_000,
            })
        };
        s.faults.faults = vec![reboot(2_000_000, 1_000_000)];
        assert!(s.validate().unwrap_err().contains("empty"));
        // Two cascading reboots are fine; overlapping ones are not.
        s.faults.faults = vec![reboot(1_000_000, 2_000_000), reboot(3_000_000, 4_000_000)];
        assert!(s.validate().is_ok());
        s.faults.faults = vec![reboot(1_000_000, 3_000_000), reboot(2_000_000, 4_000_000)];
        assert!(s
            .validate()
            .unwrap_err()
            .contains("overlapping switch reboot windows"));
        // The bring-up tail counts as part of the outage window.
        s.faults.faults = vec![reboot(1_000_000, 2_000_000), reboot(2_050_000, 4_000_000)];
        assert!(s.validate().unwrap_err().contains("reboot"));
        // A timeline reboot colliding with the legacy Fig. 16 plan is the
        // same contradiction.
        s.faults.faults = vec![reboot(1_000_000, 2_000_000)];
        s.switch_failure = Some(SwitchFailurePlan {
            fail_at_ns: 1_500_000,
            reactivate_at_ns: 3_000_000,
            bringup_ns: 100_000,
        });
        assert!(s.validate().unwrap_err().contains("switch_failure"));
    }

    #[test]
    fn cascade_presets_validate() {
        let mut s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1e6);
        s.topology = Topology::uniform(4);
        s.faults = FaultTimeline::rolling_drain(&[0, 1, 2, 3], 10_000_000, 5_000_000, 2_000_000);
        assert_eq!(s.faults.faults.len(), 4);
        assert!(s.validate().is_ok());
        match s.faults.faults[3] {
            Fault::Drain(d) => {
                assert_eq!(d.drain_at_ns, 16_000_000);
                assert_eq!(d.restore_at_ns, 21_000_000);
            }
            _ => unreachable!(),
        }
        s.faults = FaultTimeline::correlated_gray(&[0, 2, 4], 10_000_000, 20_000_000, 6.0);
        assert!(s.validate().is_ok());
        assert_eq!(s.all_faults().len(), 3);
    }

    #[test]
    fn hot_key_model_shifts_capacity() {
        let mut s = Scenario::kv_default(Scheme::Baseline, Workload::redis(0.99), 1e5);
        let flat = s.capacity_rps();
        s.service_model.hot_key = Some(HotKeyCost::redis_with_backing_store(1_000));
        let hot = s.capacity_rps();
        // Misses are 10× the hit cost, so capacity must drop.
        assert!(hot < flat, "hot-key capacity {hot} !< flat {flat}");
        assert!(hot > 0.0);
    }
}
