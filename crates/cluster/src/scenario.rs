//! Scenario descriptions: everything one simulation run needs.

use netclone_kvstore::ServiceCostModel;
use netclone_linksim::LinkSpec;
use netclone_workloads::{Jitter, SyntheticWorkload};

use crate::calib;
use crate::scheme::Scheme;
use crate::topology::Topology;

/// One worker server's shape.
#[derive(Clone, Copy, Debug)]
pub struct ServerSpec {
    /// Worker threads (15 synthetic / 8 KV; heterogeneous setups mix 15
    /// and 8, §5.4).
    pub workers: usize,
}

/// The workload a scenario offers.
#[derive(Clone, Debug)]
pub enum Workload {
    /// Synthetic dummy RPCs (§5.1.2).
    Synthetic(SyntheticWorkload),
    /// KV read mix over a Zipf population (§5.5).
    Kv {
        /// Fraction of GETs (the remainder are SCANs).
        get_frac: f64,
        /// Objects per SCAN (the paper uses 100).
        scan_count: u16,
        /// Key population size (the paper uses 1 M).
        objects: usize,
        /// Zipf skew (the paper uses 0.99).
        zipf_theta: f64,
        /// Service-cost model (Redis or Memcached).
        cost: ServiceCostModel,
    },
}

impl Workload {
    /// The paper's Redis workload at the given GET fraction.
    pub fn redis(get_frac: f64) -> Self {
        Workload::Kv {
            get_frac,
            scan_count: 100,
            objects: 1_000_000,
            zipf_theta: 0.99,
            cost: ServiceCostModel::redis(),
        }
    }

    /// The paper's Memcached workload at the given GET fraction.
    pub fn memcached(get_frac: f64) -> Self {
        Workload::Kv {
            get_frac,
            scan_count: 100,
            objects: 1_000_000,
            zipf_theta: 0.99,
            cost: ServiceCostModel::memcached(),
        }
    }

    /// Mean service time per request, ns (for capacity estimates).
    pub fn mean_service_ns(&self) -> f64 {
        match self {
            Workload::Synthetic(wl) => wl.mean_class_ns(),
            Workload::Kv {
                get_frac,
                scan_count,
                cost,
                ..
            } => cost.mix_mean_ns(*get_frac, *scan_count),
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            Workload::Synthetic(wl) => wl.label(),
            Workload::Kv {
                get_frac,
                scan_count,
                ..
            } => format!(
                "{}%-GET,{}%-SCAN({})",
                (get_frac * 100.0).round() as u32,
                ((1.0 - get_frac) * 100.0).round() as u32,
                scan_count
            ),
        }
    }
}

/// Switch failure injection (Fig. 16).
///
/// The plan gates forwarding for the *whole* fabric: in the paper's
/// single-rack testbed that is exactly the one ToR power-cycling; under a
/// multi-rack [`Topology`] it models a fabric-wide outage (every leaf and
/// the spine stop forwarding, and bring-up clears soft state on all of
/// them). Per-switch failure injection is not modeled yet.
#[derive(Clone, Copy, Debug)]
pub struct SwitchFailurePlan {
    /// When the switch stops forwarding, ns.
    pub fail_at_ns: u64,
    /// When the operator reactivates it, ns (forwarding resumes after the
    /// pipeline bring-up time, with soft state cleared).
    pub reactivate_at_ns: u64,
    /// Pipeline bring-up duration, ns.
    pub bringup_ns: u64,
}

/// Background incast traffic: bulk flows from every other rack converging
/// on one victim rack's downlinks, contending with the RPC traffic for
/// queue space (requires [`Scenario::links`] and a multi-rack topology).
///
/// Background packets are *load*, not workload: they traverse the
/// congestion-aware links (filling queues, taking drops) but never touch
/// a switch engine, server, or client, so they leave every RPC-layer
/// counter untouched except through queueing delay and drops.
#[derive(Clone, Copy, Debug)]
pub struct Background {
    /// Aggregate background packet rate, packets/second across all
    /// source racks.
    pub rps: f64,
    /// On-wire size of one background packet, bytes (bulk flows: jumbo).
    pub wire_bytes: u16,
    /// The rack whose downlinks the flows converge on.
    pub victim_rack: usize,
}

/// A server failure injection (§3.6).
#[derive(Clone, Copy, Debug)]
pub struct ServerFailurePlan {
    /// Which server dies.
    pub sid: u16,
    /// When it dies, ns.
    pub fail_at_ns: u64,
    /// When the switch control plane removes it from the tables, ns
    /// (detection delay after the failure).
    pub removed_at_ns: u64,
}

/// Everything one simulation run needs.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The scheme under test.
    pub scheme: Scheme,
    /// Number of client hosts (the paper uses 2).
    pub n_clients: usize,
    /// The worker servers.
    pub servers: Vec<ServerSpec>,
    /// The offered workload.
    pub workload: Workload,
    /// Service-time variability (±15, p ∈ {0.01, 0.001}).
    pub jitter: Jitter,
    /// Total offered load, requests/second across all clients.
    pub offered_rps: f64,
    /// Warm-up duration (measurements discarded), ns.
    pub warmup_ns: u64,
    /// Measurement window, ns.
    pub measure_ns: u64,
    /// Uniform packet-loss probability per link traversal.
    pub loss: f64,
    /// Master seed.
    pub seed: u64,
    /// Optional switch failure (Fig. 16).
    pub switch_failure: Option<SwitchFailurePlan>,
    /// Optional server failure (§3.6).
    pub server_failure: Option<ServerFailurePlan>,
    /// Throughput-timeseries bucket width, ns (Fig. 16 uses 1 s).
    pub timeseries_bucket_ns: u64,
    /// Filter tables on the switch (paper default 2; ablations vary it).
    pub n_filter_tables: usize,
    /// log2 of slots per filter table (paper default 17; the ablation
    /// shrinks it to make hash collisions observable).
    pub filter_slots_log2: u8,
    /// Override the group table (ablations: e.g. unordered C(n,2) pairs).
    pub custom_groups: Option<Vec<(u16, u16)>>,
    /// Cloning condition (paper: both idle; the §3.4 threshold alternative
    /// is available for the ablation).
    pub clone_condition: netclone_core::CloneCondition,
    /// Fabric shape: racks, host placement, inter-rack latency (§3.7).
    /// [`Topology::single_rack`] reproduces the paper's testbed exactly.
    pub topology: Topology,
    /// Congestion-aware links (`netclone-linksim`): bandwidth, bounded
    /// queues, tail-drop, ECN counters. `None` (the default) keeps every
    /// hop a fixed latency — the pre-linksim simulator, bit for bit.
    pub links: Option<LinkSpec>,
    /// Background incast traffic over the links (`None` = quiet fabric;
    /// requires `links` and a multi-rack topology).
    pub background: Option<Background>,
}

impl Scenario {
    /// The paper's default testbed: 2 clients, 6 homogeneous synthetic
    /// workers, Exp(25), high variability.
    pub fn synthetic_default(scheme: Scheme, wl: SyntheticWorkload, offered_rps: f64) -> Self {
        Scenario {
            scheme,
            n_clients: 2,
            servers: vec![
                ServerSpec {
                    workers: calib::SYNTHETIC_WORKERS
                };
                6
            ],
            workload: Workload::Synthetic(wl),
            jitter: Jitter::HIGH,
            offered_rps,
            warmup_ns: 30_000_000,   // 30 ms
            measure_ns: 250_000_000, // 250 ms
            loss: 0.0,
            seed: 42,
            switch_failure: None,
            server_failure: None,
            timeseries_bucket_ns: 100_000_000,
            n_filter_tables: 2,
            filter_slots_log2: 17,
            custom_groups: None,
            clone_condition: netclone_core::CloneCondition::BothIdle,
            topology: Topology::single_rack(),
            links: None,
            background: None,
        }
    }

    /// The paper's KV testbed: 2 clients, 6 workers × 8 threads.
    pub fn kv_default(scheme: Scheme, workload: Workload, offered_rps: f64) -> Self {
        Scenario {
            scheme,
            n_clients: 2,
            servers: vec![
                ServerSpec {
                    workers: calib::KV_WORKERS
                };
                6
            ],
            workload,
            jitter: Jitter::HIGH,
            offered_rps,
            warmup_ns: 50_000_000,
            measure_ns: 400_000_000,
            loss: 0.0,
            seed: 42,
            switch_failure: None,
            server_failure: None,
            timeseries_bucket_ns: 100_000_000,
            n_filter_tables: 2,
            filter_slots_log2: 17,
            custom_groups: None,
            clone_condition: netclone_core::CloneCondition::BothIdle,
            topology: Topology::single_rack(),
            links: None,
            background: None,
        }
    }

    /// Aggregate worker-thread capacity in requests/second (the knee of
    /// the throughput axis; sweeps size their rates from this).
    pub fn capacity_rps(&self) -> f64 {
        let threads: usize = self.servers.iter().map(|s| s.workers).sum();
        let mean_ns = self.workload.mean_service_ns()
            * (1.0 + self.jitter.p * (self.jitter.factor as f64 - 1.0));
        threads as f64 / (mean_ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclone_workloads::exp25;

    #[test]
    fn default_testbed_matches_paper() {
        let s = Scenario::synthetic_default(Scheme::NETCLONE, exp25(), 1e6);
        assert_eq!(s.n_clients, 2);
        assert_eq!(s.servers.len(), 6);
        assert_eq!(s.servers[0].workers, 15);
        assert_eq!(s.jitter, Jitter::HIGH);
    }

    #[test]
    fn capacity_is_in_the_fig7_region() {
        // 6 × 15 threads at Exp(25)+jitter: ≈ 3.1–3.2 MRPS, the Fig. 7
        // saturation region.
        let s = Scenario::synthetic_default(Scheme::Baseline, exp25(), 1e6);
        let cap = s.capacity_rps();
        assert!((2.8e6..3.6e6).contains(&cap), "capacity {cap}");
    }

    #[test]
    fn kv_capacity_is_in_the_fig11_region() {
        let s = Scenario::kv_default(Scheme::Baseline, Workload::redis(0.99), 1e5);
        let cap = s.capacity_rps();
        assert!((4.5e5..7.0e5).contains(&cap), "capacity {cap}");
        let s = Scenario::kv_default(Scheme::Baseline, Workload::redis(0.90), 1e5);
        let cap = s.capacity_rps();
        assert!((1.4e5..2.2e5).contains(&cap), "capacity {cap}");
    }

    #[test]
    fn workload_labels() {
        assert_eq!(Workload::Synthetic(exp25()).label(), "Exp(25)");
        assert_eq!(Workload::redis(0.99).label(), "99%-GET,1%-SCAN(100)");
    }
}
