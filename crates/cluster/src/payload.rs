//! Interned per-request payloads: the event-queue slimming half of the
//! allocation-free hot path.
//!
//! An [`AppPacket`](netclone_hosts::AppPacket) carries three things: the
//! switch-visible [`PacketMeta`], the application op, and the client-side
//! birth timestamp. The latter two are **immutable for the lifetime of a
//! request** — the original, its switch clone, and both responses all
//! share them — yet the event queue used to copy them through every hop.
//! [`PayloadSlab`] interns `(op, born_ns)` once per generated packet;
//! events carry a [`SimPacket`] (metadata + slab id), and the simulator
//! reconstitutes the full `AppPacket` only at host boundaries.
//!
//! The slab is reference-counted because one payload can back several
//! in-flight packets at once (a cloned request, its original, and later
//! both responses). The discipline in `sim.rs` is strictly symmetric:
//! every *scheduled* packet event holds one reference; every *consumed*
//! event releases it (or hands it on to the packet it becomes). Freed
//! slots go on a free list, so steady state allocates nothing and ids
//! stay dense. Determinism is untouched — the slab is pure storage and
//! draws nothing.

use netclone_proto::{PacketMeta, RpcOp};

/// Slab id of an interned payload.
pub(crate) type PayloadId = u32;

/// A packet as the event queue carries it: the mutable switch-visible
/// metadata inline, the immutable op/birth interned in the run's
/// [`PayloadSlab`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct SimPacket {
    /// The switch-visible slice (addresses + NetClone header).
    pub meta: PacketMeta,
    /// Key of the interned `(op, born_ns)` pair.
    pub pid: PayloadId,
}

/// A reference-counted slab of `(op, born_ns)` pairs with a free list.
pub(crate) struct PayloadSlab {
    slots: Vec<(RpcOp, u64)>,
    rc: Vec<u32>,
    free: Vec<PayloadId>,
    live: usize,
}

impl PayloadSlab {
    /// An empty slab.
    pub fn new() -> Self {
        PayloadSlab {
            slots: Vec::new(),
            rc: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Interns one payload with an initial reference count of 1.
    #[inline]
    pub fn alloc(&mut self, op: RpcOp, born_ns: u64) -> PayloadId {
        self.live += 1;
        match self.free.pop() {
            Some(pid) => {
                self.slots[pid as usize] = (op, born_ns);
                self.rc[pid as usize] = 1;
                pid
            }
            None => {
                let pid = self.slots.len() as PayloadId;
                self.slots.push((op, born_ns));
                self.rc.push(1);
                pid
            }
        }
    }

    /// Adds one reference (a second in-flight packet now shares `pid`).
    #[inline]
    pub fn retain(&mut self, pid: PayloadId) {
        debug_assert!(self.rc[pid as usize] > 0, "retain of a freed payload");
        self.rc[pid as usize] += 1;
    }

    /// Drops one reference, freeing the slot when it was the last.
    #[inline]
    pub fn release(&mut self, pid: PayloadId) {
        let rc = &mut self.rc[pid as usize];
        debug_assert!(*rc > 0, "release of a freed payload");
        *rc -= 1;
        if *rc == 0 {
            self.free.push(pid);
            self.live -= 1;
        }
    }

    /// The interned `(op, born_ns)` pair.
    #[inline]
    pub fn get(&self, pid: PayloadId) -> (RpcOp, u64) {
        debug_assert!(self.rc[pid as usize] > 0, "read of a freed payload");
        self.slots[pid as usize]
    }

    /// Payloads currently alive (leak diagnostics: a fully drained run
    /// must end at zero).
    pub fn live(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(ns: u64) -> RpcOp {
        RpcOp::Echo { class_ns: ns }
    }

    #[test]
    fn alloc_get_release_cycle() {
        let mut slab = PayloadSlab::new();
        let a = slab.alloc(op(1), 10);
        let b = slab.alloc(op(2), 20);
        assert_ne!(a, b);
        assert_eq!(slab.get(a), (op(1), 10));
        assert_eq!(slab.get(b), (op(2), 20));
        assert_eq!(slab.live(), 2);
        slab.release(a);
        assert_eq!(slab.live(), 1);
        // The freed slot is recycled: ids stay dense.
        let c = slab.alloc(op(3), 30);
        assert_eq!(c, a);
        assert_eq!(slab.get(c), (op(3), 30));
        assert_eq!(slab.live(), 2);
    }

    #[test]
    fn refcounts_keep_shared_payloads_alive() {
        let mut slab = PayloadSlab::new();
        let a = slab.alloc(op(1), 10);
        slab.retain(a); // the switch clone
        slab.retain(a); // a response
        slab.release(a);
        slab.release(a);
        assert_eq!(slab.live(), 1, "one reference still holds the slot");
        assert_eq!(slab.get(a), (op(1), 10));
        slab.release(a);
        assert_eq!(slab.live(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "release of a freed payload")]
    fn double_release_is_caught_in_debug() {
        let mut slab = PayloadSlab::new();
        let a = slab.alloc(op(1), 10);
        slab.release(a);
        slab.release(a);
    }
}
